"""Ablation: adaptive rank selection vs fixed rank (DESIGN.md ablation #4).

The paper's adaptive ID truncates each skeletonization when the sampled
block's trailing pivot drops below τ; this saves work on nodes whose blocks
decay fast, but can *underestimate* the rank (the K13/K14 discussion in
Figure 5).  The ablation compares, at matched maximum rank:

* adaptive truncation with a practical tolerance,
* adaptive truncation with an extremely tight tolerance (≈ fixed rank),
* fixed rank (adaptive_rank=False).
"""

from __future__ import annotations

import pytest

from repro import GOFMMConfig
from repro.api import Session
from repro.matrices import build_matrix
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm_session

MODES = [
    ("adaptive tau=1e-3", dict(adaptive_rank=True, tolerance=1e-3)),
    ("adaptive tau=1e-10", dict(adaptive_rank=True, tolerance=1e-10)),
    ("fixed rank", dict(adaptive_rank=False, tolerance=1e-10)),
]


def _experiment(matrix_name: str):
    n = problem_size(1024)
    matrix = build_matrix(matrix_name, n, seed=0)
    # adaptive_rank / tolerance only invalidate skeletonization onward, so
    # one session serves all three modes on shared tree + ANN + lists.
    session = Session(
        matrix,
        GOFMMConfig(
            leaf_size=64, max_rank=64, neighbors=16, budget=0.1,
            distance="angle", seed=0, **MODES[0][1],
        ),
    )
    return [
        run_gofmm_session(session, overrides, num_rhs=32, name=label)
        for label, overrides in MODES
    ]


@pytest.mark.parametrize("matrix_name", ["K02", "K13"])
def bench_ablation_adaptive_rank(benchmark, matrix_name):
    runs = once(benchmark, lambda: _experiment(matrix_name))

    print()
    print(format_table(
        ["mode", "eps2", "avg rank", "comp [s]", "eval [s]"],
        [[label, r.epsilon2, r.average_rank, r.compression_seconds, r.evaluation_seconds]
         for (label, _), r in zip(MODES, runs)],
        title=f"Adaptive-rank ablation: {matrix_name} (N={problem_size(1024)}, s=64)",
    ))

    loose, tight, fixed = runs
    # The loose tolerance uses (weakly) lower average rank than the fixed-rank run.
    assert loose.average_rank <= fixed.average_rank + 1e-9
    # A tight tolerance recovers (almost) the fixed-rank accuracy.
    assert tight.epsilon2 <= fixed.epsilon2 * 5 + 1e-12
