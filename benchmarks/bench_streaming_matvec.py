"""Streamed-engine matvec: throughput + memory high-water vs reference and planned.

The streamed engine exists for **memoryless** compressions
(``cache_near_blocks=False, cache_far_blocks=False`` — the only way to run
large ``n`` at bounded memory): the per-node reference traversal re-evaluates
every near/far block pair by pair each matvec, while the streamed engine
materializes them in stacked chunks inside a workspace bounded by
``GOFMMConfig.streaming_chunk_bytes`` and runs the same level-batched GEMMs
as the planned engine.  This harness pins both axes of that trade:

* **throughput** — best-of-N matvec seconds for ``reference`` / ``streamed``
  on the memoryless compression, plus ``planned`` as the explicit opt-in
  that packs every block eagerly (the memory-unbounded upper bound),
* **memory** — tracemalloc high-water mark of one matvec per engine (the
  evaluation-phase footprint; the streamed engine's must stay within 2×
  ``streaming_chunk_bytes``), the eagerly packed plan's resident bytes for
  contrast, and the process peak RSS.

The engines are verified bit-identical (``streamed`` vs ``reference``,
``np.array_equal``) before anything is timed.

Run directly::

    PYTHONPATH=src python benchmarks/bench_streaming_matvec.py \
        [--sizes 8192] [--rhs 16] [--repeats 5] [--smoke] [--out PATH]

``--smoke`` (CI) shrinks the problem so the harness runs in seconds while
still exercising compression, chunked evaluation, bit-identity and the
artifact write.
"""

from __future__ import annotations

import argparse
import json
import resource
import time
from pathlib import Path

import numpy as np

from repro import GOFMMConfig, compress
from repro.matrices import KernelMatrix
from repro.matrices.kernels import GaussianKernel

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import memory_probe, traced_peak_bytes
except ImportError:
    from harness import memory_probe, traced_peak_bytes

DEFAULT_SIZES = (8192,)

#: Fine tree (small leaves, fixed rank): thousands of small blocks — the
#: regime where per-pair reference evaluation drowns in overhead and the
#: streamed engine's stacked materialization + batched GEMMs pay off most.
FINE = dict(leaf_size=32, max_rank=16, adaptive_rank=False)


def gaussian_matrix(n: int, d: int = 3, bandwidth: float = 2.0, seed: int = 0) -> KernelMatrix:
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((8, d)) * 3.0
    points = np.vstack([c + gen.standard_normal((n // 8 + 1, d)) for c in centers])[:n]
    return KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=1e-6, name=f"gaussian-{n}")


def best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_one(n: int, num_rhs: int, repeats: int, seed: int = 0) -> dict:
    matrix = gaussian_matrix(n, seed=seed)
    config = GOFMMConfig(
        tolerance=1e-5,
        neighbors=16,
        budget=0.03,
        num_neighbor_trees=4,
        seed=seed,
        cache_near_blocks=False,
        cache_far_blocks=False,
        **FINE,
    )
    t0 = time.perf_counter()
    compressed = compress(matrix, config)
    comp_seconds = time.perf_counter() - t0
    assert compressed.default_engine() == "streamed"

    w = np.random.default_rng(seed).standard_normal((n, num_rhs))
    # correctness gate: the streamed engine must be bit-identical to the
    # per-node reference traversal on the memoryless compression
    reference_out = compressed.matvec(w, engine="reference")
    streamed_out = compressed.matvec(w, engine="streamed")
    if not np.array_equal(reference_out, streamed_out):
        raise RuntimeError(
            f"streamed/reference mismatch at n={n}: "
            f"max diff {np.max(np.abs(reference_out - streamed_out)):.3e}"
        )

    reference_seconds = best_of(repeats, lambda: compressed.matvec(w, engine="reference"))
    streamed_seconds = best_of(repeats, lambda: compressed.matvec(w, engine="streamed"))
    # the explicit opt-in: pack every block eagerly (memory-unbounded)
    plan_packed = compressed.plan()
    planned_seconds = best_of(repeats, lambda: compressed.matvec(w, engine="planned"))

    reference_peak = traced_peak_bytes(lambda: compressed.matvec(w, engine="reference"))
    streamed_peak = traced_peak_bytes(lambda: compressed.matvec(w, engine="streamed"))
    planned_peak = traced_peak_bytes(lambda: compressed.matvec(w, engine="planned"))

    flops = compressed.evaluation_flops(num_rhs)
    row = {
        "n": n,
        "tree": "fine",
        "config": dict(FINE),
        "num_rhs": num_rhs,
        "streaming_chunk_bytes": int(config.streaming_chunk_bytes),
        "compression_seconds": comp_seconds,
        "reference_seconds": reference_seconds,
        "streamed_seconds": streamed_seconds,
        "planned_seconds": planned_seconds,
        "speedup_vs_reference": reference_seconds / streamed_seconds if streamed_seconds > 0 else float("inf"),
        "streamed_gflops": flops / streamed_seconds / 1e9 if streamed_seconds > 0 else 0.0,
        "reference_gflops": flops / reference_seconds / 1e9 if reference_seconds > 0 else 0.0,
        # memory axis: per-engine evaluation-phase high-water marks
        "reference_peak_bytes": reference_peak,
        "streamed_peak_bytes": streamed_peak,
        "planned_peak_bytes": planned_peak,
        "streamed_peak_vs_chunk_budget": streamed_peak / config.streaming_chunk_bytes,
        "planned_packed_bytes": int(plan_packed.packed_entries() * 8),
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "bit_identical_to_reference": True,
        "streaming": compressed.streaming_report(),
    }
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--rhs", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--smoke", action="store_true", help="small, fast CI invocation")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "artifacts" / "streaming_matvec.json"
    )
    args = parser.parse_args()

    if args.sizes is not None:
        sizes = args.sizes
    elif args.smoke:
        sizes = [1024]
    else:
        sizes = list(DEFAULT_SIZES)
    repeats = 2 if args.smoke else args.repeats

    rows = []
    print(
        f"{'n':>8} {'ref (s)':>10} {'streamed (s)':>13} {'planned (s)':>12} "
        f"{'speedup':>8} {'peak (MiB)':>11} {'budget2x':>9}"
    )
    for n in sizes:
        row = bench_one(n, args.rhs, repeats)
        rows.append(row)
        print(
            f"{row['n']:>8} {row['reference_seconds']:>10.4f} {row['streamed_seconds']:>13.4f} "
            f"{row['planned_seconds']:>12.4f} {row['speedup_vs_reference']:>7.1f}x "
            f"{row['streamed_peak_bytes']/2**20:>11.1f} "
            f"{2*row['streaming_chunk_bytes']/2**20:>8.0f}M"
        )

    artifact = {
        "benchmark": "streaming_matvec",
        "memory": memory_probe(),
        "num_rhs": args.rhs,
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "results": rows,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
