"""Neighbor-backend speedup and process-sharded strong scaling.

Two measurements behind the pluggable neighbor/compression backends:

* **backend speedup** — the ANN phase (steps 1–3 of Algorithm 2.2) timed
  under the ``"reference"`` (per-row merge loop) and ``"blocked"``
  (vectorized per-leaf pass) backends on the same problem, with the
  resulting tables asserted bit-identical before any number is reported.
  The per-row loop pays ~tens of microseconds of interpreter overhead per
  index per tree; the blocked backend replaces it with a handful of
  stacked array passes per leaf batch, which is where the headline
  speedup at n=8192 comes from.
* **strong scaling** — the ``"sharded"`` neighbor backend (independent
  projection-tree iterations over a ``fork`` pool + shared-memory slabs)
  swept over ``neighbor_workers`` at n≥10^5, and the ``"sharded"``
  compression backend swept over ``compression_workers``.  Both sharded
  backends are worker-count deterministic, so every sweep point first
  asserts its results equal the single-process run.  The artifact records
  ``os.cpu_count()`` — on a single-core container the curve honestly
  shows the fork/slab overhead instead of a speedup.

Results are written to ``benchmarks/artifacts/compression_scaling.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_compression_scaling.py \
        [--smoke] [--n 8192] [--scaling-n 100000] [--repeats 3] [--out PATH]

``--smoke`` shrinks the problem (n=2048, backend speedup only) and asserts
that the blocked backend beats the reference — the CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import GOFMMConfig
from repro.api import Session
from repro.core.distances import AngleDistance, GeometricDistance
from repro.core.neighbor_backends import available_neighbor_backends
from repro.core.neighbors import all_nearest_neighbors
from repro.matrices import KernelMatrix
from repro.matrices.kernels import GaussianKernel

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import memory_probe
except ImportError:
    from harness import memory_probe

#: (metric, leaf_size, neighbors) rows of the backend-speedup table.  All
#: rows run num_neighbor_trees=10 at accuracy target 0.999 — enough
#: iterations that the phase cost, not the convergence check, dominates.
SPEEDUP_ROWS = (
    ("geometric", 64, 16),
    ("angle", 64, 16),
    ("angle", 64, 32),
)


def clustered_points(n: int, d: int = 6, seed: int = 0) -> np.ndarray:
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((8, d)) * 3.0
    return np.vstack([c + gen.standard_normal((n // 8 + 1, d)) for c in centers])[:n]


def make_distance(metric: str, points: np.ndarray):
    if metric == "geometric":
        return GeometricDistance(points)
    matrix = KernelMatrix(points, GaussianKernel(bandwidth=2.0), regularization=1e-8)
    return AngleDistance(matrix)


def _time_backend(distance, config: GOFMMConfig, backend: str, repeats: int):
    best = float("inf")
    table = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        table = all_nearest_neighbors(distance, config, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best, table


def backend_speedup(n: int, repeats: int, trees: int = 10) -> list[dict]:
    """Reference vs blocked ANN phase, best-of-``repeats``, exact-match gated."""
    rows = []
    for metric, leaf, kappa in SPEEDUP_ROWS:
        points = clustered_points(n)
        distance = make_distance(metric, points)
        config = GOFMMConfig(
            distance="geometric" if metric == "geometric" else "angle",
            leaf_size=leaf,
            neighbors=kappa,
            num_neighbor_trees=trees,
            neighbor_accuracy_target=0.999,
            seed=0,
        )
        ref_seconds, ref_table = _time_backend(distance, config, "reference", repeats)
        blk_seconds, blk_table = _time_backend(distance, config, "blocked", repeats)
        if not (
            np.array_equal(ref_table.indices, blk_table.indices)
            and np.array_equal(ref_table.distances, blk_table.distances)
        ):
            raise RuntimeError(f"backend table mismatch: {metric} leaf={leaf} kappa={kappa}")
        rows.append(
            {
                "metric": metric,
                "n": n,
                "leaf_size": leaf,
                "neighbors": kappa,
                "num_neighbor_trees": trees,
                "iterations": ref_table.iterations,
                "reference_seconds": ref_seconds,
                "blocked_seconds": blk_seconds,
                "speedup": ref_seconds / blk_seconds if blk_seconds > 0 else float("inf"),
                "tables_identical": True,
            }
        )
    return rows


def neighbor_strong_scaling(n: int, workers_sweep, repeats: int) -> list[dict]:
    """Sharded ANN over a worker sweep; every point must match workers=1."""
    points = clustered_points(n)
    distance = GeometricDistance(points)
    base = GOFMMConfig(
        distance="geometric",
        leaf_size=64,
        neighbors=16,
        num_neighbor_trees=8,
        neighbor_accuracy_target=0.999,
        neighbor_backend="sharded",
        seed=0,
    )
    rows = []
    baseline = None
    for workers in workers_sweep:
        config = base.replace(neighbor_workers=workers)
        seconds, table = _time_backend(distance, config, "sharded", repeats)
        if baseline is None:
            baseline = (seconds, table)
        else:
            if not (
                np.array_equal(baseline[1].indices, table.indices)
                and np.array_equal(baseline[1].distances, table.distances)
            ):
                raise RuntimeError(f"sharded table changed at neighbor_workers={workers}")
        rows.append(
            {
                "n": n,
                "neighbor_workers": workers,
                "seconds": seconds,
                "iterations": table.iterations,
                "speedup_vs_1": baseline[0] / seconds if seconds > 0 else float("inf"),
            }
        )
    return rows


def compression_strong_scaling(n: int, workers_sweep, repeats: int) -> list[dict]:
    """Sharded skeletonization over a worker sweep on a warm session."""
    rows = []
    baseline_skeletons = None
    baseline_seconds = None
    for workers in workers_sweep:
        matrix = KernelMatrix(
            clustered_points(n, d=3),
            GaussianKernel(bandwidth=2.0),
            regularization=1e-6,
            name=f"gaussian-{n}",
        )
        config = GOFMMConfig(
            leaf_size=64,
            max_rank=48,
            tolerance=1e-5,
            neighbors=16,
            budget=0.03,
            seed=0,
            compression_backend="sharded" if workers > 1 else "batched",
            compression_workers=workers,
        )
        session = Session(matrix, config)
        session.prepare()  # partition + ANN + lists are not what's being measured
        best = float("inf")
        op = None
        for _ in range(repeats):
            session.invalidate("skeletons")
            op = session.compress()
            best = min(best, op.report.phase_seconds.get("skeletonization", 0.0))
        skeletons = [
            None if node.skeleton is None else node.skeleton.copy()
            for node in op.compressed.tree.nodes
        ]
        if baseline_skeletons is None:
            baseline_skeletons, baseline_seconds = skeletons, best
        else:
            identical = all(
                (a is None and b is None)
                or (a is not None and b is not None and np.array_equal(a, b))
                for a, b in zip(baseline_skeletons, skeletons)
            )
            if not identical:
                raise RuntimeError(f"sharded skeletons changed at compression_workers={workers}")
        rows.append(
            {
                "n": n,
                "compression_workers": workers,
                "skeletonization_seconds": best,
                "speedup_vs_1": baseline_seconds / best if best > 0 else float("inf"),
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI gate: blocked must beat reference")
    parser.add_argument("--n", type=int, default=8192, help="backend-speedup problem size")
    parser.add_argument("--scaling-n", type=int, default=100_000, help="strong-scaling problem size")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "artifacts" / "compression_scaling.json"
    )
    args = parser.parse_args()

    if args.smoke:
        n, repeats = 2048, 2
    else:
        n, repeats = args.n, args.repeats

    speedup_rows = backend_speedup(n, repeats)
    print(f"{'metric':>10} {'leaf':>5} {'kappa':>6} {'ref (s)':>9} {'blocked (s)':>12} {'speedup':>8}")
    for row in speedup_rows:
        print(
            f"{row['metric']:>10} {row['leaf_size']:>5} {row['neighbors']:>6} "
            f"{row['reference_seconds']:>9.3f} {row['blocked_seconds']:>12.3f} "
            f"{row['speedup']:>7.2f}x"
        )
    max_speedup = max(row["speedup"] for row in speedup_rows)

    artifact = {
        "benchmark": "compression_scaling",
        "memory": memory_probe(),
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "available_neighbor_backends": list(available_neighbor_backends()),
        "repeats": repeats,
        "backend_speedup": speedup_rows,
        "max_backend_speedup": max_speedup,
    }

    if args.smoke:
        # CI gate: on any machine, the vectorized pass must beat the
        # per-row loop, and (asserted above) bit-identically so.
        slowest = min(row["speedup"] for row in speedup_rows)
        if slowest <= 1.0:
            raise SystemExit(f"blocked backend lost to reference ({slowest:.2f}x)")
        print(f"smoke OK: min speedup {slowest:.2f}x, tables identical")
    else:
        scaling = neighbor_strong_scaling(args.scaling_n, args.workers, repeats=1)
        print(f"\nsharded ANN at n={args.scaling_n} (cpu_count={os.cpu_count()}):")
        for row in scaling:
            print(
                f"  neighbor_workers={row['neighbor_workers']}: {row['seconds']:.2f}s "
                f"({row['speedup_vs_1']:.2f}x vs 1)"
            )
        compression = compression_strong_scaling(min(n, 8192), args.workers, repeats=2)
        print(f"sharded skeletonization at n={min(n, 8192)}:")
        for row in compression:
            print(
                f"  compression_workers={row['compression_workers']}: "
                f"{row['skeletonization_seconds']:.2f}s ({row['speedup_vs_1']:.2f}x vs 1)"
            )
        artifact["strong_scaling"] = {"neighbors": scaling, "skeletonization": compression}

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
