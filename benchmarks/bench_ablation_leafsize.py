"""Ablation: leaf size m (DESIGN.md ablation #2).

The paper notes (Figure 5 discussion) that G01–G03 need a *small* leaf size
to reach high accuracy, but that small m hurts performance because the
dense per-leaf GEMMs become too small to be efficient.  This sweep measures
both effects: ε2 and evaluation time as functions of m.
"""

from __future__ import annotations

import pytest

from repro import GOFMMConfig
from repro.matrices import build_matrix
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm

LEAF_SIZES = [32, 64, 128, 256]


def _experiment(matrix_name: str):
    n = problem_size(1024)
    runs = []
    for m in LEAF_SIZES:
        matrix = build_matrix(matrix_name, n, seed=0)
        config = GOFMMConfig(
            leaf_size=m, max_rank=min(m, 64), tolerance=1e-7, neighbors=16,
            budget=0.1, distance="angle", seed=0,
        )
        runs.append(run_gofmm(matrix, config, num_rhs=32, name=f"m={m}"))
    return runs


@pytest.mark.parametrize("matrix_name", ["G03", "covtype"])
def bench_ablation_leafsize(benchmark, matrix_name):
    runs = once(benchmark, lambda: _experiment(matrix_name))

    print()
    print(format_table(
        ["m", "eps2", "avg rank", "comp [s]", "eval [s]", "eval FLOPs"],
        [[m, r.epsilon2, r.average_rank, r.compression_seconds, r.evaluation_seconds, r.flops]
         for m, r in zip(LEAF_SIZES, runs)],
        title=f"Leaf-size ablation: {matrix_name} (N={problem_size(1024)})",
    ))

    # All leaf sizes produce a working compression.
    assert all(r.epsilon2 < 1.0 for r in runs)
    # The modelled evaluation FLOPs grow with the leaf size (larger dense diagonal blocks).
    assert runs[-1].flops >= runs[0].flops
