"""Figure 7: comparison of the five permutation / distance schemes.

Experiments #9–#12 compress four matrices under five orderings —
Lexicographic, Random, Kernel (Gram ℓ2), Angle, and Geometric — and report
relative error and average rank.  The paper's conclusions:

* distance-based orderings (Kernel/Angle/Geometric) reach lower error
  and/or lower average rank than the metric-free ones,
* on the graph matrix (no coordinates) the geometric scheme is impossible,
  yet the Gram distances still compress the matrix well, while the
  lexicographic ordering achieves low rank but *large* error (its uniform
  samples are poor).

The harness runs the same five schemes on a kernel matrix (K04-like, with
its input order scrambled so lexicographic really is uninformative), an
advection-diffusion matrix (K12) and a graph matrix (G03).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.config import DistanceMetric
from repro.matrices import KernelMatrix, build_matrix
from repro.matrices.datasets import clustered_points
from repro.matrices.kernels import GaussianKernel
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm


def _scrambled_k04(n: int):
    points = clustered_points(n, ambient_dim=6, intrinsic_dim=3, clusters=4, seed=0)
    points = points[np.random.default_rng(1).permutation(n)]
    return KernelMatrix(points, GaussianKernel(bandwidth=1.0), regularization=1e-8, name="K04-scrambled")


MATRICES = {
    "K04-scrambled": _scrambled_k04,
    "K12": lambda n: build_matrix("K12", n, seed=0),
    "G03": lambda n: build_matrix("G03", n, seed=0),
}

SCHEMES = [
    DistanceMetric.LEXICOGRAPHIC,
    DistanceMetric.RANDOM,
    DistanceMetric.KERNEL,
    DistanceMetric.ANGLE,
    DistanceMetric.GEOMETRIC,
]


def _config(metric: DistanceMetric) -> GOFMMConfig:
    return GOFMMConfig(
        leaf_size=64, max_rank=64, tolerance=1e-7, neighbors=16,
        budget=0.1 if metric.defines_distance else 0.0,
        distance=metric, seed=0,
    )


def _experiment(matrix_name: str):
    n = problem_size(1024)
    results = {}
    for metric in SCHEMES:
        matrix = MATRICES[matrix_name](n)
        if metric is DistanceMetric.GEOMETRIC and matrix.coordinates is None:
            results[metric] = None  # impossible, as in the paper's #12
            continue
        results[metric] = run_gofmm(matrix, _config(metric), num_rhs=32, name=metric.value)
    return results


@pytest.mark.parametrize("matrix_name", list(MATRICES))
def bench_fig7_permutations(benchmark, matrix_name):
    results = once(benchmark, lambda: _experiment(matrix_name))

    rows = []
    for metric in SCHEMES:
        run = results[metric]
        if run is None:
            rows.append([metric.value, "n/a (no coordinates)", "n/a", "n/a"])
        else:
            rows.append([metric.value, run.epsilon2, run.average_rank, run.compression_seconds])
    print()
    print(format_table(
        ["ordering", "eps2", "avg rank", "comp [s]"],
        rows,
        title=f"Figure 7 analogue: {matrix_name} (N={problem_size(1024)})",
    ))

    gram_best = min(results[m].epsilon2 for m in (DistanceMetric.KERNEL, DistanceMetric.ANGLE))
    metric_free_best = min(results[m].epsilon2 for m in (DistanceMetric.LEXICOGRAPHIC, DistanceMetric.RANDOM))
    if matrix_name == "K12":
        # K12's input (grid) order is already good — the distances should not lose badly.
        assert gram_best <= metric_free_best * 10
    else:
        # Scrambled kernel matrix and graph matrix: Gram distances must win clearly.
        assert gram_best < metric_free_best
    if matrix_name == "K04-scrambled":
        # For kernel matrices the Gram distances recover (essentially) the same
        # clustering as the geometric reference, so the errors stay within a
        # modest factor (the paper's "matrix-defined Gram distances work quite
        # well").  For operator matrices like K12 the geometric ordering can be
        # far better in absolute terms, which the paper's #10/#11 also show as a
        # rank/accuracy gap — no assertion there beyond the table above.
        assert results[DistanceMetric.GEOMETRIC] is not None
        assert gram_best <= results[DistanceMetric.GEOMETRIC].epsilon2 * 100
    if matrix_name == "G03":
        assert results[DistanceMetric.GEOMETRIC] is None
