"""Compression throughput: reference vs batched skeletonization backend.

For each problem size this prepares one staged session per backend (the
partition / ANN / interaction-list artifacts are built once and reused),
then times warm recompressions — skeletonization + block caching, exactly
the work a parameter sweep repays per point — under both compression
backends and reports the skeletonization wall-clock, the end-to-end warm
compression time, entry-evaluation counts, and the operator's relative
error.  Results are written as a JSON artifact so future PRs can track
the performance trajectory.

Two tree granularities are measured:

* ``coarse`` — paper-style leaves (m=256, rank cap 256): few large
  sampled blocks, LAPACK-bound; the batched backend dispatches these
  block by block and matches the reference,
* ``fine`` — small leaves (m=16, rank cap 8): hundreds of tiny pivoted
  QRs, the regime where the per-node backend drowns in per-call overhead
  and the level-batched stacked sweep pays off the most (the same regime
  where the planned evaluation engine beats the per-node oracle).

The two backends draw every node's row sample from the same
deterministic per-node streams, so on this benchmark's generic
(numerically nondegenerate) kernel data they select identical skeletons —
``relative_error`` must agree to the last digit, and the harness verifies
the skeletons match before timing.

Run directly::

    PYTHONPATH=src python benchmarks/bench_compression_throughput.py \
        [--sizes 2048 8192] [--repeats 3] [--out PATH]

Sizes can also be overridden with ``GOFMM_BENCH_SIZES="2048,8192"``.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import numpy as np

from repro import GOFMMConfig
from repro.api import Session
from repro.core.backends import available_backends
from repro.matrices import KernelMatrix
from repro.matrices.kernels import GaussianKernel

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import memory_probe
except ImportError:
    from harness import memory_probe

DEFAULT_SIZES = (2048, 8192)

CONFIGS = {
    "coarse": dict(leaf_size=256, max_rank=256, tolerance=1e-5),
    "fine": dict(leaf_size=16, max_rank=8, tolerance=1e-5),
}


def gaussian_matrix(n: int, d: int = 3, bandwidth: float = 2.0, seed: int = 0) -> KernelMatrix:
    """Clustered Gaussian kernel matrix (same construction as the test suite, at scale)."""
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((8, d)) * 3.0
    points = np.vstack([c + gen.standard_normal((n // 8 + 1, d)) for c in centers])[:n]
    return KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=1e-6, name=f"gaussian-{n}")


def _warm_compress(session: Session, repeats: int):
    """Best-of-``repeats`` warm recompression (skeletonization onward)."""
    best_skel = best_total = float("inf")
    op = None
    for _ in range(repeats):
        session.invalidate("skeletons")  # cascades to blocks + plan
        op = session.compress()
        phases = op.report.phase_seconds
        best_skel = min(best_skel, phases.get("skeletonization", 0.0))
        best_total = min(best_total, op.report.total_seconds)
    return op, best_skel, best_total


def bench_one(n: int, tree: str, repeats: int, seed: int = 0) -> dict:
    base = GOFMMConfig(
        neighbors=16, budget=0.03, num_neighbor_trees=4, seed=seed, **CONFIGS[tree]
    )
    per_backend = {}
    skeletons = {}
    for backend in ("reference", "batched"):
        matrix = gaussian_matrix(n, seed=seed)
        session = Session(matrix, base.replace(compression_backend=backend))
        session.prepare()  # partition + ANN + lists are not what's being measured
        start_evals = matrix.entry_evaluations
        op, skel_seconds, total_seconds = _warm_compress(session, repeats)
        per_backend[backend] = {
            "skeletonization_seconds": skel_seconds,
            "warm_compress_seconds": total_seconds,
            "entry_evaluations": matrix.entry_evaluations - start_evals,
            "average_rank": op.report.average_rank,
            "relative_error": float(op.relative_error(num_rhs=4, num_sample_rows=50)),
        }
        skeletons[backend] = [
            None if node.skeleton is None else node.skeleton.copy()
            for node in op.compressed.tree.nodes
        ]

    identical = all(
        (a is None and b is None) or (a is not None and b is not None and np.array_equal(a, b))
        for a, b in zip(skeletons["reference"], skeletons["batched"])
    )
    if not identical:
        raise RuntimeError(f"backend skeleton mismatch at n={n}, tree={tree}")

    ref = per_backend["reference"]
    bat = per_backend["batched"]
    return {
        "n": n,
        "tree": tree,
        "config": dict(CONFIGS[tree]),
        "backends": per_backend,
        "skeletons_identical": identical,
        "skeletonization_speedup": (
            ref["skeletonization_seconds"] / bat["skeletonization_seconds"]
            if bat["skeletonization_seconds"] > 0
            else float("inf")
        ),
        "error_gap": abs(ref["relative_error"] - bat["relative_error"]),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "artifacts" / "compression_throughput.json"
    )
    args = parser.parse_args()

    sizes = args.sizes
    if sizes is None:
        env = os.environ.get("GOFMM_BENCH_SIZES")
        sizes = [int(s) for s in env.split(",")] if env else list(DEFAULT_SIZES)

    rows = []
    print(f"{'n':>8} {'tree':>7} {'ref skel (s)':>13} {'batched (s)':>12} {'speedup':>8} {'eps2 gap':>9}")
    for n in sizes:
        for tree in CONFIGS:
            row = bench_one(n, tree, args.repeats)
            rows.append(row)
            print(
                f"{row['n']:>8} {row['tree']:>7} "
                f"{row['backends']['reference']['skeletonization_seconds']:>13.4f} "
                f"{row['backends']['batched']['skeletonization_seconds']:>12.4f} "
                f"{row['skeletonization_speedup']:>7.2f}x {row['error_gap']:>9.1e}"
            )

    artifact = {
        "benchmark": "compression_throughput",
        "memory": memory_probe(),
        "available_backends": list(available_backends()),
        "repeats": args.repeats,
        "results": rows,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
