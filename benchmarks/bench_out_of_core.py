"""Out-of-core operator serving: residency vs problem size under a pinned budget.

The out-of-core claim of the storage subsystem (:mod:`repro.storage`) is
that an operator whose artifact + weight working set is several times the
streaming budget still compresses, cold-starts, and serves — with the
measured Python-heap high-water staying under a pinned bound derived from
the budget, because coefficients / cached blocks page in from the mmap'd
store and the weights / outputs stream through bounded column panels.

Per problem size this harness:

1. compresses the fine-tree Gaussian kernel operator (cached blocks),
2. saves it as a format-v2 store directory and cold-starts it back with
   ``CompressedOperator.open(path, resident="mmap")``,
3. asserts the mmap'd operator's full-width matvec is **bit-identical** to
   the in-memory reference traversal,
4. streams an mmap'd weight file through the plan's column panels into an
   mmap'd output file, measuring the tracemalloc high-water of the call
   (mmap pages are invisible to tracemalloc — which is exactly the point:
   what it sees is the true heap residency), and asserts it stays under
   the pinned bound,
5. records the working set (store + weights + outputs) as a multiple of
   the budget — the full run's largest size is the extrapolation point
   with working set ≥ 4× budget.

The streaming budget defaults to 8 MiB and is pinned via
``GOFMM_STREAM_BUDGET_MB`` (CI runs the ``--smoke`` mode under exactly
that).  Results land in ``benchmarks/artifacts/out_of_core.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro import GOFMMConfig
from repro.api import Session
from repro.api.operator import CompressedOperator
from repro.matrices import KernelMatrix
from repro.matrices.kernels import GaussianKernel

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import memory_probe
except ImportError:
    from harness import memory_probe

DEFAULT_SIZES = (2048, 4096, 8192)
SMOKE_SIZES = (1024, 2048)

#: Fine tree (small leaves, fixed rank): thousands of small cached blocks —
#: the regime where the store directory actually carries weight and the
#: streamed engine's bounded workspace matters (mirrors bench_streaming_matvec).
FINE = dict(leaf_size=32, max_rank=16, adaptive_rank=False, budget=0.05)

#: Pinned heap high-water bound for one panel-streamed matvec, as a multiple
#: of the streaming budget: one input + one output panel (together sized to
#: the budget by ``default_panel_cols``) + the chunk workspace buffers (at
#: most half a budget) + panel I/O staging, plus a small fixed allowance for
#: interpreter noise.  Raising this number is a memory regression.
HIGH_WATER_BUDGET_MULTIPLE = 3.0
HIGH_WATER_SLACK_BYTES = 4 << 20


def stream_budget_bytes() -> int:
    """The pinned streaming budget (override with GOFMM_STREAM_BUDGET_MB)."""
    return int(float(os.environ.get("GOFMM_STREAM_BUDGET_MB", 8)) * 2**20)


def gaussian_matrix(n: int, d: int = 3, bandwidth: float = 2.0, seed: int = 0) -> KernelMatrix:
    gen = np.random.default_rng(seed)
    points = gen.standard_normal((n, d))
    return KernelMatrix(
        points, GaussianKernel(bandwidth=bandwidth), regularization=1e-6, name=f"gaussian-{n}"
    )


def run_size(n: int, num_rhs: int, budget_bytes: int, workdir: Path) -> dict:
    high_water_bound = int(HIGH_WATER_BUDGET_MULTIPLE * budget_bytes + HIGH_WATER_SLACK_BYTES)
    config = GOFMMConfig(streaming_chunk_bytes=budget_bytes, **FINE)
    matrix = gaussian_matrix(n)

    t0 = time.perf_counter()
    operator = Session(matrix, config).compress()
    compress_seconds = time.perf_counter() - t0

    store_path = workdir / f"operator-{n}.store"
    t0 = time.perf_counter()
    operator.save(store_path)
    save_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    mmap_operator = CompressedOperator.open(store_path, resident="mmap")
    open_seconds = time.perf_counter() - t0
    report = mmap_operator.report()

    # -- bit-identity: mmap'd streamed traversal vs in-memory reference -----
    rng = np.random.default_rng(7)
    w_small = rng.standard_normal((n, min(num_rhs, 8)))
    reference = operator.apply(w_small, engine="reference")
    bit_identical = bool(np.array_equal(mmap_operator.apply(w_small), reference))

    # -- out-of-core matvec: mmap weights -> column panels -> mmap outputs --
    weights_path = workdir / f"weights-{n}.npy"
    out_path = workdir / f"out-{n}.npy"
    np.save(weights_path, rng.standard_normal((n, num_rhs)))
    plan = mmap_operator.compressed.streaming_plan()
    panel_cols = plan.default_panel_cols(num_rhs)

    tracemalloc.start()
    t0 = time.perf_counter()
    plan.execute(str(weights_path), out=str(out_path), panel_cols=panel_cols)
    panel_seconds = time.perf_counter() - t0
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # The panel path must agree bit-for-bit with the same panel schedule run
    # on in-memory arrays (GEMM accumulation differs across RHS widths, so
    # the comparison fixes the width; bit-identity is per matched schedule).
    weights = np.load(weights_path)
    expected = np.empty_like(weights)
    for start in range(0, num_rhs, panel_cols):
        stop = min(start + panel_cols, num_rhs)
        expected[:, start:stop] = operator.apply(weights[:, start:stop], engine="reference")
    panel_bit_identical = bool(np.array_equal(np.load(out_path), expected))

    store_bytes = int(report["bytes_on_disk"])
    weight_bytes = int(weights.nbytes)
    out_bytes = int(os.path.getsize(out_path))
    working_set = store_bytes + weight_bytes + out_bytes
    row = {
        "n": n,
        "num_rhs": num_rhs,
        "panel_cols": int(panel_cols),
        "compress_seconds": compress_seconds,
        "save_seconds": save_seconds,
        "open_seconds": open_seconds,
        "panel_matvec_seconds": panel_seconds,
        "store_bytes": store_bytes,
        "weight_bytes": weight_bytes,
        "out_bytes": out_bytes,
        "working_set_bytes": working_set,
        "working_set_over_budget": working_set / budget_bytes,
        "bytes_resident": int(report["bytes_resident"]),
        "traced_peak_bytes": int(traced_peak),
        "high_water_bound_bytes": high_water_bound,
        "bit_identical": bit_identical,
        "panel_bit_identical": panel_bit_identical,
        "spills": bool(plan.spills),
    }
    for path in (weights_path, out_path):
        path.unlink()
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (skips the >=4x extrapolation point)")
    parser.add_argument("--sizes", type=int, nargs="*", default=None)
    parser.add_argument("--rhs", type=int, default=None,
                        help="streamed right-hand sides (default 64 smoke / 512 full)")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "artifacts" / "out_of_core.json"
    )
    args = parser.parse_args()

    sizes = tuple(args.sizes) if args.sizes else (SMOKE_SIZES if args.smoke else DEFAULT_SIZES)
    num_rhs = args.rhs if args.rhs is not None else (64 if args.smoke else 512)
    budget_bytes = stream_budget_bytes()

    rows = []
    with tempfile.TemporaryDirectory(prefix="gofmm-ooc-") as tmp:
        for n in sizes:
            row = run_size(n, num_rhs, budget_bytes, Path(tmp))
            rows.append(row)
            status = "OK" if row["bit_identical"] and row["panel_bit_identical"] else "MISMATCH"
            print(
                f"n={n:>6}  store={row['store_bytes']/2**20:7.2f}MiB  "
                f"working_set={row['working_set_over_budget']:5.2f}x budget  "
                f"heap_peak={row['traced_peak_bytes']/2**20:6.2f}MiB "
                f"(bound {row['high_water_bound_bytes']/2**20:.2f}MiB)  {status}"
            )
            if not (row["bit_identical"] and row["panel_bit_identical"]):
                raise SystemExit(f"n={n}: mmap'd matvec is not bit-identical to reference")
            if row["traced_peak_bytes"] > row["high_water_bound_bytes"]:
                raise SystemExit(
                    f"n={n}: heap high-water {row['traced_peak_bytes']} exceeds the "
                    f"pinned bound {row['high_water_bound_bytes']}"
                )

    if not args.smoke and not any(r["working_set_over_budget"] >= 4.0 for r in rows):
        raise SystemExit(
            "no measured point reached a working set >= 4x the streaming budget; "
            "raise --rhs / --sizes or lower GOFMM_STREAM_BUDGET_MB"
        )

    artifact = {
        "benchmark": "out_of_core",
        "memory": memory_probe(),
        "stream_budget_bytes": budget_bytes,
        "high_water_budget_multiple": HIGH_WATER_BUDGET_MULTIPLE,
        "high_water_slack_bytes": HIGH_WATER_SLACK_BYTES,
        "smoke": bool(args.smoke),
        "results": rows,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
