"""Figure 1: dense GEMM vs GOFMM compression vs GOFMM evaluation scaling.

The paper's Figure 1 multiplies the K02 matrix (N×N) by an N×r matrix for
r ∈ {512, 1024, 2048} and shows

* O(N²) scaling for the dense GEMM,
* O(N log N) scaling for GOFMM compression,
* O(N) scaling for the GOFMM evaluation after compression,

with a crossover (including compression time) around N = 16 384 and an 18×
speed-up at N = 147 456 on their hardware.  At laptop scale we sweep smaller
N and smaller r but measure the same three curves and print the empirical
log-log slopes; the dense curve must steepen toward 2 while the evaluation
curve stays near 1.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.matrices import build_matrix
from repro.reporting import format_scaling, format_series, format_table

from .harness import once, problem_size, run_gofmm


def _sweep_sizes() -> list[int]:
    top = problem_size(2048)
    sizes = [top // 4, top // 2, top]
    return [max(256, s) for s in sizes]


def _config(n: int) -> GOFMMConfig:
    return GOFMMConfig(
        leaf_size=128, max_rank=128, tolerance=1e-5, neighbors=16,
        budget=0.1, distance="angle", seed=0,
    )


def _experiment(num_rhs: int) -> dict:
    sizes = _sweep_sizes()
    gemm_times, comp_times, eval_times, errors = [], [], [], []
    rng = np.random.default_rng(0)
    for n in sizes:
        matrix = build_matrix("K02", n, seed=0)
        dense = matrix.to_dense()
        w = rng.standard_normal((n, num_rhs))

        t0 = time.perf_counter()
        dense @ w
        gemm_times.append(time.perf_counter() - t0)

        result = run_gofmm(matrix, _config(n), num_rhs=num_rhs, name="K02")
        comp_times.append(result.compression_seconds)
        eval_times.append(result.evaluation_seconds)
        errors.append(result.epsilon2)
    return {
        "sizes": sizes,
        "gemm": gemm_times,
        "compress": comp_times,
        "evaluate": eval_times,
        "errors": errors,
    }


@pytest.mark.parametrize("num_rhs", [64, 128])
def bench_fig1_scaling(benchmark, num_rhs):
    data = once(benchmark, lambda: _experiment(num_rhs))
    sizes = data["sizes"]

    rows = [
        [n, g, c, e, c + e, g / max(e, 1e-12), err]
        for n, g, c, e, err in zip(sizes, data["gemm"], data["compress"], data["evaluate"], data["errors"])
    ]
    print()
    print(format_table(
        ["N", "GEMM [s]", "compress [s]", "eval [s]", "comp+eval [s]", "GEMM/eval speedup", "eps2"],
        rows,
        title=f"Figure 1 analogue (K02, r={num_rhs})",
    ))
    print(format_series("dense GEMM", sizes, data["gemm"]) + "   " + format_scaling(sizes, data["gemm"]))
    print(format_series("GOFMM compress", sizes, data["compress"]) + "   " + format_scaling(sizes, data["compress"]))
    print(format_series("GOFMM evaluate", sizes, data["evaluate"]) + "   " + format_scaling(sizes, data["evaluate"]))

    # Shape assertions.  At laptop sizes individual timings are noisy (the dense
    # GEMM in particular is at the mercy of BLAS threading), so the slopes are
    # compared with generous margins; the large-N trend is what matters.
    import math

    gemm_slope = math.log(data["gemm"][-1] / data["gemm"][0]) / math.log(sizes[-1] / sizes[0])
    eval_slope = math.log(max(data["evaluate"][-1], 1e-9) / max(data["evaluate"][0], 1e-9)) / math.log(sizes[-1] / sizes[0])
    assert eval_slope < gemm_slope + 0.75
    # The amortized (evaluation-only) speed-up must not collapse as N grows.
    speedups = [g / max(e, 1e-12) for g, e in zip(data["gemm"], data["evaluate"])]
    assert speedups[-1] >= speedups[0] * 0.5
    # Accuracy stays in the single-precision-like regime the paper quotes for Fig. 1.
    assert all(err < 5e-2 for err in data["errors"])
