"""Serving throughput: micro-batched requests vs sequential single-RHS evaluation.

conf_sc_YuLRB17's level-batched GEMM formulation pays off when the matvec
is fed wide right-hand-side blocks; a request stream of independent
vectors only reaches that regime through the micro-batcher of
:mod:`repro.serving`.  This benchmark measures exactly that gap:

* **sequential** — the same request vectors evaluated one at a time
  (``operator.apply(w)``, one single-RHS planned evaluation per request),
  the behaviour of a naive service loop,
* **served** — a :class:`MatvecServer` with ``max_batch``/``max_wait_ms``
  micro-batching, requests fired concurrently from client threads (an
  open-loop stream: every request is enqueued as fast as the clients can
  offer it).

and reports request throughput (req/s), latency percentiles (p50/p99),
and mean batch occupancy, writing everything to a JSON artifact.  A
sample of served responses is verified *bit-identical* to unbatched
serving (the canonical-GEMM-width guarantee) and close to direct
evaluation.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \
        [--n 8192] [--requests 256] [--max-batch 16] [--smoke] [--out PATH]

``--n`` can also be overridden with ``GOFMM_BENCH_N``; ``--smoke`` runs a
tiny configuration for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro import GOFMMConfig
from repro.api import Session
from repro.matrices import build_matrix
from repro.serving import BatchPolicy, MatvecServer

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import add_trace_argument, memory_probe, trace_section, tracing_from_args
except ImportError:
    from harness import add_trace_argument, memory_probe, trace_section, tracing_from_args


def fine_tree_config() -> GOFMMConfig:
    """The fine-tree regime (many small nodes) where level batching shines."""
    return GOFMMConfig(
        leaf_size=128, max_rank=64, tolerance=1e-5, neighbors=16,
        budget=0.03, distance="angle", seed=0,
    )


def percentiles_ms(latencies: list[float]) -> dict:
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "p50": float(np.percentile(arr, 50) * 1e3),
        "p90": float(np.percentile(arr, 90) * 1e3),
        "p99": float(np.percentile(arr, 99) * 1e3),
        "mean": float(arr.mean() * 1e3),
    }


def run_sequential(operator, vectors: np.ndarray) -> dict:
    latencies = []
    started = time.perf_counter()
    for vector in vectors:
        t0 = time.perf_counter()
        operator.apply(vector)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "requests_per_second": len(vectors) / elapsed,
        "latency_ms": percentiles_ms(latencies),
    }


def run_served(operator, vectors: np.ndarray, policy: BatchPolicy, concurrency: int) -> dict:
    server = MatvecServer(policy=policy)
    server.register("bench", operator)
    latencies = []
    with server:
        # warm-up batch (plan + pools hot on both sides before timing)
        server.matvec("bench", vectors[0])

        def fire(vector):
            t0 = time.perf_counter()
            out = server.submit("bench", vector).result(timeout=600)
            latencies.append(time.perf_counter() - t0)
            return out

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            responses = list(pool.map(fire, vectors))
        elapsed = time.perf_counter() - started
        stats = server.stats()["bench"]

        # bit-identity spot check: batched responses == unbatched serving
        rng = np.random.default_rng(1)
        for i in rng.choice(len(vectors), size=min(4, len(vectors)), replace=False):
            alone = server.matvec("bench", vectors[i])
            assert np.array_equal(responses[i], alone), "batched response is not bit-identical"
            direct = np.asarray(operator.apply(vectors[i]))
            assert np.allclose(responses[i], direct, atol=1e-9), "batched response inaccurate"
    return {
        "seconds": elapsed,
        "requests_per_second": len(vectors) / elapsed,
        "latency_ms": percentiles_ms(latencies),
        "batches": stats["batches"],
        "batch_occupancy": stats["batch_occupancy"],
        "rejected": stats["rejected"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--matrix", default="K02")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=4.0)
    parser.add_argument("--concurrency", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repeats; the best (highest-throughput) run is kept")
    parser.add_argument("--smoke", action="store_true", help="tiny CI configuration")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "artifacts" / "serving_throughput.json")
    add_trace_argument(parser)
    args = parser.parse_args()

    if args.smoke:
        n = 512
        requests = 64
    else:
        n = args.n if args.n is not None else int(os.environ.get("GOFMM_BENCH_N", 8192))
        requests = args.requests

    config = fine_tree_config()
    print(f"serving throughput benchmark: {args.matrix}, n={n}, {requests} requests, "
          f"max_batch={args.max_batch}, max_wait_ms={args.max_wait_ms}")
    matrix = build_matrix(args.matrix, n, seed=0)
    with tracing_from_args(args) as tracer:
        t0 = time.perf_counter()
        operator = Session(matrix, config, tracer=tracer).compress()
        operator.compressed.plan()
        print(f"compressed in {time.perf_counter() - t0:.1f}s "
              f"(engine={operator.default_engine()}, eps2={operator.relative_error():.2e})")

        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((requests, n))
        repeats = max(1, args.repeats if not args.smoke else 1)

        # Timings on shared boxes are noisy (thread scheduling dominates the
        # spread): measure each side `repeats` times and keep the best run,
        # matching the other benchmark harnesses in this repo.
        sequential = max(
            (run_sequential(operator, vectors) for _ in range(repeats)),
            key=lambda r: r["requests_per_second"],
        )
        print(f"sequential: {sequential['requests_per_second']:.1f} req/s "
              f"(p50 {sequential['latency_ms']['p50']:.2f} ms, "
              f"p99 {sequential['latency_ms']['p99']:.2f} ms)")

        policy = BatchPolicy(
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            max_queue=max(4 * requests, 256),
        )
        served = max(
            (run_served(operator, vectors, policy, args.concurrency) for _ in range(repeats)),
            key=lambda r: r["requests_per_second"],
        )
    speedup = served["requests_per_second"] / sequential["requests_per_second"]
    print(f"served:     {served['requests_per_second']:.1f} req/s "
          f"(p50 {served['latency_ms']['p50']:.2f} ms, "
          f"p99 {served['latency_ms']['p99']:.2f} ms, "
          f"occupancy {served['batch_occupancy']:.1f})")
    print(f"throughput speedup: {speedup:.2f}x (batched responses bit-identical to unbatched)")

    artifact = {
        "benchmark": "serving_throughput",
        "memory": memory_probe(),
        "matrix": args.matrix,
        "n": n,
        "requests": requests,
        "concurrency": args.concurrency,
        "repeats": repeats,
        "policy": {
            "max_batch": policy.max_batch,
            "max_wait_ms": policy.max_wait_ms,
            "max_queue": policy.max_queue,
            "pad_to_full_width": policy.pad_to_full_width,
        },
        "config": config.describe(),
        "sequential": sequential,
        "served": served,
        "throughput_speedup": speedup,
        "smoke": bool(args.smoke),
    }
    trace = trace_section(tracer, args)
    if trace is not None:
        artifact["trace"] = trace
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.smoke and speedup < 3.0:
        raise SystemExit(f"FAILED: serving speedup {speedup:.2f}x below the 3x acceptance bar")


if __name__ == "__main__":
    main()
