"""Figure 5: ε2 across the whole matrix testbed with the angle distance.

The paper's experiment #5 compresses all 22 matrices (K02–K18, G01–G05)
with m = s = 512 and two tolerances (1e-2 with 1% budget, 1e-5 with 3%
budget), and reports which matrices compress: most do, K06/K15–K17 do not
(high off-diagonal rank), K13/K14 need a tighter tolerance, G01–G03 need a
smaller leaf size.

At laptop scale we run every registry matrix (plus the ML kernel matrices)
at N = ``GOFMM_BENCH_N`` with proportionally smaller m and s, for a loose
and a tight tolerance, and print the ε2 table.  The assertion encodes the
qualitative split between "compresses" and "does not compress at this rank".
"""

from __future__ import annotations

import pytest

from repro import GOFMMConfig
from repro.api import Session
from repro.matrices import available_matrices, build_matrix, matrix_info
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm_session


def _config(tolerance: float, budget: float, rank: int) -> GOFMMConfig:
    return GOFMMConfig(
        leaf_size=64, max_rank=rank, tolerance=tolerance, neighbors=16,
        budget=budget, distance="angle", seed=0,
    )


def _sweep() -> list[dict]:
    n = problem_size(1024)
    rows = []
    for name in available_matrices():
        # One session per matrix: the tight pass reuses the loose pass's
        # partition and ANN table (only tolerance / budget / rank change).
        session = Session(build_matrix(name, n, seed=0), _config(1e-2, 0.05, 64))
        loose = run_gofmm_session(session, num_rhs=16, name=name)
        tight = run_gofmm_session(
            session, dict(tolerance=1e-5, budget=0.15, max_rank=128), num_rhs=16, name=name
        )
        rows.append({
            "name": name,
            "compresses_well": matrix_info(name).compresses_well,
            "loose": loose,
            "tight": tight,
        })
    return rows


def bench_fig5_accuracy_all_matrices(benchmark):
    rows = once(benchmark, _sweep)

    table = [
        [
            r["name"],
            "yes" if r["compresses_well"] else "no",
            r["loose"].epsilon2,
            r["tight"].epsilon2,
            r["tight"].average_rank,
            r["tight"].compression_seconds,
            r["tight"].evaluation_seconds,
        ]
        for r in rows
    ]
    print()
    print(format_table(
        ["matrix", "expected to compress", "eps2 (tau 1e-2)", "eps2 (tau 1e-5)", "avg rank", "comp [s]", "eval [s]"],
        table,
        title=f"Figure 5 analogue: accuracy across the testbed (N={problem_size(1024)}, angle distance)",
    ))

    compressible = [r for r in rows if r["compresses_well"]]
    hard = [r for r in rows if not r["compresses_well"]]

    # Most matrices the paper reports as compressible reach a usefully small
    # error at the tight tolerance (the paper uses s = 512; at this scaled-down
    # rank a few borderline members of the family land just above the cut).
    good = [r for r in compressible if r["tight"].epsilon2 < 5e-2]
    assert len(good) >= 0.75 * len(compressible), (
        f"only {len(good)}/{len(compressible)} 'compressible' matrices reached eps2 < 5e-2"
    )
    # ...and the hard family (K06, K15–K17) is clearly worse than the median
    # compressible matrix, mirroring the red labels in Figure 5.
    if hard:
        median_good = sorted(r["tight"].epsilon2 for r in compressible)[len(compressible) // 2]
        assert min(r["tight"].epsilon2 for r in hard) > median_good
