"""Shared helpers for the benchmark harness.

Every table and figure of the paper's §4 has one module in this directory;
each prints the rows/series of the corresponding paper item (so the output
can be pasted into EXPERIMENTS.md) and registers the heavy step with
pytest-benchmark so ``pytest benchmarks/ --benchmark-only`` produces timing
statistics.

Problem sizes default to laptop scale and can be raised with the
``GOFMM_BENCH_N`` environment variable (e.g. ``GOFMM_BENCH_N=8192``).  The
paper's absolute numbers were measured on HPC nodes; what these harnesses
reproduce is the *shape* of each result (who wins, scaling slopes,
crossovers), as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import contextlib
import os
import time
import tracemalloc
from dataclasses import dataclass

import numpy as np

from repro import GOFMMConfig, compress
from repro.api import Session
from repro.core.accuracy import relative_error
from repro.matrices import build_matrix

__all__ = [
    "problem_size",
    "sweep_scale",
    "GOFMMRun",
    "run_gofmm",
    "run_gofmm_session",
    "once",
    "traced_peak_bytes",
    "memory_probe",
    "add_trace_argument",
    "tracing_from_args",
    "trace_section",
]


def add_trace_argument(parser) -> None:
    """Register the shared ``--trace`` flag on a bench CLI parser.

    ``--trace`` alone enables span tracing for the run and attaches the
    trace summary (:func:`repro.obs.summary`) to the JSON artifact under
    ``"trace"``; ``--trace PATH`` additionally writes the Chrome
    trace-event JSON to ``PATH`` (open it in Perfetto / chrome://tracing).
    """
    parser.add_argument(
        "--trace",
        metavar="PATH",
        nargs="?",
        const="",
        default=None,
        help="enable span tracing; with PATH also write the Chrome trace JSON there",
    )


@contextlib.contextmanager
def tracing_from_args(args):
    """Active :class:`~repro.obs.Tracer` while the block runs, or ``None``.

    Resets the pipeline counters at entry so the artifact's trace section
    reflects this run alone.
    """
    if getattr(args, "trace", None) is None:
        yield None
        return
    from repro.obs import counters as obs_counters
    from repro.obs.trace import Tracer, tracing

    obs_counters.reset()
    tracer = Tracer()
    with tracing(tracer):
        yield tracer


def trace_section(tracer, args) -> dict | None:
    """The artifact ``"trace"`` section for a traced run (``None`` untraced).

    Writes the Chrome trace file too when ``--trace PATH`` named one.
    """
    if tracer is None:
        return None
    from repro.obs.export import summary, write_chrome_trace

    if getattr(args, "trace", ""):
        write_chrome_trace(tracer, args.trace)
        print(f"wrote Chrome trace to {args.trace}")
    return summary(tracer)


def traced_peak_bytes(fn) -> int:
    """tracemalloc high-water mark of one untimed call.

    One shared implementation so the memory columns of every matvec
    artifact (``matvec_throughput.json``, ``streaming_matvec.json``) stay
    directly comparable.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def memory_probe(fn=None) -> dict:
    """Process high-water memory for a bench artifact's ``memory`` section.

    Returns ``{"ru_maxrss_kb": ...}`` — the process-lifetime peak RSS from
    ``getrusage`` (kilobytes on Linux; monotone, so it reflects the largest
    phase run so far, not just ``fn``) — plus ``{"traced_peak_bytes": ...}``
    when a callable is given (the tracemalloc high-water of that one call;
    Python-heap allocations only, so mmap'd pages are *not* counted — which
    is exactly why it is the honest out-of-core residency measure).
    Every benchmark writes this dict into its JSON artifact so memory
    regressions are visible run over run.
    """
    out: dict = {}
    if fn is not None:
        out["traced_peak_bytes"] = traced_peak_bytes(fn)
    try:
        import resource

        out["ru_maxrss_kb"] = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - resource is POSIX-only
        out["ru_maxrss_kb"] = 0
    return out


def problem_size(default: int = 1024) -> int:
    """Problem size used by the benchmarks (override with GOFMM_BENCH_N)."""
    return int(os.environ.get("GOFMM_BENCH_N", default))


def sweep_scale() -> float:
    """Multiplier applied to sweep extents (override with GOFMM_BENCH_SCALE)."""
    return float(os.environ.get("GOFMM_BENCH_SCALE", 1.0))


@dataclass
class GOFMMRun:
    """One compress + evaluate measurement (a row of the paper's tables)."""

    name: str
    n: int
    config: GOFMMConfig
    epsilon2: float
    compression_seconds: float
    evaluation_seconds: float
    average_rank: float
    entry_evaluations: int
    num_rhs: int

    @property
    def eval_gflops(self) -> float:
        return 0.0 if self.evaluation_seconds <= 0 else self.flops / self.evaluation_seconds / 1e9

    flops: float = 0.0


def _measure(compressed, matrix, config, comp_seconds, start_entries, num_rhs, name, rng, engine) -> GOFMMRun:
    """Shared evaluate + ε2 measurement behind the run_* helpers."""
    engine = engine or compressed.default_engine()
    if engine == "planned":
        compressed.plan()

    # Evaluation is fast relative to compression, so take the best of a few
    # repetitions — single measurements at millisecond scale are dominated by
    # BLAS thread scheduling noise.
    w = rng.standard_normal((matrix.n, num_rhs))
    eval_seconds = float("inf")
    for _ in range(3):
        t1 = time.perf_counter()
        compressed.matvec(w, engine=engine)
        eval_seconds = min(eval_seconds, time.perf_counter() - t1)

    eps2 = relative_error(compressed, matrix, num_rhs=min(num_rhs, 10), num_sample_rows=100, rng=rng, engine=engine)
    return GOFMMRun(
        name=name or getattr(matrix, "name", "matrix"),
        n=matrix.n,
        config=config,
        epsilon2=eps2,
        compression_seconds=comp_seconds,
        evaluation_seconds=eval_seconds,
        average_rank=compressed.rank_summary()["mean"],
        entry_evaluations=matrix.entry_evaluations - start_entries,
        num_rhs=num_rhs,
        flops=compressed.evaluation_flops(num_rhs),
    )


def run_gofmm(matrix, config: GOFMMConfig, num_rhs: int = 64, name: str = "", rng=None, engine: str | None = None) -> GOFMMRun:
    """Compress, evaluate, and measure — the unit of work behind most harnesses.

    ``engine`` selects the matvec engine (``"planned"`` / ``"reference"``);
    for the planned engine the one-time plan construction happens before the
    timed repetitions, matching how repeated matvecs amortize it in practice.
    """
    rng = rng or np.random.default_rng(0)
    start_entries = matrix.entry_evaluations

    t0 = time.perf_counter()
    compressed = compress(matrix, config)
    comp_seconds = time.perf_counter() - t0
    return _measure(compressed, matrix, config, comp_seconds, start_entries, num_rhs, name, rng, engine)


def run_gofmm_session(
    session: Session,
    overrides: dict | None = None,
    num_rhs: int = 64,
    name: str = "",
    rng=None,
    engine: str | None = None,
) -> GOFMMRun:
    """One sweep point through a staged session (warm where artifacts allow).

    ``overrides`` are applied via :meth:`Session.recompress`, so only the
    stages the changed fields invalidate are rebuilt; ``compression_seconds``
    therefore measures the *incremental* cost of this sweep point.
    """
    rng = rng or np.random.default_rng(0)
    matrix = session.matrix
    start_entries = matrix.entry_evaluations

    t0 = time.perf_counter()
    operator = session.recompress(**(overrides or {}))
    comp_seconds = time.perf_counter() - t0
    return _measure(
        operator.compressed, matrix, session.config, comp_seconds, start_entries, num_rhs, name, rng, engine
    )


def once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark but execute it exactly once.

    The experiment functions are themselves long-running sweeps; statistical
    repetition would multiply the harness cost for no benefit.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
