"""Table 5: accuracy, wall-clock time and GFLOPS on four architectures.

Experiments #27–#46 run GOFMM on ARM, Haswell, Haswell+P100 and KNL for a
range of workloads (MNIST/COVTYPE/HIGGS kernel matrices, K02, K15, G03,
G04) and report compression/evaluation time and achieved GFLOPS.  The
paper's takeaways:

* efficiency tracks the quality of the underlying BLAS and the *size of the
  per-task GEMMs*: large leaf sizes / budgets reach a high fraction of peak,
  small average ranks do not,
* the GPU helps most when L2L (direct evaluation) dominates; small-rank
  tasks stay on the CPU,
* even a quad-core ARM can run the compressed matvec, just slowly.

Hardware is unavailable here, so the harness measures the *real* Python
compression once per workload (for ε2 and the DAG), then replays the
evaluation DAG on the four analytic machine models with the HEFT scheduler
and reports the simulated time / GFLOPS / fraction-of-peak — the quantities
of Table 5.
"""

from __future__ import annotations

import pytest

from repro import GOFMMConfig, compress
from repro.core.accuracy import relative_error
from repro.matrices import build_matrix
from repro.reporting import format_table
from repro.runtime import CostModel, HEFTScheduler, arm_4, build_evaluation_dag, haswell_24, haswell_p100, knl_68

from .harness import once, problem_size

# workload name -> (matrix, budget, rank, num_rhs)
WORKLOADS = {
    "mnist-h1": ("mnist", 0.05, 32, 64),
    "covtype-h0.1": ("covtype", 0.12, 64, 128),
    "higgs-h0.9": ("higgs", 0.05, 48, 128),
    "K02": ("K02", 0.03, 64, 128),
    "K15": ("K15", 0.10, 64, 128),
    "G03": ("G03", 0.03, 64, 128),
    "G04": ("G04", 0.03, 64, 128),
}

MACHINES = [arm_4, haswell_24, haswell_p100, knl_68]


def _experiment(workload: str):
    matrix_name, budget, rank, num_rhs = WORKLOADS[workload]
    n = problem_size(1024)
    matrix = build_matrix(matrix_name, n, seed=0)
    config = GOFMMConfig(
        leaf_size=64, max_rank=rank, tolerance=1e-5, neighbors=16,
        budget=max(budget, 2.0 * 64 / n), distance="angle", seed=0,
    )
    compressed = compress(matrix, config)
    eps2 = relative_error(compressed, matrix, num_rhs=8)
    cost = CostModel(
        leaf_size=config.leaf_size,
        rank=max(1, int(compressed.rank_summary()["mean"])),
        num_rhs=num_rhs,
        point_dim=matrix.coordinates.shape[1] if matrix.coordinates is not None else 0,
    )
    dag = build_evaluation_dag(compressed.tree, cost)
    scheduler = HEFTScheduler()
    rows = []
    machines = [factory() for factory in MACHINES]
    # Also schedule on the Piz Daint node's CPU part alone, so the GPU benefit
    # can be isolated from the host-core-count difference (12 vs 24 cores).
    machines.append(haswell_p100().with_workers(12))
    for machine in machines:
        result = scheduler.schedule(dag, machine)
        rows.append({
            "machine": machine.name,
            "eps2": eps2,
            "eval_seconds": result.makespan,
            "gflops": result.gflops,
            "fraction_of_peak": result.efficiency_vs_peak(machine),
        })
    return rows


@pytest.mark.parametrize("workload", list(WORKLOADS))
def bench_table5_architectures(benchmark, workload):
    rows = once(benchmark, lambda: _experiment(workload))

    print()
    print(format_table(
        ["machine", "eps2", "simulated eval [s]", "GFLOPS", "fraction of peak"],
        [[r["machine"], r["eps2"], r["eval_seconds"], r["gflops"], r["fraction_of_peak"]] for r in rows],
        title=f"Table 5 analogue: {workload} (N={problem_size(1024)})",
    ))

    by_machine = {r["machine"]: r for r in rows}
    # ARM is always the slowest absolute time.
    assert by_machine["arm"]["eval_seconds"] >= by_machine["haswell"]["eval_seconds"]
    # Adding the GPU never hurts relative to the same node's 12-core host alone
    # (comparing against the 24-core Lonestar node would conflate host size with
    # accelerator benefit — the paper's Table 5 compares per-node, as we do here).
    assert by_machine["haswell+p100"]["eval_seconds"] <= by_machine["haswell+p100-12w"]["eval_seconds"] * 1.05
    # KNL has the highest peak, so its *fraction* of peak is the lowest among the CPUs —
    # the paper's recurring observation about small GEMMs on KNL.
    assert by_machine["knl"]["fraction_of_peak"] <= by_machine["haswell"]["fraction_of_peak"]
