"""Session reuse: cold one-shot compression vs warm staged recompression.

The staged session API caches the pipeline artifacts that do not depend on
``tolerance`` / ``budget`` / ``max_rank`` — the ball-tree partition and the
ANN table, which dominate compression cost at large n.  This benchmark runs
the same budget sweep twice:

* **cold** — every sweep point pays the full pipeline (the pre-session
  behaviour of ``benchmarks/bench_ablation_budget.py``),
* **warm** — one :class:`repro.api.Session`; the first point builds
  everything, later points rebuild only the interaction lists onward.

and writes a JSON artifact with per-point costs, the stage breakdown, and
the cold/warm speedups.  The headline number is ``per_point_speedup``:
(total cold sweep time) / (total warm sweep time), i.e. the factor by which
the session cuts the cost of one ablation sweep point, *including* the
warm sweep's one-time cold build.

Run directly::

    PYTHONPATH=src python benchmarks/bench_session_reuse.py \
        [--n 8192] [--budgets 0.0 0.05 0.1] [--matrix K02] [--out PATH]

``--n`` can also be overridden with ``GOFMM_BENCH_N``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import GOFMMConfig
from repro.api import Session
from repro.core.compress import compress as monolithic_compress
from repro.matrices import build_matrix

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import memory_probe
except ImportError:
    from harness import memory_probe

DEFAULT_BUDGETS = (0.0, 0.05, 0.1)


def sweep_config(budget: float) -> GOFMMConfig:
    return GOFMMConfig(
        leaf_size=128, max_rank=64, tolerance=1e-5, neighbors=16,
        budget=budget, distance="angle", seed=0,
    )


def cold_sweep(matrix_name: str, n: int, budgets: list[float]) -> list[dict]:
    points = []
    for budget in budgets:
        matrix = build_matrix(matrix_name, n, seed=0)
        t0 = time.perf_counter()
        _, report = monolithic_compress(matrix, sweep_config(budget), return_report=True)
        seconds = time.perf_counter() - t0
        points.append({
            "budget": budget,
            "seconds": seconds,
            "phase_seconds": dict(report.phase_seconds),
            "entry_evaluations": report.entry_evaluations,
        })
    return points


def warm_sweep(matrix_name: str, n: int, budgets: list[float]) -> list[dict]:
    matrix = build_matrix(matrix_name, n, seed=0)
    session = Session(matrix, sweep_config(budgets[0]))
    points = []
    for budget in budgets:
        start_entries = matrix.entry_evaluations
        t0 = time.perf_counter()
        operator = session.recompress(budget=budget)
        seconds = time.perf_counter() - t0
        points.append({
            "budget": budget,
            "seconds": seconds,
            "phase_seconds": dict(operator.report.phase_seconds),
            "reused_phases": list(operator.report.reused_phases),
            "entry_evaluations": matrix.entry_evaluations - start_entries,
        })
    return points


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--budgets", type=float, nargs="+", default=list(DEFAULT_BUDGETS))
    parser.add_argument("--matrix", default="K02")
    parser.add_argument("--out", type=Path, default=Path(__file__).parent / "artifacts" / "session_reuse.json")
    args = parser.parse_args()

    n = args.n if args.n is not None else int(os.environ.get("GOFMM_BENCH_N", 8192))
    budgets = list(args.budgets)

    print(f"session reuse benchmark: {args.matrix}, n={n}, budgets={budgets}")
    cold = cold_sweep(args.matrix, n, budgets)
    warm = warm_sweep(args.matrix, n, budgets)

    cold_total = sum(p["seconds"] for p in cold)
    warm_total = sum(p["seconds"] for p in warm)
    # Per-point speedup over the whole sweep (the warm side includes its one
    # cold build); warm_point_speedup isolates a steady-state warm point.
    per_point_speedup = cold_total / warm_total if warm_total > 0 else float("inf")
    cold_steady = cold[-1]["seconds"]
    warm_steady = warm[-1]["seconds"]
    warm_point_speedup = cold_steady / warm_steady if warm_steady > 0 else float("inf")

    print(f"{'budget':>8} {'cold [s]':>10} {'warm [s]':>10} {'speedup':>9}   reused (warm)")
    for c, w in zip(cold, warm):
        point_speedup = c["seconds"] / w["seconds"] if w["seconds"] > 0 else float("inf")
        reused = ",".join(w["reused_phases"]) or "-"
        print(f"{c['budget']:>8.2f} {c['seconds']:>10.3f} {w['seconds']:>10.3f} {point_speedup:>8.1f}x   {reused}")
    print(f"sweep totals: cold {cold_total:.3f}s, warm {warm_total:.3f}s "
          f"→ per-point speedup {per_point_speedup:.1f}x (steady-state point: {warm_point_speedup:.1f}x)")

    artifact = {
        "benchmark": "session_reuse",
        "memory": memory_probe(),
        "matrix": args.matrix,
        "n": n,
        "budgets": budgets,
        "cold": cold,
        "warm": warm,
        "cold_total_seconds": cold_total,
        "warm_total_seconds": warm_total,
        "per_point_speedup": per_point_speedup,
        "warm_point_speedup": warm_point_speedup,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
