"""Matvec throughput: reference (per-node) vs planned (level-batched GEMM) engine.

For each problem size this compresses a Gaussian-kernel matrix once per
tree configuration, then times repeated matvecs under both engines
(sequential, plus the threaded executor) and reports the speedup and the
effective GFLOPS (Table 2 FLOP model / wall time).  Results are written as
a JSON artifact so future PRs can track the performance trajectory.

Two tree granularities are measured:

* ``coarse`` — paper-style leaves (m=128, adaptive rank ≤ 64): per-node
  GEMMs are already BLAS-sized, so both engines run near the BLAS floor
  and the packed engine wins modestly,
* ``fine`` — small leaves (m=32, fixed rank 16): thousands of tiny tasks,
  the regime where the reference engine drowns in interpreter/dict
  overhead and the packed engine's batching pays off the most.

Run directly::

    PYTHONPATH=src python benchmarks/bench_matvec_throughput.py \
        [--sizes 2048 8192 32768] [--rhs 16] [--repeats 5] [--out PATH]

Sizes can also be overridden with ``GOFMM_BENCH_SIZES="2048,8192"``.  The
default sweep (n up to 32768) takes several minutes, dominated by
compression, not by the matvecs being measured.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import time
from pathlib import Path

import numpy as np

from repro import GOFMMConfig, compress
from repro.matrices import KernelMatrix
from repro.matrices.kernels import GaussianKernel
from repro.runtime import parallel_evaluate

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import add_trace_argument, memory_probe, trace_section, traced_peak_bytes, tracing_from_args
except ImportError:
    from harness import add_trace_argument, memory_probe, trace_section, traced_peak_bytes, tracing_from_args

DEFAULT_SIZES = (2048, 8192, 32768)

CONFIGS = {
    "coarse": dict(leaf_size=128, max_rank=64, adaptive_rank=True),
    "fine": dict(leaf_size=32, max_rank=16, adaptive_rank=False),
}


def gaussian_matrix(n: int, d: int = 3, bandwidth: float = 2.0, seed: int = 0) -> KernelMatrix:
    """Clustered Gaussian kernel matrix (same construction as the test suite, at scale)."""
    gen = np.random.default_rng(seed)
    centers = gen.standard_normal((8, d)) * 3.0
    points = np.vstack([c + gen.standard_normal((n // 8 + 1, d)) for c in centers])[:n]
    return KernelMatrix(points, GaussianKernel(bandwidth=bandwidth), regularization=1e-6, name=f"gaussian-{n}")


def best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_one(n: int, tree: str, num_rhs: int, repeats: int, seed: int = 0, workers: int = 4) -> dict:
    matrix = gaussian_matrix(n, seed=seed)
    config = GOFMMConfig(
        tolerance=1e-5,
        neighbors=16,
        budget=0.03,
        num_neighbor_trees=4,
        seed=seed,
        **CONFIGS[tree],
    )
    t0 = time.perf_counter()
    compressed = compress(matrix, config)
    comp_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    compressed.plan()
    plan_seconds = time.perf_counter() - t0

    w = np.random.default_rng(seed).standard_normal((n, num_rhs))
    # warm-up + correctness guard: the engines must agree before being timed
    reference_out = compressed.matvec(w, engine="reference")
    planned_out = compressed.matvec(w, engine="planned")
    max_diff = float(np.max(np.abs(reference_out - planned_out)))
    if max_diff > 1e-8:
        raise RuntimeError(f"engine mismatch at n={n}: max diff {max_diff:.3e}")

    reference_seconds = best_of(repeats, lambda: compressed.matvec(w, engine="reference"))
    planned_seconds = best_of(repeats, lambda: compressed.matvec(w, engine="planned"))
    parallel_seconds = best_of(
        repeats, lambda: parallel_evaluate(compressed, w, num_workers=workers, engine="planned")
    )
    reference_peak = traced_peak_bytes(lambda: compressed.matvec(w, engine="reference"))
    planned_peak = traced_peak_bytes(lambda: compressed.matvec(w, engine="planned"))
    flops = compressed.evaluation_flops(num_rhs)

    row = {
        "n": n,
        "tree": tree,
        "config": dict(CONFIGS[tree]),
        "num_rhs": num_rhs,
        "compression_seconds": comp_seconds,
        "plan_build_seconds": plan_seconds,
        "reference_seconds": reference_seconds,
        "planned_seconds": planned_seconds,
        "planned_parallel_seconds": parallel_seconds,
        "parallel_workers": workers,
        "speedup": reference_seconds / planned_seconds if planned_seconds > 0 else float("inf"),
        "reference_gflops": flops / reference_seconds / 1e9 if reference_seconds > 0 else 0.0,
        "planned_gflops": flops / planned_seconds / 1e9 if planned_seconds > 0 else 0.0,
        "epsilon2": float(compressed.relative_error(num_rhs=4, num_sample_rows=50)),
        "max_engine_diff": max_diff,
        # evaluation-phase memory high-water marks (tracemalloc) + process RSS
        "reference_peak_bytes": reference_peak,
        "planned_peak_bytes": planned_peak,
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "plan": compressed.plan_report(),
    }
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--rhs", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=Path, default=Path(__file__).parent / "artifacts" / "matvec_throughput.json")
    add_trace_argument(parser)
    args = parser.parse_args()

    sizes = args.sizes
    if sizes is None:
        env = os.environ.get("GOFMM_BENCH_SIZES")
        sizes = [int(s) for s in env.split(",")] if env else list(DEFAULT_SIZES)

    rows = []
    print(
        f"{'n':>8} {'tree':>7} {'ref (s)':>10} {'planned (s)':>12} {'par (s)':>9} "
        f"{'speedup':>8} {'planned GF/s':>13} {'eps2':>9}"
    )
    with tracing_from_args(args) as tracer:
        for n in sizes:
            for tree in CONFIGS:
                row = bench_one(n, tree, args.rhs, args.repeats)
                rows.append(row)
                print(
                    f"{row['n']:>8} {row['tree']:>7} {row['reference_seconds']:>10.4f} "
                    f"{row['planned_seconds']:>12.4f} {row['planned_parallel_seconds']:>9.4f} "
                    f"{row['speedup']:>7.1f}x {row['planned_gflops']:>13.2f} {row['epsilon2']:>9.1e}"
                )

    artifact = {
        "benchmark": "matvec_throughput",
        "memory": memory_probe(),
        "num_rhs": args.rhs,
        "repeats": args.repeats,
        "results": rows,
    }
    trace = trace_section(tracer, args)
    if trace is not None:
        artifact["trace"] = trace
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
