"""Ablation: number of neighbors κ (DESIGN.md ablation #3).

κ feeds two mechanisms: the neighbor-based importance sampling of the
skeletonization rows, and the voting that builds the Near lists.  More
neighbors give better sampling (better low-rank quality) and a denser near
field, at higher search cost.

The sweep runs under the neighbor backend named by ``GOFMM_BENCH_NEIGHBOR_BACKEND``
(default ``"blocked"``); every registered backend produces bit-identical
tables, which the smallest-κ point cross-checks against the ``"reference"``
oracle before any numbers are reported.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.core.distances import make_distance
from repro.core.neighbor_backends import available_neighbor_backends
from repro.core.neighbors import all_nearest_neighbors
from repro.matrices import build_matrix
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm

KAPPAS = [2, 8, 32]


def _bench_backend() -> str:
    backend = os.environ.get("GOFMM_BENCH_NEIGHBOR_BACKEND", "blocked")
    if backend not in available_neighbor_backends():
        raise ValueError(
            f"GOFMM_BENCH_NEIGHBOR_BACKEND={backend!r} is not registered; "
            f"known: {', '.join(available_neighbor_backends())}"
        )
    return backend


def _experiment(matrix_name: str):
    n = problem_size(1024)
    backend = _bench_backend()
    runs = []
    for kappa in KAPPAS:
        matrix = build_matrix(matrix_name, n, seed=0)
        config = GOFMMConfig(
            leaf_size=64, max_rank=48, tolerance=1e-8, neighbors=kappa,
            budget=0.1, distance="angle", seed=0,
            neighbor_backend=backend,
            neighbor_workers=int(os.environ.get("GOFMM_BENCH_WORKERS", "1")),
        )
        if kappa == KAPPAS[0]:
            # Parity gate: the configured backend must reproduce the
            # reference oracle's table bit for bit on this problem.
            distance = make_distance(matrix, config.distance)
            ref = all_nearest_neighbors(distance, config, backend="reference")
            got = all_nearest_neighbors(distance, config, backend=backend)
            assert np.array_equal(ref.indices, got.indices)
            assert np.array_equal(ref.distances, got.distances)
        runs.append(run_gofmm(matrix, config, num_rhs=32, name=f"kappa={kappa}"))
    return runs


@pytest.mark.parametrize("matrix_name", ["covtype", "K04"])
def bench_ablation_neighbors(benchmark, matrix_name):
    runs = once(benchmark, lambda: _experiment(matrix_name))

    print()
    print(format_table(
        ["kappa", "eps2", "avg rank", "comp [s]", "entry evals"],
        [[k, r.epsilon2, r.average_rank, r.compression_seconds, r.entry_evaluations] for k, r in zip(KAPPAS, runs)],
        title=f"Neighbor-count ablation: {matrix_name} (N={problem_size(1024)})",
    ))

    # More neighbors never make the accuracy dramatically worse, and the
    # largest kappa should be at least as accurate as the smallest.
    assert runs[-1].epsilon2 <= runs[0].epsilon2 * 2.0 + 1e-12
    # Entry-evaluation cost does not shrink with kappa (bigger ANN search + near
    # field); a small tolerance absorbs run-to-run variation in the iterative
    # neighbor search, which may converge in fewer passes when lists are larger.
    assert runs[-1].entry_evaluations >= 0.85 * runs[0].entry_evaluations
