"""Figure 4: strong scaling of the three scheduling schemes on Haswell and KNL.

The paper runs compression and evaluation with (a) the HEFT-based dynamic
runtime ("wall-clock"), (b) level-by-level traversals and (c) omp-task, on
1–24 Haswell cores and 1–68 KNL cores, for two workloads:

* #1/#2: a COVTYPE Gaussian kernel matrix, 12% budget, average rank 487 —
  compute bound, scales to high core counts,
* #3/#4: K02 with 3% budget, average rank 35 — memory/latency bound, stops
  scaling (and even slows down) because the critical path dominates.

We reproduce the study with the scheduler simulation: the DAGs come from a
real compression of the two workloads, the per-task costs from the Table 2
model, and the machines from the analytic Haswell/KNL models.  The printed
table carries, per core count, the makespans of the three schedulers; the
assertions pin the qualitative claims (dynamic ≤ level-by-level everywhere;
the small-rank workload saturates well below the full machine).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import GOFMMConfig, compress
from repro.matrices import build_matrix
from repro.reporting import format_table
from repro.runtime import CostModel, build_compression_dag, build_evaluation_dag, haswell_24, knl_68, simulate_all_schedulers

from .harness import once, problem_size


WORKLOADS = {
    # name: (matrix, budget, rank) — mirrors experiments #1/#2 vs #3/#4.
    "covtype-12%": ("covtype", 0.12, 96),
    "K02-3%": ("K02", 0.03, 32),
}


def _build_dags(workload: str):
    matrix_name, budget, rank = WORKLOADS[workload]
    n = problem_size(2048)
    matrix = build_matrix(matrix_name, n, seed=0)
    # The real compression feeding the DAGs honors the backend/worker
    # environment knobs, so the simulated scaling study can itself be run
    # under any registered neighbor backend or a process-sharded build
    # (results are worker-count deterministic, so the DAGs don't change).
    workers = int(os.environ.get("GOFMM_BENCH_WORKERS", "1"))
    config = GOFMMConfig(
        leaf_size=128, max_rank=rank, tolerance=1e-5, neighbors=16,
        budget=max(budget, 4.0 * 128 / n), distance="angle", seed=0,
        neighbor_backend=os.environ.get("GOFMM_BENCH_NEIGHBOR_BACKEND", "blocked"),
        neighbor_workers=workers,
        compression_backend="sharded" if workers > 1 else "batched",
        compression_workers=workers,
    )
    compressed = compress(matrix, config)
    avg_rank = max(1, int(compressed.rank_summary()["mean"]))
    cost = CostModel(leaf_size=config.leaf_size, rank=avg_rank, num_rhs=512)
    return {
        "evaluation": build_evaluation_dag(compressed.tree, cost),
        "compression": build_compression_dag(compressed.tree, cost),
    }


def _scaling_experiment(workload: str, machine_factory, core_counts):
    dags = _build_dags(workload)
    rows = []
    series = {}
    for phase, dag in dags.items():
        for cores in core_counts:
            machine = machine_factory().with_workers(cores)
            results = simulate_all_schedulers(dag, machine)
            rows.append([
                phase,
                cores,
                results["heft"].makespan,
                results["level-by-level"].makespan,
                results["omp-task"].makespan,
                results["heft"].utilization,
            ])
            series.setdefault(phase, {})[cores] = results
    return rows, series


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("machine_name", ["haswell", "knl"])
def bench_fig4_strong_scaling(benchmark, workload, machine_name):
    factory = haswell_24 if machine_name == "haswell" else knl_68
    max_cores = 24 if machine_name == "haswell" else 68
    core_counts = [c for c in (1, 2, 4, 8, 16, 24, 34, 68) if c <= max_cores]

    rows, series = once(benchmark, lambda: _scaling_experiment(workload, factory, core_counts))

    print()
    print(format_table(
        ["phase", "cores", "heft [s]", "level-by-level [s]", "omp-task [s]", "heft util"],
        rows,
        title=f"Figure 4 analogue: {workload} on {machine_name}",
    ))

    for phase, per_core in series.items():
        # Dynamic scheduling essentially never loses to level-by-level.  At very
        # low core counts list-scheduling anomalies can cost a few percent, so the
        # pointwise bound is loose; at the full machine (where the barriers of the
        # level-by-level traversal really hurt) the win must be strict.
        for cores, results in per_core.items():
            assert results["heft"].makespan <= results["level-by-level"].makespan * 1.3
        full_machine = per_core[core_counts[-1]]
        assert full_machine["heft"].makespan <= full_machine["level-by-level"].makespan * 1.001
        # Scaling: the largest core count is no slower than a single core.
        first = per_core[core_counts[0]]["heft"].makespan
        last = per_core[core_counts[-1]]["heft"].makespan
        assert last <= first

    if workload == "K02-3%":
        # The small-rank workload saturates: going from the mid core count to the
        # full machine buys little (the paper even observes slow-down on KNL).
        evaluation = series["evaluation"]
        mid = evaluation[core_counts[len(core_counts) // 2]]["heft"].makespan
        full = evaluation[core_counts[-1]]["heft"].makespan
        assert full > 0.25 * mid
