"""Table 3: GOFMM vs HODLR vs STRUMPACK-like HSS.

The paper compares wall-clock time and ε2 against HODLR and STRUMPACK on
K02, K04, K07, K12, K17 and G03 with m = 512 and 1024 right-hand sides,
targeting ε2 ≈ 1e-4.  Its findings:

* on matrices whose lexicographic order is uninformative (the 6-D kernel
  matrices K04/K07), the unpermuted codes must raise the rank dramatically
  (STRUMPACK "fails to compress") while GOFMM succeeds at moderate rank,
* K17 is hard for everyone,
* on the graph matrix G03, GOFMM's sparse correction gives it a large lead.

The harness runs the three codes on the same six matrices (scaled down) and
prints the ε2 / compression-time / evaluation-time table.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import GOFMMConfig
from repro.baselines import compress_hodlr, compress_hss_baseline
from repro.core.accuracy import relative_error
from repro.linalg.norms import sampled_relative_error
from repro.matrices import build_matrix
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm

MATRICES = ["K02", "K04", "K07", "K12", "K17", "G03"]
RANK = 64
LEAF = 64
TOL = 1e-7
NUM_RHS = 64


def _baseline_run(matrix, compressor):
    rng = np.random.default_rng(0)
    t0 = time.perf_counter()
    approx = compressor(matrix)
    comp_seconds = time.perf_counter() - t0
    w = rng.standard_normal((matrix.n, NUM_RHS))
    t1 = time.perf_counter()
    product = approx.matvec(w)
    eval_seconds = time.perf_counter() - t1
    eps2 = sampled_relative_error(product, lambda rows: matrix.entries(rows, np.arange(matrix.n)), w, num_samples=100, rng=rng)
    return eps2, comp_seconds, eval_seconds


def _experiment(name: str):
    n = problem_size(1024)

    hodlr = _baseline_run(
        build_matrix(name, n, seed=0),
        lambda m: compress_hodlr(m, leaf_size=LEAF, max_rank=RANK, tolerance=TOL),
    )
    strumpack = _baseline_run(
        build_matrix(name, n, seed=0),
        lambda m: compress_hss_baseline(m, leaf_size=LEAF, max_rank=RANK, tolerance=TOL),
    )
    config = GOFMMConfig(
        leaf_size=LEAF, max_rank=RANK, tolerance=TOL, neighbors=16,
        budget=0.1, distance="angle", seed=0,
    )
    gofmm = run_gofmm(build_matrix(name, n, seed=0), config, num_rhs=NUM_RHS, name=name)
    return hodlr, strumpack, gofmm


@pytest.mark.parametrize("name", MATRICES)
def bench_table3_software_comparison(benchmark, name):
    hodlr, strumpack, gofmm = once(benchmark, lambda: _experiment(name))

    rows = [
        ["HODLR", hodlr[0], hodlr[1], hodlr[2]],
        ["STRUMPACK-like HSS", strumpack[0], strumpack[1], strumpack[2]],
        ["GOFMM", gofmm.epsilon2, gofmm.compression_seconds, gofmm.evaluation_seconds],
    ]
    print()
    print(format_table(
        ["code", "eps2", "comp [s]", "eval [s]"],
        rows,
        title=f"Table 3 analogue: {name} (N={problem_size(1024)}, s={RANK}, m={LEAF}, r={NUM_RHS})",
    ))

    # Qualitative checks per matrix family.
    if name in ("K04", "K07"):
        # Unpermuted codes at the same rank cannot match GOFMM on scattered kernel matrices.
        assert gofmm.epsilon2 < strumpack[0]
    if name == "G03":
        assert gofmm.epsilon2 < 10 * min(hodlr[0], strumpack[0]) + 1e-12
    if name == "K17":
        # Hard for everyone: no code reaches 1e-4 at this rank.
        assert min(hodlr[0], strumpack[0], gofmm.epsilon2) > 1e-4
