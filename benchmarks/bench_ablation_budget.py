"""Ablation: sweep of the ``budget`` parameter (DESIGN.md ablation #1).

The budget is GOFMM's knob between the HSS extreme (budget 0, everything
low-rank) and direct evaluation (budget 1, every neighbor-voted pair dense).
This sweep quantifies the accuracy / evaluation-cost trade-off that Figure 6
samples at just a few points.
"""

from __future__ import annotations

import pytest

from repro import GOFMMConfig
from repro.api import Session
from repro.matrices import build_matrix
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm_session

BUDGETS = [0.0, 0.05, 0.1, 0.25, 0.5]


def _experiment(matrix_name: str):
    n = problem_size(1024)
    matrix = build_matrix(matrix_name, n, seed=0)
    config = GOFMMConfig(
        leaf_size=64, max_rank=32, tolerance=1e-10, neighbors=16,
        budget=BUDGETS[0], distance="angle", adaptive_rank=False, seed=0,
    )
    # One session for the whole sweep: the budget only invalidates the
    # interaction lists onward, so tree + ANN artifacts are built once.
    session = Session(matrix, config)
    return [
        run_gofmm_session(session, dict(budget=budget), num_rhs=32, name=f"budget={budget}")
        for budget in BUDGETS
    ]


@pytest.mark.parametrize("matrix_name", ["K02", "covtype"])
def bench_ablation_budget(benchmark, matrix_name):
    runs = once(benchmark, lambda: _experiment(matrix_name))

    print()
    print(format_table(
        ["budget", "eps2", "eval [s]", "eval FLOPs", "entry evals"],
        [[f"{b:.0%}", r.epsilon2, r.evaluation_seconds, r.flops, r.entry_evaluations] for b, r in zip(BUDGETS, runs)],
        title=f"Budget ablation: {matrix_name} (N={problem_size(1024)}, fixed rank 32)",
    ))

    errors = [r.epsilon2 for r in runs]
    flops = [r.flops for r in runs]
    # Accuracy is monotone (within noise) in the budget, and cost grows with it.
    assert errors[-1] <= errors[0] * 1.2 + 1e-12
    assert min(errors) == pytest.approx(errors[-1], rel=5.0, abs=1e-12)
    assert flops[-1] >= flops[0]
