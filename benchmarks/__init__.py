"""Benchmark harness package (one module per paper table/figure)."""
