"""Table 4: GOFMM vs ASKIT on kernel matrices with available coordinates.

Experiments #19–#26 compare GOFMM (with geometric distances) against ASKIT
on the Gaussian-kernel matrices K04 (compressible) and K06 (narrow
bandwidth, hard) at two problem sizes and two tolerances, with κ = 32 and
m = s = 512.  The paper's observations:

* accuracies are comparable (both use neighbor-based pruning),
* compression times are similar for K04 and up to ~2× better for GOFMM on
  K06 thanks to the out-of-order traversals (a runtime effect that the
  Python reproduction measures only as "same order of magnitude").

The harness runs both codes on K04/K06 at two sizes × two tolerances and
prints the Table 4 layout.
"""

from __future__ import annotations

import pytest

from repro import GOFMMConfig
from repro.baselines import compress_askit
from repro.core.accuracy import relative_error
from repro.matrices import build_matrix
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm

LEAF = 64
RANK = 64
KAPPA = 16


def _experiment(name: str, n: int, tolerance: float):
    matrix_askit = build_matrix(name, n, seed=0)
    import time as _time
    import numpy as np

    rng = np.random.default_rng(0)
    askit = compress_askit(
        matrix_askit, leaf_size=LEAF, max_rank=RANK, tolerance=tolerance, neighbors=KAPPA,
    )
    w = rng.standard_normal((n, 1))
    t0 = _time.perf_counter()
    askit.matvec(w)
    askit_eval = _time.perf_counter() - t0
    askit_eps = relative_error(askit.compressed, matrix_askit, num_rhs=4, rng=rng)

    config = GOFMMConfig(
        leaf_size=LEAF, max_rank=RANK, tolerance=tolerance, neighbors=KAPPA,
        budget=0.1, distance="geometric", seed=0,
    )
    gofmm = run_gofmm(build_matrix(name, n, seed=0), config, num_rhs=1, name=name)
    return {
        "askit": (askit_eps, askit.compression_seconds, askit_eval),
        "gofmm": (gofmm.epsilon2, gofmm.compression_seconds, gofmm.evaluation_seconds),
    }


CASES = [
    ("K04", 0.5, 1e-3),
    ("K04", 0.5, 1e-6),
    ("K04", 1.0, 1e-3),
    ("K04", 1.0, 1e-6),
    ("K06", 0.5, 1e-3),
    ("K06", 0.5, 1e-6),
    ("K06", 1.0, 1e-3),
    ("K06", 1.0, 1e-6),
]


def bench_table4_askit_comparison(benchmark):
    base_n = problem_size(1024)

    def full_sweep():
        rows = []
        for name, size_factor, tolerance in CASES:
            n = max(256, int(base_n * size_factor))
            result = _experiment(name, n, tolerance)
            rows.append((name, n, tolerance, result))
        return rows

    rows = once(benchmark, full_sweep)

    table = []
    for name, n, tolerance, result in rows:
        askit_eps, askit_comp, askit_eval = result["askit"]
        gofmm_eps, gofmm_comp, gofmm_eval = result["gofmm"]
        table.append([name, n, tolerance, askit_eps, askit_comp, askit_eval, gofmm_eps, gofmm_comp, gofmm_eval])
    print()
    print(format_table(
        ["case", "N", "tau", "ASKIT eps2", "ASKIT comp [s]", "ASKIT eval [s]", "GOFMM eps2", "GOFMM comp [s]", "GOFMM eval [s]"],
        table,
        title="Table 4 analogue: ASKIT vs GOFMM (geometric distance, kappa-driven near field)",
    ))

    # The claim Table 4 makes is parity: with points available, GOFMM (with the
    # same geometric distance) matches ASKIT's accuracy on both the easy (K04)
    # and the hard (K06) kernel matrix, at every size/tolerance setting.
    # "Parity" is a ratio bound with an absolute floor: at laptop scale ASKIT's
    # κ-driven near field spans nearly all 16 leaves and resolves the narrow-
    # bandwidth K06 to machine precision, while GOFMM's budgeted near field does
    # not — the floor corresponds to the ε2 ≈ 3e-2…5e-2 regime the paper itself
    # reports for K06 in Table 4 (#23–#26).
    floor = 5e-2
    for name, n, tolerance, result in rows:
        askit_eps = result["askit"][0]
        gofmm_eps = result["gofmm"][0]
        assert gofmm_eps < max(50 * askit_eps, floor), f"{name} N={n} tau={tolerance}"
        assert askit_eps < max(50 * gofmm_eps, floor), f"{name} N={n} tau={tolerance}"
    # Tighter tolerance never hurts GOFMM's accuracy on the compressible matrix.
    for n in {n for name, n, _, _ in rows if name == "K04"}:
        loose = next(r["gofmm"][0] for name, nn, tol, r in rows if name == "K04" and nn == n and tol == 1e-3)
        tight = next(r["gofmm"][0] for name, nn, tol, r in rows if name == "K04" and nn == n and tol == 1e-6)
        assert tight <= loose * 1.5 + 1e-12
