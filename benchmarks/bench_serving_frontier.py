"""Serving frontier: shards × latency lanes × offered load.

The sharded cluster (:mod:`repro.serving.cluster`) makes two promises the
single server cannot keep at once:

* **latency**: the ``interactive`` lane flushes immediately instead of
  waiting out ``max_wait_ms`` for co-batched traffic, so at matched
  offered load its p50 sits far below the ``throughput`` lane's,
* **SLO-compliant load**: with ≥2 shards the router pins each lane to its
  own replica, so a throughput flood fills *its* shard's bounded queue
  while the interactive shard keeps accepting — one shard's shared
  ``max_queue`` would reject (or deadline-shed) interactive traffic
  instead.  "Peak sustained QPS" is therefore *SLO-aware*: the highest
  offered load at which the interactive lane still succeeds ≥ 99% of the
  time.  That definition is the honest one on any core count — it
  measures queueing isolation, not raw parallel speedup.

Method: the single-server closed-loop capacity ``C`` is calibrated first;
each (shard count, offered load) cell then runs an **open-loop** trial — a
pacing thread offers requests at the target rate (80% throughput lane, 20%
interactive lane with a deadline) regardless of completions — at loads
``0.2·C``, ``0.75·C`` and ``1.5·C``.  Per lane the trial records
submitted / ok / rejected / shed counts and completion-latency
percentiles; everything lands in ``artifacts/serving_frontier.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving_frontier.py \
        [--n 2048] [--shards 1 2] [--duration 2.0] [--smoke] [--out PATH]

``--smoke`` runs the tiny CI configuration and asserts the two frontier
claims: interactive p50 < 0.5× throughput p50 at the matched (lowest)
load, and peak sustained QPS higher with 2 shards than with 1.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro import GOFMMConfig
from repro.api import Session
from repro.errors import DeadlineExceededError, ServerOverloadedError
from repro.matrices import build_matrix
from repro.serving import (
    INTERACTIVE,
    THROUGHPUT,
    BatchPolicy,
    MatvecServer,
    ShardRouter,
)

try:  # package import (pytest benchmarks/) vs direct script run
    from .harness import memory_probe
except ImportError:
    from harness import memory_probe

#: Fraction of offered traffic on the interactive lane.
INTERACTIVE_SHARE = 0.2
#: Interactive requests carry this deadline; queued longer → shed.
DEADLINE_MS = 200.0
#: SLO: the interactive lane must succeed at least this often.
SLO_SUCCESS_RATIO = 0.99


def bench_config() -> GOFMMConfig:
    return GOFMMConfig(
        leaf_size=128, max_rank=64, tolerance=1e-5, neighbors=16,
        budget=0.03, distance="angle", seed=0,
    )


def percentiles_ms(latencies: list) -> dict:
    if not latencies:
        return {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0}
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "count": int(arr.size),
        "p50": float(np.percentile(arr, 50) * 1e3),
        "p90": float(np.percentile(arr, 90) * 1e3),
        "p99": float(np.percentile(arr, 99) * 1e3),
        "mean": float(arr.mean() * 1e3),
    }


def calibrate_capacity(operator, policy: BatchPolicy, requests: int = 192,
                       concurrency: int = 32) -> float:
    """Closed-loop peak service rate of ONE server (req/s): the load scale."""
    server = MatvecServer(policy=policy)
    server.register("bench", operator)
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((requests, operator.shape[0]))
    with server:
        server.matvec("bench", vectors[0])  # warm-up: plan + pools hot
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            list(pool.map(lambda v: server.matvec("bench", v, timeout=600), vectors))
        elapsed = time.perf_counter() - started
    return requests / elapsed


class _LaneTally:
    """Thread-safe per-lane outcome counters + completion latencies."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.submitted = 0
        self.ok = 0
        self.rejected = 0
        self.shed = 0
        self.errors = 0
        self.latencies: list = []

    def report(self) -> dict:
        with self.lock:
            finished = self.ok + self.rejected + self.shed + self.errors
            return {
                "submitted": self.submitted,
                "ok": self.ok,
                "rejected": self.rejected,
                "shed": self.shed,
                "errors": self.errors,
                "success_ratio": self.ok / finished if finished else 1.0,
                "latency_ms": percentiles_ms(self.latencies),
            }


def run_trial(router: ShardRouter, name: str, vectors: np.ndarray,
              offered_qps: float, duration_s: float) -> dict:
    """One open-loop cell: offer ``offered_qps`` for ``duration_s`` seconds.

    The pacer keeps offering on schedule whether or not earlier requests
    finished (open loop) — every fifth request rides the interactive lane
    with a deadline, the rest the throughput lane.
    """
    tallies = {THROUGHPUT: _LaneTally(), INTERACTIVE: _LaneTally()}
    interval = 1.0 / offered_qps
    interactive_every = max(1, round(1.0 / INTERACTIVE_SHARE))
    pending = []

    def finish(tally: _LaneTally, t_submit: float):
        def _record(future):
            latency = time.perf_counter() - t_submit
            with tally.lock:
                exc = future.exception()
                if exc is None:
                    tally.ok += 1
                    tally.latencies.append(latency)
                elif isinstance(exc, DeadlineExceededError):
                    tally.shed += 1
                else:
                    tally.errors += 1
        return _record

    start = time.perf_counter()
    deadline = start + duration_s
    i = 0
    now = start
    while now < deadline:
        due = start + i * interval
        if due > now:
            time.sleep(min(due - now, 0.002))
            now = time.perf_counter()
            continue
        interactive = (i % interactive_every) == 0
        lane = INTERACTIVE if interactive else THROUGHPUT
        tally = tallies[lane]
        with tally.lock:
            tally.submitted += 1
        t_submit = time.perf_counter()
        try:
            future = router.submit(
                name, vectors[i % len(vectors)], lane=lane,
                deadline_ms=DEADLINE_MS if interactive else None,
            )
        except ServerOverloadedError:
            with tally.lock:
                tally.rejected += 1
        else:
            future.add_done_callback(finish(tally, t_submit))
            pending.append(future)
        i += 1
        now = time.perf_counter()
    elapsed = time.perf_counter() - start
    for future in pending:  # drain the bounded backlog
        try:
            future.result(timeout=60)
        except Exception:
            pass
    lanes = {lane: tally.report() for lane, tally in tallies.items()}
    interactive_report = lanes[INTERACTIVE]
    return {
        "offered_qps": offered_qps,
        "achieved_offer_qps": i / elapsed,
        "duration_s": elapsed,
        "lanes": lanes,
        "slo_met": interactive_report["success_ratio"] >= SLO_SUCCESS_RATIO,
    }


def run_shard_count(operator, shards: int, policy: BatchPolicy,
                    loads: list, duration_s: float) -> dict:
    router = ShardRouter(num_shards=shards, policy=policy)
    router.register("bench", operator, replicas=shards)
    rng = np.random.default_rng(1)
    vectors = rng.standard_normal((256, operator.shape[0]))
    trials = []
    with router:
        router.matvec("bench", vectors[0])  # warm-up
        router.matvec("bench", vectors[0], lane=INTERACTIVE)
        for offered in loads:
            trial = run_trial(router, "bench", vectors, offered, duration_s)
            trials.append(trial)
            inter, thr = trial["lanes"][INTERACTIVE], trial["lanes"][THROUGHPUT]
            print(f"  shards={shards} offered={offered:7.0f}/s  "
                  f"interactive p50={inter['latency_ms']['p50']:6.2f} ms "
                  f"ok={inter['success_ratio']:6.1%}  "
                  f"throughput p50={thr['latency_ms']['p50']:6.2f} ms "
                  f"rej={thr['rejected']}  slo_met={trial['slo_met']}")
    sustained = [t["offered_qps"] for t in trials if t["slo_met"]]
    return {
        "shards": shards,
        "trials": trials,
        "peak_sustained_qps": max(sustained) if sustained else 0.0,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2048)
    parser.add_argument("--matrix", default="K02")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=25.0,
                        help="throughput-lane co-batching wait (the latency the "
                             "interactive lane skips)")
    parser.add_argument("--max-queue", type=int, default=32,
                        help="per-shard bounded queue (small: overload must reject, "
                             "not buffer unboundedly)")
    parser.add_argument("--duration", type=float, default=2.0, help="seconds per trial")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration + frontier assertions")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "artifacts" / "serving_frontier.json")
    args = parser.parse_args()

    n = 512 if args.smoke else args.n
    duration = 0.8 if args.smoke else args.duration
    policy = BatchPolicy(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                         max_queue=args.max_queue)

    print(f"serving frontier benchmark: {args.matrix}, n={n}, shards={args.shards}, "
          f"max_batch={policy.max_batch}, max_wait_ms={policy.max_wait_ms}, "
          f"max_queue={policy.max_queue}")
    matrix = build_matrix(args.matrix, n, seed=0)
    t0 = time.perf_counter()
    operator = Session(matrix, bench_config()).compress()
    operator.compressed.plan()
    print(f"compressed in {time.perf_counter() - t0:.1f}s "
          f"(eps2={operator.relative_error():.2e})")

    capacity = calibrate_capacity(operator, policy)
    loads = [max(40.0, 0.2 * capacity), 0.75 * capacity, 1.5 * capacity]
    print(f"calibrated single-server capacity: {capacity:.0f} req/s → "
          f"offered loads {[f'{ld:.0f}' for ld in loads]}")

    results = [run_shard_count(operator, shards, policy, loads, duration)
               for shards in args.shards]

    peaks = {r["shards"]: r["peak_sustained_qps"] for r in results}
    matched = {}
    for result in results:
        low = result["trials"][0]
        matched[result["shards"]] = {
            "offered_qps": low["offered_qps"],
            "interactive_p50_ms": low["lanes"][INTERACTIVE]["latency_ms"]["p50"],
            "throughput_p50_ms": low["lanes"][THROUGHPUT]["latency_ms"]["p50"],
        }
        print(f"shards={result['shards']}: peak sustained {peaks[result['shards']]:.0f} req/s "
              f"(SLO: interactive ≥ {SLO_SUCCESS_RATIO:.0%} ok); matched-load p50 "
              f"interactive {matched[result['shards']]['interactive_p50_ms']:.2f} ms vs "
              f"throughput {matched[result['shards']]['throughput_p50_ms']:.2f} ms")

    artifact = {
        "benchmark": "serving_frontier",
        "memory": memory_probe(),
        "matrix": args.matrix,
        "n": n,
        "duration_s": duration,
        "interactive_share": INTERACTIVE_SHARE,
        "deadline_ms": DEADLINE_MS,
        "slo_success_ratio": SLO_SUCCESS_RATIO,
        "policy": {
            "max_batch": policy.max_batch,
            "max_wait_ms": policy.max_wait_ms,
            "max_queue": policy.max_queue,
        },
        "single_server_capacity_qps": capacity,
        "offered_loads_qps": loads,
        "shard_counts": results,
        "peak_sustained_qps": peaks,
        "matched_load_p50": matched,
        "smoke": bool(args.smoke),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.smoke:
        failures = []
        for shards, point in matched.items():
            if not point["interactive_p50_ms"] < 0.5 * point["throughput_p50_ms"]:
                failures.append(
                    f"shards={shards}: interactive p50 {point['interactive_p50_ms']:.2f} ms "
                    f"not < 0.5× throughput p50 {point['throughput_p50_ms']:.2f} ms"
                )
        multi = [s for s in peaks if s >= 2]
        if 1 in peaks and multi:
            best_multi = max(peaks[s] for s in multi)
            if not best_multi > peaks[1]:
                failures.append(
                    f"peak sustained QPS with ≥2 shards ({best_multi:.0f}) "
                    f"not above 1 shard ({peaks[1]:.0f})"
                )
        if failures:
            raise SystemExit("FAILED:\n  " + "\n  ".join(failures))
        print("smoke assertions passed: interactive p50 < 0.5× throughput p50 at matched "
              "load; sharding raises SLO-sustained peak QPS")


if __name__ == "__main__":
    main()
