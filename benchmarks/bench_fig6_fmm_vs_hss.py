"""Figure 6: FMM (S ≠ 0) vs HSS (S = 0) — accuracy against wall-clock time.

Experiments #6–#8 of the paper take K02, K15 and COVTYPE and show that

* the HSS error plateaus as the rank grows (and the cost grows like O(s³)),
* adding a few percent of direct evaluations (the FMM variant) reaches a
  better accuracy/time trade-off than pushing the rank further.

The harness sweeps (variant, rank, budget) combinations for the same three
workloads and prints the trade-off table; the assertions check the two
qualitative claims at the sweep's scale.
"""

from __future__ import annotations

import pytest

from repro import GOFMMConfig
from repro.matrices import build_matrix
from repro.reporting import format_table

from .harness import once, problem_size, run_gofmm


CASES = {
    # experiment #6 / #7 / #8 analogues
    "K02": [("HSS", 16, 0.0), ("HSS", 32, 0.0), ("HSS", 64, 0.0), ("FMM", 16, 0.15), ("FMM", 32, 0.15)],
    "K15": [("HSS", 32, 0.0), ("HSS", 64, 0.0), ("FMM", 32, 0.25), ("FMM", 64, 0.25)],
    "covtype": [("HSS", 16, 0.0), ("HSS", 48, 0.0), ("FMM", 16, 0.15), ("FMM", 48, 0.15)],
}


def _config(rank: int, budget: float) -> GOFMMConfig:
    return GOFMMConfig(
        leaf_size=64, max_rank=rank, tolerance=1e-10, neighbors=16,
        budget=budget, distance="angle", adaptive_rank=False, seed=0,
    )


def _experiment(matrix_name: str):
    n = problem_size(1024)
    results = []
    for variant, rank, budget in CASES[matrix_name]:
        matrix = build_matrix(matrix_name, n, seed=0)
        run = run_gofmm(matrix, _config(rank, budget), num_rhs=64, name=f"{variant}-s{rank}-b{budget:.0%}")
        results.append((variant, rank, budget, run))
    return results


@pytest.mark.parametrize("matrix_name", list(CASES))
def bench_fig6_fmm_vs_hss(benchmark, matrix_name):
    results = once(benchmark, lambda: _experiment(matrix_name))

    rows = [
        [variant, rank, f"{budget:.0%}", run.epsilon2, run.compression_seconds, run.evaluation_seconds,
         run.compression_seconds + run.evaluation_seconds]
        for variant, rank, budget, run in results
    ]
    print()
    print(format_table(
        ["variant", "s", "budget", "eps2", "comp [s]", "eval [s]", "total [s]"],
        rows,
        title=f"Figure 6 analogue: {matrix_name} (N={problem_size(1024)})",
    ))

    hss = {rank: run for variant, rank, _, run in results if variant == "HSS"}
    fmm = {rank: run for variant, rank, _, run in results if variant == "FMM"}
    shared_ranks = sorted(set(hss) & set(fmm))
    # At every shared rank, adding the sparse correction never hurts accuracy.
    for rank in shared_ranks:
        assert fmm[rank].epsilon2 <= hss[rank].epsilon2 * 1.2 + 1e-12
    # And at the smallest shared rank the FMM variant should already be at
    # least as accurate as the *largest-rank* HSS run for K02/covtype
    # (the "cheaper than growing s" claim); K15 is the high-rank counterexample.
    if matrix_name != "K15" and shared_ranks:
        largest_hss = hss[max(hss)]
        assert fmm[min(shared_ranks)].epsilon2 <= largest_hss.epsilon2 * 5.0
