"""First-class pipeline stage artifacts and their config dependencies.

The compression pipeline (ANN search → metric-tree partition → Near/Far
lists → skeletonization → block caching → evaluation plan) factors into
six artifacts.  Each artifact is tagged with the exact subset of
:class:`repro.config.GOFMMConfig` fields it depends on (``depends_on``)
and with its upstream artifacts (``STAGE_UPSTREAM``); a config change
invalidates an artifact iff it touches one of the artifact's own fields
or invalidates something upstream (:func:`invalidated_stages`).

The payoff: ``Session.recompress(tolerance=..., budget=..., max_rank=...)``
reuses the ball tree and the ANN table — the dominant cost at large n —
and pays only for skeletonization onward.

Artifacts are plain data, deliberately decoupled from any particular
:class:`~repro.core.tree.BallTree` instance: the partition is cached
pristine (never mutated) and cloned per compression, and
:class:`Interactions` stamps its lists onto whichever clone a compression
is working on.  That is what makes it safe to hand out several
:class:`~repro.api.operator.CompressedOperator` objects that share
upstream artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional

import numpy as np

from ..core.hmatrix import BlockProvider, CompressedMatrix
from ..core.interactions import InteractionLists
from ..core.morton import ROOT_MORTON
from ..core.neighbors import NeighborTable
from ..core.skeletonization import SkeletonizationStats
from ..core.tree import BallTree, TreeNode

__all__ = [
    "STAGE_ORDER",
    "STAGE_FIELDS",
    "STAGE_UPSTREAM",
    "stage_fingerprint",
    "changed_fields",
    "invalidated_stages",
    "Partition",
    "Neighbors",
    "Interactions",
    "Skeletons",
    "Blocks",
    "Plan",
]


#: Pipeline stages in build order.
STAGE_ORDER: tuple[str, ...] = ("partition", "neighbors", "interactions", "skeletons", "blocks", "plan")

#: The exact GOFMMConfig fields each stage reads.  A stage artifact stays
#: valid across a config change iff none of its fields changed and nothing
#: upstream was invalidated.
STAGE_FIELDS: Dict[str, frozenset] = {
    "partition": frozenset({"leaf_size", "distance", "centroid_samples", "seed"}),
    "neighbors": frozenset(
        {
            "distance",
            "neighbors",
            "leaf_size",
            "num_neighbor_trees",
            "neighbor_accuracy_target",
            "neighbor_backend",
            "seed",
        }
    ),
    # neighbor_workers / compression_workers are deliberately untracked:
    # they are pure execution knobs (the sharded backends are worker-count
    # deterministic), so changing them never invalidates an artifact.
    "interactions": frozenset(
        {"budget", "symmetrize_lists", "max_rank", "sample_size", "oversampling", "leaf_size", "seed"}
    ),
    "skeletons": frozenset(
        {
            "max_rank",
            "tolerance",
            "adaptive_rank",
            "sample_size",
            "oversampling",
            "secure_accuracy",
            "dtype",
            "seed",
            "compression_backend",
        }
    ),
    "blocks": frozenset({"cache_near_blocks", "cache_far_blocks"}),
    "plan": frozenset(
        {"evaluation_engine", "prebuild_plan", "plan_rank_bucketing", "streaming_chunk_bytes"}
    ),
}

#: Direct upstream dependencies (the partition and the ANN table are
#: independent of each other — both derive from the distance oracle alone).
STAGE_UPSTREAM: Dict[str, tuple[str, ...]] = {
    "partition": (),
    "neighbors": (),
    "interactions": ("partition", "neighbors"),
    "skeletons": ("interactions",),
    "blocks": ("skeletons",),
    "plan": ("blocks",),
}


def stage_fingerprint(config, stage: str) -> dict:
    """The ``{field: value}`` snapshot an artifact of ``stage`` was built under."""
    return {name: getattr(config, name) for name in STAGE_FIELDS[stage]}


def changed_fields(old_config, new_config) -> frozenset:
    """Config fields whose values differ between two configurations."""
    tracked = frozenset().union(*STAGE_FIELDS.values())
    return frozenset(
        name for name in tracked if getattr(old_config, name) != getattr(new_config, name)
    )


def invalidated_stages(changed: frozenset | set) -> frozenset:
    """Stages that must rebuild when the given config fields change.

    A stage is invalidated directly (one of its own fields changed) or
    transitively (an upstream stage was invalidated).  This is the
    stage-invalidation matrix the test-suite checks field by field.
    """
    stale: set[str] = set()
    for stage in STAGE_ORDER:  # build order is a topological order
        if STAGE_FIELDS[stage] & set(changed):
            stale.add(stage)
        elif any(up in stale for up in STAGE_UPSTREAM[stage]):
            stale.add(stage)
    return frozenset(stale)


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------

@dataclass
class Partition:
    """Stage 1: the metric ball tree (pristine — cloned before any mutation)."""

    stage: ClassVar[str] = "partition"
    depends_on: ClassVar[frozenset] = STAGE_FIELDS["partition"]

    tree: BallTree

    @property
    def permutation(self) -> np.ndarray:
        """Global indices in left-to-right leaf order (the symmetric permutation of K)."""
        return self.tree.permutation

    @property
    def num_leaves(self) -> int:
        return len(self.tree.leaves)

    @property
    def depth(self) -> int:
        return self.tree.depth

    def working_tree(self) -> BallTree:
        """A fresh structural clone for one compression to mutate."""
        return self.tree.clone_structure()

    # -- persistence (Session.save_artifacts / load_artifacts) --------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The partition as plain arrays (every node's index set, concatenated).

        Nodes are stored in breadth-first id order; the tree is complete
        and balanced, so the structure itself needs no encoding — node
        ``i``'s children are ``2i+1`` / ``2i+2``.
        """
        nodes = self.tree.nodes
        offsets = np.zeros(len(nodes) + 1, dtype=np.intp)
        for i, node in enumerate(nodes):
            offsets[i + 1] = offsets[i] + node.indices.size
        indices = np.concatenate([node.indices for node in nodes])
        return {"node_offsets": offsets, "node_indices": indices}

    @classmethod
    def from_arrays(cls, node_offsets: np.ndarray, node_indices: np.ndarray, depth: int, n: int) -> "Partition":
        """Rebuild the pristine partition from :meth:`to_arrays` output."""
        node_offsets = np.asarray(node_offsets, dtype=np.intp)
        node_indices = np.asarray(node_indices, dtype=np.intp)
        num_nodes = node_offsets.size - 1
        nodes: List[TreeNode] = []
        for i in range(num_nodes):
            level = (i + 1).bit_length() - 1
            morton = ROOT_MORTON if i == 0 else nodes[(i - 1) // 2].morton.child(bool(i % 2 == 0))
            nodes.append(
                TreeNode(
                    node_id=i,
                    level=level,
                    morton=morton,
                    indices=node_indices[node_offsets[i] : node_offsets[i + 1]].copy(),
                )
            )
        for i, node in enumerate(nodes):
            if 2 * i + 2 < num_nodes:
                node.left = nodes[2 * i + 1]
                node.right = nodes[2 * i + 2]
                node.left.parent = node
                node.right.parent = node
        return cls(tree=BallTree(nodes, int(depth), int(n)))


@dataclass
class Neighbors:
    """Stage 2: the ANN table (``None`` for metric-free orderings)."""

    stage: ClassVar[str] = "neighbors"
    depends_on: ClassVar[frozenset] = STAGE_FIELDS["neighbors"]

    table: Optional[NeighborTable]

    @property
    def iterations(self) -> int:
        return self.table.iterations if self.table is not None else 0

    @property
    def converged(self) -> bool:
        return self.table.converged if self.table is not None else True


@dataclass
class Interactions:
    """Stage 3: Near/Far lists plus the per-node neighbor lists N(α).

    Stored as plain dicts keyed by ``node_id`` so the artifact can be
    re-stamped onto any structural clone of the partition.
    """

    stage: ClassVar[str] = "interactions"
    depends_on: ClassVar[frozenset] = STAGE_FIELDS["interactions"]

    lists: InteractionLists
    neighbor_lists: Dict[int, np.ndarray] = field(default_factory=dict)

    @classmethod
    def capture(cls, tree: BallTree, lists: InteractionLists) -> "Interactions":
        """Snapshot the lists a tree was annotated with by the interactions stage."""
        neighbor_lists = {
            node.node_id: node.neighbor_list
            for node in tree.nodes
            if node.neighbor_list is not None
        }
        return cls(lists=lists, neighbor_lists=neighbor_lists)

    def materialize(self, tree: BallTree) -> InteractionLists:
        """Stamp the cached lists onto a fresh clone of the partition."""
        for node in tree.nodes:
            node.near = list(self.lists.near.get(node.node_id, []))
            node.far = list(self.lists.far.get(node.node_id, []))
            neighbor_list = self.neighbor_lists.get(node.node_id)
            node.neighbor_list = neighbor_list
        return self.lists


@dataclass
class Skeletons:
    """Stage 4: the skeletonized working tree (immutable once built)."""

    stage: ClassVar[str] = "skeletons"
    depends_on: ClassVar[frozenset] = STAGE_FIELDS["skeletons"]

    tree: BallTree
    lists: InteractionLists
    stats: SkeletonizationStats

    @property
    def average_rank(self) -> float:
        return self.stats.average_rank

    @property
    def max_rank(self) -> int:
        return self.stats.max_rank


@dataclass
class Blocks:
    """Stage 5: cached (or lazily evaluated) near / far submatrices."""

    stage: ClassVar[str] = "blocks"
    depends_on: ClassVar[frozenset] = STAGE_FIELDS["blocks"]

    near_blocks: BlockProvider
    far_blocks: BlockProvider

    @property
    def cached_entries(self) -> int:
        return self.near_blocks.cached_entries + self.far_blocks.cached_entries


@dataclass
class Plan:
    """Stage 6: the assembled operator (CompressedMatrix + its cached plan)."""

    stage: ClassVar[str] = "plan"
    depends_on: ClassVar[frozenset] = STAGE_FIELDS["plan"]

    compressed: CompressedMatrix

    @property
    def evaluation_plan(self):
        """The packed plan, if one has been built (``None`` before first use)."""
        return self.compressed._plan
