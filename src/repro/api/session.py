"""Staged compression sessions with reusable pipeline artifacts.

A :class:`Session` owns the compression pipeline as six first-class,
individually cached stage artifacts (see :mod:`repro.api.stages`).  Each
artifact records the exact :class:`~repro.config.GOFMMConfig` fields it was
built under; :meth:`Session.recompress` replaces config fields, rebuilds
only the stages those fields (or their upstream) touch, and reuses the
rest.  Changing only ``tolerance`` / ``budget`` / ``max_rank`` — the knobs
every ablation sweeps — reuses the ball tree and the ANN table, which
dominate compression cost at large n, so a warm sweep point costs
O(skeletonize) instead of O(full pipeline).

Typical usage::

    from repro.api import Session

    session = Session(matrix, config)
    operator = session.compress()                  # cold: every stage runs
    op_tight = session.recompress(tolerance=1e-7)  # warm: skeletonize onward
    op_wide = session.recompress(budget=0.1)       # warm: lists onward

    x = operator.solve(b).solution                 # block-Jacobi PCG
    eigs = scipy.sparse.linalg.lobpcg(operator, X) # SciPy operator protocol

    # A family of operators (e.g. kernel bandwidths) on one shared partition:
    other = session.attach(other_matrix)
    op_other = other.compress()                    # no new ANN / tree work

Results are identical to the one-shot :func:`repro.core.compress.compress`
path: both run the same stage functions, and every stage draws from its own
deterministic generator (:func:`repro.core.compress.stage_rng`), so reuse
never shifts downstream randomness.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from typing import Optional

import numpy as np

import importlib
import itertools
from contextlib import nullcontext

from ..config import DistanceMetric, GOFMMConfig
from ..core.compress import CompressionReport, _PhaseTimer
from ..obs import get_logger
from ..obs.trace import NULL_TRACER, Tracer, get_tracer, tracing

# ``repro.core`` re-exports the ``compress`` *function*, which shadows the
# submodule under ``from ..core import compress`` — resolve the module itself
# so the stage functions stay monkeypatchable at ``repro.core.compress.*``.
_pipeline = importlib.import_module(__name__.rsplit(".", 2)[0] + ".core.compress")
from ..core.hmatrix import CompressedMatrix
from ..errors import ArtifactMismatchError, CompressionError, ConfigurationError
from ..matrices.base import as_spd_matrix
from .operator import CompressedOperator
from .stages import (
    STAGE_ORDER,
    STAGE_UPSTREAM,
    Blocks,
    Interactions,
    Neighbors,
    Partition,
    Plan,
    Skeletons,
    changed_fields,
    invalidated_stages,
    stage_fingerprint,
)

__all__ = ["Session"]

_LOG = get_logger("api.session")

#: CompressionReport phase name for each pipeline stage (matches the
#: monolithic :func:`repro.core.compress.compress` report keys).
_PHASE_NAME = {
    "partition": "tree",
    "neighbors": "neighbors",
    "interactions": "lists",
    "skeletons": "skeletonization",
    "blocks": "caching",
    "plan": "plan",
}

#: Stages whose artifacts never touch matrix entries beyond the distance
#: oracle — these are shared with sessions created by :meth:`Session.attach`.
_SHARED_ON_ATTACH = ("partition", "neighbors", "interactions")


def _jsonable_fingerprint(fingerprint: dict) -> dict:
    """A stage fingerprint as JSON-stable values (enums to their string value)."""
    return {
        key: (value.value if isinstance(value, DistanceMetric) else value)
        for key, value in sorted(fingerprint.items())
    }


#: Monotonic artifact version numbers.  Global (not per-session) because
#: :meth:`Session.attach` shares cache entries across sessions — versions
#: must stay unique so upstream-identity checks cannot collide.
_VERSION_COUNTER = itertools.count(1)


@dataclass
class _CachedStage:
    """One cached artifact plus the provenance it was built under.

    ``fingerprint`` snapshots the artifact's own config fields;
    ``upstream_versions`` records the exact versions of the upstream
    artifacts it was built from.  An entry is valid only when both still
    match — comparing versions (rather than remembering what was rebuilt
    in the current pass) keeps the cache consistent even when a compress()
    pass aborts between stage rebuilds.
    """

    value: object
    fingerprint: dict
    version: int = 0
    upstream_versions: dict = None


class Session:
    """Staged compression of one SPD matrix with reusable pipeline artifacts.

    Parameters
    ----------
    matrix:
        an :class:`repro.matrices.base.SPDMatrix`, dense array, or
        ``(callback, n)`` pair — anything :func:`as_spd_matrix` accepts.
    config:
        the initial :class:`GOFMMConfig` (default: paper defaults).
    coordinates:
        optional point coordinates for the geometric distance.
    tracer:
        an optional :class:`repro.obs.Tracer`.  When given (or when
        ``config.telemetry`` is true, which creates one), every
        ``compress()`` installs it as the process-wide active tracer for
        its duration, so stage spans, per-level skeletonization spans and
        any nested evaluation spans land in one trace.  Export it with
        :func:`repro.obs.write_chrome_trace`.
    """

    def __init__(
        self,
        matrix,
        config: Optional[GOFMMConfig] = None,
        coordinates: Optional[np.ndarray] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.matrix = as_spd_matrix(matrix)
        if self.matrix.n < 2:
            raise CompressionError("cannot compress a 1x1 matrix")
        self._config = config or GOFMMConfig()
        self.coordinates = coordinates
        self.tracer = tracer if tracer is not None else (
            Tracer() if self._config.telemetry else NULL_TRACER
        )
        self._cache: dict[str, _CachedStage] = {}
        self._distance = None
        self._distance_metric = None
        #: Seconds spent in the most recent build of each stage (plus the
        #: ``"distance"`` oracle when it ran); see :attr:`stage_timings`.
        self._stage_seconds: dict[str, float] = {}
        #: How many times each stage has actually been built by this session.
        self.stage_builds: Counter = Counter()
        #: Stages rebuilt / reused by the most recent compress() call.
        self.last_built: tuple[str, ...] = ()
        self.last_reused: tuple[str, ...] = ()

    # -- configuration ---------------------------------------------------------
    @property
    def config(self) -> GOFMMConfig:
        return self._config

    @property
    def n(self) -> int:
        return self.matrix.n

    @property
    def stage_timings(self) -> dict[str, float]:
        """Seconds spent building each pipeline stage (most recent build).

        Keys are the stage names of :data:`~repro.api.stages.STAGE_ORDER`
        (plus ``"distance"`` when the distance oracle was rebuilt); stages
        never built by this session are absent, reused stages keep the
        timing of their last actual build.  Wall-clock accurate: each value
        is the ``perf_counter`` interval around that stage's build call.
        """
        return dict(self._stage_seconds)

    def stale_stages(self, **changes) -> frozenset:
        """Stages :meth:`recompress` would rebuild for the given config changes.

        Includes stages that have never been built.  With no arguments this
        reports what a plain :meth:`compress` call would have to build.
        """
        new_config = self._config.replace(**changes) if changes else self._config
        stale = set(invalidated_stages(changed_fields(self._config, new_config)))
        for stage in STAGE_ORDER:
            if not self._entry_valid(stage, stage_fingerprint(new_config, stage)):
                stale.add(stage)
        # Cascade: anything downstream of a stale stage is stale too.
        for stage in STAGE_ORDER:
            if any(up in stale for up in STAGE_UPSTREAM[stage]):
                stale.add(stage)
        return frozenset(stale)

    def artifact(self, stage: str):
        """The cached artifact for a stage, or ``None`` if not built."""
        entry = self._cache.get(stage)
        return entry.value if entry is not None else None

    def invalidate(self, *stages: str) -> frozenset:
        """Drop cached stage artifacts so the next :meth:`compress` rebuilds them.

        Everything downstream of a dropped stage is dropped too (it could
        not be reused anyway — its upstream version no longer exists).
        With no arguments every stage is dropped.  Returns the set of
        stages removed.  This is the supported way for tooling (e.g. the
        compression benchmark) to force warm rebuilds of specific stages.
        """
        targets = set(stages) if stages else set(STAGE_ORDER)
        unknown = targets - set(STAGE_ORDER)
        if unknown:
            raise CompressionError(
                f"unknown stage(s) {sorted(unknown)}; stages are {list(STAGE_ORDER)}"
            )
        for stage in STAGE_ORDER:  # build order: cascade downstream
            if any(up in targets for up in STAGE_UPSTREAM[stage]):
                targets.add(stage)
        for stage in targets:
            self._cache.pop(stage, None)
        return frozenset(targets)

    # -- pipeline --------------------------------------------------------------
    def _distance_oracle(self, timer: Optional[_PhaseTimer] = None):
        """The distance object, rebuilt only when the metric changes."""
        if self._distance is None or self._distance_metric != self._config.distance:
            t0 = time.perf_counter()
            with (timer("distance") if timer is not None else nullcontext()):
                with get_tracer().span("session.distance"):
                    self._distance = _pipeline.run_distance_stage(self.matrix, self._config, self.coordinates)
            self._stage_seconds["distance"] = time.perf_counter() - t0
            self._distance_metric = self._config.distance
        return self._distance

    def _entry_valid(self, stage: str, fingerprint: dict) -> bool:
        """Whether the cached entry for ``stage`` is current.

        Valid iff its own config fields are unchanged *and* every direct
        upstream artifact is still the exact artifact (by version) it was
        built from.  Version comparison — not "was it rebuilt this pass" —
        keeps validity correct even after an aborted compress() left the
        cache with a fresh upstream but stale downstream entries.
        """
        entry = self._cache.get(stage)
        if entry is None or entry.fingerprint != fingerprint:
            return False
        for up in STAGE_UPSTREAM[stage]:
            up_entry = self._cache.get(up)
            if up_entry is None or (entry.upstream_versions or {}).get(up) != up_entry.version:
                return False
        return True

    def _ensure(self, stage: str, rebuilt: set, build, timer: Optional[_PhaseTimer]):
        """Return the stage artifact, rebuilding it iff it is stale."""
        fingerprint = stage_fingerprint(self._config, stage)
        if self._entry_valid(stage, fingerprint):
            return self._cache[stage].value
        t0 = time.perf_counter()
        with (timer(_PHASE_NAME[stage]) if timer is not None else nullcontext()):
            with get_tracer().span(f"session.{stage}"):
                value = build()
        self._stage_seconds[stage] = time.perf_counter() - t0
        self._cache[stage] = _CachedStage(
            value=value,
            fingerprint=fingerprint,
            version=next(_VERSION_COUNTER),
            upstream_versions={up: self._cache[up].version for up in STAGE_UPSTREAM[stage]},
        )
        rebuilt.add(stage)
        self.stage_builds[stage] += 1
        return value

    def _ensure_partition_and_neighbors(
        self, timer: Optional[_PhaseTimer], rebuilt: set
    ) -> tuple[Partition, Neighbors]:
        """Ensure just the two disk-persistable artifacts (tree + ANN table)."""
        config = self._config

        # Build the distance oracle up front (its own "distance" phase), but
        # only when a stage that consumes it is actually stale — nesting it
        # inside a stage timer would double-count its cost in the report.
        needs_distance = not self._entry_valid(
            "partition", stage_fingerprint(config, "partition")
        ) or not self._entry_valid("neighbors", stage_fingerprint(config, "neighbors"))
        distance = self._distance_oracle(timer) if needs_distance else None

        partition: Partition = self._ensure(
            "partition",
            rebuilt,
            lambda: Partition(tree=_pipeline.run_partition_stage(self.matrix.n, config, distance)),
            timer,
        )
        neighbors: Neighbors = self._ensure(
            "neighbors",
            rebuilt,
            lambda: Neighbors(table=_pipeline.run_neighbors_stage(distance, config)),
            timer,
        )
        return partition, neighbors

    def prepare(self, timer: Optional[_PhaseTimer] = None, rebuilt: Optional[set] = None) -> tuple:
        """Ensure the matrix-light artifacts (partition, ANN, interaction lists).

        These are exactly the artifacts :meth:`attach` shares across a family
        of operators.  Returns ``(Partition, Neighbors, Interactions)``.
        """
        rebuilt = set() if rebuilt is None else rebuilt
        config = self._config
        partition, neighbors = self._ensure_partition_and_neighbors(timer, rebuilt)

        # The interactions stage annotates a fresh clone of the partition; the
        # clone is kept for this pass so a following skeletons rebuild does not
        # need to clone + stamp again.
        scratch: dict[str, object] = {}

        def build_interactions() -> Interactions:
            tree = partition.working_tree()
            lists = _pipeline.run_interactions_stage(tree, neighbors.table, config)
            scratch["tree"] = tree
            return Interactions.capture(tree, lists)

        interactions: Interactions = self._ensure("interactions", rebuilt, build_interactions, timer)
        self._scratch_tree = scratch.get("tree")
        return partition, neighbors, interactions

    def compress(self) -> CompressedOperator:
        """Run (or reuse) every pipeline stage and return the operator.

        Only stale stages execute; the returned operator's ``report`` lists
        executed phases in ``phase_seconds`` and reused ones in
        ``reused_phases``.  When this session has an enabled tracer
        (``Session(tracer=...)`` or ``config.telemetry``), it is installed
        as the active tracer for the duration of the call, so stage and
        per-level spans are recorded.
        """
        if self._config.telemetry and not self.tracer.enabled:
            self.tracer = Tracer()
        if self.tracer.enabled:
            with tracing(self.tracer):
                return self._compress_impl()
        return self._compress_impl()

    def _compress_impl(self) -> CompressedOperator:
        report = CompressionReport()
        timer = _PhaseTimer(report)
        start_evals = self.matrix.entry_evaluations
        rebuilt: set[str] = set()
        config = self._config

        partition, neighbors, interactions = self.prepare(timer, rebuilt)

        def build_skeletons() -> Skeletons:
            tree = self._scratch_tree
            if tree is None or "interactions" not in rebuilt:
                tree = partition.working_tree()
                interactions.materialize(tree)
            stats = _pipeline.run_skeletons_stage(tree, self.matrix, config, neighbors.table)
            return Skeletons(tree=tree, lists=interactions.lists, stats=stats)

        skeletons: Skeletons = self._ensure("skeletons", rebuilt, build_skeletons, timer)
        self._scratch_tree = None

        blocks: Blocks = self._ensure(
            "blocks",
            rebuilt,
            lambda: Blocks(*_pipeline.run_blocks_stage(skeletons.tree, self.matrix, config)),
            timer,
        )

        previous_plan_entry = self._cache.get("plan")
        blocks_entry = self._cache.get("blocks")

        def build_plan() -> Plan:
            compressed = CompressedMatrix(
                tree=skeletons.tree,
                lists=skeletons.lists,
                config=config,
                near_blocks=blocks.near_blocks,
                far_blocks=blocks.far_blocks,
                matrix=self.matrix,
                neighbors=neighbors.table,
            )
            if (
                previous_plan_entry is not None
                and blocks_entry is not None
                and (previous_plan_entry.upstream_versions or {}).get("blocks") == blocks_entry.version
            ):
                # The previous plans were built against these exact blocks
                # (same tree / lists / providers): still exact — only the
                # config wrapper changed.  Each cached plan additionally
                # requires its own packing knob to be unchanged (the packed
                # plan's rank bucketing, the streaming plan's chunk budget).
                old = previous_plan_entry.fingerprint
                if old.get("plan_rank_bucketing") == config.plan_rank_bucketing:
                    compressed._plan = previous_plan_entry.value.compressed._plan
                if old.get("streaming_chunk_bytes") == config.streaming_chunk_bytes:
                    compressed._streaming_plan = (
                        previous_plan_entry.value.compressed._streaming_plan
                    )
            if config.prebuild_plan:
                compressed.plan()
            return Plan(compressed=compressed)

        plan: Plan = self._ensure("plan", rebuilt, build_plan, timer)

        # -- report ----------------------------------------------------------
        report.num_leaves = partition.num_leaves
        report.tree_depth = partition.depth
        report.neighbor_iterations = neighbors.iterations
        report.neighbor_converged = neighbors.converged
        report.near_pairs = interactions.lists.total_near_pairs()
        report.far_pairs = interactions.lists.total_far_pairs()
        report.average_rank = skeletons.average_rank
        report.max_rank = skeletons.max_rank
        report.entry_evaluations = self.matrix.entry_evaluations - start_evals
        report.reused_phases = [
            _PHASE_NAME[stage] for stage in STAGE_ORDER if stage not in rebuilt
        ]
        self.last_built = tuple(stage for stage in STAGE_ORDER if stage in rebuilt)
        self.last_reused = tuple(stage for stage in STAGE_ORDER if stage not in rebuilt)

        return CompressedOperator(plan.compressed, report=report)

    def recompress(self, **config_changes) -> CompressedOperator:
        """Replace config fields and compress, reusing every unaffected stage.

        ``session.recompress(tolerance=1e-3, budget=0.05)`` rebuilds the
        interaction lists and everything downstream but performs zero ANN
        iterations and zero tree builds.
        """
        if config_changes:
            self._config = self._config.replace(**config_changes)
        return self.compress()

    # -- artifact persistence ----------------------------------------------------
    def save_artifacts(self, path, format: str = "npz") -> None:
        """Persist the Partition, Neighbors and Interactions artifacts.

        These are the matrix-light artifacts that dominate a cold
        compression at large n (tree build + iterative ANN search +
        interaction-list construction) and are plain arrays; a later
        process can :meth:`load_artifacts` them and pay only for
        skeletonization onward — the on-disk analogue of :meth:`attach`
        for repeated processes / service sharding, and the cold-start path
        of the serving runtime (:mod:`repro.serving`).  The file records
        each artifact's config fingerprint, and loading validates it
        against the loading session's config.

        ``format="npz"`` writes the legacy single ``.npz`` (loaded fully
        into memory — fine up to the RAM ceiling, kept for compatibility).
        ``format="dir"`` writes the format-v2 directory of
        :mod:`repro.storage.store` (``manifest.json`` + one ``.npy`` per
        array), which :meth:`load_artifacts` opens via ``mmap_mode="r"``
        so artifacts much larger than RAM page in on demand — prefer it
        for any new deployment; the ``.npz`` path is a migration shim.
        """
        partition, neighbors, interactions = self.prepare()
        arrays = partition.to_arrays()
        table = neighbors.table
        lists = interactions.lists
        num_nodes = len(partition.tree.nodes)

        def csr(values_of) -> tuple[np.ndarray, np.ndarray]:
            """Node-id-indexed ragged lists as (indptr, cols); order-preserving."""
            indptr = np.zeros(num_nodes + 1, dtype=np.intp)
            cols: list[int] = []
            for node_id in range(num_nodes):
                cols.extend(values_of(node_id))
                indptr[node_id + 1] = len(cols)
            return indptr, np.asarray(cols, dtype=np.intp)

        near_indptr, near_cols = csr(lambda i: lists.near.get(i, []))
        far_indptr, far_cols = csr(lambda i: lists.far.get(i, []))
        nl_present = np.zeros(num_nodes, dtype=bool)
        for node_id in interactions.neighbor_lists:
            nl_present[node_id] = True
        nl_indptr, nl_cols = csr(
            lambda i: interactions.neighbor_lists.get(i, np.empty(0, dtype=np.intp))
        )
        meta = {
            "format": 2,
            "n": int(self.matrix.n),
            "depth": int(partition.depth),
            "has_neighbors": table is not None,
            "iterations": int(neighbors.iterations),
            "converged": bool(neighbors.converged),
            "budget_cap": int(lists.budget_cap),
            "num_leaves": int(lists.num_leaves),
            "fingerprints": {
                stage: _jsonable_fingerprint(stage_fingerprint(self._config, stage))
                for stage in ("partition", "neighbors", "interactions")
            },
        }
        payload = {
            "node_offsets": arrays["node_offsets"],
            "node_indices": arrays["node_indices"],
            "neighbor_indices": table.indices if table is not None else np.empty((0, 0), dtype=np.intp),
            "neighbor_distances": table.distances if table is not None else np.empty((0, 0)),
            "near_indptr": near_indptr,
            "near_cols": near_cols,
            "far_indptr": far_indptr,
            "far_cols": far_cols,
            "nl_present": nl_present,
            "nl_indptr": nl_indptr,
            "nl_cols": nl_cols,
        }
        if format == "dir":
            from ..storage.store import STORE_SCHEMA_VERSION, write_array_dir

            manifest = {"kind": "session-artifacts", "schema_version": STORE_SCHEMA_VERSION}
            manifest.update(meta)
            write_array_dir(path, manifest, payload)
        elif format == "npz":
            payload["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
            with open(path, "wb") as fh:
                np.savez(fh, **payload)
        else:
            raise ConfigurationError(
                f"unknown artifact format {format!r}: expected 'npz' or 'dir'"
            )

    def load_artifacts(self, path) -> tuple[str, ...]:
        """Install the artifacts saved by :meth:`save_artifacts`.

        Format-2 files carry Partition + Neighbors + Interactions (servers
        cold-start without re-running interaction-list construction);
        format-1 files (pre-Interactions) still load their two stages.
        Accepts either the legacy ``.npz`` file or the format-v2 directory
        (``format="dir"``); a directory's arrays are opened with
        ``mmap_mode="r"`` so the load itself stays near-zero-resident.
        Validates the stored problem size and per-stage config fingerprints
        against this session's matrix and config; a mismatch — or a
        truncated / hand-edited file — raises
        :class:`~repro.errors.ArtifactMismatchError` rather than silently
        compressing against a foreign partition.  Returns the names of the
        installed stages; a following :meth:`compress` skips them all.
        """
        import os
        import zipfile

        if os.path.isdir(path):
            from ..storage.store import read_array_dir

            meta, data = read_array_dir(path, mmap=True)
            if meta.get("kind") != "session-artifacts":
                raise ArtifactMismatchError(
                    f"{path!s} is a {meta.get('kind', 'unknown')!r} store, not a "
                    f"session-artifacts directory"
                )
            try:
                node_offsets = data["node_offsets"]
                node_indices = data["node_indices"]
                neighbor_indices = data["neighbor_indices"]
                neighbor_distances = data["neighbor_distances"]
                fmt = int(meta.get("format", 1))
                if fmt >= 2:
                    near_indptr = data["near_indptr"]
                    near_cols = data["near_cols"]
                    far_indptr = data["far_indptr"]
                    far_cols = data["far_cols"]
                    nl_present = data["nl_present"]
                    nl_indptr = data["nl_indptr"]
                    nl_cols = data["nl_cols"]
            except KeyError as exc:
                raise ArtifactMismatchError(
                    f"artifact directory {path!s} is missing array {exc}"
                ) from exc
        else:
            _LOG.info(
                "loading legacy .npz session artifacts from %s (fully resident); "
                "prefer save_artifacts(format='dir') for mmap cold starts",
                path,
            )
            try:
                with np.load(path) as data:
                    meta = json.loads(bytes(data["meta"]))
                    node_offsets = data["node_offsets"]
                    node_indices = data["node_indices"]
                    neighbor_indices = data["neighbor_indices"]
                    neighbor_distances = data["neighbor_distances"]
                    fmt = int(meta.get("format", 1))
                    if fmt >= 2:
                        near_indptr = data["near_indptr"]
                        near_cols = data["near_cols"]
                        far_indptr = data["far_indptr"]
                        far_cols = data["far_cols"]
                        nl_present = data["nl_present"]
                        nl_indptr = data["nl_indptr"]
                        nl_cols = data["nl_cols"]
            except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
                # np.load raises zipfile.BadZipFile on a truncated archive,
                # KeyError on a missing member, and ValueError on corrupt
                # npy headers / malformed meta JSON.
                raise ArtifactMismatchError(
                    f"artifact file {path!s} is truncated or corrupt: {exc}"
                ) from exc
        if int(meta["n"]) != self.matrix.n:
            raise ArtifactMismatchError(
                f"artifact file holds a partition of n={meta['n']}, session matrix has n={self.matrix.n}"
            )
        stale = []
        for stage in ("partition", "neighbors"):
            current = _jsonable_fingerprint(stage_fingerprint(self._config, stage))
            if meta["fingerprints"][stage] != current:
                stale.append(stage)
        if stale:
            raise ArtifactMismatchError(
                f"artifact fingerprints do not match the session config for stage(s) "
                f"{', '.join(stale)}; recompute with save_artifacts under the current config"
            )
        # The interactions artifact is optional cargo: a fingerprint mismatch
        # (e.g. the loading session sweeps ``budget``) just means the lists
        # must be rebuilt — it never blocks loading the partition + ANN table.
        load_interactions = fmt >= 2 and meta["fingerprints"]["interactions"] == (
            _jsonable_fingerprint(stage_fingerprint(self._config, "interactions"))
        )

        try:
            partition = Partition.from_arrays(node_offsets, node_indices, meta["depth"], meta["n"])
            # Structural validation at the trust boundary: a truncated or
            # hand-edited file must fail here, not deep inside compression.
            partition.tree.check_invariants(self._config.leaf_size)
        except ArtifactMismatchError:
            raise
        except Exception as exc:
            raise ArtifactMismatchError(
                f"artifact file holds a malformed partition: {exc}"
            ) from exc
        if meta["has_neighbors"]:
            from ..core.neighbors import NeighborTable

            indices = np.asarray(neighbor_indices, dtype=np.intp)
            distances = np.asarray(neighbor_distances)
            # Same trust-boundary validation as the partition: a truncated
            # table must fail here, not as an IndexError inside compression.
            if (
                indices.ndim != 2
                or indices.shape[0] != self.matrix.n
                or distances.shape != indices.shape
                or (indices.size and (indices.min() < 0 or indices.max() >= self.matrix.n))
            ):
                raise ArtifactMismatchError(
                    f"artifact file holds a malformed neighbor table "
                    f"(shape {indices.shape} for n={self.matrix.n})"
                )
            table = NeighborTable(
                indices=indices,
                distances=distances,
                iterations=int(meta["iterations"]),
                converged=bool(meta["converged"]),
            )
        else:
            table = None
        for stage, value in (("partition", partition), ("neighbors", Neighbors(table=table))):
            self._cache[stage] = _CachedStage(
                value=value,
                fingerprint=stage_fingerprint(self._config, stage),
                version=next(_VERSION_COUNTER),
                upstream_versions={},
            )
        if not load_interactions:
            return ("partition", "neighbors")

        # -- interactions (format >= 2): CSR over node ids, order-preserving --
        num_nodes = len(partition.tree.nodes)
        interactions = self._decode_interactions(
            partition, num_nodes,
            near_indptr, near_cols, far_indptr, far_cols,
            nl_present, nl_indptr, nl_cols,
            budget_cap=int(meta["budget_cap"]), num_leaves=int(meta["num_leaves"]),
        )
        self._cache["interactions"] = _CachedStage(
            value=interactions,
            fingerprint=stage_fingerprint(self._config, "interactions"),
            version=next(_VERSION_COUNTER),
            upstream_versions={
                up: self._cache[up].version for up in STAGE_UPSTREAM["interactions"]
            },
        )
        return ("partition", "neighbors", "interactions")

    def _decode_interactions(
        self, partition, num_nodes,
        near_indptr, near_cols, far_indptr, far_cols,
        nl_present, nl_indptr, nl_cols,
        budget_cap: int, num_leaves: int,
    ) -> Interactions:
        """Rebuild the :class:`Interactions` artifact from its CSR encoding.

        Same trust-boundary stance as the partition/neighbor loaders: a
        truncated or hand-edited file must fail here with a
        :class:`CompressionError`, not as an IndexError deep inside
        compression.
        """
        from ..core.interactions import InteractionLists

        def decode(indptr, cols, what: str, bound: int) -> dict[int, list[int]]:
            # ``bound``: node ids for Near/Far lists, global point indices
            # (``n``) for the per-node neighbor lists N(α).
            indptr = np.asarray(indptr, dtype=np.intp)
            cols = np.asarray(cols, dtype=np.intp)
            if (
                indptr.shape != (num_nodes + 1,)
                or indptr[0] != 0
                or np.any(np.diff(indptr) < 0)
                or indptr[-1] != cols.size
                or (cols.size and (cols.min() < 0 or cols.max() >= bound))
            ):
                raise ArtifactMismatchError(f"artifact file holds malformed {what} lists")
            return {
                i: cols[indptr[i] : indptr[i + 1]].tolist() for i in range(num_nodes)
            }

        tree = partition.tree
        leaf_ids = {leaf.node_id for leaf in tree.leaves}
        if num_leaves != len(leaf_ids):
            raise ArtifactMismatchError(
                f"artifact file holds interaction lists over {num_leaves} leaves, "
                f"partition has {len(leaf_ids)}"
            )
        near_all = decode(near_indptr, near_cols, "Near", num_nodes)
        far = decode(far_indptr, far_cols, "Far", num_nodes)
        # Near lists exist for leaves only (matching build_near_lists); a
        # non-empty Near list on an internal node is a malformed file.
        near = {i: members for i, members in near_all.items() if i in leaf_ids}
        if any(members for i, members in near_all.items() if i not in leaf_ids):
            raise ArtifactMismatchError("artifact file holds Near lists on internal nodes")
        nl_all = decode(nl_indptr, nl_cols, "node-neighbor", self.matrix.n)
        nl_present = np.asarray(nl_present, dtype=bool)
        if nl_present.shape != (num_nodes,):
            raise ArtifactMismatchError("artifact file holds a malformed node-neighbor mask")
        neighbor_lists = {
            i: np.asarray(nl_all[i], dtype=np.intp)
            for i in range(num_nodes)
            if nl_present[i]
        }
        lists = InteractionLists(
            near=near,
            far=far,
            leaf_position={leaf.node_id: pos for pos, leaf in enumerate(tree.leaves)},
            num_leaves=num_leaves,
            budget_cap=budget_cap,
        )
        return Interactions(lists=lists, neighbor_lists=neighbor_lists)

    # -- operator families -----------------------------------------------------
    def attach(self, matrix, **config_changes) -> "Session":
        """A new session for another matrix sharing this session's partition.

        The partition, ANN table and interaction lists — all matrix-light —
        are shared, so compressing a family of operators (kernel bandwidths,
        regularizations, …) pays the tree / neighbor cost once.  The new
        matrix must have the same dimension.  Skeletons and cached blocks
        are always rebuilt against the new matrix's entries.

        This is also how a serving cluster
        (:class:`~repro.serving.cluster.ShardRouter`) hosts an operator
        family cheaply: build one session, ``attach`` per family member,
        compress, and ``router.register`` each resulting operator — the
        shards then share the matrix-light artifacts through the shared
        session caches (or, across processes, through one
        :meth:`save_artifacts` file loaded per build).
        """
        matrix = as_spd_matrix(matrix)
        if matrix.n != self.matrix.n:
            raise CompressionError(
                f"attach requires a matrix of the same size (session n={self.matrix.n}, got n={matrix.n})"
            )
        # Make sure the shareable artifacts exist before handing them over.
        self.prepare()
        other = Session(
            matrix,
            self._config.replace(**config_changes) if config_changes else self._config,
            coordinates=self.coordinates,
        )
        for stage in _SHARED_ON_ATTACH:
            entry = self._cache.get(stage)
            if entry is not None:
                other._cache[stage] = entry
        return other

    def __repr__(self) -> str:
        built = ", ".join(s for s in STAGE_ORDER if s in self._cache) or "none"
        return f"<Session n={self.matrix.n} built=[{built}] config=({self._config.describe()})>"
