"""Staged compression sessions: the user-facing pipeline API.

This package redesigns the top-level GOFMM entry points around explicit,
reusable pipeline artifacts:

* :class:`Session` — owns the pipeline stages (partition → ANN → interaction
  lists → skeletons → blocks → plan) as individually cached artifacts and
  rebuilds only what a config change invalidates (``recompress``), or shares
  the matrix-light artifacts across a family of operators (``attach``),
* :class:`CompressedOperator` — the result: a
  ``scipy.sparse.linalg.LinearOperator`` that works directly with
  ``scipy.sparse.linalg.cg`` / ``gmres`` / ``lobpcg`` and carries
  ``solve`` / ``relative_error`` / report accessors,
* :mod:`repro.api.stages` — the artifact classes plus the stage → config-field
  dependency tables (:data:`STAGE_FIELDS`, :func:`invalidated_stages`).

The legacy one-shot helpers (``repro.gofmm.compress`` / ``run`` /
``compare_fmm_hss``) are thin wrappers over sessions and remain fully
supported.
"""

from .operator import CompressedOperator
from .session import Session
from .stages import (
    STAGE_FIELDS,
    STAGE_ORDER,
    STAGE_UPSTREAM,
    Blocks,
    Interactions,
    Neighbors,
    Partition,
    Plan,
    Skeletons,
    changed_fields,
    invalidated_stages,
)

__all__ = [
    "Session",
    "CompressedOperator",
    "Partition",
    "Neighbors",
    "Interactions",
    "Skeletons",
    "Blocks",
    "Plan",
    "STAGE_ORDER",
    "STAGE_FIELDS",
    "STAGE_UPSTREAM",
    "changed_fields",
    "invalidated_stages",
]
