"""`scipy.sparse.linalg.LinearOperator`-compatible compressed operator.

:class:`CompressedOperator` wraps the :class:`~repro.core.hmatrix.CompressedMatrix`
a session produced and presents it as a first-class SciPy linear operator:
``_matvec`` / ``_rmatvec`` / ``_matmat`` dispatch to the configured
evaluation engine, so the operator drops directly into
``scipy.sparse.linalg.cg`` / ``gmres`` / ``lobpcg`` / ``aslinearoperator``
and any other consumer of the ``LinearOperator`` protocol.  On top of the
protocol it carries the library-native conveniences: ``solve`` (block-Jacobi
preconditioned CG on the compressed matvec), ``relative_error`` (the
paper's ε2), and the rank / storage / plan / interaction reports.

**Thread safety.**  ``matvec`` / ``matmat`` / ``apply`` / ``solve`` are safe
to call from concurrent threads on one operator — the serving runtime
(:mod:`repro.serving`) does exactly that.  The compressed representation
(tree, packed plan, streaming plan, cached blocks) is immutable after
compression; all per-call state lives in per-call contexts, with the
planned engine drawing its workspaces from a small thread-safe pool on the
plan (:meth:`repro.core.plan.EvaluationPlan.new_context`) and the streamed
engine allocating its chunk buffers per call.  Two caveats: the FLOP
``counters`` carried by the underlying :class:`CompressedMatrix` (and the
source matrix's ``entry_evaluations``, which streamed matvecs advance) are
updated without a lock (concurrent calls may under-count — they are
diagnostics, never results), and the first ``plan()`` /
``streaming_plan()`` build is not synchronized, so prebuild the default
engine's plan before fanning out threads — the server does this at
registration.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Optional

import numpy as np
from scipy.sparse.linalg import LinearOperator

from ..core.compress import CompressionReport
from ..core.hmatrix import CompressedMatrix

__all__ = ["CompressedOperator", "OperatorReport"]

#: Schema version of the dict :meth:`OperatorReport.__call__` returns.
#: v2 adds ``stage_seconds`` — the per-stage wall-clock breakdown of the
#: compression (the report's ``phase_seconds``, empty for stages that were
#: reused from a session cache or for operators opened from a store).
REPORT_SCHEMA_VERSION = 2


class OperatorReport(CompressionReport):
    """The operator's compression report, callable for the stable summary.

    Field access (``operator.report.average_rank``, ``isinstance(...,
    CompressionReport)``) behaves exactly like the wrapped
    :class:`~repro.core.compress.CompressionReport`; *calling* it —
    ``operator.report()`` — returns a stable-schema dict whose keys are
    always present, including the live ``bytes_resident`` /
    ``bytes_on_disk`` memory split of the operator's representation
    (mmap-opened stores report their coefficients and blocks on disk).
    """

    def __init__(self, operator: "CompressedOperator", base: Optional[CompressionReport] = None) -> None:
        base = base if base is not None else CompressionReport()
        super().__init__(
            **{f.name: getattr(base, f.name) for f in dataclasses.fields(CompressionReport)}
        )
        self._operator = operator

    def __call__(self) -> dict:
        operator = self._operator
        memory = operator.compressed.memory_report()
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "n": int(operator.n),
            "engine": operator.default_engine(),
            "bytes_resident": int(memory["bytes_resident"]),
            "bytes_on_disk": int(memory["bytes_on_disk"]),
            "average_rank": float(self.average_rank),
            "max_rank": int(self.max_rank),
            "num_leaves": int(self.num_leaves),
            "tree_depth": int(self.tree_depth),
            "near_pairs": int(self.near_pairs),
            "far_pairs": int(self.far_pairs),
            "compression_seconds": float(self.total_seconds),
            "stage_seconds": {
                phase: float(seconds) for phase, seconds in self.phase_seconds.items()
            },
        }


class CompressedOperator(LinearOperator):
    """A compressed SPD operator ``K̃ ≈ K`` with the SciPy operator protocol.

    ``K̃`` is symmetric by construction (symmetrized interaction lists), so
    the adjoint product reuses the forward matvec.  ``operator @ w`` and
    ``operator.matmat(w)`` evaluate all right-hand sides in one wide-GEMM
    pass of the planned engine.
    """

    #: Block-Jacobi factor sets kept per operator (one per distinct shift).
    _PRECONDITIONER_CACHE_MAX = 8

    def __init__(self, compressed: CompressedMatrix, report: Optional[CompressionReport] = None) -> None:
        self.compressed = compressed
        # ``report`` is both the compression report (attribute access, the
        # historical contract) and callable for the stable summary dict with
        # the bytes_resident / bytes_on_disk split.
        self.report = OperatorReport(self, report)
        # Block-Jacobi factors per shift, built once and shared across solves
        # (they are read-only after construction): a serving batch of solves
        # must not re-factor every leaf diagonal block per request batch.
        self._preconditioners: dict[float, object] = {}
        self._preconditioner_lock = threading.Lock()
        super().__init__(dtype=np.dtype(compressed.config.dtype), shape=compressed.shape)

    # -- out-of-core persistence --------------------------------------------------
    def save(self, path) -> None:
        """Persist the operator as a format-v2 store directory.

        The directory (``manifest.json`` + per-array ``.npy`` files) is the
        out-of-core counterpart of ``Session.save_artifacts``: it carries
        the *complete* compressed representation — tree, skeletons,
        coefficients, interaction lists and every cached block — so
        :meth:`open` can cold-start a serving replica without the source
        matrix or any recompression.
        """
        from ..storage.store import OperatorStore

        OperatorStore.save(self, path)

    @classmethod
    def open(
        cls, path, resident: str = "mmap", matrix=None, **config_overrides
    ) -> "CompressedOperator":
        """Open an operator store directory written by :meth:`save`.

        ``resident="mmap"`` (default) keeps coefficients and cached blocks
        as read-only mmap views — the OS pages them in on demand, so the
        operator cold-starts with near-zero resident footprint and serves
        through the ``"streamed"`` engine's bounded workspace.
        ``resident="ram"`` loads everything eagerly (the classic behavior,
        keeping the engine the operator was saved with).  ``matrix``
        re-attaches the source SPD matrix — required only for stores saved
        from memoryless compressions (no cached blocks).  Extra keyword
        arguments override config fields of the opened operator (e.g.
        ``streaming_chunk_bytes=...`` to re-budget the workspace).
        """
        from ..storage.store import OperatorStore

        store = OperatorStore(path)
        compressed = store.open(resident=resident, matrix=matrix, **config_overrides)
        return cls(compressed)

    # -- LinearOperator protocol ------------------------------------------------
    def _matvec(self, x: np.ndarray) -> np.ndarray:
        return self.compressed.matvec(x)

    def _rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.compressed.matvec_transpose(x)

    def _matmat(self, X: np.ndarray) -> np.ndarray:
        return self.compressed.matvec(X)

    def _adjoint(self) -> "CompressedOperator":
        return self  # symmetric

    # -- engine-aware products ---------------------------------------------------
    def apply(self, w: np.ndarray, engine: Optional[str] = None) -> np.ndarray:
        """Shape-preserving product ``K̃ w`` with an explicit engine choice.

        Unlike :meth:`matvec` (which follows SciPy's strict vector-shape
        contract), ``apply`` accepts ``(N,)`` or ``(N, r)`` and forwards
        ``engine`` to the underlying :class:`CompressedMatrix`.
        """
        return self.compressed.matvec(w, engine=engine)

    def default_engine(self) -> str:
        return self.compressed.default_engine()

    # -- solving / accuracy -------------------------------------------------------
    def preconditioner(self, shift: float = 0.0):
        """The block-Jacobi preconditioner for ``K̃ + shift·I``, cached per shift.

        Factoring the leaf diagonal blocks costs as much as several CG
        iterations; a server answering a stream of solves must pay it once
        per operator, not once per request batch.  The returned object is
        immutable and safe to share across threads.  The cache is bounded
        (oldest shift evicted) so request streams sweeping ``shift`` — a
        client-controllable solve parameter — cannot grow memory without
        limit.
        """
        from ..solvers import BlockJacobiPreconditioner

        key = float(shift)
        with self._preconditioner_lock:
            preconditioner = self._preconditioners.pop(key, None)
            if preconditioner is not None:
                # re-insert on hit: insertion order approximates LRU, so a
                # sweep of fresh shifts evicts cold entries, not the hot one
                self._preconditioners[key] = preconditioner
        if preconditioner is not None:
            return preconditioner
        # Build outside the lock: the factorization is expensive and must not
        # serialize concurrent solves with other shifts (racing builders of
        # the same shift duplicate work once; the first insert wins).
        preconditioner = BlockJacobiPreconditioner(self.compressed, shift=key)
        with self._preconditioner_lock:
            existing = self._preconditioners.get(key)
            if existing is not None:
                return existing
            while len(self._preconditioners) >= self._PRECONDITIONER_CACHE_MAX:
                self._preconditioners.pop(next(iter(self._preconditioners)))
            self._preconditioners[key] = preconditioner
        return preconditioner

    def solve(
        self,
        rhs: np.ndarray,
        shift: float = 0.0,
        tolerance: float = 1e-8,
        max_iterations: int = 500,
        use_preconditioner: bool = True,
        engine: Optional[str] = None,
    ):
        """Solve ``(K̃ + shift·I) x = b`` with block-Jacobi preconditioned CG.

        ``rhs`` may be a vector or an ``(N, k)`` block of right-hand sides;
        the blocked solver evaluates all Krylov products as one wide GEMM
        per iteration.  The block-Jacobi factors are cached per ``shift``
        (see :meth:`preconditioner`), so repeated solves — a serving
        workload — skip the per-call factorization of
        :func:`repro.solvers.solve`.  Returns a :class:`repro.solvers.CGResult`.
        """
        from ..solvers import conjugate_gradient

        return conjugate_gradient(
            matvec=lambda v: self.compressed.matvec(v, engine=engine),
            rhs=rhs,
            shift=shift,
            tolerance=tolerance,
            max_iterations=max_iterations,
            preconditioner=self.preconditioner(shift) if use_preconditioner else None,
        )

    def relative_error(
        self,
        num_rhs: int = 10,
        num_sample_rows: int = 100,
        rng: np.random.Generator | None = None,
        engine: Optional[str] = None,
    ) -> float:
        """Sampled ε2 of the compression against its source matrix."""
        return self.compressed.relative_error(
            num_rhs=num_rhs, num_sample_rows=num_sample_rows, rng=rng, engine=engine
        )

    # -- reports ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.compressed.n

    @property
    def config(self):
        return self.compressed.config

    @property
    def tree(self):
        return self.compressed.tree

    @property
    def lists(self):
        return self.compressed.lists

    def rank_summary(self) -> dict:
        return self.compressed.rank_summary()

    def storage_report(self) -> dict:
        return self.compressed.storage_report()

    def plan_report(self) -> dict:
        return self.compressed.plan_report()

    def interaction_report(self) -> dict:
        return self.compressed.interaction_report()

    def evaluation_flops(self, num_rhs: int = 1) -> float:
        return self.compressed.evaluation_flops(num_rhs)

    def __repr__(self) -> str:
        cfg = self.compressed.config
        return (
            f"<CompressedOperator {self.shape[0]}x{self.shape[1]} dtype={self.dtype} "
            f"engine={cfg.evaluation_engine} budget={cfg.budget:g} tol={cfg.tolerance:g}>"
        )
