"""`scipy.sparse.linalg.LinearOperator`-compatible compressed operator.

:class:`CompressedOperator` wraps the :class:`~repro.core.hmatrix.CompressedMatrix`
a session produced and presents it as a first-class SciPy linear operator:
``_matvec`` / ``_rmatvec`` / ``_matmat`` dispatch to the configured
evaluation engine, so the operator drops directly into
``scipy.sparse.linalg.cg`` / ``gmres`` / ``lobpcg`` / ``aslinearoperator``
and any other consumer of the ``LinearOperator`` protocol.  On top of the
protocol it carries the library-native conveniences: ``solve`` (block-Jacobi
preconditioned CG on the compressed matvec), ``relative_error`` (the
paper's ε2), and the rank / storage / plan / interaction reports.

**Thread safety.**  ``matvec`` / ``matmat`` / ``apply`` / ``solve`` are safe
to call from concurrent threads on one operator — the serving runtime
(:mod:`repro.serving`) does exactly that.  The compressed representation
(tree, packed plan, streaming plan, cached blocks) is immutable after
compression; all per-call state lives in per-call contexts, with the
planned engine drawing its workspaces from a small thread-safe pool on the
plan (:meth:`repro.core.plan.EvaluationPlan.new_context`) and the streamed
engine allocating its chunk buffers per call.  Two caveats: the FLOP
``counters`` carried by the underlying :class:`CompressedMatrix` (and the
source matrix's ``entry_evaluations``, which streamed matvecs advance) are
updated without a lock (concurrent calls may under-count — they are
diagnostics, never results), and the first ``plan()`` /
``streaming_plan()`` build is not synchronized, so prebuild the default
engine's plan before fanning out threads — the server does this at
registration.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np
from scipy.sparse.linalg import LinearOperator

from ..core.compress import CompressionReport
from ..core.hmatrix import CompressedMatrix

__all__ = ["CompressedOperator"]


class CompressedOperator(LinearOperator):
    """A compressed SPD operator ``K̃ ≈ K`` with the SciPy operator protocol.

    ``K̃`` is symmetric by construction (symmetrized interaction lists), so
    the adjoint product reuses the forward matvec.  ``operator @ w`` and
    ``operator.matmat(w)`` evaluate all right-hand sides in one wide-GEMM
    pass of the planned engine.
    """

    #: Block-Jacobi factor sets kept per operator (one per distinct shift).
    _PRECONDITIONER_CACHE_MAX = 8

    def __init__(self, compressed: CompressedMatrix, report: Optional[CompressionReport] = None) -> None:
        self.compressed = compressed
        self.report = report
        # Block-Jacobi factors per shift, built once and shared across solves
        # (they are read-only after construction): a serving batch of solves
        # must not re-factor every leaf diagonal block per request batch.
        self._preconditioners: dict[float, object] = {}
        self._preconditioner_lock = threading.Lock()
        super().__init__(dtype=np.dtype(compressed.config.dtype), shape=compressed.shape)

    # -- LinearOperator protocol ------------------------------------------------
    def _matvec(self, x: np.ndarray) -> np.ndarray:
        return self.compressed.matvec(x)

    def _rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.compressed.matvec_transpose(x)

    def _matmat(self, X: np.ndarray) -> np.ndarray:
        return self.compressed.matvec(X)

    def _adjoint(self) -> "CompressedOperator":
        return self  # symmetric

    # -- engine-aware products ---------------------------------------------------
    def apply(self, w: np.ndarray, engine: Optional[str] = None) -> np.ndarray:
        """Shape-preserving product ``K̃ w`` with an explicit engine choice.

        Unlike :meth:`matvec` (which follows SciPy's strict vector-shape
        contract), ``apply`` accepts ``(N,)`` or ``(N, r)`` and forwards
        ``engine`` to the underlying :class:`CompressedMatrix`.
        """
        return self.compressed.matvec(w, engine=engine)

    def default_engine(self) -> str:
        return self.compressed.default_engine()

    # -- solving / accuracy -------------------------------------------------------
    def preconditioner(self, shift: float = 0.0):
        """The block-Jacobi preconditioner for ``K̃ + shift·I``, cached per shift.

        Factoring the leaf diagonal blocks costs as much as several CG
        iterations; a server answering a stream of solves must pay it once
        per operator, not once per request batch.  The returned object is
        immutable and safe to share across threads.  The cache is bounded
        (oldest shift evicted) so request streams sweeping ``shift`` — a
        client-controllable solve parameter — cannot grow memory without
        limit.
        """
        from ..solvers import BlockJacobiPreconditioner

        key = float(shift)
        with self._preconditioner_lock:
            preconditioner = self._preconditioners.pop(key, None)
            if preconditioner is not None:
                # re-insert on hit: insertion order approximates LRU, so a
                # sweep of fresh shifts evicts cold entries, not the hot one
                self._preconditioners[key] = preconditioner
        if preconditioner is not None:
            return preconditioner
        # Build outside the lock: the factorization is expensive and must not
        # serialize concurrent solves with other shifts (racing builders of
        # the same shift duplicate work once; the first insert wins).
        preconditioner = BlockJacobiPreconditioner(self.compressed, shift=key)
        with self._preconditioner_lock:
            existing = self._preconditioners.get(key)
            if existing is not None:
                return existing
            while len(self._preconditioners) >= self._PRECONDITIONER_CACHE_MAX:
                self._preconditioners.pop(next(iter(self._preconditioners)))
            self._preconditioners[key] = preconditioner
        return preconditioner

    def solve(
        self,
        rhs: np.ndarray,
        shift: float = 0.0,
        tolerance: float = 1e-8,
        max_iterations: int = 500,
        use_preconditioner: bool = True,
        engine: Optional[str] = None,
    ):
        """Solve ``(K̃ + shift·I) x = b`` with block-Jacobi preconditioned CG.

        ``rhs`` may be a vector or an ``(N, k)`` block of right-hand sides;
        the blocked solver evaluates all Krylov products as one wide GEMM
        per iteration.  The block-Jacobi factors are cached per ``shift``
        (see :meth:`preconditioner`), so repeated solves — a serving
        workload — skip the per-call factorization of
        :func:`repro.solvers.solve`.  Returns a :class:`repro.solvers.CGResult`.
        """
        from ..solvers import conjugate_gradient

        return conjugate_gradient(
            matvec=lambda v: self.compressed.matvec(v, engine=engine),
            rhs=rhs,
            shift=shift,
            tolerance=tolerance,
            max_iterations=max_iterations,
            preconditioner=self.preconditioner(shift) if use_preconditioner else None,
        )

    def relative_error(
        self,
        num_rhs: int = 10,
        num_sample_rows: int = 100,
        rng: np.random.Generator | None = None,
        engine: Optional[str] = None,
    ) -> float:
        """Sampled ε2 of the compression against its source matrix."""
        return self.compressed.relative_error(
            num_rhs=num_rhs, num_sample_rows=num_sample_rows, rng=rng, engine=engine
        )

    # -- reports ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.compressed.n

    @property
    def config(self):
        return self.compressed.config

    @property
    def tree(self):
        return self.compressed.tree

    @property
    def lists(self):
        return self.compressed.lists

    def rank_summary(self) -> dict:
        return self.compressed.rank_summary()

    def storage_report(self) -> dict:
        return self.compressed.storage_report()

    def plan_report(self) -> dict:
        return self.compressed.plan_report()

    def interaction_report(self) -> dict:
        return self.compressed.interaction_report()

    def evaluation_flops(self, num_rhs: int = 1) -> float:
        return self.compressed.evaluation_flops(num_rhs)

    def __repr__(self) -> str:
        cfg = self.compressed.config
        return (
            f"<CompressedOperator {self.shape[0]}x{self.shape[1]} dtype={self.dtype} "
            f"engine={cfg.evaluation_engine} budget={cfg.budget:g} tol={cfg.tolerance:g}>"
        )
