"""`scipy.sparse.linalg.LinearOperator`-compatible compressed operator.

:class:`CompressedOperator` wraps the :class:`~repro.core.hmatrix.CompressedMatrix`
a session produced and presents it as a first-class SciPy linear operator:
``_matvec`` / ``_rmatvec`` / ``_matmat`` dispatch to the configured
evaluation engine, so the operator drops directly into
``scipy.sparse.linalg.cg`` / ``gmres`` / ``lobpcg`` / ``aslinearoperator``
and any other consumer of the ``LinearOperator`` protocol.  On top of the
protocol it carries the library-native conveniences: ``solve`` (block-Jacobi
preconditioned CG on the compressed matvec), ``relative_error`` (the
paper's ε2), and the rank / storage / plan / interaction reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.sparse.linalg import LinearOperator

from ..core.compress import CompressionReport
from ..core.hmatrix import CompressedMatrix

__all__ = ["CompressedOperator"]


class CompressedOperator(LinearOperator):
    """A compressed SPD operator ``K̃ ≈ K`` with the SciPy operator protocol.

    ``K̃`` is symmetric by construction (symmetrized interaction lists), so
    the adjoint product reuses the forward matvec.  ``operator @ w`` and
    ``operator.matmat(w)`` evaluate all right-hand sides in one wide-GEMM
    pass of the planned engine.
    """

    def __init__(self, compressed: CompressedMatrix, report: Optional[CompressionReport] = None) -> None:
        self.compressed = compressed
        self.report = report
        super().__init__(dtype=np.dtype(compressed.config.dtype), shape=compressed.shape)

    # -- LinearOperator protocol ------------------------------------------------
    def _matvec(self, x: np.ndarray) -> np.ndarray:
        return self.compressed.matvec(x)

    def _rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.compressed.matvec_transpose(x)

    def _matmat(self, X: np.ndarray) -> np.ndarray:
        return self.compressed.matvec(X)

    def _adjoint(self) -> "CompressedOperator":
        return self  # symmetric

    # -- engine-aware products ---------------------------------------------------
    def apply(self, w: np.ndarray, engine: Optional[str] = None) -> np.ndarray:
        """Shape-preserving product ``K̃ w`` with an explicit engine choice.

        Unlike :meth:`matvec` (which follows SciPy's strict vector-shape
        contract), ``apply`` accepts ``(N,)`` or ``(N, r)`` and forwards
        ``engine`` to the underlying :class:`CompressedMatrix`.
        """
        return self.compressed.matvec(w, engine=engine)

    def default_engine(self) -> str:
        return self.compressed.default_engine()

    # -- solving / accuracy -------------------------------------------------------
    def solve(
        self,
        rhs: np.ndarray,
        shift: float = 0.0,
        tolerance: float = 1e-8,
        max_iterations: int = 500,
        use_preconditioner: bool = True,
        engine: Optional[str] = None,
    ):
        """Solve ``(K̃ + shift·I) x = b`` with block-Jacobi preconditioned CG.

        ``rhs`` may be a vector or an ``(N, k)`` block of right-hand sides;
        the blocked solver evaluates all Krylov products as one wide GEMM
        per iteration.  Returns a :class:`repro.solvers.CGResult`.
        """
        from ..solvers import solve as _solve

        return _solve(
            self.compressed,
            rhs,
            shift=shift,
            tolerance=tolerance,
            max_iterations=max_iterations,
            use_preconditioner=use_preconditioner,
            engine=engine,
        )

    def relative_error(
        self,
        num_rhs: int = 10,
        num_sample_rows: int = 100,
        rng: np.random.Generator | None = None,
        engine: Optional[str] = None,
    ) -> float:
        """Sampled ε2 of the compression against its source matrix."""
        return self.compressed.relative_error(
            num_rhs=num_rhs, num_sample_rows=num_sample_rows, rng=rng, engine=engine
        )

    # -- reports ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.compressed.n

    @property
    def config(self):
        return self.compressed.config

    @property
    def tree(self):
        return self.compressed.tree

    @property
    def lists(self):
        return self.compressed.lists

    def rank_summary(self) -> dict:
        return self.compressed.rank_summary()

    def storage_report(self) -> dict:
        return self.compressed.storage_report()

    def plan_report(self) -> dict:
        return self.compressed.plan_report()

    def interaction_report(self) -> dict:
        return self.compressed.interaction_report()

    def evaluation_flops(self, num_rhs: int = 1) -> float:
        return self.compressed.evaluation_flops(num_rhs)

    def __repr__(self) -> str:
        cfg = self.compressed.config
        return (
            f"<CompressedOperator {self.shape[0]}x{self.shape[1]} dtype={self.dtype} "
            f"engine={cfg.evaluation_engine} budget={cfg.budget:g} tol={cfg.tolerance:g}>"
        )
