"""Configuration objects for GOFMM compression and evaluation.

The paper exposes five user-facing knobs (§3, "Parameter selection"):

``m``
    leaf node size of the metric ball tree (paper uses 256–512, up to 800
    for kernel matrices),
``s``
    maximum skeleton rank (paper uses ``s = m`` typically),
``tau``
    adaptive rank tolerance ``τ`` — skeletonization keeps columns until the
    estimated ``σ_{s+1}`` of the sampled block drops below ``τ``,
``kappa``
    number of nearest neighbors ``κ`` per index used for the sparse
    correction and for importance sampling,
``budget``
    fraction controlling the number of direct (dense) leaf-leaf
    evaluations: ``|Near(β)| ≤ budget · (N / m)``.  ``budget == 0`` yields a
    pure HSS/HODLR approximation (``S = 0`` in Eq. (1)); ``budget > 0``
    yields the FMM variant.

In addition the distance metric used for tree partitioning and neighbor
search is selectable (§2.1): geometric ℓ2 (needs points), Gram ℓ2
("kernel"), Gram angle, plus the two no-metric reference orderings used in
Figure 7 (lexicographic and random).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from .errors import ConfigurationError

__all__ = ["DistanceMetric", "GOFMMConfig", "default_config", "hss_config", "fmm_config"]


class DistanceMetric(str, Enum):
    """Distance measure used to permute the matrix and find neighbors.

    ``GEOMETRIC``      point-based Euclidean distance (requires coordinates),
    ``KERNEL``         Gram-space ℓ2 distance,  d²(i,j) = Kii + Kjj − 2 Kij,
    ``ANGLE``          Gram-space angle distance, d(i,j) = 1 − Kij² / (Kii Kjj),
    ``LEXICOGRAPHIC``  keep the input ordering (no metric; HSS only),
    ``RANDOM``         random permutation (no metric; HSS only).
    """

    GEOMETRIC = "geometric"
    KERNEL = "kernel"
    ANGLE = "angle"
    LEXICOGRAPHIC = "lexicographic"
    RANDOM = "random"

    @property
    def needs_coordinates(self) -> bool:
        return self is DistanceMetric.GEOMETRIC

    @property
    def defines_distance(self) -> bool:
        """Whether the metric defines pairwise distances usable for ANN/pruning."""
        return self in (DistanceMetric.GEOMETRIC, DistanceMetric.KERNEL, DistanceMetric.ANGLE)


@dataclass(frozen=True)
class GOFMMConfig:
    """All tunable parameters of a GOFMM compression.

    Parameters
    ----------
    leaf_size:
        ``m`` — maximum number of indices owned by a leaf of the metric tree.
    max_rank:
        ``s`` — cap on the skeleton size of any node.
    tolerance:
        ``τ`` — adaptive-rank tolerance on the estimated trailing singular
        value of the sampled off-diagonal block.
    neighbors:
        ``κ`` — nearest neighbors per index used for neighbor-based pruning
        and importance sampling.  Ignored when the metric defines no distance.
    budget:
        fraction in ``[0, 1]``; caps ``|Near(β)|`` at ``budget · (N/m)``
        candidate leaves (plus β itself).  ``0`` gives an HSS approximation.
    distance:
        the :class:`DistanceMetric` used for partitioning / neighbor search.
    num_neighbor_trees:
        maximum number of randomized-projection-tree iterations for the
        all-nearest-neighbor search (paper: 10).
    neighbor_accuracy_target:
        stop the iterative ANN search once the neighbor lists stop changing
        by more than ``1 - target`` (paper: 0.8).
    sample_size:
        number of off-node rows sampled when skeletonizing a node (``|I'|``).
        The effective sample is ``max(sample_size, oversampling · rank cap)``.
    oversampling:
        multiplier on the rank cap used to size the row sample.
    centroid_samples:
        ``n_c`` — number of Gram vectors averaged to form the approximate
        centroid in Algorithm 2.1.
    adaptive_rank:
        if ``False``, always use ``max_rank`` columns (no adaptive truncation).
    cache_near_blocks / cache_far_blocks:
        evaluate and store ``K_{βα}`` / ``K_{β̃α̃}`` during compression (tasks
        Kba / SKba) rather than re-evaluating them in every matvec.
    symmetrize_lists:
        enforce ``α ∈ Near(β) ⇒ β ∈ Near(α)`` (and the same for Far lists) so
        the approximation is symmetric.
    secure_accuracy:
        if ``True``, raise when a node's skeletonization falls back to an
        empty skeleton instead of silently producing a rank-0 block.
    evaluation_engine:
        default matvec engine, validated against the registry of
        :mod:`repro.core.engines`.  Built-ins: ``"planned"`` executes the
        packed, level-batched plan of :mod:`repro.core.plan`;
        ``"streamed"`` runs the same level-batched passes but materializes
        near/far blocks chunk by chunk inside a bounded workspace
        (:mod:`repro.core.streaming` — the engine for memoryless
        configurations); ``"reference"`` runs the per-node traversal of
        :mod:`repro.core.evaluate`.  Any of them can be overridden per
        call via ``matvec(w, engine=...)``.
    streaming_chunk_bytes:
        workspace budget of the ``"streamed"`` engine, in bytes.  The
        engine partitions the evaluation's near/far blocks into chunks and
        pipelines their materialization against GEMM execution through a
        small set of cycling buffers (currently four, each sized an eighth
        of this budget, always holding at least one block); all in-flight
        chunk buffers *together* stay within this budget, so the
        evaluation-phase block memory is bounded regardless of how many
        interaction pairs the compression has.
    neighbor_backend:
        ANN-search backend, validated against the registry of
        :mod:`repro.core.neighbor_backends`.  Built-ins: ``"blocked"``
        (the default) merges whole batches of leaves into the neighbor
        table with vectorized dedup/top-κ passes; ``"reference"`` is the
        per-row merge loop kept as the correctness oracle; ``"sharded"``
        fans the blocked passes out over a process pool of
        ``neighbor_workers``.  All built-ins consume the same rng stream
        and share the merge tie-breaking rules, so they produce
        bit-identical neighbor tables.
    neighbor_workers:
        process count of the ``"sharded"`` neighbor backend.  Purely an
        execution knob: the per-iteration seed schedule is drawn up front
        and iterations are merged in order, so any worker count yields
        the same table — which is why this field enters no stage
        fingerprint and never invalidates session artifacts.
    compression_backend:
        skeletonization backend, validated against the registry of
        :mod:`repro.core.backends`.  Built-ins: ``"batched"`` (the
        default) runs the level-batched, shape-bucketed skeletonizer of
        :mod:`repro.core.skeletonization_batched`; ``"reference"`` runs
        the per-node postorder loop of Algorithm 2.6; ``"sharded"`` runs
        the batched level sweep per subtree on a process pool of
        ``compression_workers``.  All draw each node's row sample from
        the same deterministic stream, so they select identical skeletons
        at equal sampling (up to floating-point pivot ties on exactly
        rank-deficient blocks).
    compression_workers:
        process count of the ``"sharded"`` compression backend.  Like
        ``neighbor_workers``, an execution knob only (per-node sampling
        streams make the result worker-count independent), so it enters
        no stage fingerprint.
    plan_rank_bucketing:
        how the evaluation-plan packer pads skeleton ranks so that
        adaptive-rank trees batch into fewer, larger GEMM groups:
        ``"pow2"`` (default) rounds each rank up to the next power of
        two, ``"max"`` pads to the per-level maximum, ``"none"`` packs
        exact ranks.  Padding only engages when a tree's active ranks are
        actually non-uniform.
    prebuild_plan:
        build the evaluation plan during compression (phase ``"plan"`` of
        the report) instead of lazily on the first planned matvec.
    shard_retries:
        how many times a failed sharded task (worker killed, stalled past
        ``shard_task_timeout_s``, or errored) is retried by the
        :class:`~repro.core.sharding.SupervisedPool` before the sharded
        backend degrades to its single-process equivalent.  Retries are
        deterministic — shard tasks rewrite their slab slots from
        per-node streams, so a retried task produces the bytes the first
        attempt would have.  Execution knob only: enters no stage
        fingerprint.
    shard_task_timeout_s:
        supervision timeout of the sharded backends, in seconds: the
        maximum gap between shard-task completions before the supervisor
        declares the outstanding tasks dead and retries them (a killed
        fork worker never returns its task, so without this bound a
        ``pool.map`` would hang forever).  ``None`` disables detection of
        silent worker death (errors are still retried).
    storage_read_retries:
        how many times a *transient* ``OSError`` (EIO, EAGAIN, ESTALE …)
        on a store manifest/array read is retried (with capped jittered
        backoff) before :class:`~repro.errors.StorageRetryExhaustedError`
        is raised.  Non-transient errors (missing files, corrupt data)
        fail immediately as :class:`~repro.errors.ArtifactMismatchError`.
    spill_degrade_to_heap:
        when the :class:`~repro.storage.spill.SpillArena` hits ENOSPC
        mid-matvec (:class:`~repro.errors.SpillCapacityError`), fall back
        to heap-allocated chunk buffers with a warning instead of failing
        the evaluation.  The fallback is bit-identical — buffers hold the
        same values wherever they live.  ``False`` propagates the error.
    executor_stall_timeout:
        watchdog for the threaded executor (:mod:`repro.runtime.executor`):
        if no task of an evaluation completes within this many seconds
        while tasks are still in flight, the run is abandoned with a
        :class:`~repro.errors.SchedulingError` instead of hanging forever.
        ``None`` disables the watchdog.  Long-running server evaluations
        (huge n, few workers) should raise this rather than risk a
        false positive — it bounds the *gap between task completions*,
        not total evaluation time.
    telemetry:
        enable span tracing (:mod:`repro.obs`) for sessions built with
        this config: :class:`~repro.api.session.Session` creates a
        :class:`~repro.obs.Tracer` and installs it for the duration of
        every ``compress()``, so stage, per-level skeletonization,
        evaluation-pass, chunk-pipeline and worker spans are recorded and
        exportable as a Chrome trace (``repro.obs.write_chrome_trace``).
        Purely an execution knob — it changes no numerical result and,
        like ``neighbor_workers``, enters no stage fingerprint, so
        toggling it never invalidates session artifacts.  When ``False``
        (default), instrumented hot paths pay one attribute check.
    dtype:
        floating point type of the compressed representation.
    seed:
        seed for all randomized components (projection trees, sampling).
    """

    leaf_size: int = 256
    max_rank: int = 256
    tolerance: float = 1e-5
    neighbors: int = 32
    budget: float = 0.03
    distance: DistanceMetric = DistanceMetric.ANGLE
    num_neighbor_trees: int = 10
    neighbor_accuracy_target: float = 0.8
    sample_size: int = 0
    oversampling: int = 2
    centroid_samples: int = 32
    adaptive_rank: bool = True
    cache_near_blocks: bool = True
    cache_far_blocks: bool = True
    symmetrize_lists: bool = True
    secure_accuracy: bool = False
    evaluation_engine: str = "planned"
    streaming_chunk_bytes: int = 32 * 2**20
    neighbor_backend: str = "blocked"
    neighbor_workers: int = 1
    compression_backend: str = "batched"
    compression_workers: int = 1
    plan_rank_bucketing: str = "pow2"
    prebuild_plan: bool = False
    shard_retries: int = 2
    shard_task_timeout_s: Optional[float] = 60.0
    storage_read_retries: int = 2
    spill_degrade_to_heap: bool = True
    executor_stall_timeout: Optional[float] = 300.0
    telemetry: bool = False
    dtype: np.dtype = np.float64
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.leaf_size < 2:
            raise ConfigurationError(f"leaf_size must be >= 2, got {self.leaf_size}")
        if self.max_rank < 1:
            raise ConfigurationError(f"max_rank must be >= 1, got {self.max_rank}")
        if not (0.0 < self.tolerance):
            raise ConfigurationError(f"tolerance must be positive, got {self.tolerance}")
        if self.neighbors < 1:
            raise ConfigurationError(f"neighbors must be >= 1, got {self.neighbors}")
        if not (0.0 <= self.budget <= 1.0):
            raise ConfigurationError(f"budget must be in [0, 1], got {self.budget}")
        if self.num_neighbor_trees < 0:
            raise ConfigurationError("num_neighbor_trees must be >= 0")
        if not (0.0 < self.neighbor_accuracy_target <= 1.0):
            raise ConfigurationError("neighbor_accuracy_target must be in (0, 1]")
        if self.sample_size < 0:
            raise ConfigurationError("sample_size must be >= 0")
        if self.oversampling < 1:
            raise ConfigurationError("oversampling must be >= 1")
        if self.centroid_samples < 1:
            raise ConfigurationError("centroid_samples must be >= 1")
        if self.streaming_chunk_bytes < 1:
            raise ConfigurationError(
                f"streaming_chunk_bytes must be >= 1, got {self.streaming_chunk_bytes}"
            )
        if not isinstance(self.shard_retries, int) or self.shard_retries < 0:
            raise ConfigurationError(
                f"shard_retries must be a non-negative integer, got {self.shard_retries!r}"
            )
        if self.shard_task_timeout_s is not None and not (self.shard_task_timeout_s > 0.0):
            raise ConfigurationError(
                f"shard_task_timeout_s must be positive or None, got {self.shard_task_timeout_s}"
            )
        if not isinstance(self.storage_read_retries, int) or self.storage_read_retries < 0:
            raise ConfigurationError(
                f"storage_read_retries must be a non-negative integer, "
                f"got {self.storage_read_retries!r}"
            )
        if not isinstance(self.spill_degrade_to_heap, bool):
            raise ConfigurationError(
                f"spill_degrade_to_heap must be a bool, got {self.spill_degrade_to_heap!r}"
            )
        if self.executor_stall_timeout is not None and not (self.executor_stall_timeout > 0.0):
            raise ConfigurationError(
                f"executor_stall_timeout must be positive or None, got {self.executor_stall_timeout}"
            )
        if not isinstance(self.telemetry, bool):
            raise ConfigurationError(
                f"telemetry must be a bool, got {self.telemetry!r}"
            )
        # Validate against the engine registry (lazy import: repro.core modules
        # import this module, so the registry cannot be a top-level import).
        from .core.engines import available_engines, is_registered

        if not is_registered(self.evaluation_engine):
            known = ", ".join(available_engines())
            raise ConfigurationError(
                f"evaluation_engine must be one of: {known}; got {self.evaluation_engine!r}"
            )
        from .core.backends import BUCKETING_MODES, available_backends
        from .core.backends import is_registered as backend_registered

        if not backend_registered(self.compression_backend):
            known = ", ".join(available_backends())
            raise ConfigurationError(
                f"compression_backend must be one of: {known}; got {self.compression_backend!r}"
            )
        from .core.neighbor_backends import available_neighbor_backends
        from .core.neighbor_backends import is_registered as neighbor_backend_registered

        if not neighbor_backend_registered(self.neighbor_backend):
            known = ", ".join(available_neighbor_backends())
            raise ConfigurationError(
                f"neighbor_backend must be one of: {known}; got {self.neighbor_backend!r}"
            )
        if self.neighbor_workers < 1:
            raise ConfigurationError(
                f"neighbor_workers must be >= 1, got {self.neighbor_workers}"
            )
        if self.compression_workers < 1:
            raise ConfigurationError(
                f"compression_workers must be >= 1, got {self.compression_workers}"
            )
        if self.plan_rank_bucketing not in BUCKETING_MODES:
            raise ConfigurationError(
                f"plan_rank_bucketing must be one of: {', '.join(BUCKETING_MODES)}; "
                f"got {self.plan_rank_bucketing!r}"
            )
        if isinstance(self.distance, str):
            object.__setattr__(self, "distance", DistanceMetric(self.distance))
        dt = np.dtype(self.dtype)
        if dt.kind != "f":
            raise ConfigurationError(f"dtype must be a float type, got {dt}")
        object.__setattr__(self, "dtype", dt)

    # -- convenience ------------------------------------------------------
    def replace(self, **changes) -> "GOFMMConfig":
        """Return a copy with the given fields replaced (validated)."""
        return dataclasses.replace(self, **changes)

    @property
    def is_hss(self) -> bool:
        """True when the configuration yields a pure HSS approximation (S = 0)."""
        return self.budget == 0.0

    def effective_sample_size(self) -> int:
        """Number of off-node rows sampled for each skeletonization."""
        return max(self.sample_size, self.oversampling * self.max_rank)

    def max_near_size(self, n: int) -> int:
        """Budget cap on |Near(β)| for a problem of size ``n`` (excluding β)."""
        if self.budget <= 0.0:
            return 0
        leaves = max(1, int(np.ceil(n / self.leaf_size)))
        return max(0, int(np.floor(self.budget * leaves)))

    def describe(self) -> str:
        """Single-line human-readable summary (used by benchmark harnesses)."""
        return (
            f"m={self.leaf_size} s={self.max_rank} tau={self.tolerance:g} "
            f"kappa={self.neighbors} budget={self.budget:.2%} dist={self.distance.value}"
        )


def default_config(**overrides) -> GOFMMConfig:
    """The paper's default-ish configuration (angle distance, 3% budget)."""
    return GOFMMConfig(**overrides)


def hss_config(**overrides) -> GOFMMConfig:
    """Configuration forcing a pure HSS approximation (budget = 0)."""
    overrides.setdefault("budget", 0.0)
    return GOFMMConfig(**overrides)


def fmm_config(budget: float = 0.03, **overrides) -> GOFMMConfig:
    """Configuration for the FMM variant with the given direct-evaluation budget."""
    return GOFMMConfig(budget=budget, **overrides)
