"""Neighbor-search backend registry.

The iterative ANN search of Algorithm 2.2 (steps 1–3) has interchangeable
execution back ends, mirroring the evaluation-engine registry of
:mod:`repro.core.engines` and the compression-backend registry of
:mod:`repro.core.backends`.  A backend's contract is

    ``run(distance, config, rng) -> NeighborTable``

where ``rng`` is the neighbors-stage generator with nothing consumed yet.
Backends are registered here by name;
``core/neighbors.py``'s :func:`~repro.core.neighbors.all_nearest_neighbors`
and the :class:`~repro.config.GOFMMConfig` validation both consult the
registry, so a new backend plugs in with one :func:`register` call and no
call-site changes::

    from repro.core import neighbor_backends

    def run_mine(distance, config, rng):
        ...

    neighbor_backends.register("mine", run_mine)
    GOFMMConfig(neighbor_backend="mine")   # validates against the registry

Built-ins:

``"reference"``
    the per-row merge loop (one :func:`~repro.core.neighbors._merge_candidates`
    call per index, per leaf, per tree) — the correctness oracle.
``"blocked"`` (default)
    one vectorized pass per batch of leaves: the leaf distance blocks are
    stacked, ``argpartition``'d along the last axis, and merged into the
    global table by :func:`~repro.core.neighbors.merge_candidate_block`
    with no per-row Python.
``"sharded"``
    the blocked leaf pass fanned out over a ``fork`` process pool
    (``config.neighbor_workers``): each projection-tree iteration draws
    its seed from the shared schedule and writes its candidate table into
    a shared-memory slab; the parent merges the slabs *in iteration
    order* and applies the convergence check per iteration, so the
    resulting table is identical for any worker count (iterations
    speculatively computed past convergence are discarded).

All three consume the identical rng stream and share the merge
tie-breaking rules, so they return bit-identical tables — the parity
tests pin this, and it is why ``neighbor_workers`` stays out of every
stage fingerprint while ``neighbor_backend`` participates only as a
cache key for the artifact's provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..errors import CompressionError, WorkerCrashError
from ..obs import counters as _obs_counters
from ..obs import get_logger
from .distances import Distance
from .sharding import SharedSlab, SupervisedPool, fork_available
from .tree import build_tree

_LOG = get_logger("core.neighbor_backends")

__all__ = [
    "NeighborBackendSpec",
    "register",
    "unregister",
    "get_neighbor_backend",
    "available_neighbor_backends",
    "is_registered",
]

# A backend body: (distance, config, rng) -> NeighborTable
NeighborBackendFn = Callable[..., object]


@dataclass(frozen=True)
class NeighborBackendSpec:
    """One registered neighbor-search backend.

    ``exact_parity`` marks backends that honor the shared rng-stream and
    merge-tie-breaking contract (bit-identical tables to ``"reference"``);
    third-party backends with their own randomness or merge discipline may
    set it to ``False``.
    """

    name: str
    run: NeighborBackendFn = field(repr=False)
    exact_parity: bool = True
    description: str = ""

    def __call__(self, distance, config, rng):
        return self.run(distance, config, rng)


_REGISTRY: dict[str, NeighborBackendSpec] = {}


def register(
    name: str,
    run: NeighborBackendFn,
    *,
    exact_parity: bool = True,
    description: str = "",
    overwrite: bool = False,
) -> NeighborBackendSpec:
    """Register a neighbor backend under ``name`` and return its spec."""
    if not name or not isinstance(name, str):
        raise CompressionError(f"neighbor backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise CompressionError(
            f"neighbor backend {name!r} is already registered (pass overwrite=True to replace)"
        )
    spec = NeighborBackendSpec(name=name, run=run, exact_parity=exact_parity, description=description)
    _REGISTRY[name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered backend (built-ins may be removed too; tests use this)."""
    if name not in _REGISTRY:
        raise CompressionError(f"neighbor backend {name!r} is not registered")
    del _REGISTRY[name]


def get_neighbor_backend(name: str) -> NeighborBackendSpec:
    """Look up a backend by name; raises with the list of known backends."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise CompressionError(f"unknown neighbor backend {name!r}; registered backends: {known}")
    return spec


def available_neighbor_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    return name in _REGISTRY


# ---------------------------------------------------------------------------
# built-in backends
# ---------------------------------------------------------------------------
# Bodies import repro.core.neighbors lazily: neighbors.py dispatches through
# this registry, and config validation imports this module, so a top-level
# import of neighbors here would cycle.


def _iterate_trees(distance: Distance, config, rng: np.random.Generator, tree_pass) -> "object":
    """The shared single-process iteration driver of the reference/blocked backends.

    Initializes the table, materializes the seed schedule, then per
    iteration builds the projection tree, runs ``tree_pass`` over its
    leaves, and applies the set-overlap convergence check.  A pass returns
    ``(touched, overlap)`` — how many rows it merged and their integer
    :func:`~repro.core.neighbors.row_set_overlap` sum against their
    previous contents; skipped rows are bitwise-untouched distinct rows
    contributing exactly κ each, so the reconstructed fraction equals the
    full-table :func:`~repro.core.neighbors.unchanged_fraction` bit for bit.
    """
    from . import neighbors as nb

    n = distance.n
    kappa = min(config.neighbors, n)
    idx_table, dist_table = nb.init_table(n, kappa, rng)
    seeds = nb.tree_seed_schedule(rng, config.num_neighbor_trees)

    converged = False
    iterations = 0
    for it, seed in enumerate(seeds):
        iterations = it + 1
        tree = build_tree(
            n, config, distance, rng=np.random.default_rng(seed), randomized_pivots=True
        )
        touched, overlap = tree_pass(tree, distance, idx_table, dist_table, kappa, screen=it > 0)
        unchanged = (overlap + (n - touched) * kappa) / (n * kappa) if kappa else 1.0
        if unchanged >= config.neighbor_accuracy_target and it > 0:
            converged = True
            break
    return nb.NeighborTable(
        indices=idx_table, distances=dist_table, iterations=iterations, converged=converged
    )


def _reference_pass(tree, distance, idx_table, dist_table, kappa, screen=False):
    from .neighbors import _leaf_exhaustive_update, row_set_overlap

    previous = idx_table.copy()
    for leaf in tree.leaves:
        _leaf_exhaustive_update(leaf.indices, distance, idx_table, dist_table, kappa)
    return idx_table.shape[0], int(row_set_overlap(previous, idx_table).sum())


def _blocked_pass(tree, distance, idx_table, dist_table, kappa, screen=True):
    from .neighbors import leaf_candidate_batches, screened_merge

    leaves = [leaf.indices for leaf in tree.leaves]
    touched = 0
    overlap = 0
    for rows, cand_idx, cand_dist in leaf_candidate_batches(leaves, distance, kappa):
        merged, part = screened_merge(idx_table, dist_table, rows, cand_idx, cand_dist, screen=screen)
        touched += merged.size
        overlap += part
    return touched, overlap


def _run_reference(distance, config, rng):
    return _iterate_trees(distance, config, rng, _reference_pass)


def _run_blocked(distance, config, rng):
    return _iterate_trees(distance, config, rng, _blocked_pass)


# -- sharded ----------------------------------------------------------------

#: Read-only state the forked workers inherit (set in the parent right
#: before the pool forks, cleared right after it joins).
_SHARD: Optional[dict] = None


def _neighbor_shard_task(task: tuple[int, int, int, int]) -> int:
    """One worker unit: (slot, seed, chunk, num_chunks).

    Builds (or reuses, per process) the iteration's projection tree and
    writes its share of the leaves' κ-NN candidates into slab slot
    ``slot``.  Unused candidate columns of short leaves are padded with
    the row's own index at distance ``+inf``, which the parent-side merge
    discards for free (the row's self entry at distance 0 always wins the
    dedup).  Leaf chunks partition the leaf list, so any chunk count
    yields the same slab contents.
    """
    slot, seed, chunk, num_chunks = task
    from .neighbors import leaf_candidate_batches

    state = _SHARD
    distance = state["distance"]
    config = state["config"]
    kappa = state["kappa"]
    cached = state.get("tree")
    if cached is None or cached[0] != seed:
        tree = build_tree(
            distance.n, config, distance, rng=np.random.default_rng(seed), randomized_pivots=True
        )
        state["tree"] = (seed, tree)  # visible only inside this worker process
    tree = state["tree"][1]

    leaves = [leaf.indices for leaf in tree.leaves]
    mine = leaves[chunk::num_chunks]
    idx_out = state["idx"].array[slot]
    dist_out = state["dist"].array[slot]
    for rows, cand_idx, cand_dist in leaf_candidate_batches(mine, distance, kappa):
        k_local = cand_idx.shape[1]
        idx_out[rows, :k_local] = cand_idx
        dist_out[rows, :k_local] = cand_dist
        if k_local < kappa:
            idx_out[rows, k_local:] = rows[:, None]
            dist_out[rows, k_local:] = np.inf
    return slot


def _finish_blocked(distance, config, idx_table, dist_table, remaining_seeds, iterations, kappa):
    """Finish an interrupted sharded search sequentially, bit-identically.

    Resumes from the current table state and the *remaining* seed schedule
    with the blocked backend's per-iteration pass + convergence check.
    Iterations are merged in the same seed order with the same screening
    rule (``screen`` from the second global iteration on), so the table
    trajectory is exactly what the healthy sharded run — and the blocked
    backend — would have produced.
    """
    from . import neighbors as nb

    n = distance.n
    converged = False
    for seed in remaining_seeds:
        iterations += 1
        tree = build_tree(
            n, config, distance, rng=np.random.default_rng(seed), randomized_pivots=True
        )
        touched, overlap = _blocked_pass(
            tree, distance, idx_table, dist_table, kappa, screen=iterations > 1
        )
        unchanged = (overlap + (n - touched) * kappa) / (n * kappa) if kappa else 1.0
        if unchanged >= config.neighbor_accuracy_target and iterations > 1:
            converged = True
            break
    return nb.NeighborTable(
        indices=idx_table, distances=dist_table, iterations=iterations, converged=converged
    )


def _run_sharded(distance, config, rng):
    """Wave-parallel tree iterations over a fork pool + shared-memory slabs.

    Worker-count invariance: the seed schedule is fixed up front, every
    iteration's candidates depend only on its seed, and the parent merges
    slab slots strictly in iteration order with the convergence check
    applied after each merge — so the table trajectory is the blocked
    backend's, bit for bit, regardless of ``neighbor_workers`` (waves
    merely bound how many iterations are speculatively in flight; overshoot
    past convergence is discarded).

    Supervision: tasks run on a :class:`~repro.core.sharding.SupervisedPool`
    (killed/stalled workers detected and retried, safe because every task
    rewrites its full slab slot); past the retry budget the search *resumes
    sequentially* from the current table and the remaining seeds
    (:func:`_finish_blocked`) — same trajectory, one process.
    """
    from . import neighbors as nb

    workers = max(1, config.neighbor_workers)
    if workers == 1 or not fork_available() or config.num_neighbor_trees <= 1:
        return _run_blocked(distance, config, rng)

    n = distance.n
    kappa = min(config.neighbors, n)
    idx_table, dist_table = nb.init_table(n, kappa, rng)
    seeds = nb.tree_seed_schedule(rng, config.num_neighbor_trees)
    wave = min(workers, len(seeds))

    all_rows = np.arange(n, dtype=np.intp)
    converged = False
    iterations = 0

    global _SHARD
    from contextlib import ExitStack

    with ExitStack() as stack:
        # Slabs join the stack as they are created so no later failure
        # (allocation, crashed pool, injected fault) leaks a segment.
        idx_slab = stack.enter_context(SharedSlab((wave, n, kappa), np.int64))
        dist_slab = stack.enter_context(SharedSlab((wave, n, kappa), np.float64))
        _SHARD = {
            "distance": distance,
            "config": config,
            "kappa": kappa,
            "idx": idx_slab,
            "dist": dist_slab,
        }
        try:
            supervised = stack.enter_context(
                SupervisedPool(
                    workers,
                    retries=config.shard_retries,
                    task_timeout=config.shard_task_timeout_s,
                    label="neighbors.sharded",
                )
            )
            start = 0
            while start < len(seeds) and not converged:
                batch = seeds[start : start + wave]
                # Split leaf work within iterations so a partial wave (or a
                # final lone iteration) still occupies every worker.
                chunks = max(1, workers // len(batch))
                tasks = [
                    (slot, seed, chunk, chunks)
                    for slot, seed in enumerate(batch)
                    for chunk in range(chunks)
                ]
                try:
                    supervised.map(_neighbor_shard_task, tasks)
                except WorkerCrashError as exc:
                    _LOG.warning(
                        "sharded neighbor search exhausted its retry budget (%s); "
                        "finishing the remaining %d iteration(s) single-process",
                        exc,
                        len(seeds) - start,
                    )
                    _obs_counters.add("faults_degraded")
                    _SHARD = None
                    return _finish_blocked(
                        distance, config, idx_table, dist_table,
                        seeds[start:], iterations, kappa,
                    )
                for slot in range(len(batch)):
                    iterations += 1
                    touched, overlap = nb.screened_merge(
                        idx_table,
                        dist_table,
                        all_rows,
                        idx_slab.array[slot],
                        dist_slab.array[slot],
                        screen=iterations > 1,
                    )
                    unchanged = (overlap + (n - touched.size) * kappa) / (n * kappa) if kappa else 1.0
                    if unchanged >= config.neighbor_accuracy_target and iterations > 1:
                        converged = True
                        break
                start += len(batch)
        finally:
            _SHARD = None

    return nb.NeighborTable(
        indices=idx_table, distances=dist_table, iterations=iterations, converged=converged
    )


register(
    "reference",
    _run_reference,
    description="per-row candidate merges (correctness oracle)",
)
register(
    "blocked",
    _run_blocked,
    description="vectorized per-leaf-batch candidate merges (default)",
)
register(
    "sharded",
    _run_sharded,
    description="blocked passes fanned out over a fork pool (neighbor_workers)",
)
