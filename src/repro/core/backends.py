"""Compression-backend registry.

Skeletonization (tasks SKEL + COEF of Table 2) has interchangeable
execution back ends, mirroring the evaluation-engine registry of
:mod:`repro.core.engines`: the per-node postorder loop of
:mod:`repro.core.skeletonization` ("reference"), the level-batched,
shape-bucketed skeletonizer of :mod:`repro.core.skeletonization_batched`
("batched"), and the subtree-parallel process fan-out of
:mod:`repro.core.skeletonization_sharded` ("sharded", gated by
``GOFMMConfig.compression_workers``).  A backend's contract is

    ``run(tree, matrix, config, neighbors, rng) -> SkeletonizationStats``

mutating the tree nodes in place (``skeleton`` / ``coeffs`` /
``skeleton_rank``), exactly like :func:`repro.core.skeletonization.skeletonize_tree`.
Backends are registered here by name; ``core/compress.py``'s
``run_skeletons_stage`` and the :class:`~repro.config.GOFMMConfig`
validation both consult the registry, so a new backend plugs in with one
:func:`register` call and no call-site changes::

    from repro.core import backends

    def run_mine(tree, matrix, config, neighbors, rng=None):
        ...

    backends.register("mine", run_mine)
    GOFMMConfig(compression_backend="mine")   # validates against the registry

All built-in backends draw every node's row sample from the same
deterministic per-node stream (derived from the stage generator and the
node id), so at equal sampling they select bit-identical skeletons for
numerically nondegenerate sampled blocks — the equivalence the backend
test-suite pins down.  (Exactly rank-deficient blocks, e.g. from
duplicated points, can resolve floating-point pivot ties differently
between the two pivoted-QR implementations; the decompositions remain
equally accurate, only the tie-broken skeleton choice may differ.)

This module also hosts the rank padding/bucketing helpers shared by the
batched skeletonizer (which buckets sampled blocks by padded shape) and
the evaluation-plan packer (which pads skeleton ranks so adaptive-rank
trees stop fragmenting into small batches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..errors import CompressionError

__all__ = [
    "BackendSpec",
    "register",
    "unregister",
    "get_backend",
    "available_backends",
    "is_registered",
    "bucket_size",
    "pad_ranks",
    "BUCKETING_MODES",
]

# A backend body: (tree, matrix, config, neighbors, rng) -> SkeletonizationStats
BackendFn = Callable[..., object]


@dataclass(frozen=True)
class BackendSpec:
    """One registered compression (skeletonization) backend.

    ``deterministic_streams`` marks backends that honor the shared
    per-node rng-stream contract (identical skeletons to ``"reference"``
    at equal sampling); third-party backends with their own randomness
    discipline may set it to ``False``.
    """

    name: str
    run: BackendFn = field(repr=False)
    deterministic_streams: bool = True
    description: str = ""

    def __call__(self, tree, matrix, config, neighbors, rng=None):
        return self.run(tree, matrix, config, neighbors, rng)


_REGISTRY: dict[str, BackendSpec] = {}


def register(
    name: str,
    run: BackendFn,
    *,
    deterministic_streams: bool = True,
    description: str = "",
    overwrite: bool = False,
) -> BackendSpec:
    """Register a compression backend under ``name`` and return its spec."""
    if not name or not isinstance(name, str):
        raise CompressionError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise CompressionError(
            f"compression backend {name!r} is already registered (pass overwrite=True to replace)"
        )
    spec = BackendSpec(
        name=name,
        run=run,
        deterministic_streams=deterministic_streams,
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered backend (built-ins may be removed too; tests use this)."""
    if name not in _REGISTRY:
        raise CompressionError(f"compression backend {name!r} is not registered")
    del _REGISTRY[name]


def get_backend(name: str) -> BackendSpec:
    """Look up a backend by name; raises with the list of known backends."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise CompressionError(
            f"unknown compression backend {name!r}; registered backends: {known}"
        )
    return spec


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    return name in _REGISTRY


# ---------------------------------------------------------------------------
# rank padding / bucketing (shared with the evaluation-plan packer)
# ---------------------------------------------------------------------------

#: Valid values of ``GOFMMConfig.plan_rank_bucketing``.
BUCKETING_MODES: tuple[str, ...] = ("none", "pow2", "max")


def bucket_size(value: int, mode: str = "pow2") -> int:
    """Round one size up to its bucket.

    ``"pow2"`` rounds to the next power of two; ``"none"`` and ``"max"``
    return the value unchanged — ``"max"`` padding is group-relative
    (:func:`pad_ranks`' job) and degenerates to the identity for a single
    value, so every :data:`BUCKETING_MODES` member is a valid mode here.
    """
    if mode not in BUCKETING_MODES:
        raise CompressionError(
            f"bucket_size mode must be one of {BUCKETING_MODES}, got {mode!r}"
        )
    value = int(value)
    if value <= 0:
        return 0
    if mode == "pow2":
        return 1 << (value - 1).bit_length()
    return value


def pad_ranks(ranks: np.ndarray, mode: str = "pow2") -> np.ndarray:
    """Padded ranks for a group of nodes; zeros (inactive nodes) stay zero.

    ``"none"`` returns the ranks unchanged, ``"pow2"`` rounds each rank up
    to the next power of two, and ``"max"`` pads every nonzero rank to the
    group maximum (per level, when called with one level's ranks).
    """
    ranks = np.asarray(ranks, dtype=np.intp)
    if mode not in BUCKETING_MODES:
        raise CompressionError(
            f"rank bucketing mode must be one of {BUCKETING_MODES}, got {mode!r}"
        )
    if mode == "none" or ranks.size == 0:
        return ranks.copy()
    out = np.zeros_like(ranks)
    nonzero = ranks > 0
    if mode == "max":
        out[nonzero] = int(ranks.max())
        return out
    bits = np.frompyfunc(lambda r: 1 << (int(r) - 1).bit_length(), 1, 1)
    out[nonzero] = bits(ranks[nonzero]).astype(np.intp)
    return out


# -- built-in backends --------------------------------------------------------
# Bodies import lazily so that registering at module import time does not pull
# in skeletonization (which imports config, which validates against this
# registry).

def _run_reference(tree, matrix, config, neighbors, rng=None):
    from .skeletonization import skeletonize_tree

    return skeletonize_tree(tree, matrix, config, neighbors, rng=rng)


def _run_batched(tree, matrix, config, neighbors, rng=None):
    from .skeletonization_batched import skeletonize_tree_batched

    return skeletonize_tree_batched(tree, matrix, config, neighbors, rng=rng)


def _run_sharded(tree, matrix, config, neighbors, rng=None):
    from .skeletonization_sharded import skeletonize_tree_sharded

    return skeletonize_tree_sharded(tree, matrix, config, neighbors, rng=rng)


register(
    "reference",
    _run_reference,
    description="per-node postorder loop of Algorithm 2.6 (correctness oracle)",
)
register(
    "batched",
    _run_batched,
    description="level-batched skeletonization: shape-bucketed stacked pivoted QRs",
)
register(
    "sharded",
    _run_sharded,
    description="batched level sweeps of whole subtrees over a fork pool (compression_workers)",
)
