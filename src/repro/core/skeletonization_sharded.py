"""Process-sharded skeletonization — the ``"sharded"`` compression backend.

The level sweep of :mod:`repro.core.skeletonization_batched` has one
cross-node dependency: parents read their children's skeletons.  Whole
*subtrees* therefore factor perfectly: pick a shard level ``L``, hand each
of the ``2^L`` subtrees rooted there to a worker process, let every worker
run the identical bottom-up level sweep over its subtree, and finish
levels ``L−1 … 1`` in the parent once all subtree roots are skeletonized.

Per-node results are independent of how a level is split across calls —
:func:`~repro.core.skeletonization_batched.skeletonize_level` draws each
node's row sample from its own deterministic stream
(:func:`~repro.core.skeletonization.node_stream`), so a subtree's slice of
a level samples and decomposes exactly as the full level would.  That is
what makes ``compression_workers`` an execution knob rather than a
semantic one: any worker count (including 1, the batched fallback) yields
the same skeletons on numerically nondegenerate blocks, and the knob stays
out of every stage fingerprint.

The process plumbing mirrors the ``"sharded"`` neighbor backend
(:mod:`repro.core.sharding`): read-only state (tree, matrix, config,
neighbor table, stream base) is inherited by ``fork`` copy-on-write;
results come back through shared-memory slabs — per node a ``(rank,
ncols)`` meta record, the skeleton ids, and the interpolation
coefficients, written to capacity-padded slots in a deterministic
(bottom-up, id-ordered) node order.  Workers also report their matrix
``entry_evaluations`` delta so the parent's accounting matches the
single-process backends exactly.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Iterator, Optional

import numpy as np

from ..config import GOFMMConfig
from ..errors import WorkerCrashError
from ..matrices.base import SPDMatrix
from ..obs import counters as _obs_counters
from ..obs import get_logger
from .neighbors import NeighborTable
from .sharding import SharedSlab, SupervisedPool, fork_available
from .skeletonization import SkeletonizationStats, collect_stats, node_stream_base
from .skeletonization_batched import skeletonize_level, skeletonize_tree_batched
from .tree import BallTree

__all__ = ["skeletonize_tree_sharded"]

_LOG = get_logger("core.skeletonization_sharded")

#: Hard ceiling on the coefficient slab; configurations whose worst-case
#: capacity would exceed it (huge ``max_rank`` × many workers) fall back
#: to the batched backend rather than thrash memory.
_MAX_COEFF_SLAB_BYTES = 512 * 2**20


def _subtree_level_slices(root_id: int, shard_level: int, depth: int) -> Iterator[tuple[int, int, int]]:
    """``(level, lo, hi)`` node-id ranges of one subtree, bottom-up.

    Node ids are breadth-first positions in a complete binary tree, so the
    descendants of ``root_id`` at depth offset ``d`` occupy the contiguous
    id range ``[(root_id+1)·2^d − 1, (root_id+2)·2^d − 2]``.  Workers and
    the parent iterate this identical order when packing / unpacking slab
    slots.
    """
    for level in range(depth, shard_level - 1, -1):
        d = level - shard_level
        yield level, (root_id + 1) * (1 << d) - 1, (root_id + 2) * (1 << d) - 2


#: Read-only state the forked workers inherit (set in the parent right
#: before the pool forks, cleared right after it joins).
_SHARD: Optional[dict] = None


def _compression_shard_task(slot: int) -> int:
    """Skeletonize one subtree bottom-up and pack the results into slab ``slot``."""
    state = _SHARD
    tree: BallTree = state["tree"]
    matrix: SPDMatrix = state["matrix"]
    config: GOFMMConfig = state["config"]
    shard_level: int = state["shard_level"]
    meta = state["meta"].array[slot]
    skel = state["skel"].array[slot]
    coeff = state["coeff"].array[slot]

    root_id = (1 << shard_level) - 1 + slot
    before = matrix.entry_evaluations
    pos = 0
    for _level, lo, hi in _subtree_level_slices(root_id, shard_level, tree.depth):
        members = tree.nodes[lo : hi + 1]
        skeletonize_level(members, tree.n, matrix, config, state["neighbors"], state["base"])
        for node in members:
            rank = int(node.skeleton_rank or 0)
            ncols = int(node.coeffs.shape[1])
            meta[pos, 0] = rank
            meta[pos, 1] = ncols
            if rank:
                skel[pos, :rank] = node.skeleton
                coeff[pos, :rank, :ncols] = node.coeffs
            pos += 1
    state["evals"].array[slot] = matrix.entry_evaluations - before
    return slot


def skeletonize_tree_sharded(
    tree: BallTree,
    matrix: SPDMatrix,
    config: GOFMMConfig,
    neighbors: Optional[NeighborTable],
    rng: Optional[np.random.Generator] = None,
) -> SkeletonizationStats:
    """Algorithm 2.6, subtree-sharded over ``config.compression_workers`` processes.

    Falls back to :func:`skeletonize_tree_batched` whenever sharding cannot
    help (one worker, no ``fork`` start method, a tree too shallow to split)
    or would need an oversized result slab — the results are identical
    either way.
    """
    workers = max(1, config.compression_workers)
    if workers == 1 or not fork_available() or tree.depth < 1:
        return skeletonize_tree_batched(tree, matrix, config, neighbors, rng=rng)

    rng = rng or np.random.default_rng(config.seed)
    base = node_stream_base(rng)
    shard_level = min(tree.depth, max(1, (workers - 1).bit_length()))
    num_subtrees = 1 << shard_level
    levels = tree.levels()

    # Capacity bounds, tightened level by level: a node's column count is
    # its leaf size at the bottom and twice the children's rank cap above,
    # and its rank is capped by max_rank and its column count.
    ncols_cap = max(node.indices.size for node in levels[tree.depth])
    cap_rank = cap_cols = 0
    for level in range(tree.depth, shard_level - 1, -1):
        rank_cap = min(config.max_rank, ncols_cap)
        cap_cols = max(cap_cols, ncols_cap)
        cap_rank = max(cap_rank, rank_cap)
        ncols_cap = 2 * rank_cap
    nodes_per_subtree = (1 << (tree.depth - shard_level + 1)) - 1

    coeff_bytes = num_subtrees * nodes_per_subtree * cap_rank * cap_cols * 8
    if coeff_bytes > _MAX_COEFF_SLAB_BYTES:
        return skeletonize_tree_batched(tree, matrix, config, neighbors, rng=rng)

    # Slabs enter an ExitStack *as they are allocated*: a failed later
    # allocation, a crashed pool, or an injected fault can no longer leak
    # an earlier slab's /dev/shm segment (each SharedSlab.__exit__ closes
    # and unlinks).
    global _SHARD
    with ExitStack() as stack:
        meta_slab = stack.enter_context(SharedSlab((num_subtrees, nodes_per_subtree, 2), np.int64))
        skel_slab = stack.enter_context(
            SharedSlab((num_subtrees, nodes_per_subtree, max(1, cap_rank)), np.int64)
        )
        coeff_slab = stack.enter_context(
            SharedSlab(
                (num_subtrees, nodes_per_subtree, max(1, cap_rank), max(1, cap_cols)), np.float64
            )
        )
        evals_slab = stack.enter_context(SharedSlab((num_subtrees,), np.int64))

        _SHARD = {
            "tree": tree,
            "matrix": matrix,
            "config": config,
            "neighbors": neighbors,
            "base": base,
            "shard_level": shard_level,
            "meta": meta_slab,
            "skel": skel_slab,
            "coeff": coeff_slab,
            "evals": evals_slab,
        }
        try:
            supervised = stack.enter_context(
                SupervisedPool(
                    min(workers, num_subtrees),
                    retries=config.shard_retries,
                    task_timeout=config.shard_task_timeout_s,
                    label="compression.sharded",
                )
            )
            try:
                supervised.map(_compression_shard_task, range(num_subtrees))
            except WorkerCrashError as exc:
                # Degrade to the batched backend's level sweep with the
                # *already drawn* stream base — every node's sample depends
                # only on (base, node_id), so the result is bit-identical
                # to a healthy sharded (or batched) run.
                _LOG.warning(
                    "sharded compression exhausted its retry budget (%s); "
                    "degrading to the single-process batched backend",
                    exc,
                )
                _obs_counters.add("faults_degraded")
                _SHARD = None
                start_entries = matrix.entry_evaluations
                for level in range(tree.depth, 0, -1):
                    skeletonize_level(levels[level], tree.n, matrix, config, neighbors, base)
                _obs_counters.add(
                    "kernel_entries_evaluated", int(matrix.entry_evaluations - start_entries)
                )
                return collect_stats(tree)

            # Unpack in the workers' packing order, then finish the top levels.
            meta = meta_slab.array
            skel = skel_slab.array
            coeff = coeff_slab.array
            for slot in range(num_subtrees):
                root_id = num_subtrees - 1 + slot
                pos = 0
                for _level, lo, hi in _subtree_level_slices(root_id, shard_level, tree.depth):
                    for node_id in range(lo, hi + 1):
                        node = tree.nodes[node_id]
                        rank = int(meta[slot, pos, 0])
                        ncols = int(meta[slot, pos, 1])
                        node.skeleton_rank = rank
                        if rank:
                            node.skeleton = skel[slot, pos, :rank].astype(np.intp)
                            node.coeffs = coeff[slot, pos, :rank, :ncols].astype(config.dtype)
                        else:
                            # Match the batched backend's empty assignments
                            # (default float64 zeros with the column count).
                            node.skeleton = np.empty(0, dtype=np.intp)
                            node.coeffs = np.zeros((0, ncols))
                        pos += 1
            matrix.entry_evaluations += int(evals_slab.array.sum())
        finally:
            _SHARD = None

    for level in range(shard_level - 1, 0, -1):
        skeletonize_level(levels[level], tree.n, matrix, config, neighbors, base)
    return collect_stats(tree)
