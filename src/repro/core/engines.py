"""Evaluation-engine registry.

The compressed matvec has interchangeable execution back ends ("engines"):
the per-node reference traversal of :mod:`repro.core.evaluate` and the
packed, level-batched plan executor of :mod:`repro.core.plan`.  Instead of
string-literal dispatch scattered through ``hmatrix.py`` / ``config.py``,
engines are registered here by name; :meth:`repro.core.hmatrix.CompressedMatrix.matvec`
and the config validation both consult the registry, so a new engine (for
example the streaming / chunked plan sketched in ROADMAP.md) plugs in with
one :func:`register` call and no call-site changes::

    from repro.core import engines

    def run_streaming(compressed, w, counters=None):
        ...

    engines.register("streaming", run_streaming, requires_cached_blocks=False)
    compressed.matvec(w, engine="streaming")          # dispatches immediately
    GOFMMConfig(evaluation_engine="streaming")        # validates against the registry

The built-in engines are registered at import time with lazy bodies so this
module stays import-cycle free (``config`` → ``engines`` → nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..errors import EvaluationError

__all__ = [
    "EngineSpec",
    "register",
    "unregister",
    "get_engine",
    "available_engines",
    "is_registered",
]

# An engine body: (compressed, w, counters) -> K̃ w
EngineFn = Callable[[object, np.ndarray, Optional[object]], np.ndarray]


@dataclass(frozen=True)
class EngineSpec:
    """One registered evaluation engine.

    ``requires_cached_blocks`` marks engines that materialize every near/far
    block up front (the packed plan does); :meth:`CompressedMatrix.default_engine`
    uses it to fall back to a streaming-friendly engine when block caching
    was disabled at compression time.
    """

    name: str
    run: EngineFn = field(repr=False)
    requires_cached_blocks: bool = False
    description: str = ""

    def __call__(self, compressed, w: np.ndarray, counters=None) -> np.ndarray:
        return self.run(compressed, w, counters)


_REGISTRY: dict[str, EngineSpec] = {}


def register(
    name: str,
    run: EngineFn,
    *,
    requires_cached_blocks: bool = False,
    description: str = "",
    overwrite: bool = False,
) -> EngineSpec:
    """Register an evaluation engine under ``name`` and return its spec."""
    if not name or not isinstance(name, str):
        raise EvaluationError(f"engine name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise EvaluationError(f"engine {name!r} is already registered (pass overwrite=True to replace)")
    spec = EngineSpec(
        name=name,
        run=run,
        requires_cached_blocks=requires_cached_blocks,
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered engine (built-ins may be removed too; tests use this)."""
    if name not in _REGISTRY:
        raise EvaluationError(f"engine {name!r} is not registered")
    del _REGISTRY[name]


def get_engine(name: str) -> EngineSpec:
    """Look up an engine by name; raises with the list of known engines."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise EvaluationError(f"unknown evaluation engine {name!r}; registered engines: {known}")
    return spec


def available_engines() -> tuple[str, ...]:
    """Names of all registered engines, sorted."""
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    return name in _REGISTRY


# -- built-in engines ---------------------------------------------------------
# Bodies import lazily so that registering at module import time does not pull
# in evaluate/plan (both of which import config, which validates against this
# registry).

def _run_reference(compressed, w: np.ndarray, counters=None) -> np.ndarray:
    from .evaluate import evaluate

    return evaluate(compressed, w, counters=counters)


def _run_planned(compressed, w: np.ndarray, counters=None) -> np.ndarray:
    from .plan import evaluate_planned

    return evaluate_planned(compressed, w, counters=counters)


def _run_streamed(compressed, w: np.ndarray, counters=None) -> np.ndarray:
    from .streaming import evaluate_streamed

    return evaluate_streamed(compressed, w, counters=counters)


register(
    "reference",
    _run_reference,
    description="per-node traversal of Algorithm 2.7 (correctness oracle)",
)
register(
    "planned",
    _run_planned,
    requires_cached_blocks=True,
    description="packed level-batched GEMMs over the cached evaluation plan",
)
register(
    "streamed",
    _run_streamed,
    description=(
        "level-batched GEMMs with chunked on-the-fly block materialization "
        "in a bounded workspace (memoryless configurations)"
    ),
)
