"""Streamed evaluation engine: chunked block materialization in a bounded workspace.

The ``"planned"`` engine (:mod:`repro.core.plan`) is fast because every
near/far block is packed up front — which is exactly what a memoryless
compression (``cache_near_blocks=False`` / ``cache_far_blocks=False``, the
only way to run large ``n`` at bounded memory) cannot afford.  Until now
those configurations fell back to the per-node ``"reference"`` traversal and
lost the level-batched-GEMM speedup.

This module is the third registered engine, ``"streamed"``
(``requires_cached_blocks=False``): it shares the planned engine's
:class:`~repro.core.plan.PassLayout` (workspace offsets, packed N2S / S2N
level segments) and replaces eager block storage with **chunked on-the-fly
materialization**:

* **rounds** — the S2S stage is split into rounds: round ``j`` holds every
  target's ``j``-th far interaction.  Within a round each target appears at
  most once, so same-shape pairs batch into one 3-D GEMM with a plain
  vectorized scatter-add, while each target's accumulator still receives
  its contributions *in far-list order* — the same per-pair products in
  the same order as the reference traversal, which is what makes the
  streamed matvec **bit-identical** to ``"reference"`` (concatenating a
  target's blocks into one wide GEMM, as the planned engine does, changes
  the accumulation order).  L2L is organized the same way over Near lists.
* **chunks** — the round segments are packed, in execution order, into
  chunks bounded by ``GOFMMConfig.streaming_chunk_bytes``: each chunk's
  blocks are materialized into a reusable buffer (cached blocks are copied,
  missing ones evaluated in stacked batches through
  :meth:`repro.matrices.base.SPDMatrix.entries_batched` — bitwise equal to
  the per-pair evaluation the reference engine performs) and the chunk's
  GEMMs run from that buffer.  All cycling buffers together stay within
  the configured budget, so evaluation-phase block memory is bounded no
  matter how many interaction pairs the compression has.
* **buffered pipelining** — upcoming chunks materialize on the shared
  persistent :class:`~repro.runtime.executor.WorkerPool` while the current
  chunk's GEMMs execute (materialization dominates a memoryless matvec and
  NumPy's ufuncs/BLAS release the GIL, so several materializer threads run
  ahead of the executor), block evaluation fully overlapping compute.  The
  execution chain itself is strictly sequential (chunk order, with the S2N
  pass between the last S2S chunk and the first L2L chunk), keeping the
  result deterministic and reference-identical.

The engine works for *any* caching configuration — cached blocks are simply
copied instead of re-evaluated — so ``near-only`` / ``far-only`` caching
streams exactly the missing side.  It needs the source matrix attached for
whatever is not cached, and because chunks materialize on several worker
threads concurrently, that matrix's entry evaluation must be thread-safe
for concurrent reads (the built-in matrix classes are; see
:meth:`repro.matrices.base.SPDMatrix.entries_batched`).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import EvaluationError, SpillCapacityError
from ..obs import counters as _obs_counters
from ..obs import get_logger
from ..obs.trace import get_tracer
from .evaluate import EvaluationCounters, _as_matrix
from .plan import PassLayout, PlanContext, build_pass_layout

_LOG = get_logger("core.streaming")

__all__ = [
    "StreamSegment",
    "StreamChunk",
    "StreamingPlan",
    "build_streaming_plan",
    "evaluate_streamed",
]

#: Per-call cap (in packed block bytes) on one ``entries_batched``
#: materialization call.  Bounds the evaluator's stacked temporaries
#: (pairwise distances + kernel values are a small multiple of the block
#: bytes) so the chunk budget — not the batch evaluator — governs the
#: engine's memory high-water mark.
_MATERIALIZE_CALL_BYTES = 2 << 20

#: Number of chunk buffers cycling through the pipeline.  The execution
#: chain is strictly sequential (bit-identity), but up to
#: ``_PIPELINE_BUFFERS - 1`` future chunks materialize concurrently while
#: one executes — materialization is the dominant cost of a memoryless
#: matvec and NumPy's ufuncs/BLAS release the GIL, so the extra
#: materializer threads give real overlap.  ``streaming_chunk_bytes`` is
#: split across all the buffers, keeping the total workspace bound.
_PIPELINE_BUFFERS = 4

#: Granularity (bytes) of one panel-source read / panel-sink write when
#: weights stream through :meth:`StreamingPlan.execute` as column panels.
#: Bounds the transient a single ``source.read`` hands back, independent
#: of ``n``.
_PANEL_IO_BYTES = 8 << 20


# ---------------------------------------------------------------------------
# segments and chunks
# ---------------------------------------------------------------------------

class StreamSegment:
    """One same-shape batch of interaction blocks from one round.

    ``rows[g]`` / ``cols[g]`` are the global entry indices of the ``g``-th
    block (skeleton sets for S2S, leaf index sets for L2L) and ``keys[g]``
    its provider key; ``src`` / ``dst`` are the gather / scatter index
    tables of the batched GEMM.  Scatter targets are disjoint within the
    segment (each target appears at most once per round), so the
    fancy-index add is a plain vectorized scatter.
    """

    __slots__ = (
        "kind", "shape", "keys", "rows", "cols", "src", "dst",
        "cached", "missing", "flops_per_rhs",
    )

    def __init__(
        self,
        kind: str,
        shape: Tuple[int, int],
        keys: List[tuple[int, int]],
        rows: List[np.ndarray],
        cols: List[np.ndarray],
        src: Optional[np.ndarray] = None,
        dst: Optional[np.ndarray] = None,
    ) -> None:
        self.kind = kind                  # "S2S" (util scatter) or "L2L" (output scatter)
        self.shape = shape                # (p, k) of every block in the batch
        self.keys = keys
        # Pre-stacked (g, p) / (g, k) index tables: entries_batched takes
        # the 2-D arrays straight into its stacked fast path, paying no
        # per-matvec restacking.
        self.rows = np.stack(rows)
        self.cols = np.stack(cols)
        # Gather rows (wtil for S2S, weights for L2L) and scatter rows
        # (util for S2S, output for L2L).  For L2L these are the block's
        # global entry indices themselves, so they alias the stacked
        # rows/cols instead of duplicating O(pairs) index memory.
        self.src = self.cols if src is None else src
        self.dst = self.rows if dst is None else dst
        self.cached: List[int] = []       # filled by bind_cache
        self.missing: List[int] = list(range(len(keys)))
        self.flops_per_rhs = 2.0 * len(keys) * shape[0] * shape[1]

    @property
    def batch(self) -> int:
        return len(self.keys)

    @property
    def elems(self) -> int:
        return self.batch * self.shape[0] * self.shape[1]

    def bind_cache(self, provider) -> None:
        """Split the segment's keys into cached / to-evaluate once, at build.

        The block cache is immutable after compression, so the split never
        changes between matvecs — checking it per materialization would be
        thousands of dict probes per call for nothing.
        """
        self.cached = [g for g, key in enumerate(self.keys) if key in provider]
        if self.cached:
            in_cache = set(self.cached)
            self.missing = [g for g in range(len(self.keys)) if g not in in_cache]
        else:
            self.missing = list(range(len(self.keys)))

    def materialize(self, provider, matrix, out: np.ndarray) -> None:
        """Fill ``out`` (a ``(g, p, k)`` buffer view) with this segment's blocks.

        Cached blocks are copied from the provider; the rest are evaluated
        in stacked sub-batches (bounded so the evaluator's temporaries stay
        small), written straight into the buffer when the whole segment is
        uncached — the memoryless hot path.
        """
        for g in self.cached:
            out[g] = provider.get(self.keys[g])
        if not self.missing:
            return
        if matrix is None:
            kind = "far" if self.kind == "S2S" else "near"
            raise EvaluationError(
                f"missing {kind} block {self.keys[self.missing[0]]} and no source matrix "
                "attached to stream it from"
            )
        per_block = max(1, self.shape[0] * self.shape[1] * 8)
        step = max(1, _MATERIALIZE_CALL_BYTES // per_block)
        if not self.cached:
            for start in range(0, self.batch, step):
                stop = min(start + step, self.batch)
                matrix.entries_batched(
                    self.rows[start:stop], self.cols[start:stop], out=out[start:stop]
                )
            return
        for start in range(0, len(self.missing), step):
            chosen = self.missing[start : start + step]
            blocks = matrix.entries_batched(
                [self.rows[g] for g in chosen], [self.cols[g] for g in chosen]
            )
            for block, g in zip(blocks, chosen):
                out[g] = block

    def run(self, ctx: PlanContext, blocks: np.ndarray) -> None:
        """Execute the batched GEMM + scatter from materialized ``blocks``."""
        if self.kind == "S2S":
            ctx.util[self.dst] += np.matmul(blocks, ctx.wtil[self.src])
        else:
            ctx.output[self.dst] += np.matmul(blocks, ctx.weights[self.src])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamSegment({self.kind}, batch={self.batch}, shape={self.shape})"


class StreamChunk:
    """A contiguous run of segments materialized into one buffer together."""

    __slots__ = (
        "segments", "offsets", "total_elems", "flops_per_rhs",
        "num_blocks", "missing_elems",
    )

    def __init__(self, segments: List[StreamSegment]) -> None:
        self.segments = segments
        self.offsets: List[int] = []
        offset = 0
        for segment in segments:
            self.offsets.append(offset)
            offset += segment.elems
        self.total_elems = offset
        self.flops_per_rhs = sum(s.flops_per_rhs for s in segments)
        # Telemetry aggregates, fixed once bind_cache has run on the
        # segments (the cache split never changes between matvecs).
        self.num_blocks = sum(s.batch for s in segments)
        self.missing_elems = sum(
            len(s.missing) * s.shape[0] * s.shape[1] for s in segments
        )

    def _views(self, buffer: np.ndarray):
        for segment, offset in zip(self.segments, self.offsets):
            g, (p, k) = segment.batch, segment.shape
            yield segment, buffer[offset : offset + segment.elems].reshape(g, p, k)

    def materialize(self, near_blocks, far_blocks, matrix, buffer: np.ndarray) -> None:
        for segment, view in self._views(buffer):
            provider = far_blocks if segment.kind == "S2S" else near_blocks
            segment.materialize(provider, matrix, view)

    def run(self, ctx: PlanContext, buffer: np.ndarray) -> None:
        for segment, view in self._views(buffer):
            segment.run(ctx, view)


# ---------------------------------------------------------------------------
# the shared materialization/execution pool
# ---------------------------------------------------------------------------

_POOL_LOCK = threading.Lock()
_POOL = None  # lazily created WorkerPool shared by every streamed evaluation


def _shared_pool():
    """The persistent worker pool pipelining every streamed matvec.

    Workers materialize upcoming chunks while one runs the current chunk's
    GEMMs; the pool is shared across plans and across concurrent
    evaluations (``WorkerPool.run`` is reentrant), and its daemon threads
    live for the process.
    """
    global _POOL
    from ..runtime.executor import WorkerPool

    with _POOL_LOCK:
        if _POOL is None:
            workers = max(2, min(_PIPELINE_BUFFERS, (os.cpu_count() or 2)))
            _POOL = WorkerPool(workers, name="streaming")
        return _POOL


# ---------------------------------------------------------------------------
# the streaming plan
# ---------------------------------------------------------------------------

class StreamingPlan:
    """Execution plan of the ``"streamed"`` engine for one compressed matrix.

    Holds the shared :class:`~repro.core.plan.PassLayout` (N2S / S2N level
    segments, workspace offsets) plus the chunked S2S / L2L materialization
    schedule.  The plan itself is immutable after construction; every
    :meth:`execute` call owns its context and its two chunk buffers, so
    concurrent matvecs on one plan are safe and each is bit-identical to
    running alone (the execution chain is sequential per call).
    """

    def __init__(
        self,
        layout: PassLayout,
        s2s_chunks: List[StreamChunk],
        l2l_chunks: List[StreamChunk],
        near_blocks,
        far_blocks,
        matrix,
        chunk_bytes: int,
        stall_timeout: Optional[float],
        spill_degrade_to_heap: bool = True,
    ) -> None:
        self.layout = layout
        self.s2s_chunks = s2s_chunks
        self.l2l_chunks = l2l_chunks
        self.near_blocks = near_blocks
        self.far_blocks = far_blocks
        self.matrix = matrix
        self.chunk_bytes = chunk_bytes
        self.stall_timeout = stall_timeout
        self.spill_degrade_to_heap = bool(spill_degrade_to_heap)
        chunks = s2s_chunks + l2l_chunks
        self.buffer_elems = max((c.total_elems for c in chunks), default=0)
        #: Decided at plan time: the cycling buffers only exceed the budget
        #: when a single interaction block is bigger than one buffer's share
        #: of it (the packer's one-block minimum).  Exactly-at-budget plans
        #: allocate normally; strictly-over plans take their buffers from a
        #: disk-backed :class:`~repro.storage.spill.SpillArena` instead of
        #: over-allocating anonymous memory.
        self.spills = self.workspace_bytes > self.chunk_bytes
        self._arena = None
        self._arena_lock = threading.Lock()
        self.flops_per_rhs: Dict[str, float] = {
            "n2s": sum(s.flops_per_rhs for level in layout.n2s_levels for s in level),
            "s2s": sum(c.flops_per_rhs for c in s2s_chunks),
            "s2n": sum(s.flops_per_rhs for level in layout.s2n_levels for s in level),
            "l2l": sum(c.flops_per_rhs for c in l2l_chunks),
        }

    # -- inspection ---------------------------------------------------------
    @property
    def num_chunks(self) -> int:
        return len(self.s2s_chunks) + len(self.l2l_chunks)

    @property
    def workspace_bytes(self) -> int:
        """Bytes held by all cycling chunk buffers together (the bounded workspace)."""
        return min(_PIPELINE_BUFFERS, max(self.num_chunks, 1)) * self.buffer_elems * 8

    def index_bytes(self) -> int:
        """Persistent gather/scatter index-table bytes of the whole plan.

        Unlike the block *values* (bounded by the chunk workspace), the
        index tables scale with the number of interaction pairs —
        ``O((p + k))`` integers per pair, roughly an eighth of the eager
        block bytes at rank 16 / leaf 32.  Reported so memory planning for
        large memoryless runs accounts for it; aliased arrays (L2L
        src/dst) are counted once.
        """
        seen: set = set()
        total = 0
        for chunk in self.s2s_chunks + self.l2l_chunks:
            for segment in chunk.segments:
                for array in (segment.rows, segment.cols, segment.src, segment.dst):
                    if id(array) not in seen:
                        seen.add(id(array))
                        total += array.nbytes
        return total

    def describe(self) -> str:
        segments = sum(len(c.segments) for c in self.s2s_chunks + self.l2l_chunks)
        return (
            f"streaming plan: {self.num_chunks} chunks ({len(self.s2s_chunks)} S2S, "
            f"{len(self.l2l_chunks)} L2L), {segments} segments, "
            f"workspace {self.workspace_bytes} bytes (budget {self.chunk_bytes}), "
            f"index tables {self.index_bytes()} bytes"
        )

    def report(self) -> Dict[str, float]:
        return {
            "chunks": float(self.num_chunks),
            "s2s_chunks": float(len(self.s2s_chunks)),
            "l2l_chunks": float(len(self.l2l_chunks)),
            "segments": float(sum(len(c.segments) for c in self.s2s_chunks + self.l2l_chunks)),
            "workspace_bytes": float(self.workspace_bytes),
            "chunk_budget_bytes": float(self.chunk_bytes),
            "index_bytes": float(self.index_bytes()),
            "workspace_rows": float(self.layout.workspace_rows),
            "spills": float(self.spills),
            "spill_bytes": float(self._arena.bytes_on_disk if self._arena is not None else 0),
        }

    # -- lifecycle ----------------------------------------------------------
    def _spill_arena(self):
        """The lazily created spill arena backing over-budget chunk buffers."""
        with self._arena_lock:
            if self._arena is None or self._arena.closed:
                from ..storage.spill import SpillArena

                _LOG.info(
                    "streaming workspace (%d bytes) exceeds chunk budget (%d bytes); "
                    "chunk buffers spill to a disk-backed arena",
                    self.workspace_bytes,
                    self.chunk_bytes,
                )
                self._arena = SpillArena(
                    budget_bytes=max(self.chunk_bytes, 1), prefix="gofmm-stream-"
                )
            return self._arena

    def close(self) -> None:
        """Release the spill arena (if any); the plan stays usable and will
        lazily recreate it on the next over-budget execution."""
        with self._arena_lock:
            arena, self._arena = self._arena, None
        if arena is not None:
            arena.close()

    def __enter__(self) -> "StreamingPlan":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- execution ----------------------------------------------------------
    def _run_pass(self, levels, ctx: PlanContext, trace_name: Optional[str] = None) -> None:
        tracer = get_tracer()
        if trace_name is not None and tracer.enabled:
            with tracer.span(trace_name, segments=sum(len(level) for level in levels)):
                for level in levels:
                    for segment in level:
                        segment.run(ctx)
            return
        for level in levels:
            for segment in level:
                segment.run(ctx)

    #: Sentinel: "use the stall timeout captured from the config at build".
    _PLAN_TIMEOUT = object()

    def execute(
        self,
        weights,
        counters: Optional[EvaluationCounters] = None,
        pool=None,
        stall_timeout=_PLAN_TIMEOUT,
        out=None,
        panel_cols: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """One streamed matvec on ``(N, r)`` weights.

        ``weights`` is either a plain array (the classic path: one context,
        one result array) or anything :func:`repro.storage.panels.as_panel_source`
        accepts — a ``PanelSource``, or a path to an ``.npy`` file opened
        via mmap.  Non-array weights, an explicit ``out`` sink, or an
        explicit ``panel_cols`` all select the **panel path**: the RHS is
        processed as column panels of at most ``panel_cols`` columns, each
        read in bounded row-range slices, so peak residency is
        ``O(workspace + panel)`` instead of ``O(n * r)``.

        ``out`` accepts an array, a ``PanelSink``, or a path (written as a
        fresh ``.npy`` via write-mode mmap).  With a sink the return value
        is ``None``; otherwise the dense result is returned.

        Note on bit patterns: BLAS GEMM accumulation differs across RHS
        widths, so a panel of width ``c`` is bit-identical to evaluating
        those same ``c`` columns alone — not to slicing a full-width
        evaluation (the established engine-contract caveat from the
        serving batcher, which pads to a canonical width for that reason).

        ``stall_timeout`` defaults to the config value captured at plan
        build; pass ``None`` explicitly to disable the watchdog for this
        call (``parallel_evaluate`` forwards its argument here).
        """
        if stall_timeout is self._PLAN_TIMEOUT:
            stall_timeout = self.stall_timeout
        if isinstance(weights, np.ndarray) and out is None and panel_cols is None:
            output = self._execute_array(weights, pool, stall_timeout, buffers=None)
            if counters is not None:
                self.add_flops(counters, weights.shape[1])
            return output

        from ..storage.panels import as_panel_sink, as_panel_source

        source = as_panel_source(weights)
        n, num_rhs = source.shape
        if n != self.layout.n:
            raise EvaluationError(
                f"panel source has {n} rows, operator expects {self.layout.n}"
            )
        cols = panel_cols if panel_cols is not None else self.default_panel_cols(num_rhs)
        if cols < 1:
            raise EvaluationError(f"panel_cols must be >= 1, got {cols}")
        cols = min(cols, num_rhs) if num_rhs else cols
        result = None
        if out is None:
            result = np.empty((n, num_rhs))
            sink = None
        else:
            sink = as_panel_sink(out, (n, num_rhs))
        # The chunk buffers are independent of the RHS width, so one set
        # cycles through every panel.
        buffers = self._allocate_buffers() if (self.s2s_chunks or self.l2l_chunks) else []
        try:
            for start in range(0, num_rhs, cols):
                stop = min(start + cols, num_rhs)
                panel = self._read_panel(source, n, start, stop)
                out_panel = self._execute_array(panel, pool, stall_timeout, buffers=buffers)
                if sink is not None:
                    self._write_panel(sink, out_panel, start)
                else:
                    result[:, start:stop] = out_panel
                if counters is not None:
                    self.add_flops(counters, stop - start)
        finally:
            self._release_buffers(buffers)
        if sink is not None and hasattr(sink, "flush"):
            sink.flush()
        return result

    def default_panel_cols(self, num_rhs: int) -> int:
        """Panel width sizing the input + output panels to the chunk budget.

        Each in-flight panel pair costs ``2 * n * cols * 8`` bytes (plus
        the layout's ``2 * workspace_rows * cols * 8`` skeleton workspace),
        so the default keeps them together within ``chunk_bytes`` —
        mirroring how the chunk buffers split the same budget.
        """
        per_col = 2 * (self.layout.n + self.layout.workspace_rows) * 8
        cols = max(1, self.chunk_bytes // max(per_col, 1))
        return min(cols, num_rhs) if num_rhs else cols

    @staticmethod
    def _read_panel(source, n: int, col_start: int, col_stop: int) -> np.ndarray:
        """Assemble one float64 column panel from bounded row-range reads."""
        width = col_stop - col_start
        panel = np.empty((n, width))
        rows_per = max(1, _PANEL_IO_BYTES // max(width * 8, 1))
        for row_start in range(0, n, rows_per):
            row_stop = min(row_start + rows_per, n)
            panel[row_start:row_stop] = source.read(row_start, row_stop, col_start, col_stop)
        return panel

    @staticmethod
    def _write_panel(sink, panel: np.ndarray, col_start: int) -> None:
        width = panel.shape[1]
        rows_per = max(1, _PANEL_IO_BYTES // max(width * 8, 1))
        for row_start in range(0, panel.shape[0], rows_per):
            row_stop = min(row_start + rows_per, panel.shape[0])
            sink.write(row_start, col_start, panel[row_start:row_stop])

    def _allocate_buffers(self) -> List[np.ndarray]:
        """The cycling chunk buffers — heap-allocated within budget,
        arena-backed (disk spill) when the plan is over budget."""
        num_chunks = self.num_chunks
        num_buffers = min(_PIPELINE_BUFFERS, max(num_chunks, 1))
        if not self.spills:
            return [np.empty(self.buffer_elems) for _ in range(num_buffers)]
        arena = self._spill_arena()
        buffers: List[np.ndarray] = []
        try:
            for _ in range(num_buffers):
                buffers.append(arena.allocate(self.buffer_elems))
        except SpillCapacityError:
            # The spill disk is full.  Undo the partial allocation, then
            # either degrade to heap buffers for the rest of the plan's
            # lifetime (spill_degrade_to_heap, the default — trading the
            # bounded-workspace guarantee for a completed, still
            # bit-identical matvec) or surface the typed error.
            for buffer in buffers:
                arena.release(buffer)
            if not self.spill_degrade_to_heap:
                raise
            _LOG.warning(
                "spill arena out of disk space; degrading %d chunk buffer(s) "
                "(%d bytes each) to heap allocation — the streaming workspace "
                "bound no longer holds for this plan",
                num_buffers,
                self.buffer_elems * 8,
            )
            _obs_counters.add("faults_degraded")
            self.spills = False
            self.close()
            return [np.empty(self.buffer_elems) for _ in range(num_buffers)]
        return buffers

    def _release_buffers(self, buffers: List[np.ndarray]) -> None:
        """Return spill-backed buffers to the arena (heap buffers just GC)."""
        if not self.spills:
            return
        with self._arena_lock:
            arena = self._arena
        if arena is None or arena.closed:
            return
        for buffer in buffers:
            if isinstance(buffer, np.memmap):
                arena.release(buffer)

    def _execute_array(
        self, weights: np.ndarray, pool, stall_timeout, buffers: Optional[List[np.ndarray]]
    ) -> np.ndarray:
        """One full evaluation of an in-memory ``(N, r)`` weight array.

        ``buffers`` lets the panel loop reuse one set of chunk buffers
        across panels; ``None`` allocates (and lets GC drop) a fresh set.
        """
        ctx = self.layout.new_context(weights)
        chunks = self.s2s_chunks + self.l2l_chunks
        if not chunks:
            # Degenerate (no interactions): just the up/down passes.
            self._run_pass(self.layout.n2s_levels, ctx, trace_name="eval.n2s")
            self._run_pass(self.layout.s2n_levels, ctx, trace_name="eval.s2n")
            return ctx.output
        own_buffers = buffers is None
        if own_buffers:
            buffers = self._allocate_buffers()
        try:
            graph, payloads = self._build_graph(ctx, buffers)
            (pool or _shared_pool()).run(graph, payloads=payloads, stall_timeout=stall_timeout)
        finally:
            if own_buffers:
                self._release_buffers(buffers)
        return ctx.output

    def _build_graph(self, ctx: PlanContext, buffers):
        """The buffered chunk pipeline as a task graph.

        ``exec`` tasks form a strict chain (deterministic, reference-order
        accumulation); ``mat:i`` runs concurrently with earlier
        materializations and executions, gated only by its buffer being
        free again (``exec:i-len(buffers)`` done — the buffers cycle).  The
        S2N pass sits between the last S2S chunk and the first L2L chunk,
        matching the reference traversal's stage order on the shared output
        rows.
        """
        from ..runtime.task import Task, TaskGraph

        graph = TaskGraph()
        payloads = {}
        chunks = self.s2s_chunks + self.l2l_chunks
        num_s2s = len(self.s2s_chunks)

        def add(task_id: str, kind: str, flops: float, payload) -> None:
            graph.add_task(Task(task_id=task_id, kind=kind, node_id=0, flops=flops))
            payloads[task_id] = payload

        num_rhs = ctx.num_rhs
        add("N2S", "N2S", self.flops_per_rhs["n2s"] * num_rhs,
            lambda: self._run_pass(self.layout.n2s_levels, ctx, trace_name="eval.n2s"))
        add("S2N", "S2N", self.flops_per_rhs["s2n"] * num_rhs,
            lambda: self._run_pass(self.layout.s2n_levels, ctx, trace_name="eval.s2n"))
        num_buffers = len(buffers)
        # Spill-backed buffers are pinned hot across their materialize →
        # execute window and released after, so the arena's LRU accounting
        # tracks exactly the chunks the pipeline is actively touching.
        arena = self._arena if self.spills else None

        def run_mat(chunk, buffer, index) -> None:
            if arena is not None:
                arena.pin(buffer)
            tracer = get_tracer()
            if tracer.enabled:
                with tracer.span(
                    "stream.chunk.fill",
                    chunk=index,
                    kind=chunk.segments[0].kind,
                    elems=chunk.total_elems,
                    spilled=bool(arena is not None),
                ):
                    chunk.materialize(self.near_blocks, self.far_blocks, self.matrix, buffer)
            else:
                chunk.materialize(self.near_blocks, self.far_blocks, self.matrix, buffer)
            _obs_counters.add("blocks_materialized", chunk.num_blocks)
            if chunk.missing_elems:
                _obs_counters.add("kernel_entries_evaluated", chunk.missing_elems)

        def run_exec(chunk, buffer, index) -> None:
            tracer = get_tracer()
            if tracer.enabled:
                with tracer.span(
                    f"eval.{chunk.segments[0].kind.lower()}",
                    chunk=index,
                    segments=len(chunk.segments),
                ):
                    chunk.run(ctx, buffer)
            else:
                chunk.run(ctx, buffer)
            if arena is not None:
                arena.unpin(buffer)

        for i, chunk in enumerate(chunks):
            buffer = buffers[i % num_buffers]
            add(f"mat:{i}", "MAT", float(chunk.total_elems),
                lambda c=chunk, b=buffer, i=i: run_mat(c, b, i))
            add(f"exec:{i}", chunk.segments[0].kind, chunk.flops_per_rhs * num_rhs,
                lambda c=chunk, b=buffer, i=i: run_exec(c, b, i))

        graph.add_dependency("N2S", "S2N")
        for i in range(len(chunks)):
            graph.add_dependency(f"mat:{i}", f"exec:{i}")
            if i >= num_buffers:
                graph.add_dependency(f"exec:{i - num_buffers}", f"mat:{i}")
            if i >= 1:
                graph.add_dependency(f"exec:{i - 1}", f"exec:{i}")
        if num_s2s > 0:
            graph.add_dependency("N2S", "exec:0")
            graph.add_dependency(f"exec:{num_s2s - 1}", "S2N")
        if num_s2s < len(chunks):
            graph.add_dependency("S2N", f"exec:{num_s2s}")
        graph.validate()
        return graph, payloads

    def add_flops(self, counters: EvaluationCounters, num_rhs: int) -> None:
        counters.n2s += self.flops_per_rhs["n2s"] * num_rhs
        counters.s2s += self.flops_per_rhs["s2s"] * num_rhs
        counters.s2n += self.flops_per_rhs["s2n"] * num_rhs
        counters.l2l += self.flops_per_rhs["l2l"] * num_rhs


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------

def _round_segments(
    kind: str,
    targets_with_pairs: List[tuple[object, List[object]]],
    make_segment,
    budget_elems: int,
) -> List[StreamSegment]:
    """Round-major, shape-grouped segments over per-target interaction lists.

    Round ``j`` takes each target's ``j``-th pair, so every target appears
    at most once per round — scatter targets stay disjoint within every
    segment while each target's accumulation order remains its list order
    (the reference engine's order).  Segments larger than the chunk budget
    are split along the batch dimension, which preserves both properties.
    """
    segments: List[StreamSegment] = []
    max_len = max((len(pairs) for _, pairs in targets_with_pairs), default=0)
    for j in range(max_len):
        groups: Dict[tuple[int, int], list] = {}
        for target, pairs in targets_with_pairs:
            if j < len(pairs):
                beta_alpha = (target, pairs[j])
                groups.setdefault(make_segment.shape_of(*beta_alpha), []).append(beta_alpha)
        for shape, members in sorted(groups.items()):
            per_block = shape[0] * shape[1]
            step = max(1, budget_elems // max(per_block, 1))
            for start in range(0, len(members), step):
                segments.append(make_segment(kind, shape, members[start : start + step]))
    return segments


class _S2SSegmentFactory:
    """Builds S2S stream segments (skeleton blocks, workspace gather/scatter)."""

    def __init__(self, skel_offset: np.ndarray) -> None:
        self.skel_offset = skel_offset

    @staticmethod
    def shape_of(beta, alpha) -> tuple[int, int]:
        return (beta.skeleton_rank, alpha.skeleton_rank)

    def __call__(self, kind: str, shape: tuple[int, int], members: list) -> StreamSegment:
        s, k = shape
        offset = self.skel_offset
        src = np.stack([np.arange(offset[a.node_id], offset[a.node_id] + k) for _, a in members])
        dst = np.stack([np.arange(offset[b.node_id], offset[b.node_id] + s) for b, _ in members])
        return StreamSegment(
            kind,
            shape,
            keys=[(b.node_id, a.node_id) for b, a in members],
            rows=[b.skeleton for b, _ in members],
            cols=[a.skeleton for _, a in members],
            src=src,
            dst=dst,
        )


class _L2LSegmentFactory:
    """Builds L2L stream segments (leaf blocks, global gather/scatter)."""

    @staticmethod
    def shape_of(leaf, alpha) -> tuple[int, int]:
        return (leaf.size, alpha.size)

    def __call__(self, kind: str, shape: tuple[int, int], members: list) -> StreamSegment:
        return StreamSegment(
            kind,
            shape,
            keys=[(b.node_id, a.node_id) for b, a in members],
            rows=[b.indices for b, _ in members],
            cols=[a.indices for _, a in members],
        )


def _pack_chunks(segments: List[StreamSegment], budget_elems: int) -> List[StreamChunk]:
    """Greedy packing of consecutive segments into budget-bounded chunks."""
    chunks: List[StreamChunk] = []
    current: List[StreamSegment] = []
    current_elems = 0
    for segment in segments:
        if current and current_elems + segment.elems > budget_elems:
            chunks.append(StreamChunk(current))
            current, current_elems = [], 0
        current.append(segment)
        current_elems += segment.elems
    if current:
        chunks.append(StreamChunk(current))
    return chunks


def build_streaming_plan(compressed) -> StreamingPlan:
    """Build the ``"streamed"`` engine's plan for a compressed matrix.

    The pass layout is built with exact (unbucketed) rank packing — zero
    padding would change GEMM shapes and break the engine's bit-identity
    with the reference traversal.
    """
    config = compressed.config
    tree = compressed.tree
    layout = build_pass_layout(compressed, "none")
    # The chunk budget is split across twice the pipeline's cycling buffers
    # so all in-flight chunks together stay within half of
    # streaming_chunk_bytes (one block minimum per chunk) — halving the
    # chunk size costs nothing once the pipeline is saturated, and the
    # finer granularity both smooths the materialize/execute overlap and
    # leaves headroom for the batch evaluator's transient temporaries
    # inside the configured budget.
    chunk_bytes = int(getattr(config, "streaming_chunk_bytes", 32 * 2**20))
    budget_elems = max(1, chunk_bytes // (2 * _PIPELINE_BUFFERS) // 8)

    far_targets = []
    for node in tree.nodes:
        if not node.far or node.skeleton_rank == 0:
            continue
        pairs = [tree.node(a) for a in node.far if tree.node(a).skeleton_rank > 0]
        if pairs:
            far_targets.append((node, pairs))
    near_targets = []
    for leaf in tree.leaves:
        if not leaf.near or leaf.size == 0:
            continue
        pairs = [tree.node(a) for a in leaf.near if tree.node(a).size > 0]
        if pairs:
            near_targets.append((leaf, pairs))

    s2s_segments = _round_segments(
        "S2S", far_targets, _S2SSegmentFactory(layout.skel_offset), budget_elems
    )
    l2l_segments = _round_segments("L2L", near_targets, _L2LSegmentFactory(), budget_elems)
    for segment in s2s_segments:
        segment.bind_cache(compressed.far_blocks)
    for segment in l2l_segments:
        segment.bind_cache(compressed.near_blocks)

    return StreamingPlan(
        layout=layout,
        s2s_chunks=_pack_chunks(s2s_segments, budget_elems),
        l2l_chunks=_pack_chunks(l2l_segments, budget_elems),
        near_blocks=compressed.near_blocks,
        far_blocks=compressed.far_blocks,
        matrix=compressed.matrix,
        chunk_bytes=chunk_bytes,
        stall_timeout=getattr(config, "executor_stall_timeout", None),
        spill_degrade_to_heap=bool(getattr(config, "spill_degrade_to_heap", True)),
    )


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def evaluate_streamed(compressed, w: np.ndarray, counters: Optional[EvaluationCounters] = None) -> np.ndarray:
    """Streamed-engine matvec ``u ≈ K̃ w``; drop-in for the other engines.

    Builds (or reuses) the cached :class:`StreamingPlan` of ``compressed``
    and executes it with double-buffered chunk materialization.  Accepts
    ``(N,)`` or ``(N, r)`` weights.
    """
    weights, was_vector = _as_matrix(w, compressed.tree.n)
    plan = compressed.streaming_plan()
    output = plan.execute(weights, counters=counters)
    return output[:, 0] if was_vector else output
