"""Shared-memory process-pool scaffolding for sharded pipeline stages.

The ``"sharded"`` neighbor backend (:mod:`repro.core.neighbor_backends`)
and the ``"sharded"`` compression backend
(:mod:`repro.core.skeletonization_sharded`) both follow the same recipe:

1. the parent stores the read-only problem state (distance oracle, matrix,
   tree, config) in a module-level global,
2. a ``fork``-context :class:`multiprocessing.Pool` is created — the
   children inherit that state by copy-on-write, so nothing large is
   pickled per task,
3. results flow back through :class:`SharedSlab` arrays
   (:mod:`multiprocessing.shared_memory`), which the parent allocated
   before the fork; workers write disjoint slots, the parent reads them
   after ``pool.map`` returns.

Fork inheritance is load-bearing (plain numpy arrays are copy-on-write
*into* a child but writes never propagate back, hence the slabs), so on
platforms without the ``fork`` start method the sharded backends fall back
to their single-process equivalents — :func:`fork_available` is the gate.

A raw ``pool.map`` has a failure mode the backends cannot accept: a worker
killed mid-task (OOM killer, segfault in BLAS) never returns its result,
and the map blocks forever.  :class:`SupervisedPool` wraps the same fork
pool with task-level supervision — results are collected via
``imap_unordered`` under a per-task-gap timeout, missing or errored tasks
are retried (re-forking the pool, with capped backoff), and a task that
exhausts its retry budget raises a typed
:class:`~repro.errors.WorkerCrashError` so the caller can degrade to its
single-process backend.  Retrying is always safe here: every shard task
deterministically rewrites its own slab slots from per-node streams, so a
retry produces exactly the bytes the first attempt would have.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing import shared_memory
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import WorkerCrashError
from ..faults import injection as _faults
from ..obs import counters as _obs_counters
from ..obs import get_logger

__all__ = ["SharedSlab", "SupervisedPool", "fork_available", "fork_pool"]

_LOG = get_logger("core.sharding")


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (POSIX; never on Windows)."""
    return "fork" in multiprocessing.get_all_start_methods()


def fork_pool(workers: int):
    """A ``fork``-context worker pool (caller must ensure :func:`fork_available`)."""
    return multiprocessing.get_context("fork").Pool(processes=max(1, int(workers)))


class SharedSlab:
    """A numpy array backed by :class:`multiprocessing.shared_memory.SharedMemory`.

    Created by the parent *before* forking the pool; the forked workers
    inherit the object and write through :attr:`array` into memory the
    parent sees.  The parent owns the lifetime: call :meth:`close` (with
    ``unlink=True``) once the results have been read.
    """

    def __init__(self, shape: tuple, dtype) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._array: np.ndarray | None = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    @property
    def array(self) -> np.ndarray:
        if self._array is None:
            raise ValueError("shared slab has been closed")
        return self._array

    def close(self, unlink: bool = True) -> None:
        """Release the mapping; ``unlink`` destroys the backing segment."""
        self._array = None
        try:
            self._shm.close()
        except BufferError:
            # A live view still pins the buffer; unlink below still reclaims
            # the segment once every process has dropped its mapping.
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedSlab":
        return self

    def __exit__(self, *exc: object) -> None:
        # Context-managed slabs always unlink: the sharded backends stack
        # them in an ExitStack so no injection/exception path can leak a
        # /dev/shm segment.
        self.close(unlink=True)


# ---------------------------------------------------------------------------
# supervised execution
# ---------------------------------------------------------------------------

def _supervised_call(payload):
    """Worker-side wrapper around one shard task (module-level: fork-picklable).

    Fires the ``shard.worker`` fault point with the task's identity (so a
    plan can kill/stall/error one precise attempt), then runs the task.
    Failures are *returned*, not raised — a raised exception would poison
    the pool's result pipe ordering; the supervisor decides what to retry.
    """
    fn, key, task, attempt = payload
    try:
        _faults.fire("shard.worker", task=key, attempt=attempt)
        return key, True, fn(task)
    except BaseException as exc:  # noqa: BLE001 - reported to the supervisor
        return key, False, f"{type(exc).__name__}: {exc}"


class SupervisedPool:
    """A fork pool that survives worker death, stalls, and task errors.

    ``map(fn, tasks)`` submits each task through :func:`_supervised_call`
    via ``imap_unordered`` and collects results under ``task_timeout`` —
    the maximum *gap between completions*, not a total-runtime bound.  A
    gap timeout means the outstanding tasks' workers are dead or wedged
    (``multiprocessing.Pool`` refills killed workers, but the tasks they
    held never return): the pool is terminated and re-forked, and the
    missing tasks are resubmitted with capped backoff, up to ``retries``
    extra attempts per task.  Past the budget a
    :class:`~repro.errors.WorkerCrashError` is raised so callers can
    degrade to a single-process backend.

    Telemetry: each failure round reports its losses through
    ``injection.record_detection("shard.worker", …)`` (counted as
    injected only while a plan scripting that point is armed) and every
    task that subsequently succeeds on a retry increments
    ``faults_recovered``.

    Context manager; the pool (if any) is terminated on exit — results
    travel through shared slabs, so there is never anything to drain.
    """

    def __init__(
        self,
        workers: int,
        *,
        retries: int = 2,
        task_timeout: Optional[float] = None,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        label: str = "shard",
    ) -> None:
        self.workers = max(1, int(workers))
        self.retries = max(0, int(retries))
        self.task_timeout = task_timeout
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.label = label
        self._pool = None

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self._discard_pool()

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = fork_pool(self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Run ``fn`` over ``tasks`` with supervision; results in task order.

        Task keys are the positions in ``tasks``; a retried task reruns
        with the same key and an incremented attempt number (visible to
        fault-plan ``match`` triggers as ``task=`` / ``attempt=``).
        """
        pending = {key: task for key, task in enumerate(tasks)}
        attempts = {key: 0 for key in pending}
        results: dict = {}
        round_no = 0
        while pending:
            pool = self._ensure_pool()
            payloads = [(fn, key, pending[key], attempts[key]) for key in sorted(pending)]
            failed: dict = {}
            try:
                it = pool.imap_unordered(_supervised_call, payloads, chunksize=1)
                for _ in range(len(payloads)):
                    key, ok, value = it.next(self.task_timeout)
                    if ok:
                        results[key] = value
                        if attempts[key]:
                            _obs_counters.add("faults_recovered")
                        del pending[key]
                    else:
                        failed[key] = value
            except multiprocessing.TimeoutError:
                # Dead or wedged workers: whatever is still pending (minus
                # successes above) is lost — fall through to the retry round.
                pass
            except (OSError, EOFError) as exc:
                # Pool infrastructure breakage (result pipe torn down by a
                # dying worker); treat the whole round as lost.
                _LOG.warning("%s pool infrastructure failed mid-round: %s", self.label, exc)
            if not pending:
                break

            # Failure round: pending now holds errored + vanished tasks.
            self._discard_pool()
            _faults.record_detection("shard.worker", len(pending))
            for key in pending:
                attempts[key] += 1
            exhausted = sorted(key for key in pending if attempts[key] > self.retries)
            if exhausted:
                detail = "; ".join(
                    f"task {key}: {failed[key]}" for key in exhausted if key in failed
                )
                raise WorkerCrashError(
                    f"{self.label}: {len(exhausted)} of {len(attempts)} shard tasks failed "
                    f"past the retry budget (shard_retries={self.retries})"
                    + (f" [{detail}]" if detail else ""),
                    failed_tasks=tuple(exhausted),
                    attempts=max(attempts[key] for key in exhausted),
                )
            delay = min(self.max_backoff_s, self.backoff_s * (2**round_no))
            _LOG.warning(
                "%s: %d shard task(s) failed or vanished (%s); re-forking the pool and "
                "retrying in %.0f ms (attempt %d/%d)",
                self.label,
                len(pending),
                ", ".join(str(k) for k in sorted(pending)),
                delay * 1e3,
                max(attempts[key] for key in pending),
                self.retries,
            )
            time.sleep(delay)
            round_no += 1
        return [results[key] for key in sorted(results)]
