"""Shared-memory process-pool scaffolding for sharded pipeline stages.

The ``"sharded"`` neighbor backend (:mod:`repro.core.neighbor_backends`)
and the ``"sharded"`` compression backend
(:mod:`repro.core.skeletonization_sharded`) both follow the same recipe:

1. the parent stores the read-only problem state (distance oracle, matrix,
   tree, config) in a module-level global,
2. a ``fork``-context :class:`multiprocessing.Pool` is created — the
   children inherit that state by copy-on-write, so nothing large is
   pickled per task,
3. results flow back through :class:`SharedSlab` arrays
   (:mod:`multiprocessing.shared_memory`), which the parent allocated
   before the fork; workers write disjoint slots, the parent reads them
   after ``pool.map`` returns.

Fork inheritance is load-bearing (plain numpy arrays are copy-on-write
*into* a child but writes never propagate back, hence the slabs), so on
platforms without the ``fork`` start method the sharded backends fall back
to their single-process equivalents — :func:`fork_available` is the gate.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedSlab", "fork_available", "fork_pool"]


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (POSIX; never on Windows)."""
    return "fork" in multiprocessing.get_all_start_methods()


def fork_pool(workers: int):
    """A ``fork``-context worker pool (caller must ensure :func:`fork_available`)."""
    return multiprocessing.get_context("fork").Pool(processes=max(1, int(workers)))


class SharedSlab:
    """A numpy array backed by :class:`multiprocessing.shared_memory.SharedMemory`.

    Created by the parent *before* forking the pool; the forked workers
    inherit the object and write through :attr:`array` into memory the
    parent sees.  The parent owns the lifetime: call :meth:`close` (with
    ``unlink=True``) once the results have been read.
    """

    def __init__(self, shape: tuple, dtype) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._array: np.ndarray | None = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    @property
    def array(self) -> np.ndarray:
        if self._array is None:
            raise ValueError("shared slab has been closed")
        return self._array

    def close(self, unlink: bool = True) -> None:
        """Release the mapping; ``unlink`` destroys the backing segment."""
        self._array = None
        try:
            self._shm.close()
        except BufferError:
            # A live view still pins the buffer; unlink below still reclaims
            # the segment once every process has dropped its mapping.
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
