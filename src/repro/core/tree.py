"""Balanced binary metric ball tree (§2.1, Algorithm 2.1).

The tree recursively splits the index set ``{0, …, N−1}`` into two equal
halves until nodes hold at most ``m`` indices.  The leaves, read left to
right, define the symmetric permutation under which ``K`` is approximated
by the hierarchical structure of Eq. (5).

``metricSplit`` (Algorithm 2.1) performs each split:

1. pick an approximate centroid ``c`` from a small sample of the node,
2. ``p`` = index farthest from ``c``; ``q`` = index farthest from ``p``,
3. split the node's indices at the median of ``d(i, p) − d(i, q)``.

When no distance metric is available (lexicographic or random ordering,
Figure 7's reference schemes), the split simply keeps/permutes the input
order and cuts in half, which is exactly what HODLR / STRUMPACK do for dense
matrices.

The same class also builds the *randomized projection trees* used by the
neighbor search: identical construction except that ``p`` and ``q`` are
chosen at random.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from ..config import DistanceMetric, GOFMMConfig
from ..errors import CompressionError
from .distances import Distance
from .morton import ROOT_MORTON, MortonID

__all__ = ["TreeNode", "BallTree", "build_tree", "metric_split", "random_split"]


@dataclass
class TreeNode:
    """One node of the partition tree.

    ``indices`` are *global* matrix indices (original ordering) owned by the
    node; children split them evenly.  Skeletonization results are attached
    later by the compression driver (``skeleton``, ``coeffs``).
    """

    node_id: int
    level: int
    morton: MortonID
    indices: np.ndarray
    parent: Optional["TreeNode"] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    # Filled during compression:
    skeleton: Optional[np.ndarray] = None          # global indices of the skeleton α̃
    coeffs: Optional[np.ndarray] = None            # P_{α̃ α} (leaf) or P_{α̃ [l̃ r̃]} (internal)
    skeleton_rank: int = 0
    neighbor_list: Optional[np.ndarray] = None     # N(α): neighbor indices of the node
    near: list = field(default_factory=list)       # Near(α): list of leaf node_ids
    far: list = field(default_factory=list)        # Far(α): list of node_ids

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def size(self) -> int:
        return int(self.indices.size)

    def children(self) -> tuple["TreeNode", "TreeNode"]:
        if self.is_leaf:
            raise CompressionError(f"node {self.node_id} is a leaf and has no children")
        assert self.left is not None and self.right is not None
        return self.left, self.right

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return f"TreeNode(id={self.node_id}, level={self.level}, size={self.size}, {kind})"


def metric_split(
    indices: np.ndarray,
    distance: Distance,
    rng: np.random.Generator,
    centroid_samples: int,
    randomized: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 2.1: split ``indices`` evenly into (left, right).

    With ``randomized=True`` the pivots ``p`` and ``q`` are drawn uniformly
    (the construction used for the ANN projection trees); otherwise they are
    the farthest-point pivots of the ball-tree construction.
    """
    indices = np.asarray(indices, dtype=np.intp)
    n = indices.size
    if n < 2:
        raise CompressionError("cannot split a node with fewer than 2 indices")

    if randomized:
        p_pos, q_pos = rng.choice(n, size=2, replace=False)
        p = indices[p_pos]
        q = indices[q_pos]
    else:
        sample = indices[rng.choice(n, size=min(centroid_samples, n), replace=False)]
        d_to_c = distance.to_centroid(indices, sample)
        p = indices[int(np.argmax(d_to_c))]
        d_to_p = distance.to_point(indices, int(p))
        q = indices[int(np.argmax(d_to_p))]
        if p == q:
            # Degenerate geometry (all points coincide): fall back to a random pivot.
            q = indices[int(rng.integers(n))]

    d_p = distance.to_point(indices, int(p))
    d_q = distance.to_point(indices, int(q))
    score = d_p - d_q

    # Median split with deterministic tie-breaking: argsort is stable, so
    # equal scores keep their relative order and the halves stay balanced.
    order = np.argsort(score, kind="stable")
    half = n // 2
    left = indices[order[:half]]
    right = indices[order[half:]]
    return left, right


def _split_level_randomized(
    level_indices: list[np.ndarray],
    distance: Distance,
    rng: np.random.Generator,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Random-pivot splits for one whole tree level, batched.

    Semantically (and bitwise) identical to calling
    :func:`metric_split(randomized=True)` node by node: the pivot draws
    happen per node in frontier order (same generator stream), and the
    pivot distances go through :meth:`~repro.core.distances.Distance.pairwise_blocks`
    with one single-column block per node — per slice the very GEMM /
    kernel evaluation ``to_point`` performs.  What the batching removes is
    the per-node Python and small-array overhead, which dominates the
    projection-tree builds of the ANN search (hundreds of nodes, each
    holding only a few indices).
    """
    pivots_p = np.empty(len(level_indices), dtype=np.intp)
    pivots_q = np.empty(len(level_indices), dtype=np.intp)
    for i, indices in enumerate(level_indices):
        if indices.size < 2:
            raise CompressionError("cannot split a node with fewer than 2 indices")
        p_pos, q_pos = rng.choice(indices.size, size=2, replace=False)
        pivots_p[i] = indices[p_pos]
        pivots_q[i] = indices[q_pos]

    out: list[Optional[tuple[np.ndarray, np.ndarray]]] = [None] * len(level_indices)
    by_size: dict[int, list[int]] = {}
    for i, indices in enumerate(level_indices):
        by_size.setdefault(indices.size, []).append(i)
    for size, members in by_size.items():
        stacked = np.stack([level_indices[i] for i in members])
        # One single-column block per pivot: fusing both pivots into one
        # two-column GEMM is *not* bitwise-stable on every BLAS, and the
        # splits must reproduce ``to_point`` exactly.
        d_p = distance.pairwise_blocks(stacked, pivots_p[members][:, None])[:, :, 0]
        d_q = distance.pairwise_blocks(stacked, pivots_q[members][:, None])[:, :, 0]
        order = np.argsort(d_p - d_q, axis=1, kind="stable")
        ordered = np.take_along_axis(stacked, order, axis=1)
        half = size // 2
        for g, i in enumerate(members):
            out[i] = (ordered[g, :half], ordered[g, half:])
    return out  # type: ignore[return-value]


def random_split(indices: np.ndarray, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Split preserving the current order (used for lexicographic/random trees)."""
    indices = np.asarray(indices, dtype=np.intp)
    half = indices.size // 2
    return indices[:half], indices[half:]


class BallTree:
    """Complete balanced binary partition tree over matrix indices.

    All leaves live at the same depth ``⌈log2(N / m)⌉`` so that sibling
    relationships (and hence the HSS structure of Eq. (5)) are well defined
    at every level.  Nodes are stored in breadth-first order; ``node_id`` is
    the position in that ordering (root = 0), which matches the labelling of
    Figure 2.
    """

    def __init__(self, nodes: list[TreeNode], depth: int, n: int) -> None:
        self.nodes = nodes
        self.depth = depth
        self.n = n
        self.root = nodes[0]
        self.leaves: list[TreeNode] = [node for node in nodes if node.is_leaf]
        # Map each global index to the leaf (node_id / Morton ID) that owns it.
        self._leaf_of_index = np.empty(n, dtype=np.intp)
        for leaf in self.leaves:
            self._leaf_of_index[leaf.indices] = leaf.node_id
        # Permutation: global index -> position in the left-to-right leaf ordering.
        self._permutation = np.concatenate([leaf.indices for leaf in self.leaves])

    # -- lookups ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> TreeNode:
        return self.nodes[node_id]

    def leaf_of(self, index: int) -> TreeNode:
        """The leaf owning a global matrix index."""
        return self.nodes[int(self._leaf_of_index[index])]

    def leaf_ids_of(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized ``leaf_of``: node_ids of the leaves owning each index."""
        return self._leaf_of_index[np.asarray(indices, dtype=np.intp)]

    def morton_of_index(self, index: int) -> MortonID:
        """MortonID(i) in the paper: the Morton ID of the leaf containing index i."""
        return self.leaf_of(index).morton

    @property
    def permutation(self) -> np.ndarray:
        """Global indices in left-to-right leaf order (the symmetric permutation of K)."""
        return self._permutation

    # -- copying ----------------------------------------------------------------
    def clone_structure(self) -> "BallTree":
        """Structural copy: same partition, no compression state.

        Returns a new tree whose nodes share the (read-only) ``indices``
        arrays but carry none of the per-node state attached by later
        pipeline stages (``neighbor_list``, ``near``/``far``, ``skeleton``,
        ``coeffs``).  The session API clones the cached partition for every
        compression so artifacts can be reused without aliasing mutable
        state between operators.
        """
        clones = [
            TreeNode(node_id=node.node_id, level=node.level, morton=node.morton, indices=node.indices)
            for node in self.nodes
        ]
        for node in self.nodes:
            if node.is_leaf:
                continue
            clone = clones[node.node_id]
            left, right = node.children()
            clone.left = clones[left.node_id]
            clone.right = clones[right.node_id]
            clone.left.parent = clone
            clone.right.parent = clone
        return BallTree(clones, self.depth, self.n)

    # -- traversals -------------------------------------------------------------
    def level_order(self) -> Iterator[TreeNode]:
        return iter(self.nodes)

    def levels(self) -> list[list[TreeNode]]:
        """Nodes grouped per level, root first."""
        out: list[list[TreeNode]] = [[] for _ in range(self.depth + 1)]
        for node in self.nodes:
            out[node.level].append(node)
        return out

    def preorder(self) -> Iterator[TreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)   # type: ignore[arg-type]

    def postorder(self) -> Iterator[TreeNode]:
        # Iterative postorder: reverse of (node, right, left) preorder.
        stack = [self.root]
        out: list[TreeNode] = []
        while stack:
            node = stack.pop()
            out.append(node)
            if not node.is_leaf:
                stack.append(node.left)   # type: ignore[arg-type]
                stack.append(node.right)  # type: ignore[arg-type]
        return iter(reversed(out))

    # -- invariant checking (used heavily by the tests) ---------------------------
    def check_invariants(self, leaf_size: int) -> None:
        """Raise if the partition violates its structural invariants."""
        seen = np.zeros(self.n, dtype=bool)
        for leaf in self.leaves:
            if leaf.size > leaf_size and self.depth > 0:
                raise CompressionError(f"leaf {leaf.node_id} has {leaf.size} > m={leaf_size} indices")
            if np.any(seen[leaf.indices]):
                raise CompressionError("leaves overlap")
            seen[leaf.indices] = True
        if not np.all(seen):
            raise CompressionError("leaves do not cover all indices")
        for node in self.nodes:
            if not node.is_leaf:
                left, right = node.children()
                merged = np.sort(np.concatenate([left.indices, right.indices]))
                if not np.array_equal(merged, np.sort(node.indices)):
                    raise CompressionError(f"node {node.node_id} indices != union of children")
                if abs(left.size - right.size) > 1:
                    raise CompressionError(f"node {node.node_id} split is unbalanced")


def build_tree(
    n: int,
    config: GOFMMConfig,
    distance: Optional[Distance],
    rng: Optional[np.random.Generator] = None,
    randomized_pivots: bool = False,
    initial_order: Optional[np.ndarray] = None,
) -> BallTree:
    """Construct the balanced partition tree (task SPLI of Table 2).

    Parameters
    ----------
    n:
        number of matrix indices.
    config:
        supplies the leaf size ``m`` and centroid sample size ``n_c``.
    distance:
        distance object, or ``None`` for metric-free orderings.
    randomized_pivots:
        use random pivots (projection tree for the ANN search) instead of
        farthest-point pivots.
    initial_order:
        ordering of the root indices.  Defaults to ``0..n−1``; the RANDOM
        metric passes a shuffled permutation.
    """
    rng = rng or np.random.default_rng(config.seed)
    if initial_order is None:
        root_indices = np.arange(n, dtype=np.intp)
    else:
        root_indices = np.asarray(initial_order, dtype=np.intp).copy()
        if root_indices.size != n:
            raise CompressionError("initial_order must be a permutation of 0..n-1")

    if config.distance is DistanceMetric.RANDOM and initial_order is None:
        root_indices = rng.permutation(n).astype(np.intp)

    m = config.leaf_size
    depth = 0
    while n > m * (1 << depth):
        depth += 1

    nodes: list[TreeNode] = []
    root = TreeNode(node_id=0, level=0, morton=ROOT_MORTON, indices=root_indices)
    nodes.append(root)
    frontier = [root]
    for level in range(depth):
        metric = distance is not None and config.distance.defines_distance
        level_splits: Optional[list[tuple[np.ndarray, np.ndarray]]] = None
        if metric and randomized_pivots:
            # Projection trees (ANN search): batch the whole level's pivot
            # distances — bitwise-identical splits, no per-node overhead.
            level_splits = _split_level_randomized([node.indices for node in frontier], distance, rng)
        next_frontier: list[TreeNode] = []
        for pos, node in enumerate(frontier):
            if level_splits is not None:
                left_idx, right_idx = level_splits[pos]
            elif metric:
                left_idx, right_idx = metric_split(
                    node.indices, distance, rng, config.centroid_samples, randomized=randomized_pivots
                )
            else:
                left_idx, right_idx = random_split(node.indices, rng)
            left = TreeNode(
                node_id=len(nodes),
                level=level + 1,
                morton=node.morton.left_child(),
                indices=left_idx,
                parent=node,
            )
            nodes.append(left)
            right = TreeNode(
                node_id=len(nodes),
                level=level + 1,
                morton=node.morton.right_child(),
                indices=right_idx,
                parent=node,
            )
            nodes.append(right)
            node.left, node.right = left, right
            next_frontier.extend((left, right))
        frontier = next_frontier

    return BallTree(nodes, depth, n)
