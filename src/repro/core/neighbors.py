"""Iterative all-nearest-neighbor (ANN) search with randomized projection trees.

GOFMM's sparse correction and importance sampling both need, for every index
``i``, the ``κ`` indices ``j`` with the smallest ``d_ij`` (§2.2, steps 1–3 of
Algorithm 2.2).  Exact all-pairs search costs ``O(N²)`` distance evaluations,
so the paper uses the greedy iterative scheme of [43]:

1. build a *randomized projection tree* — same construction as the metric
   ball tree but with random pivots,
2. inside every leaf, run an exhaustive k-nearest-neighbor search and merge
   the candidates into each index's running neighbor list,
3. repeat with a fresh random tree until the lists stop improving (80 %
   unchanged) or 10 iterations have run.

Each iteration costs ``O(N m)`` distance evaluations (``m`` = leaf size), so
the whole search is ``O(N m · iters)``.

The tree loop itself is executed by an interchangeable *neighbor backend*
(:mod:`repro.core.neighbor_backends`, selected via
``GOFMMConfig.neighbor_backend``): ``"reference"`` merges candidates one
row at a time (:func:`_merge_candidates`, the correctness oracle),
``"blocked"`` (the default) merges whole batches of leaves through the
vectorized :func:`merge_candidate_block`, and ``"sharded"`` runs
independent tree iterations on a process pool.  All three consume the
same rng stream (table fillers, then one tree seed per iteration drawn
up front by :func:`tree_seed_schedule`) and share the merge tie-breaking
rules, so they produce bit-identical tables.

This module hosts the table/merge primitives the backends share;
:func:`all_nearest_neighbors` only initializes and dispatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import GOFMMConfig
from .distances import Distance

__all__ = [
    "NeighborTable",
    "all_nearest_neighbors",
    "exhaustive_neighbors",
    "merge_candidate_block",
    "screened_merge",
    "leaf_candidate_batches",
    "row_set_overlap",
    "unchanged_fraction",
    "init_table",
    "tree_seed_schedule",
]

#: Workspace cap (bytes) on one stacked leaf-distance block in the blocked
#: backend — bounds peak memory at large n without changing any result
#: (leaf batches touch disjoint table rows, so batch boundaries are free).
LEAF_BATCH_BYTES = 64 * 2**20


@dataclass
class NeighborTable:
    """Per-index nearest-neighbor lists N(i).

    Attributes
    ----------
    indices:
        ``(N, κ)`` array; row ``i`` holds the global indices of the κ current
        best neighbors of ``i`` (including ``i`` itself, which always has
        distance 0).
    distances:
        ``(N, κ)`` matching distances, sorted ascending per row.
    iterations:
        number of projection-tree iterations actually performed.
    converged:
        whether the 80 %-unchanged stopping criterion fired before the
        iteration cap.
    """

    indices: np.ndarray
    distances: np.ndarray
    iterations: int
    converged: bool

    @property
    def kappa(self) -> int:
        return self.indices.shape[1]

    def neighbors_of(self, i: int) -> np.ndarray:
        return self.indices[i]

    def recall_against(self, exact: "NeighborTable") -> float:
        """Fraction of exact neighbors recovered (used by tests / diagnostics)."""
        total = self.indices.shape[0] * self.indices.shape[1]
        hits = int(row_set_overlap(self.indices, exact.indices).sum())
        return hits / total


def row_set_overlap(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row ``|set(a_i) ∩ set(b_i)|`` for two ``(n, k)`` nonnegative int arrays.

    Vectorized replacement for a per-row ``np.intersect1d`` loop: each row
    is offset into its own disjoint value range (``row · bound``), after
    which row-sorted copies of both arrays are globally sorted end to end
    and one ``searchsorted`` answers every membership query at once.
    Duplicate values within a row count once, matching set semantics.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"row_set_overlap needs equal shapes, got {a.shape} vs {b.shape}")
    if a.size == 0:
        return np.zeros(a.shape[0], dtype=np.intp)
    bound = int(max(a.max(), b.max())) + 1
    offsets = np.arange(a.shape[0], dtype=np.int64)[:, None] * bound
    a_off = np.sort(a.astype(np.int64) + offsets, axis=1)
    b_off = np.sort(b.astype(np.int64) + offsets, axis=1)
    distinct = np.ones(a.shape, dtype=bool)
    distinct[:, 1:] = a_off[:, 1:] != a_off[:, :-1]
    flat_b = b_off.ravel()  # globally sorted: offsets dominate row values
    flat_a = a_off.ravel()
    pos = np.searchsorted(flat_b, flat_a)
    member = np.zeros(flat_a.size, dtype=bool)
    inside = pos < flat_b.size
    member[inside] = flat_b[pos[inside]] == flat_a[inside]
    return (member.reshape(a.shape) & distinct).sum(axis=1).astype(np.intp)


def unchanged_fraction(previous: np.ndarray, current: np.ndarray) -> float:
    """Mean per-row *set* overlap between two index tables, in ``[0, 1]``.

    The convergence measure of the iterative search.  An earlier version
    compared ``np.sort(previous) == np.sort(current)`` elementwise, which
    counts positional matches of the sorted rows: a row that swaps a
    single neighbor shifts the sorted order and can nevertheless score
    mostly "unchanged" (or, conversely, one insertion can misalign and
    undercount every later column).  Set overlap is what the stopping
    rule of Algorithm 2.2 means; the regression tests pin this.
    """
    kappa = current.shape[1]
    if kappa == 0:
        return 1.0
    # Integer sum first, one float division last: the backends' incremental
    # convergence bookkeeping (overlap of merged rows + κ per skipped row)
    # must land on the bitwise-same fraction, which exact integer
    # accumulation guarantees and a float mean of per-row fractions would not.
    total = int(row_set_overlap(previous, current).sum())
    return total / (current.shape[0] * kappa)


def init_table(n: int, kappa: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """The initial neighbor table: self at distance 0 plus random fillers.

    Filler distances are unknown and marked ``+inf`` so anything real
    wins.  Every backend initializes through this helper (one ``(n, κ-1)``
    draw), keeping the rng stream identical across backends.
    """
    idx_table = np.empty((n, kappa), dtype=np.intp)
    dist_table = np.full((n, kappa), np.inf, dtype=np.float64)
    idx_table[:, 0] = np.arange(n)
    dist_table[:, 0] = 0.0
    if kappa > 1:
        idx_table[:, 1:] = rng.integers(0, n, size=(n, kappa - 1))
    return idx_table, dist_table


def tree_seed_schedule(rng: np.random.Generator, count: int) -> list[int]:
    """Per-iteration projection-tree seeds, drawn up front.

    One scalar draw per tree, in iteration order — exactly the draws the
    pre-registry implementation made lazily inside the loop, so reference
    results are unchanged.  Materializing the schedule before any tree is
    built is what lets the ``"sharded"`` backend hand iterations to
    workers without the worker count ever touching the rng stream.
    """
    return [int(rng.integers(np.iinfo(np.int64).max)) for _ in range(count)]


def _merge_candidates(
    current_idx: np.ndarray,
    current_dist: np.ndarray,
    cand_idx: np.ndarray,
    cand_dist: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge candidate neighbors into a row, keeping the κ smallest distinct ones.

    The per-row oracle of the ``"reference"`` backend;
    :func:`merge_candidate_block` reproduces its tie-breaking exactly
    (dedup keeps the smallest ``(distance, position)`` occurrence per
    index; selection orders by ``(distance, position)``; short rows pad by
    repeating the last entry).
    """
    kappa = current_idx.size
    all_idx = np.concatenate([current_idx, cand_idx])
    all_dist = np.concatenate([current_dist, cand_dist])
    # Deduplicate, keeping the smallest distance per index.
    order = np.argsort(all_dist, kind="stable")
    all_idx = all_idx[order]
    all_dist = all_dist[order]
    _, first = np.unique(all_idx, return_index=True)
    first.sort()
    all_idx = all_idx[first]
    all_dist = all_dist[first]
    order = np.argsort(all_dist, kind="stable")[:kappa]
    out_idx = all_idx[order]
    out_dist = all_dist[order]
    if out_idx.size < kappa:  # pad (can only happen when N < κ)
        pad = kappa - out_idx.size
        out_idx = np.concatenate([out_idx, np.repeat(out_idx[-1:], pad)])
        out_dist = np.concatenate([out_dist, np.repeat(out_dist[-1:], pad)])
    return out_idx, out_dist


def merge_candidate_block(
    table_idx: np.ndarray,
    table_dist: np.ndarray,
    rows: np.ndarray,
    cand_idx: np.ndarray,
    cand_dist: np.ndarray,
    row_chunk: int = 65536,
) -> None:
    """Merge per-row candidate lists into the global table — no per-row Python.

    ``rows`` are the (distinct) global indices being updated; ``cand_idx``
    / ``cand_dist`` hold each row's candidates.  Bit-for-bit equivalent to
    calling :func:`_merge_candidates` row by row: all three tie-breaking
    rules of the oracle (see there) are reproduced with four stable
    per-row ``argsort`` passes over the ``(rows, κ + k)`` concatenation —
    order by ``(distance, position)``, then by index to make duplicates
    adjacent, keep each index's first occurrence, then order the
    survivors back by ``(distance, position)``; dropped duplicates are
    re-keyed strictly after every real entry so they only ever surface as
    padding, which is then rewritten to the oracle's repeat-last-entry
    form.  Large updates are processed in row chunks to bound workspace.
    """
    rows = np.asarray(rows, dtype=np.intp)
    if rows.size > row_chunk:
        for start in range(0, rows.size, row_chunk):
            stop = start + row_chunk
            merge_candidate_block(
                table_idx, table_dist, rows[start:stop], cand_idx[start:stop], cand_dist[start:stop]
            )
        return

    kappa = table_idx.shape[1]
    width = kappa + cand_idx.shape[1]
    all_idx = np.concatenate([table_idx[rows], cand_idx], axis=1)
    all_dist = np.concatenate([table_dist[rows], cand_dist], axis=1)

    # Order each row by (distance, position); o1's values are the positions.
    o1 = np.argsort(all_dist, axis=1, kind="stable")
    idx1 = np.take_along_axis(all_idx, o1, axis=1)
    dist1 = np.take_along_axis(all_dist, o1, axis=1)
    # Then by index: rows ordered by (index, distance, position), so equal
    # indices are adjacent with their best occurrence first.
    o2 = np.argsort(idx1, axis=1, kind="stable")
    idx2 = np.take_along_axis(idx1, o2, axis=1)
    dist2 = np.take_along_axis(dist1, o2, axis=1)
    pos2 = np.take_along_axis(o1, o2, axis=1)

    keep = np.ones(idx2.shape, dtype=bool)
    keep[:, 1:] = idx2[:, 1:] != idx2[:, :-1]
    # Re-key dropped duplicates after every real entry: +inf distance and a
    # position beyond the row width lose every (distance, position)
    # comparison — including against real +inf-distance fillers.
    dist2 = np.where(keep, dist2, np.inf)
    sel_pos = np.where(keep, pos2, width + pos2)

    # Order survivors by (distance, position) and take the first κ.
    o3 = np.argsort(sel_pos, axis=1, kind="stable")
    dist3 = np.take_along_axis(dist2, o3, axis=1)
    o4 = np.argsort(dist3, axis=1, kind="stable")
    final = np.take_along_axis(o3, o4, axis=1)[:, :kappa]
    out_idx = np.take_along_axis(idx2, final, axis=1)
    out_dist = np.take_along_axis(dist3, o4, axis=1)[:, :kappa]

    # Rows with fewer than κ distinct entries pad by repeating the last one.
    counts = keep.sum(axis=1)
    short = counts < kappa
    if np.any(short):
        src = np.minimum(np.arange(kappa)[None, :], counts[short, None] - 1)
        out_idx[short] = np.take_along_axis(out_idx[short], src, axis=1)
        out_dist[short] = np.take_along_axis(out_dist[short], src, axis=1)

    table_idx[rows] = out_idx
    table_dist[rows] = out_dist


#: Reusable stamp workspace for :func:`_membership_scan`.  Allocated once
#: (lazily, to the largest ``chunk·n`` seen) and cleared incrementally —
#: only the slots a chunk actually stamped are reset — so the scan costs
#: O(rows·(κ+k)) scattered accesses with no per-call allocation of the
#: O(chunk·n) array.  Not thread-safe; the neighbor search is
#: single-threaded per process (the sharded backend forks, and forked
#: children copy-on-write their own scratch).
#: Stamp-array span per chunk.  Sized to stay cache-resident: each chunk's
#: span is walked four times (scatter, verify, gather, clear), so keeping it
#: within the last-level cache beats amortizing the Python loop over fewer,
#: larger chunks.  The floor bounds the per-chunk numpy overhead when a
#: single row's span is already bigger than the budget.
_SCAN_BUDGET_ELEMENTS = 2**21  # 4 MiB of int16 stamps
_SCAN_MIN_CHUNK_ROWS = 256
_SCAN_SCRATCH: Optional[np.ndarray] = None
_DISTINCT_SCRATCH: Optional[np.ndarray] = None


def _membership_scan(
    n: int, cur_idx: np.ndarray, cand_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """For each candidate, the column of its stored twin (or −1 if absent).

    Rows are processed in chunks; within a chunk, row ``r`` owns the span
    ``[r·n, (r+1)·n)`` of the stamp array, so one scatter of each row's
    table columns followed by one gather at the candidates' positions
    answers every membership query at once — the numpy equivalent of a
    per-row perfect hash.  A duplicated table entry overwrites its earlier
    occurrence's stamp, so a self-gather mismatch flags exactly the rows
    that still carry duplicates.

    Returns ``(col_of, distinct)`` where ``col_of`` is ``(m, k)`` stored-twin
    columns and ``distinct`` is an ``(m,)`` view into reusable scratch
    (consume it before the next call).
    """
    global _SCAN_SCRATCH, _DISTINCT_SCRATCH
    m, kappa = cur_idx.shape
    # Column stamps must fit the dtype; fall back to int32 for huge κ.
    dtype = np.int16 if kappa <= np.iinfo(np.int16).max else np.int32
    chunk = min(m, max(_SCAN_MIN_CHUNK_ROWS, _SCAN_BUDGET_ELEMENTS // max(1, n)))
    need = chunk * n
    if _SCAN_SCRATCH is None or _SCAN_SCRATCH.size < need or _SCAN_SCRATCH.dtype != dtype:
        _SCAN_SCRATCH = np.full(need, -1, dtype=dtype)
    if _DISTINCT_SCRATCH is None or _DISTINCT_SCRATCH.size < m:
        _DISTINCT_SCRATCH = np.empty(max(m, 1024), dtype=bool)
    ws = _SCAN_SCRATCH
    cols = np.arange(kappa, dtype=dtype)
    col_of = np.empty(cand_idx.shape, dtype=np.intp)
    for start in range(0, m, chunk):
        stop = min(m, start + chunk)
        base = (np.arange(stop - start, dtype=np.intp) * n)[:, None]
        flat_cur = cur_idx[start:stop] + base
        ws[flat_cur] = cols
        _DISTINCT_SCRATCH[start:stop] = (ws[flat_cur] == cols).all(axis=1)
        col_of[start:stop] = ws[cand_idx[start:stop] + base]
        ws[flat_cur] = -1  # incremental clear: leave the scratch all −1
    return col_of, _DISTINCT_SCRATCH[:m]


def screened_merge(
    table_idx: np.ndarray,
    table_dist: np.ndarray,
    rows: np.ndarray,
    cand_idx: np.ndarray,
    cand_dist: np.ndarray,
    screen: bool = True,
) -> tuple[np.ndarray, int]:
    """Screen-then-merge: the blocked backends' fast path into the table.

    One membership pass over the candidates answers two questions at once:

    1. *Which rows can change at all?*  Against a row whose κ entries are
       distinct, a candidate ``(c, d)`` is **inert** iff ``c`` is already
       stored with distance ``s ≤ d`` (the dedup keeps the earlier, i.e.
       stored, occurrence on ties and the smaller distance otherwise) or
       ``c`` is absent and ``d ≥`` the row's largest stored distance (the
       stable ``(distance, position)`` selection seats all κ stored
       entries ahead of it).  Rows with only inert candidates are skipped
       — bitwise-unchanged under :func:`_merge_candidates` — which is what
       makes late, nearly-converged iterations cheap.

    2. *Who wins each stored/candidate duplicate pair?*  For the rows that
       do change, the membership verdicts already encode the oracle's
       dedup: losing candidates (stored twin at ``s ≤ d``) and beaten
       stored entries (candidate at ``d < s``) are re-keyed to ``NaN``
       distance, after which a **single** stable argsort of the
       ``(κ + k)``-wide concatenation reproduces the oracle's
       ``(distance, position)`` selection order exactly — stable sort
       ranks NaNs after every finite and ``+inf`` entry, in position
       order, precisely the re-keying :func:`merge_candidate_block` builds
       with four argsorts.  Rows that still carry duplicate entries
       (random ``+inf`` fillers may collide until κ distinct neighbors
       have been seen) take the general :func:`merge_candidate_block`
       path, which re-deduplicates the row itself.

    Preconditions (both backends satisfy them by construction): table rows
    are sorted ascending by distance, and a row's candidates have distinct
    indices except for repeats that lose to a stored entry (the sharded
    slab pads short leaves with the row's own index at ``+inf``).

    Returns ``(touched, overlap)``: the global indices of the rows actually
    merged (a superset of the rows that changed) and the integer
    :func:`row_set_overlap` sum between those rows' previous and merged
    contents.  A skipped row is distinct and untouched — its overlap with
    its previous self is exactly κ — so the caller reconstructs the full
    table's convergence fraction as ``(overlap + (len(rows) − len(touched)) · κ)
    / (len(rows) · κ)``, bitwise equal to :func:`unchanged_fraction` without
    rescanning the table.  For the fast-path rows even the overlap is a
    byproduct of the merge: every selected entry except a selected
    *non-member* candidate carries an index the row already had, so the
    overlap is κ minus the count of those.  With ``screen=False`` every
    row is merged via the general path (the first iteration: the ``+inf``
    fillers make nearly everything affected anyway).
    """
    rows = np.asarray(rows, dtype=np.intp)
    if not screen or rows.size == 0:
        previous = table_idx[rows].copy()
        merge_candidate_block(table_idx, table_dist, rows, cand_idx, cand_dist)
        return rows, int(row_set_overlap(previous, table_idx[rows]).sum())

    kappa = table_idx.shape[1]
    cur_idx = table_idx[rows]
    cur_dist = table_dist[rows]

    # Stamp-array membership: each chunk row owns a disjoint span of a
    # reusable scratch array; scattering a row's table columns into its span
    # and gathering at the candidates' positions answers membership, yields
    # the stored twin's column, and (via overwrite detection) flags rows
    # that still carry duplicate entries — all in O(m·(κ+k)) gathers.
    col_of, distinct = _membership_scan(table_idx.shape[0], cur_idx, cand_idx)
    member = col_of >= 0
    stored = np.take_along_axis(cur_dist, np.maximum(col_of, 0), axis=1)
    distinct_full = distinct.copy()  # scratch view: detach before more numpy work

    # Rows are sorted ascending, so the last column is the stored maximum.
    row_max = cur_dist[:, -1][:, None]
    inert = np.where(member, cand_dist >= stored, cand_dist >= row_max)
    affected = ~distinct_full | ~inert.all(axis=1)

    overlap = 0
    general = affected & ~distinct_full
    if np.any(general):
        merge_candidate_block(
            table_idx, table_dist, rows[general], cand_idx[general], cand_dist[general]
        )
        # cur_idx is a fancy-indexing copy, i.e. the pre-merge contents.
        overlap += int(row_set_overlap(cur_idx[general], table_idx[rows[general]]).sum())

    fast = affected & distinct_full
    if np.any(fast):
        if fast.all():
            # Every row takes the fast path (the common case while the
            # table is still improving): skip the boolean-subset copies.
            member_f, inert_f, col_f = member, inert, col_of
            cand_dist_f = cand_dist.copy()  # the caller's array: do not scribble
            cur_dist_f = cur_dist  # fancy-indexing copy: ours to mutate
            cur_idx_f, cand_idx_f, rows_f = cur_idx, cand_idx, rows
        else:
            member_f, inert_f, col_f = member[fast], inert[fast], col_of[fast]
            cand_dist_f = cand_dist[fast]  # fancy indexing: already a copy
            cur_dist_f = cur_dist[fast]
            cur_idx_f, cand_idx_f, rows_f = cur_idx[fast], cand_idx[fast], rows[fast]
        cand_dist_f[member_f & inert_f] = np.nan  # losing candidates
        winners = member_f & ~inert_f
        win_r, win_j = np.nonzero(winners)
        cur_dist_f[win_r, col_f[win_r, win_j]] = np.nan  # beaten stored entries

        comb_idx = np.concatenate([cur_idx_f, cand_idx_f], axis=1)
        comb_dist = np.concatenate([cur_dist_f, cand_dist_f], axis=1)
        sel = np.argsort(comb_dist, axis=1, kind="stable")[:, :kappa]
        table_idx[rows_f] = np.take_along_axis(comb_idx, sel, axis=1)
        table_dist[rows_f] = np.take_along_axis(comb_dist, sel, axis=1)

        # Overlap with the previous row contents, for free: selected stored
        # entries and selected member candidates keep indices the row had.
        sel_is_cand = sel >= kappa
        new_member = np.take_along_axis(member_f, np.where(sel_is_cand, sel - kappa, 0), axis=1)
        fresh = int((sel_is_cand & ~new_member).sum())
        overlap += rows_f.size * kappa - fresh

    return rows[affected], overlap


def leaf_candidate_batches(
    leaves: list[np.ndarray],
    distance: Distance,
    kappa: int,
    workspace_bytes: int = LEAF_BATCH_BYTES,
):
    """Per-leaf κ-NN candidates for many leaves at once (task ANN(α), batched).

    Yields ``(rows, cand_idx, cand_dist)`` triples ready for
    :func:`merge_candidate_block`: leaves are grouped by size (the median
    splits keep sizes within one of each other, so there are at most two
    groups per tree), stacked under the workspace budget, and each stack
    gets one ``argpartition`` over its ``(batch, L, L)`` distance block.
    Per-slice ``argpartition`` results equal the per-leaf 2-D calls of the
    reference backend, so downstream merges see identical candidates in
    identical order.
    """
    by_size: dict[int, list[np.ndarray]] = {}
    for leaf in leaves:
        by_size.setdefault(leaf.size, []).append(leaf)
    for size, group in sorted(by_size.items()):
        if size == 0:
            continue
        k_local = min(kappa, size)
        batch = max(1, int(workspace_bytes // (size * size * 8)))
        for start in range(0, len(group), batch):
            chunk = group[start : start + batch]
            stacked = np.stack(chunk)  # (B, L) global indices
            dists = distance.pairwise_blocks(stacked, stacked)
            part = np.argpartition(dists, kth=k_local - 1, axis=2)[:, :, :k_local]
            cand_dist = np.take_along_axis(dists, part, axis=2)
            cand_idx = stacked[np.arange(len(chunk))[:, None, None], part]
            flat = len(chunk) * size
            yield (
                stacked.reshape(flat),
                cand_idx.reshape(flat, k_local),
                cand_dist.reshape(flat, k_local),
            )


def _leaf_exhaustive_update(
    leaf_indices: np.ndarray,
    distance: Distance,
    table_idx: np.ndarray,
    table_dist: np.ndarray,
    kappa: int,
) -> None:
    """Task ANN(α): exhaustive κ-NN inside one leaf, merged into the global table.

    The per-row loop of the ``"reference"`` backend.
    """
    d = distance.pairwise(leaf_indices, leaf_indices)
    k_local = min(kappa, leaf_indices.size)
    # argpartition gives the k smallest per row without a full sort.
    part = np.argpartition(d, kth=k_local - 1, axis=1)[:, :k_local]
    for row_pos, i in enumerate(leaf_indices):
        cand_pos = part[row_pos]
        cand_idx = leaf_indices[cand_pos]
        cand_dist = d[row_pos, cand_pos]
        table_idx[i], table_dist[i] = _merge_candidates(table_idx[i], table_dist[i], cand_idx, cand_dist)


def exhaustive_neighbors(distance: Distance, kappa: int, chunk: int = 1024) -> NeighborTable:
    """Exact κ-NN by brute force (O(N²) distances) — the reference for tests."""
    n = distance.n
    kappa = min(kappa, n)
    all_idx = np.arange(n, dtype=np.intp)
    idx_out = np.empty((n, kappa), dtype=np.intp)
    dist_out = np.empty((n, kappa), dtype=np.float64)
    for start in range(0, n, chunk):
        rows = all_idx[start : start + chunk]
        d = distance.pairwise(rows, all_idx)
        part = np.argpartition(d, kth=kappa - 1, axis=1)[:, :kappa]
        part_dist = np.take_along_axis(d, part, axis=1)
        order = np.argsort(part_dist, axis=1, kind="stable")
        idx_out[rows] = np.take_along_axis(part, order, axis=1)
        dist_out[rows] = np.take_along_axis(part_dist, order, axis=1)
    return NeighborTable(indices=idx_out, distances=dist_out, iterations=0, converged=True)


def all_nearest_neighbors(
    distance: Distance,
    config: GOFMMConfig,
    rng: np.random.Generator | None = None,
    backend: str | None = None,
) -> NeighborTable:
    """Iterative randomized-projection-tree ANN search (steps 1–3 of Algorithm 2.2).

    Dispatches to the neighbor backend named by ``backend`` (default:
    ``config.neighbor_backend``) from the registry of
    :mod:`repro.core.neighbor_backends`.  All built-in backends return
    bit-identical tables; they differ only in how the per-leaf merges are
    executed (per row, vectorized, or across a process pool).
    """
    from .neighbor_backends import get_neighbor_backend

    n = distance.n
    kappa = min(config.neighbors, n)
    rng = rng or np.random.default_rng(config.seed)

    if n <= config.leaf_size or config.num_neighbor_trees == 0:
        # A single leaf: one exhaustive pass is already exact.
        table = exhaustive_neighbors(distance, kappa)
        return NeighborTable(table.indices, table.distances, iterations=1, converged=True)

    spec = get_neighbor_backend(backend or config.neighbor_backend)
    return spec(distance, config, rng)
