"""Iterative all-nearest-neighbor (ANN) search with randomized projection trees.

GOFMM's sparse correction and importance sampling both need, for every index
``i``, the ``κ`` indices ``j`` with the smallest ``d_ij`` (§2.2, steps 1–3 of
Algorithm 2.2).  Exact all-pairs search costs ``O(N²)`` distance evaluations,
so the paper uses the greedy iterative scheme of [43]:

1. build a *randomized projection tree* — same construction as the metric
   ball tree but with random pivots,
2. inside every leaf, run an exhaustive k-nearest-neighbor search and merge
   the candidates into each index's running neighbor list,
3. repeat with a fresh random tree until the lists stop improving (80 %
   unchanged) or 10 iterations have run.

Each iteration costs ``O(N m)`` distance evaluations (``m`` = leaf size), so
the whole search is ``O(N m · iters)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import GOFMMConfig
from .distances import Distance
from .tree import BallTree, build_tree

__all__ = ["NeighborTable", "all_nearest_neighbors", "exhaustive_neighbors"]


@dataclass
class NeighborTable:
    """Per-index nearest-neighbor lists N(i).

    Attributes
    ----------
    indices:
        ``(N, κ)`` array; row ``i`` holds the global indices of the κ current
        best neighbors of ``i`` (including ``i`` itself, which always has
        distance 0).
    distances:
        ``(N, κ)`` matching distances, sorted ascending per row.
    iterations:
        number of projection-tree iterations actually performed.
    converged:
        whether the 80 %-unchanged stopping criterion fired before the
        iteration cap.
    """

    indices: np.ndarray
    distances: np.ndarray
    iterations: int
    converged: bool

    @property
    def kappa(self) -> int:
        return self.indices.shape[1]

    def neighbors_of(self, i: int) -> np.ndarray:
        return self.indices[i]

    def recall_against(self, exact: "NeighborTable") -> float:
        """Fraction of exact neighbors recovered (used by tests / diagnostics)."""
        hits = 0
        total = self.indices.shape[0] * self.indices.shape[1]
        for i in range(self.indices.shape[0]):
            hits += np.intersect1d(self.indices[i], exact.indices[i]).size
        return hits / total


def _merge_candidates(
    current_idx: np.ndarray,
    current_dist: np.ndarray,
    cand_idx: np.ndarray,
    cand_dist: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge candidate neighbors into a row, keeping the κ smallest distinct ones."""
    kappa = current_idx.size
    all_idx = np.concatenate([current_idx, cand_idx])
    all_dist = np.concatenate([current_dist, cand_dist])
    # Deduplicate, keeping the smallest distance per index.
    order = np.argsort(all_dist, kind="stable")
    all_idx = all_idx[order]
    all_dist = all_dist[order]
    _, first = np.unique(all_idx, return_index=True)
    first.sort()
    all_idx = all_idx[first]
    all_dist = all_dist[first]
    order = np.argsort(all_dist, kind="stable")[:kappa]
    out_idx = all_idx[order]
    out_dist = all_dist[order]
    if out_idx.size < kappa:  # pad (can only happen when N < κ)
        pad = kappa - out_idx.size
        out_idx = np.concatenate([out_idx, np.repeat(out_idx[-1:], pad)])
        out_dist = np.concatenate([out_dist, np.repeat(out_dist[-1:], pad)])
    return out_idx, out_dist


def _leaf_exhaustive_update(
    leaf_indices: np.ndarray,
    distance: Distance,
    table_idx: np.ndarray,
    table_dist: np.ndarray,
    kappa: int,
) -> None:
    """Task ANN(α): exhaustive κ-NN inside one leaf, merged into the global table."""
    d = distance.pairwise(leaf_indices, leaf_indices)
    k_local = min(kappa, leaf_indices.size)
    # argpartition gives the k smallest per row without a full sort.
    part = np.argpartition(d, kth=k_local - 1, axis=1)[:, :k_local]
    for row_pos, i in enumerate(leaf_indices):
        cand_pos = part[row_pos]
        cand_idx = leaf_indices[cand_pos]
        cand_dist = d[row_pos, cand_pos]
        table_idx[i], table_dist[i] = _merge_candidates(table_idx[i], table_dist[i], cand_idx, cand_dist)


def exhaustive_neighbors(distance: Distance, kappa: int, chunk: int = 1024) -> NeighborTable:
    """Exact κ-NN by brute force (O(N²) distances) — the reference for tests."""
    n = distance.n
    kappa = min(kappa, n)
    all_idx = np.arange(n, dtype=np.intp)
    idx_out = np.empty((n, kappa), dtype=np.intp)
    dist_out = np.empty((n, kappa), dtype=np.float64)
    for start in range(0, n, chunk):
        rows = all_idx[start : start + chunk]
        d = distance.pairwise(rows, all_idx)
        part = np.argpartition(d, kth=kappa - 1, axis=1)[:, :kappa]
        for r, i in enumerate(rows):
            cand = part[r]
            order = np.argsort(d[r, cand], kind="stable")
            idx_out[i] = cand[order]
            dist_out[i] = d[r, cand[order]]
    return NeighborTable(indices=idx_out, distances=dist_out, iterations=0, converged=True)


def all_nearest_neighbors(
    distance: Distance,
    config: GOFMMConfig,
    rng: np.random.Generator | None = None,
) -> NeighborTable:
    """Iterative randomized-projection-tree ANN search (steps 1–3 of Algorithm 2.2)."""
    n = distance.n
    kappa = min(config.neighbors, n)
    rng = rng or np.random.default_rng(config.seed)

    # Initialize every list with the index itself (distance 0) plus random fillers.
    idx_table = np.empty((n, kappa), dtype=np.intp)
    dist_table = np.full((n, kappa), np.inf, dtype=np.float64)
    idx_table[:, 0] = np.arange(n)
    dist_table[:, 0] = 0.0
    if kappa > 1:
        fillers = rng.integers(0, n, size=(n, kappa - 1))
        idx_table[:, 1:] = fillers
        # Distances of the fillers are unknown; mark as +inf so anything real wins.

    if n <= config.leaf_size or config.num_neighbor_trees == 0:
        # A single leaf: one exhaustive pass is already exact.
        table = exhaustive_neighbors(distance, kappa)
        return NeighborTable(table.indices, table.distances, iterations=1, converged=True)

    converged = False
    iterations = 0
    for it in range(config.num_neighbor_trees):
        iterations = it + 1
        tree = build_tree(
            n,
            config,
            distance,
            rng=np.random.default_rng(rng.integers(np.iinfo(np.int64).max)),
            randomized_pivots=True,
        )
        previous = idx_table.copy()
        for leaf in tree.leaves:
            _leaf_exhaustive_update(leaf.indices, distance, idx_table, dist_table, kappa)
        unchanged = float(np.mean(np.sort(previous, axis=1) == np.sort(idx_table, axis=1)))
        if unchanged >= config.neighbor_accuracy_target and it > 0:
            converged = True
            break

    return NeighborTable(indices=idx_table, distances=dist_table, iterations=iterations, converged=converged)
