"""Morton IDs: bit codes of the path from the root of the binary tree.

The paper uses Morton IDs for two purposes (§2.2):

* to name each tree node compactly (a bit string of "went left / went
  right" decisions plus the depth), and
* to test in O(1) whether a node ``α`` is an ancestor of a leaf containing a
  given index — the test at the heart of ``FindFar`` (Algorithm 2.4).

In a binary tree the code is simply: root = empty string; each left turn
appends a ``0`` bit, each right turn a ``1`` bit.  We store it as the
integer value of the bit string together with its length (the level), which
makes ancestor checks a shift-and-compare.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MortonID", "ROOT_MORTON"]


@dataclass(frozen=True, order=True)
class MortonID:
    """Path code of a node in the binary partition tree.

    Attributes
    ----------
    level:
        depth of the node (root = 0).
    bits:
        integer whose binary expansion (``level`` bits, most significant bit
        = first turn) encodes the path from the root.
    """

    level: int
    bits: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("level must be non-negative")
        if self.bits < 0 or (self.level < 64 and self.bits >= (1 << max(self.level, 0))):
            raise ValueError(f"bits {self.bits} do not fit in {self.level} levels")

    # -- tree navigation ----------------------------------------------------
    def child(self, right: bool) -> "MortonID":
        """Morton ID of the left (``right=False``) or right child."""
        return MortonID(level=self.level + 1, bits=(self.bits << 1) | int(bool(right)))

    def left_child(self) -> "MortonID":
        return self.child(False)

    def right_child(self) -> "MortonID":
        return self.child(True)

    def parent(self) -> "MortonID":
        if self.level == 0:
            raise ValueError("the root has no parent")
        return MortonID(level=self.level - 1, bits=self.bits >> 1)

    def sibling(self) -> "MortonID":
        if self.level == 0:
            raise ValueError("the root has no sibling")
        return MortonID(level=self.level, bits=self.bits ^ 1)

    # -- relations ------------------------------------------------------------
    def is_ancestor_of(self, other: "MortonID") -> bool:
        """True when ``self`` lies on the root-to-``other`` path (inclusive)."""
        if other.level < self.level:
            return False
        return (other.bits >> (other.level - self.level)) == self.bits

    def is_descendant_of(self, other: "MortonID") -> bool:
        return other.is_ancestor_of(self)

    def ancestor_at_level(self, level: int) -> "MortonID":
        """The unique ancestor of ``self`` at the given (shallower) level."""
        if level > self.level or level < 0:
            raise ValueError(f"no ancestor of a level-{self.level} node at level {level}")
        return MortonID(level=level, bits=self.bits >> (self.level - level))

    def path(self) -> str:
        """Human-readable bit-string path, e.g. ``'010'`` (root = ``''``)."""
        if self.level == 0:
            return ""
        return format(self.bits, f"0{self.level}b")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Morton(level={self.level}, path='{self.path()}')"


ROOT_MORTON = MortonID(level=0, bits=0)
