"""Compression phase (§2.2, Algorithm 2.2), factored into pipeline stages.

The driver runs the paper's pipeline:

1. iterative ANN search with randomized projection trees (tasks SPLI + ANN),
2. metric ball-tree partitioning (task SPLI),
3. Near-list construction with budget voting (LeafNear) and Far-list
   construction (FindFar + MergeFar, or the symmetric dual-tree variant),
4. nested skeletonization (tasks SKEL + COEF),
5. optional caching of near and far submatrices (tasks Kba + SKba),
6. optionally (``config.prebuild_plan``) the packed evaluation plan of
   :mod:`repro.core.plan`.

Each step is exposed as a ``run_*_stage`` function so the staged session
API (:mod:`repro.api`) can cache and reuse individual stage artifacts
across recompressions; :func:`compress` chains them into the one-shot
monolithic path and returns a :class:`repro.core.hmatrix.CompressedMatrix`
plus a :class:`CompressionReport` with wall-clock time, entry-evaluation
counts and rank statistics per phase — the numbers the paper's tables
report as "Comp" time and average rank.

Randomness discipline: every stage draws from its own generator, derived
deterministically from ``config.seed`` and the stage name
(:func:`stage_rng`).  Stages therefore produce identical results whether
they run fused inside :func:`compress` or individually under a session
with upstream artifacts reused — the property the deprecation-shim
equivalence tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import DistanceMetric, GOFMMConfig
from ..errors import CompressionError
from ..matrices.base import SPDMatrix, as_spd_matrix
from .backends import get_backend
from .distances import Distance, make_distance
from .hmatrix import BlockProvider, CompressedMatrix
from .interactions import InteractionLists, build_interaction_lists, build_node_neighbor_lists
from .neighbors import NeighborTable, all_nearest_neighbors
from .skeletonization import SkeletonizationStats
from .tree import BallTree, build_tree

__all__ = [
    "CompressionReport",
    "compress",
    "stage_rng",
    "run_distance_stage",
    "run_neighbors_stage",
    "run_partition_stage",
    "run_interactions_stage",
    "run_skeletons_stage",
    "run_blocks_stage",
]


@dataclass
class CompressionReport:
    """Per-phase timings and statistics of one compression run.

    ``reused_phases`` lists pipeline stages that were satisfied from a
    session cache instead of being executed (always empty for the one-shot
    :func:`compress` path); reused stages contribute no ``phase_seconds``.
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    entry_evaluations: int = 0
    average_rank: float = 0.0
    max_rank: int = 0
    num_leaves: int = 0
    tree_depth: int = 0
    near_pairs: int = 0
    far_pairs: int = 0
    neighbor_iterations: int = 0
    neighbor_converged: bool = True
    reused_phases: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v:.3f}s" for k, v in self.phase_seconds.items())
        reused = f"; reused: {', '.join(self.reused_phases)}" if self.reused_phases else ""
        return (
            f"compression: {self.total_seconds:.3f}s ({phases}); "
            f"avg rank {self.average_rank:.1f}, max rank {self.max_rank}, "
            f"{self.num_leaves} leaves, {self.near_pairs} near pairs, {self.far_pairs} far pairs"
            f"{reused}"
        )


class _PhaseTimer:
    def __init__(self, report: CompressionReport) -> None:
        self.report = report

    def __call__(self, name: str):
        return _Phase(self.report, name)


class _Phase:
    def __init__(self, report: CompressionReport, name: str) -> None:
        self.report = report
        self.name = name

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.report.phase_seconds[self.name] = self.report.phase_seconds.get(self.name, 0.0) + (
            time.perf_counter() - self.start
        )
        return False


# ---------------------------------------------------------------------------
# stage functions
# ---------------------------------------------------------------------------

# Fixed tags so each stage's generator is a deterministic function of
# (config.seed, stage) alone — never of how many draws earlier stages made.
_STAGE_SEED_TAGS = {
    "neighbors": 1,
    "partition": 2,
    "interactions": 3,
    "skeletons": 4,
}


def stage_rng(config: GOFMMConfig, stage: str) -> np.random.Generator:
    """Independent generator for one pipeline stage.

    Seeded from ``(stage tag, config.seed)`` so a stage re-run in isolation
    (session recompress) reproduces exactly the draws it would have made
    inside the fused pipeline.  ``seed=None`` yields fresh entropy.
    """
    tag = _STAGE_SEED_TAGS[stage]
    if config.seed is None:
        return np.random.default_rng()
    return np.random.default_rng([tag, config.seed])


def run_distance_stage(
    matrix: SPDMatrix,
    config: GOFMMConfig,
    coordinates: Optional[np.ndarray] = None,
) -> Optional[Distance]:
    """Build the distance oracle for partitioning / neighbor search."""
    return make_distance(matrix, config.distance, coordinates)


def run_neighbors_stage(
    distance: Optional[Distance],
    config: GOFMMConfig,
) -> Optional[NeighborTable]:
    """Iterative ANN search (tasks SPLI + ANN); ``None`` for metric-free orderings."""
    if distance is None or not config.distance.defines_distance:
        return None
    return all_nearest_neighbors(distance, config, rng=stage_rng(config, "neighbors"))


def run_partition_stage(
    n: int,
    config: GOFMMConfig,
    distance: Optional[Distance],
) -> BallTree:
    """Metric ball-tree partitioning (task SPLI)."""
    return build_tree(n, config, distance, rng=stage_rng(config, "partition"))


def run_interactions_stage(
    tree: BallTree,
    neighbors: Optional[NeighborTable],
    config: GOFMMConfig,
) -> InteractionLists:
    """Node neighbor lists N(α) plus Near/Far lists (Algorithms 2.3–2.5).

    Mutates ``tree`` (attaches ``neighbor_list``, ``near``, ``far`` to its
    nodes) and returns the :class:`InteractionLists`.
    """
    if neighbors is not None:
        build_node_neighbor_lists(
            tree,
            neighbors,
            max_size=4 * config.effective_sample_size(),
            rng=stage_rng(config, "interactions"),
        )
    return build_interaction_lists(tree, neighbors, config)


def run_skeletons_stage(
    tree: BallTree,
    matrix: SPDMatrix,
    config: GOFMMConfig,
    neighbors: Optional[NeighborTable],
) -> SkeletonizationStats:
    """Nested skeletonization (tasks SKEL + COEF); mutates ``tree`` nodes.

    Dispatches to the backend named by ``config.compression_backend``
    (:mod:`repro.core.backends`); all backends draw from the same stage
    generator, so switching backend never shifts other stages' randomness.
    """
    backend = get_backend(config.compression_backend)
    return backend(tree, matrix, config, neighbors, rng=stage_rng(config, "skeletons"))


def run_blocks_stage(
    tree: BallTree,
    matrix: SPDMatrix,
    config: GOFMMConfig,
) -> tuple[BlockProvider, BlockProvider]:
    """Tasks Kba(β) and SKba(β): evaluate and store the direct and skeleton blocks."""
    near_blocks = BlockProvider(tree, matrix, use_skeletons=False)
    far_blocks = BlockProvider(tree, matrix, use_skeletons=True)
    if config.cache_near_blocks:
        for leaf in tree.leaves:
            for alpha_id in leaf.near:
                alpha = tree.node(alpha_id)
                near_blocks.store((leaf.node_id, alpha_id), matrix.entries(leaf.indices, alpha.indices))
    if config.cache_far_blocks:
        for node in tree.nodes:
            if not node.far or node.skeleton is None:
                continue
            for alpha_id in node.far:
                alpha = tree.node(alpha_id)
                cols = alpha.skeleton if alpha.skeleton is not None else np.empty(0, dtype=np.intp)
                far_blocks.store((node.node_id, alpha_id), matrix.entries(node.skeleton, cols))
    return near_blocks, far_blocks


# ---------------------------------------------------------------------------
# one-shot driver
# ---------------------------------------------------------------------------

def compress(
    matrix,
    config: Optional[GOFMMConfig] = None,
    coordinates: Optional[np.ndarray] = None,
    return_report: bool = False,
):
    """Compress an SPD matrix into a hierarchical (FMM/HSS) representation.

    This is the one-shot monolithic path: every stage runs.  To reuse
    stage artifacts across parameter changes or operator families, use
    :class:`repro.api.Session` (which produces identical results — the
    stages and their seeding are shared).

    Parameters
    ----------
    matrix:
        an :class:`repro.matrices.base.SPDMatrix`, a dense ``numpy`` array,
        or a ``(callback, n)`` pair.
    config:
        :class:`repro.config.GOFMMConfig`; defaults to the paper's default
        parameters (angle distance, 3 % budget).
    coordinates:
        optional point coordinates overriding ``matrix.coordinates`` (only
        used by the geometric distance).
    return_report:
        when true, return ``(CompressedMatrix, CompressionReport)``.

    Returns
    -------
    CompressedMatrix or (CompressedMatrix, CompressionReport)
    """
    matrix = as_spd_matrix(matrix)
    config = config or GOFMMConfig()
    report = CompressionReport()
    phase = _PhaseTimer(report)
    start_evals = matrix.entry_evaluations

    if matrix.n < 2:
        raise CompressionError("cannot compress a 1x1 matrix")

    with phase("distance"):
        distance = run_distance_stage(matrix, config, coordinates)

    with phase("neighbors"):
        neighbors = run_neighbors_stage(distance, config)
    if neighbors is not None:
        report.neighbor_iterations = neighbors.iterations
        report.neighbor_converged = neighbors.converged

    with phase("tree"):
        tree = run_partition_stage(matrix.n, config, distance)
        report.num_leaves = len(tree.leaves)
        report.tree_depth = tree.depth

    with phase("lists"):
        lists = run_interactions_stage(tree, neighbors, config)
        report.near_pairs = lists.total_near_pairs()
        report.far_pairs = lists.total_far_pairs()

    with phase("skeletonization"):
        stats = run_skeletons_stage(tree, matrix, config, neighbors)
        report.average_rank = stats.average_rank
        report.max_rank = stats.max_rank

    with phase("caching"):
        near_blocks, far_blocks = run_blocks_stage(tree, matrix, config)

    report.entry_evaluations = matrix.entry_evaluations - start_evals

    compressed = CompressedMatrix(
        tree=tree,
        lists=lists,
        config=config,
        near_blocks=near_blocks,
        far_blocks=far_blocks,
        matrix=matrix,
        neighbors=neighbors,
    )
    if config.prebuild_plan:
        # Flatten the tree into the packed evaluation plan now rather than on
        # the first matvec, so the "plan" phase shows up in the report and
        # later matvecs are pure execution.
        with phase("plan"):
            compressed.plan()
    if return_report:
        return compressed, report
    return compressed
