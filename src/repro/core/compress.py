"""Compression phase (§2.2, Algorithm 2.2).

The driver runs the paper's pipeline:

1. iterative ANN search with randomized projection trees (tasks SPLI + ANN),
2. metric ball-tree partitioning (task SPLI),
3. Near-list construction with budget voting (LeafNear) and Far-list
   construction (FindFar + MergeFar, or the symmetric dual-tree variant),
4. nested skeletonization (tasks SKEL + COEF),
5. optional caching of near and far submatrices (tasks Kba + SKba),
6. optionally (``config.prebuild_plan``) the packed evaluation plan of
   :mod:`repro.core.plan`.

and returns a :class:`repro.core.hmatrix.CompressedMatrix` plus a
:class:`CompressionReport` with wall-clock time, entry-evaluation counts and
rank statistics per phase — the numbers the paper's tables report as
"Comp" time and average rank.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import DistanceMetric, GOFMMConfig
from ..errors import CompressionError
from ..matrices.base import SPDMatrix, as_spd_matrix
from .distances import make_distance
from .hmatrix import BlockProvider, CompressedMatrix
from .interactions import build_interaction_lists, build_node_neighbor_lists
from .neighbors import NeighborTable, all_nearest_neighbors
from .skeletonization import skeletonize_tree
from .tree import BallTree, build_tree

__all__ = ["CompressionReport", "compress"]


@dataclass
class CompressionReport:
    """Per-phase timings and statistics of one compression run."""

    phase_seconds: dict[str, float] = field(default_factory=dict)
    entry_evaluations: int = 0
    average_rank: float = 0.0
    max_rank: int = 0
    num_leaves: int = 0
    tree_depth: int = 0
    near_pairs: int = 0
    far_pairs: int = 0
    neighbor_iterations: int = 0
    neighbor_converged: bool = True

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v:.3f}s" for k, v in self.phase_seconds.items())
        return (
            f"compression: {self.total_seconds:.3f}s ({phases}); "
            f"avg rank {self.average_rank:.1f}, max rank {self.max_rank}, "
            f"{self.num_leaves} leaves, {self.near_pairs} near pairs, {self.far_pairs} far pairs"
        )


class _PhaseTimer:
    def __init__(self, report: CompressionReport) -> None:
        self.report = report

    def __call__(self, name: str):
        return _Phase(self.report, name)


class _Phase:
    def __init__(self, report: CompressionReport, name: str) -> None:
        self.report = report
        self.name = name

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.report.phase_seconds[self.name] = self.report.phase_seconds.get(self.name, 0.0) + (
            time.perf_counter() - self.start
        )
        return False


def _cache_blocks(
    tree: BallTree,
    matrix: SPDMatrix,
    config: GOFMMConfig,
    near_blocks: BlockProvider,
    far_blocks: BlockProvider,
) -> None:
    """Tasks Kba(β) and SKba(β): evaluate and store the direct and skeleton blocks."""
    if config.cache_near_blocks:
        for leaf in tree.leaves:
            for alpha_id in leaf.near:
                alpha = tree.node(alpha_id)
                near_blocks.store((leaf.node_id, alpha_id), matrix.entries(leaf.indices, alpha.indices))
    if config.cache_far_blocks:
        for node in tree.nodes:
            if not node.far or node.skeleton is None:
                continue
            for alpha_id in node.far:
                alpha = tree.node(alpha_id)
                cols = alpha.skeleton if alpha.skeleton is not None else np.empty(0, dtype=np.intp)
                far_blocks.store((node.node_id, alpha_id), matrix.entries(node.skeleton, cols))


def compress(
    matrix,
    config: Optional[GOFMMConfig] = None,
    coordinates: Optional[np.ndarray] = None,
    return_report: bool = False,
):
    """Compress an SPD matrix into a hierarchical (FMM/HSS) representation.

    Parameters
    ----------
    matrix:
        an :class:`repro.matrices.base.SPDMatrix`, a dense ``numpy`` array,
        or a ``(callback, n)`` pair.
    config:
        :class:`repro.config.GOFMMConfig`; defaults to the paper's default
        parameters (angle distance, 3 % budget).
    coordinates:
        optional point coordinates overriding ``matrix.coordinates`` (only
        used by the geometric distance).
    return_report:
        when true, return ``(CompressedMatrix, CompressionReport)``.

    Returns
    -------
    CompressedMatrix or (CompressedMatrix, CompressionReport)
    """
    matrix = as_spd_matrix(matrix)
    config = config or GOFMMConfig()
    report = CompressionReport()
    phase = _PhaseTimer(report)
    rng = np.random.default_rng(config.seed)
    start_evals = matrix.entry_evaluations

    if matrix.n < 2:
        raise CompressionError("cannot compress a 1x1 matrix")

    with phase("distance"):
        distance = make_distance(matrix, config.distance, coordinates)

    neighbors: Optional[NeighborTable] = None
    if distance is not None and config.distance.defines_distance:
        with phase("neighbors"):
            neighbors = all_nearest_neighbors(distance, config, rng=rng)
            report.neighbor_iterations = neighbors.iterations
            report.neighbor_converged = neighbors.converged

    with phase("tree"):
        tree = build_tree(matrix.n, config, distance, rng=rng)
        report.num_leaves = len(tree.leaves)
        report.tree_depth = tree.depth

    with phase("lists"):
        if neighbors is not None:
            build_node_neighbor_lists(
                tree,
                neighbors,
                max_size=4 * config.effective_sample_size(),
                rng=rng,
            )
        lists = build_interaction_lists(tree, neighbors, config)
        report.near_pairs = lists.total_near_pairs()
        report.far_pairs = lists.total_far_pairs()

    with phase("skeletonization"):
        stats = skeletonize_tree(tree, matrix, config, neighbors, rng=rng)
        report.average_rank = stats.average_rank
        report.max_rank = stats.max_rank

    near_blocks = BlockProvider(tree, matrix, use_skeletons=False)
    far_blocks = BlockProvider(tree, matrix, use_skeletons=True)
    with phase("caching"):
        _cache_blocks(tree, matrix, config, near_blocks, far_blocks)

    report.entry_evaluations = matrix.entry_evaluations - start_evals

    compressed = CompressedMatrix(
        tree=tree,
        lists=lists,
        config=config,
        near_blocks=near_blocks,
        far_blocks=far_blocks,
        matrix=matrix,
        neighbors=neighbors,
    )
    if config.prebuild_plan:
        # Flatten the tree into the packed evaluation plan now rather than on
        # the first matvec, so the "plan" phase shows up in the report and
        # later matvecs are pure execution.
        with phase("plan"):
            compressed.plan()
    if return_report:
        return compressed, report
    return compressed
