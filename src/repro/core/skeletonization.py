"""Nested interpolative-decomposition skeletonization (§2.2, Algorithm 2.6).

For a leaf β the off-diagonal block ``K_{Iβ}`` (``I`` = everything outside
β) is approximated by a column ID

    K_{Iβ} ≈ K_{Iβ̃} P_{β̃β},

where the *skeleton* β̃ ⊂ β holds at most ``s`` columns.  For an internal
node α the same ID is computed on the columns ``[l̃ r̃]`` (the children's
skeletons), which makes the skeletons *nested*, α̃ ⊂ l̃ ∪ r̃, and yields the
telescoping coefficient expression of Eq. (10).

Touching all of ``I`` would cost O(N) rows per node, so the rows are
subsampled (``I' ⊂ I``) with *neighbor-based importance sampling*: rows that
are neighbors of the node's indices are included first (they are where the
off-diagonal block is largest and hardest to interpolate), and the rest of
the sample is drawn uniformly from the remaining far-away rows.  The ID
itself is a pivoted QR + triangular solve with adaptive rank
(:func:`repro.linalg.id.interpolative_decomposition`).

The per-node work is split into the two tasks of Table 2 — ``SKEL`` (select
α̃, on the critical path) and ``COEF`` (form the interpolation matrix) — and
the driver records both so the runtime substrate can schedule them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import GOFMMConfig
from ..errors import RankDeficiencyError
from ..linalg.id import interpolative_decomposition
from ..matrices.base import SPDMatrix
from ..obs import counters as _obs_counters
from ..obs.trace import get_tracer
from .neighbors import NeighborTable
from .tree import BallTree, TreeNode

__all__ = [
    "SkeletonizationStats",
    "sample_rows",
    "fill_uniform",
    "skeletonize_node",
    "skeletonize_tree",
    "node_stream_base",
    "node_stream",
    "collect_stats",
]


@dataclass
class SkeletonizationStats:
    """Aggregate statistics of a skeletonization pass (reported by benchmarks)."""

    num_nodes: int = 0
    total_rank: int = 0
    max_rank: int = 0
    ranks: list[int] | None = None

    def record(self, rank: int) -> None:
        self.num_nodes += 1
        self.total_rank += rank
        self.max_rank = max(self.max_rank, rank)
        if self.ranks is None:
            self.ranks = []
        self.ranks.append(rank)

    @property
    def average_rank(self) -> float:
        return self.total_rank / self.num_nodes if self.num_nodes else 0.0


def node_stream_base(rng: np.random.Generator) -> int:
    """One draw from the stage generator seeding every per-node stream.

    Row sampling uses an independent generator per tree node, derived
    deterministically from ``(base, node_id)`` (:func:`node_stream`).
    Because the derivation depends only on the node id — never on the
    traversal order — the postorder ``"reference"`` backend and the
    level-order ``"batched"`` backend draw bit-identical row samples for
    every node, which is what makes their skeletons comparable exactly
    (up to floating-point pivot ties on exactly rank-deficient blocks)
    rather than merely statistically.
    """
    return int(rng.integers(np.iinfo(np.int64).max))


def node_stream(base: int, node_id: int) -> np.random.Generator:
    """The deterministic row-sampling generator of one tree node."""
    return np.random.default_rng([base, node_id])


def collect_stats(tree: BallTree) -> SkeletonizationStats:
    """Stats of an already-skeletonized tree, recorded in postorder.

    Both backends report through this so their
    :class:`SkeletonizationStats` (including the order of ``ranks``)
    coincide whenever their per-node results do.
    """
    stats = SkeletonizationStats()
    for node in tree.postorder():
        if node.is_root:
            continue
        stats.record(node.skeleton_rank)
    return stats


def fill_uniform(rng: np.random.Generator, n: int, need: int, banned: np.ndarray) -> np.ndarray:
    """``need`` distinct uniform draws from ``{0..n-1}`` minus ``banned``.

    Rejection sampling: batches of uniform integers are drawn and filtered
    against the ``banned`` mask (which is mutated to mark accepted rows),
    so the cost is O(need) expected instead of the O(n) pool
    materialization of ``rng.choice(pool, replace=False)``.  The caller
    guarantees at least ``need`` unbanned rows exist.  Both compression
    backends fill their uniform sample through this one helper, keeping
    their draw sequences — and therefore their skeletons — identical.
    """
    out: list[np.ndarray] = []
    got = 0
    while got < need:
        m = need - got
        cand = rng.integers(0, n, size=m + (m >> 2) + 8)
        cand = cand[~banned[cand]]
        if cand.size:
            # Deduplicate keeping first occurrences in draw order.
            _, first = np.unique(cand, return_index=True)
            take = cand[np.sort(first)][:m]
            banned[take] = True
            out.append(take.astype(np.intp))
            got += take.size
    if not out:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(out)


def sample_rows(
    node: TreeNode,
    n: int,
    sample_size: int,
    neighbors: NeighborTable | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Importance-sampled row set ``I' ⊂ {0..N-1} \\ node.indices``.

    Neighbor rows (from ``N(α)``) that lie outside the node come first; the
    remainder of the budget is filled uniformly from the other outside rows.  If
    the complement is smaller than the requested sample, the whole
    complement is returned.
    """
    inside = np.zeros(n, dtype=bool)
    inside[node.indices] = True
    complement_size = n - node.indices.size
    if complement_size <= 0:
        return np.empty(0, dtype=np.intp)
    if complement_size <= sample_size:
        return np.nonzero(~inside)[0].astype(np.intp)

    chosen: list[np.ndarray] = []
    count = 0

    if neighbors is not None and node.neighbor_list is not None:
        cand = node.neighbor_list[~inside[node.neighbor_list]]
        if cand.size > sample_size:
            cand = rng.choice(cand, size=sample_size, replace=False)
        if cand.size:
            chosen.append(cand.astype(np.intp))
            inside[cand] = True  # from here on "inside" means "not eligible"
            count += cand.size

    if count < sample_size:
        # Fill with uniform samples from rows not yet chosen and outside the node.
        need = min(sample_size - count, complement_size - count)
        if need > 0:
            chosen.append(fill_uniform(rng, n, need, inside))

    if not chosen:
        return np.empty(0, dtype=np.intp)
    return np.unique(np.concatenate(chosen))


def skeletonize_node(
    node: TreeNode,
    matrix: SPDMatrix,
    config: GOFMMConfig,
    neighbors: NeighborTable | None,
    rng: np.random.Generator,
) -> int:
    """Tasks SKEL(α) + COEF(α): compute ``node.skeleton`` and ``node.coeffs``.

    Returns the selected rank.  Raises :class:`RankDeficiencyError` when
    ``config.secure_accuracy`` is set and the node could not produce a
    nonzero skeleton.
    """
    if node.is_leaf:
        columns = node.indices
    else:
        left, right = node.children()
        if left.skeleton is None or right.skeleton is None:
            raise RankDeficiencyError(
                f"children of node {node.node_id} have not been skeletonized (postorder violated)"
            )
        columns = np.concatenate([left.skeleton, right.skeleton])

    if columns.size == 0:
        node.skeleton = np.empty(0, dtype=np.intp)
        node.coeffs = np.zeros((0, 0))
        node.skeleton_rank = 0
        if config.secure_accuracy:
            raise RankDeficiencyError(f"node {node.node_id} has no columns to skeletonize")
        return 0

    sample_size = config.effective_sample_size()
    rows = sample_rows(node, matrix.n, sample_size, neighbors, rng)
    if rows.size == 0:
        # Root-like node: nothing outside it, so no off-diagonal block exists.
        node.skeleton = np.empty(0, dtype=np.intp)
        node.coeffs = np.zeros((0, columns.size))
        node.skeleton_rank = 0
        return 0

    block = matrix.entries(rows, columns)
    decomposition = interpolative_decomposition(
        block,
        max_rank=config.max_rank,
        tolerance=config.tolerance,
        adaptive=config.adaptive_rank,
    )

    if decomposition.rank == 0:
        if config.secure_accuracy:
            raise RankDeficiencyError(
                f"node {node.node_id}: adaptive ID selected rank 0 "
                f"(block norm {np.abs(block).max() if block.size else 0.0:g})"
            )
        node.skeleton = np.empty(0, dtype=np.intp)
        node.coeffs = np.zeros((0, columns.size))
        node.skeleton_rank = 0
        return 0

    node.skeleton = columns[decomposition.skeleton]
    node.coeffs = decomposition.coeffs.astype(config.dtype)
    node.skeleton_rank = decomposition.rank
    return decomposition.rank


def skeletonize_tree(
    tree: BallTree,
    matrix: SPDMatrix,
    config: GOFMMConfig,
    neighbors: NeighborTable | None,
    rng: np.random.Generator | None = None,
) -> SkeletonizationStats:
    """Algorithm 2.6 over the whole tree (postorder), skipping the root.

    The root has an empty complement (no off-diagonal block), so it is never
    skeletonized; its "skeleton" is irrelevant because ``Far(root)`` is
    always empty.

    This is the ``"reference"`` compression backend
    (:mod:`repro.core.backends`).  Row sampling draws from per-node
    streams derived from ``rng`` via :func:`node_stream_base`, the same
    derivation the ``"batched"`` backend uses — so the two backends select
    identical skeletons at equal sampling.
    """
    rng = rng or np.random.default_rng(config.seed)
    base = node_stream_base(rng)
    start_entries = matrix.entry_evaluations
    tracer = get_tracer()
    if tracer.enabled:
        # Level sweep instead of postorder, purely so each level gets one
        # span.  Every node is skeletonized from its own derived stream and
        # depends only on its children, so any children-first order —
        # postorder or bottom-up levels — produces bit-identical skeletons
        # (the tracing bit-identity test pins this).
        levels = tree.levels()
        for level in range(tree.depth, 0, -1):
            members = levels[level]
            before = matrix.entry_evaluations
            with tracer.span("skeletonize.level", level=level, nodes=len(members)) as span:
                for node in members:
                    skeletonize_node(node, matrix, config, neighbors, node_stream(base, node.node_id))
                span.set(entries=int(matrix.entry_evaluations - before))
    else:
        for node in tree.postorder():
            if node.is_root:
                continue
            skeletonize_node(node, matrix, config, neighbors, node_stream(base, node.node_id))
    _obs_counters.add("kernel_entries_evaluated", int(matrix.entry_evaluations - start_entries))
    return collect_stats(tree)
