"""Level-batched skeletonization — the ``"batched"`` compression backend.

Algorithm 2.6 skeletonizes node by node, but the only cross-node data
dependency is parent-on-children (the nested skeletons α̃ ⊂ l̃ ∪ r̃): every
node of one tree level is independent of its siblings.  This backend
exploits that the same way the planned evaluation engine batches the
matvec:

1. **level sweep** — process levels bottom-up; all nodes of a level are
   skeletonized together,
2. **shared sampling streams over one ownership mask** — row samples are
   drawn per node from its deterministic stream
   (:func:`repro.core.skeletonization.node_stream`) with the same
   decision sequence as :func:`~repro.core.skeletonization.sample_rows`
   (neighbor-first, then the O(need) rejection sampler ``fill_uniform``),
   but the whole level's draws run against one shared boolean ownership
   mask — each node marks its rows and un-marks exactly what it touched,
   O(|indices| + sample) mask work per node instead of a fresh O(n)
   allocation — identical samples (pinned by the equivalence tests),
3. **shape bucketing** — the sampled blocks are grouped by their padded
   shape (rows and columns rounded up to powers of two) and stacked into
   one ``(g, P, K)`` array per bucket; zero padding never changes a
   block's decomposition,
4. **stacked decompositions** — each bucket runs through
   :func:`repro.linalg.id.batched_interpolative_decomposition`: one
   batched pivoted QR (with adaptive early stop at the selected rank
   instead of the full ``min(P, K)`` sweep LAPACK performs per node) and
   one stacked triangular solve, replacing ``n_nodes`` interpreter-bound
   LAPACK calls per level with a handful of large array operations.

Node-level semantics (empty-column handling, ``secure_accuracy`` errors,
rank caps) match :func:`repro.core.skeletonization.skeletonize_node`
exactly; the equivalence tests assert identical skeletons and ranks.
The identity holds for numerically nondegenerate sampled blocks —
exactly rank-deficient blocks (duplicated points) may resolve
floating-point pivot ties differently from LAPACK's GEQP3 without
affecting the compressed operator's accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import GOFMMConfig
from ..errors import RankDeficiencyError
from ..linalg.id import (
    batched_interpolative_decomposition,
    interpolative_decomposition,
    stacked_sweep_applies,
)
from ..matrices.base import SPDMatrix
from ..obs import counters as _obs_counters
from ..obs.trace import get_tracer
from .backends import bucket_size
from .neighbors import NeighborTable
from .skeletonization import (
    SkeletonizationStats,
    collect_stats,
    fill_uniform,
    node_stream,
    node_stream_base,
)
from .tree import BallTree, TreeNode

__all__ = ["skeletonize_tree_batched", "skeletonize_level", "sample_rows_level"]


def _sample_rows_shared(
    node: TreeNode,
    n: int,
    sample_size: int,
    neighbors: Optional[NeighborTable],
    rng: np.random.Generator,
    banned: np.ndarray,
) -> np.ndarray:
    """One node's row sample against the level's shared ownership mask.

    Mirrors :func:`repro.core.skeletonization.sample_rows` decision for
    decision (the equivalence tests pin the samples as equal): ``banned``
    plays the role of its per-node ``inside`` array, but is shared across
    the whole level — this function marks the node's rows on entry and
    un-marks exactly what it touched before returning, so each node costs
    O(|indices| + sample) mask work instead of an O(n) allocation.
    """
    complement_size = n - node.indices.size
    if complement_size <= 0:
        return np.empty(0, dtype=np.intp)
    banned[node.indices] = True
    touched: list[np.ndarray] = [node.indices]
    try:
        if complement_size <= sample_size:
            return np.nonzero(~banned)[0].astype(np.intp)

        chosen: list[np.ndarray] = []
        count = 0
        if neighbors is not None and node.neighbor_list is not None:
            cand = node.neighbor_list[~banned[node.neighbor_list]]
            if cand.size > sample_size:
                cand = rng.choice(cand, size=sample_size, replace=False)
            if cand.size:
                cand = cand.astype(np.intp)
                chosen.append(cand)
                banned[cand] = True  # from here on "banned" means "not eligible"
                touched.append(cand)
                count += cand.size

        if count < sample_size:
            need = min(sample_size - count, complement_size - count)
            if need > 0:
                take = fill_uniform(rng, n, need, banned)
                chosen.append(take)
                touched.append(take)

        if not chosen:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate(chosen))
    finally:
        for indices in touched:
            banned[indices] = False


def sample_rows_level(
    members: list[TreeNode],
    n: int,
    sample_size: int,
    neighbors: Optional[NeighborTable],
    base: int,
) -> list[np.ndarray]:
    """Importance-sampled row sets for every node of one tree level.

    The level's nodes partition the index set, so all of the level's
    rejection-sampled draws run against **one** shared ownership mask: each
    node marks its rows, draws (neighbor-first, then
    :func:`~repro.core.skeletonization.fill_uniform` from its own
    deterministic :func:`node_stream`), and un-marks exactly what it
    touched — O(|indices| + sample) per node instead of the O(n) boolean
    mask :func:`sample_rows` allocates per node.  Every accept/reject
    decision tests the same membership predicate in the same order, so the
    samples are identical to :func:`sample_rows`'s by construction (the
    backend-equivalence tests pin this).
    """
    banned = np.zeros(n, dtype=bool)
    return [
        _sample_rows_shared(
            node, n, sample_size, neighbors, node_stream(base, node.node_id), banned
        )
        for node in members
    ]


def _assign_empty(node: TreeNode, num_columns: int) -> None:
    node.skeleton = np.empty(0, dtype=np.intp)
    node.coeffs = np.zeros((0, num_columns))
    node.skeleton_rank = 0


def skeletonize_level(
    members: list[TreeNode],
    n: int,
    matrix: SPDMatrix,
    config: GOFMMConfig,
    neighbors: Optional[NeighborTable],
    base: int,
) -> None:
    """Skeletonize one tree level's nodes in place (tasks SKEL + COEF).

    The level-batched unit of work: sample every node's rows against one
    shared ownership mask, bucket the sampled blocks by padded shape, run
    each bucket through a stacked decomposition, and assign
    ``skeleton`` / ``coeffs`` / ``skeleton_rank`` on the nodes.  Each
    node's result depends only on ``(base, node_id)``, its own indices /
    neighbor list, and its children's skeletons — never on which other
    nodes share the call — so :func:`skeletonize_tree_batched` applies it
    to whole levels while the ``"sharded"`` backend
    (:mod:`repro.core.skeletonization_sharded`) applies it to one
    subtree's slice of a level in a worker process, with identical
    results.  ``members`` must be processed bottom-up across calls
    (children before parents).
    """
    sample_size = config.effective_sample_size()
    rows_per_node = sample_rows_level(members, n, sample_size, neighbors, base)

    # Bucket the level's sampled blocks by padded shape.
    buckets: dict[tuple[int, int], list[tuple[TreeNode, np.ndarray, np.ndarray]]] = {}
    for node, rows in zip(members, rows_per_node):
        if node.is_leaf:
            columns = node.indices
        else:
            left, right = node.children()
            if left.skeleton is None or right.skeleton is None:
                raise RankDeficiencyError(
                    f"children of node {node.node_id} have not been skeletonized "
                    "(level sweep violated)"
                )
            columns = np.concatenate([left.skeleton, right.skeleton])

        if columns.size == 0:
            node.skeleton = np.empty(0, dtype=np.intp)
            node.coeffs = np.zeros((0, 0))
            node.skeleton_rank = 0
            if config.secure_accuracy:
                raise RankDeficiencyError(
                    f"node {node.node_id} has no columns to skeletonize"
                )
            continue
        if rows.size == 0:
            # Root-like node: nothing outside it, no off-diagonal block.
            _assign_empty(node, columns.size)
            continue

        key = (bucket_size(rows.size, "pow2"), bucket_size(columns.size, "pow2"))
        buckets.setdefault(key, []).append((node, rows, columns))

    for (pad_rows, pad_cols), group in sorted(buckets.items()):
        # One stacked evaluation for the whole bucket's entries (tasks
        # Kba of the SKEL stage): same values and evaluation counts as
        # per-node matrix.entries calls, far fewer kernel invocations.
        blocks = matrix.entries_batched(
            [rows for _, rows, _ in group], [columns for _, _, columns in group]
        )
        if stacked_sweep_applies(len(group), pad_rows, pad_cols):
            stack = np.zeros((len(group), pad_rows, pad_cols))
            row_counts = np.empty(len(group), dtype=np.intp)
            col_counts = np.empty(len(group), dtype=np.intp)
            for g, (node, rows, columns) in enumerate(group):
                stack[g, : rows.size, : columns.size] = blocks[g]
                row_counts[g] = rows.size
                col_counts[g] = columns.size
            decompositions = batched_interpolative_decomposition(
                stack,
                max_rank=config.max_rank,
                tolerance=config.tolerance,
                adaptive=config.adaptive_rank,
                row_counts=row_counts,
                col_counts=col_counts,
            )
        else:
            # Large blocks stay cache-resident inside one LAPACK call,
            # so the bucket is decomposed block by block (no padding).
            decompositions = [
                interpolative_decomposition(
                    block,
                    max_rank=config.max_rank,
                    tolerance=config.tolerance,
                    adaptive=config.adaptive_rank,
                )
                for block in blocks
            ]
        for g, ((node, rows, columns), decomposition) in enumerate(zip(group, decompositions)):
            if decomposition.rank == 0:
                if config.secure_accuracy:
                    block = blocks[g]
                    block_norm = float(np.abs(block).max()) if block.size else 0.0
                    raise RankDeficiencyError(
                        f"node {node.node_id}: adaptive ID selected rank 0 "
                        f"(block norm {block_norm:g})"
                    )
                _assign_empty(node, columns.size)
                continue
            node.skeleton = columns[decomposition.skeleton]
            node.coeffs = decomposition.coeffs.astype(config.dtype)
            node.skeleton_rank = decomposition.rank


def skeletonize_tree_batched(
    tree: BallTree,
    matrix: SPDMatrix,
    config: GOFMMConfig,
    neighbors: Optional[NeighborTable],
    rng: Optional[np.random.Generator] = None,
) -> SkeletonizationStats:
    """Algorithm 2.6 as level-batched stacked decompositions (root skipped)."""
    rng = rng or np.random.default_rng(config.seed)
    base = node_stream_base(rng)
    levels = tree.levels()
    start_entries = matrix.entry_evaluations
    tracer = get_tracer()
    if tracer.enabled:
        for level in range(tree.depth, 0, -1):
            members = levels[level]
            before = matrix.entry_evaluations
            with tracer.span("skeletonize.level", level=level, nodes=len(members)) as span:
                skeletonize_level(members, tree.n, matrix, config, neighbors, base)
                span.set(entries=int(matrix.entry_evaluations - before))
    else:
        for level in range(tree.depth, 0, -1):
            skeletonize_level(levels[level], tree.n, matrix, config, neighbors, base)
    _obs_counters.add("kernel_entries_evaluated", int(matrix.entry_evaluations - start_entries))
    return collect_stats(tree)
