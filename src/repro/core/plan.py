"""Packed evaluation plan: Algorithm 2.7 as level-batched GEMMs.

The reference engine in :mod:`repro.core.evaluate` executes the four task
families (N2S / S2S / S2N / L2L) one tree node at a time, storing every
intermediate ``w̃`` / ``ũ`` in a dict keyed by node id.  That is faithful to
the paper's task formulation and is kept as the correctness oracle, but the
hot path is dominated by interpreter and allocation overhead rather than
BLAS.

This module flattens the tree, once per compression, into an
:class:`EvaluationPlan`:

* **one workspace** — every active node's skeleton weights ``w̃`` and
  potentials ``ũ`` live at a precomputed row offset of two ``(R, r)``
  arrays (``R`` = total active skeleton rank), replacing the per-node
  dicts,
* **packed coefficients** — nodes of each level are grouped by coefficient
  shape and their ``P`` matrices stacked into one contiguous ``(g, s, k)``
  array, so each level of the upward (N2S) and downward (S2N) passes is a
  handful of batched GEMMs instead of thousands of tiny ones,
* **packed interaction blocks** — near and far blocks are grouped by shape
  the same way; the lists themselves are stored as CSR-style index arrays
  (``near_indptr`` / ``near_cols`` over leaves, ``far_indptr`` /
  ``far_cols`` over nodes),
* **dead-branch pruning** — a node participates in the up/down passes only
  if it (or an ancestor) appears in some Far list; with ``budget`` large
  enough that everything is handled directly, the passes vanish entirely,
* **rank bucketing** — when the tree's active skeleton ranks are
  non-uniform (adaptive rank), ``config.plan_rank_bucketing`` pads each
  rank up to a bucket (next power of two, or the per-level maximum) before
  grouping, so adaptive-rank trees batch into a few large GEMM groups
  instead of fragmenting into one group per distinct rank; all padding is
  zeros, leaving the product unchanged up to floating-point order.

The plan is built lazily by :meth:`repro.core.hmatrix.CompressedMatrix.plan`
and cached there, so repeated matvecs (e.g. inside CG) reuse it.  For the
S2S and L2L families, each target's interaction blocks are concatenated
into one wide block-row at build time — the whole Far (resp. Near) list of
a node becomes a single GEMM with a large inner dimension, and every
scatter target appears exactly once per stage, keeping every scatter a
plain vectorized fancy-index add — no ``np.add.at`` in the hot loop.

:func:`evaluate_planned` is numerically equivalent to
:func:`repro.core.evaluate.evaluate` up to floating-point summation order
(the equivalence tests assert agreement to 1e-10).

**Thread safety / reentrancy.**  The plan itself (packed coefficients,
blocks, index tables) is immutable after :func:`build_plan`; all mutable
per-matvec state lives in a :class:`PlanContext`.  Contexts are created per
call — never shared — so any number of threads may evaluate the same plan
concurrently (the serving runtime relies on this).  To avoid paying two
workspace allocations per request under load, the plan keeps a small
thread-safe pool of workspace buffers: :meth:`EvaluationPlan.new_context`
reuses a (zeroed) buffer pair when one of matching width is available and
:meth:`EvaluationPlan.release_context` returns it.  The output array is
always freshly allocated — it is handed to the caller.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import EvaluationError
from ..obs import counters as _obs_counters
from ..obs.trace import get_tracer
from .backends import pad_ranks
from .evaluate import EvaluationCounters, _as_matrix

__all__ = [
    "EvaluationPlan",
    "PassLayout",
    "PlanContext",
    "build_pass_layout",
    "build_plan",
    "evaluate_planned",
]


# ---------------------------------------------------------------------------
# per-matvec state
# ---------------------------------------------------------------------------

class PlanContext:
    """Mutable per-matvec state: the input/output and the packed workspace.

    ``wtil`` stacks the skeleton weights of every active node (node ``α``
    owns rows ``offset[α] : offset[α] + rank[α]``); ``util`` stacks the
    skeleton potentials with the same layout.

    When the structure is uniform the context also exposes blocked 3-D
    views used by the slot-gather fast paths: ``leaf_view[i]`` is the
    weight block of the ``i``-th leaf (in left-to-right leaf order) and
    ``wtil3[j]`` / ``util3[j]`` the workspace block of the ``j``-th active
    node.  Gathering whole blocks through these views moves kilobytes per
    index instead of one row, which is what makes the packed engine
    memory-efficient rather than just batched.
    """

    __slots__ = ("weights", "output", "wtil", "util", "num_rhs", "leaf_view", "wtil3", "util3")

    def __init__(
        self,
        weights: np.ndarray,
        workspace_rows: int,
        leaf_perm: Optional[np.ndarray] = None,
        leaf_size: int = 0,
        rank: int = 0,
        buffers: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        self.weights = weights
        self.num_rhs = weights.shape[1]
        self.output = np.zeros_like(weights)
        if buffers is not None:
            # Pooled workspaces (EvaluationPlan.new_context): zeroed here so a
            # reused buffer is indistinguishable from a fresh allocation.
            wtil, util = buffers
            wtil.fill(0.0)
            util.fill(0.0)
            self.wtil = wtil
            self.util = util
        else:
            self.wtil = np.zeros((workspace_rows, self.num_rhs), dtype=weights.dtype)
            self.util = np.zeros((workspace_rows, self.num_rhs), dtype=weights.dtype)
        if leaf_perm is not None and leaf_size > 0:
            self.leaf_view = weights[leaf_perm].reshape(-1, leaf_size, self.num_rhs)
        else:
            self.leaf_view = None
        if rank > 0 and workspace_rows % rank == 0:
            self.wtil3 = self.wtil.reshape(-1, rank, self.num_rhs)
            self.util3 = self.util.reshape(-1, rank, self.num_rhs)
        else:
            self.wtil3 = None
            self.util3 = None


# ---------------------------------------------------------------------------
# plan segments (one batched GEMM each)
# ---------------------------------------------------------------------------

class PlanSegment:
    """One batched-GEMM unit of work; subclasses implement :meth:`run`.

    ``run`` takes the per-matvec context plus one optional lock used only
    by the threaded executor: ``out_lock`` serializes adds into the output
    (S2N-at-leaves and L2L overlap there).  Workspace scatters need no
    lock — build-time concatenation keeps every stage's scatter targets
    disjoint.
    """

    __slots__ = ("level", "flops_per_rhs")
    kind = "?"

    def __init__(self, level: int, flops_per_rhs: float) -> None:
        self.level = level
        self.flops_per_rhs = flops_per_rhs

    @property
    def batch(self) -> int:
        raise NotImplementedError

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(level={self.level}, batch={self.batch})"


class N2SLeafSegment(PlanSegment):
    """``w̃ = P_{β̃β} w_β`` for a batch of same-shape leaves (upward pass, bottom)."""

    __slots__ = ("coeffs", "src", "dst_start", "dst_stop")
    kind = "N2S"

    def __init__(self, level: int, coeffs: np.ndarray, src: np.ndarray, dst_start: int) -> None:
        super().__init__(level, 2.0 * coeffs.shape[0] * coeffs.shape[1] * coeffs.shape[2])
        self.coeffs = coeffs              # (g, s, m)
        self.src = src                    # (g, m) global weight rows
        self.dst_start = dst_start        # nodes packed contiguously: one slice assign
        self.dst_stop = dst_start + coeffs.shape[0] * coeffs.shape[1]

    @property
    def batch(self) -> int:
        return self.coeffs.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.coeffs, ctx.weights[self.src])
        ctx.wtil[self.dst_start : self.dst_stop] = res.reshape(-1, ctx.num_rhs)


class N2SLeafSlotSegment(PlanSegment):
    """N2S leaf fast path for uniform leaf size: sources are whole leaf blocks."""

    __slots__ = ("coeffs", "src_slots", "dst_start", "dst_stop")
    kind = "N2S"

    def __init__(self, level: int, coeffs: np.ndarray, src_slots: np.ndarray, dst_start: int) -> None:
        super().__init__(level, 2.0 * coeffs.shape[0] * coeffs.shape[1] * coeffs.shape[2])
        self.coeffs = coeffs              # (g, s, m)
        self.src_slots = src_slots        # (g,) leaf slots into leaf_view
        self.dst_start = dst_start
        self.dst_stop = dst_start + coeffs.shape[0] * coeffs.shape[1]

    @property
    def batch(self) -> int:
        return self.coeffs.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.coeffs, ctx.leaf_view[self.src_slots])
        ctx.wtil[self.dst_start : self.dst_stop] = res.reshape(-1, ctx.num_rhs)


class N2SInternalSegment(PlanSegment):
    """``w̃_α = P_{α̃[l̃r̃]} [w̃_l; w̃_r]`` for a batch of same-shape internal nodes."""

    __slots__ = ("coeffs", "src_rows", "dst_start", "dst_stop")
    kind = "N2S"

    def __init__(self, level: int, coeffs: np.ndarray, src_rows: np.ndarray, dst_start: int) -> None:
        super().__init__(level, 2.0 * coeffs.shape[0] * coeffs.shape[1] * coeffs.shape[2])
        self.coeffs = coeffs              # (g, s, k)
        self.src_rows = src_rows          # (g, k) rows into wtil (children slices)
        self.dst_start = dst_start
        self.dst_stop = dst_start + coeffs.shape[0] * coeffs.shape[1]

    @property
    def batch(self) -> int:
        return self.coeffs.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.coeffs, ctx.wtil[self.src_rows])
        ctx.wtil[self.dst_start : self.dst_stop] = res.reshape(-1, ctx.num_rhs)


class N2SInternalSlotSegment(PlanSegment):
    """N2S internal fast path for uniform rank: children gathered as rank blocks."""

    __slots__ = ("coeffs", "src_slots", "dst_start", "dst_stop")
    kind = "N2S"

    def __init__(self, level: int, coeffs: np.ndarray, src_slots: np.ndarray, dst_start: int) -> None:
        super().__init__(level, 2.0 * coeffs.shape[0] * coeffs.shape[1] * coeffs.shape[2])
        self.coeffs = coeffs              # (g, s, k)
        self.src_slots = src_slots        # (g, k/s) node slots into wtil3
        self.dst_start = dst_start
        self.dst_stop = dst_start + coeffs.shape[0] * coeffs.shape[1]

    @property
    def batch(self) -> int:
        return self.coeffs.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        gathered = ctx.wtil3[self.src_slots].reshape(self.batch, -1, ctx.num_rhs)
        res = np.matmul(self.coeffs, gathered)
        ctx.wtil[self.dst_start : self.dst_stop] = res.reshape(-1, ctx.num_rhs)


class S2SSegment(PlanSegment):
    """``ũ_β = [K_{β̃α̃₁} | K_{β̃α̃₂} | …] [w̃_α₁; w̃_α₂; …]`` for a batch of targets.

    Each target node's far blocks are concatenated horizontally at build
    time, so the whole far field of a node is **one** GEMM with a large
    inner dimension, and every ``β`` appears exactly once across the entire
    S2S stage — scatter targets are disjoint and no lock is needed even
    under threaded execution.
    """

    __slots__ = ("blocks", "src_rows", "dst_rows")
    kind = "S2S"

    def __init__(self, blocks: np.ndarray, src_rows: np.ndarray, dst_rows: np.ndarray) -> None:
        super().__init__(0, 2.0 * blocks.shape[0] * blocks.shape[1] * blocks.shape[2])
        self.blocks = blocks              # (g, s, K) with K = Σ rank(α) over Far(β)
        self.src_rows = src_rows          # (g, K) rows of the stacked w̃_α
        self.dst_rows = dst_rows          # (g, s) rows of ũ_β, unique across the stage

    @property
    def batch(self) -> int:
        return self.blocks.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.blocks, ctx.wtil[self.src_rows])
        ctx.util[self.dst_rows] += res


class S2SSlotSegment(PlanSegment):
    """S2S fast path for uniform skeleton rank: gather/scatter whole blocks.

    With every active node at rank ``s`` the workspace factors into an
    ``(active, s, r)`` tensor; sources are gathered and targets scattered
    as node-sized blocks through it, so the index arrays are per-node, not
    per-row.
    """

    __slots__ = ("blocks", "src_slots", "dst_slots")
    kind = "S2S"

    def __init__(self, blocks: np.ndarray, src_slots: np.ndarray, dst_slots: np.ndarray) -> None:
        super().__init__(0, 2.0 * blocks.shape[0] * blocks.shape[1] * blocks.shape[2])
        self.blocks = blocks              # (g, s, q·s)
        self.src_slots = src_slots        # (g, q) node slots into wtil3
        self.dst_slots = dst_slots        # (g,) node slot of each target, unique

    @property
    def batch(self) -> int:
        return self.blocks.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        gathered = ctx.wtil3[self.src_slots].reshape(self.batch, -1, ctx.num_rhs)
        ctx.util3[self.dst_slots] += np.matmul(self.blocks, gathered)


class S2NInternalSegment(PlanSegment):
    """``[ũ_l; ũ_r] += Pᵀ ũ_α`` for a batch of internal nodes (downward pass).

    Every child has exactly one parent, so ``dst_rows`` is duplicate-free
    across the whole level — no lock needed.
    """

    __slots__ = ("coeffs_t", "src_rows", "dst_rows")
    kind = "S2N"

    def __init__(self, level: int, coeffs_t: np.ndarray, src_rows: np.ndarray, dst_rows: np.ndarray) -> None:
        super().__init__(level, 2.0 * coeffs_t.shape[0] * coeffs_t.shape[1] * coeffs_t.shape[2])
        self.coeffs_t = coeffs_t          # (g, k, s)
        self.src_rows = src_rows          # (g, s) rows of ũ_α
        self.dst_rows = dst_rows          # (g, k) rows of the children's ũ

    @property
    def batch(self) -> int:
        return self.coeffs_t.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.coeffs_t, ctx.util[self.src_rows])
        ctx.util[self.dst_rows] += res


class S2NInternalSlotSegment(PlanSegment):
    """S2N internal fast path for uniform rank: potentials move as rank blocks."""

    __slots__ = ("coeffs_t", "src_slots", "dst_slots", "rank")
    kind = "S2N"

    def __init__(self, level: int, coeffs_t: np.ndarray, src_slots: np.ndarray, dst_slots: np.ndarray, rank: int) -> None:
        super().__init__(level, 2.0 * coeffs_t.shape[0] * coeffs_t.shape[1] * coeffs_t.shape[2])
        self.coeffs_t = coeffs_t          # (g, k, s)
        self.src_slots = src_slots        # (g,) slot of the node in util3
        self.dst_slots = dst_slots        # (g, k/s) slots of the children, unique per level
        self.rank = rank

    @property
    def batch(self) -> int:
        return self.coeffs_t.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.coeffs_t, ctx.util3[self.src_slots])
        ctx.util3[self.dst_slots] += res.reshape(self.batch, -1, self.rank, ctx.num_rhs)


class S2NLeafSegment(PlanSegment):
    """``u_β += Pᵀ ũ_β`` at the leaves: potentials land in the output."""

    __slots__ = ("coeffs_t", "src_rows", "dst")
    kind = "S2N"

    def __init__(self, level: int, coeffs_t: np.ndarray, src_rows: np.ndarray, dst: np.ndarray) -> None:
        super().__init__(level, 2.0 * coeffs_t.shape[0] * coeffs_t.shape[1] * coeffs_t.shape[2])
        self.coeffs_t = coeffs_t          # (g, m, s)
        self.src_rows = src_rows          # (g, s)
        self.dst = dst                    # (g, m) global output rows (disjoint leaves)

    @property
    def batch(self) -> int:
        return self.coeffs_t.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.coeffs_t, ctx.util[self.src_rows])
        if out_lock is not None:
            with out_lock:
                ctx.output[self.dst] += res
        else:
            ctx.output[self.dst] += res


class S2NLeafSlotSegment(PlanSegment):
    """S2N leaf fast path for uniform rank: the node's ũ is one rank block."""

    __slots__ = ("coeffs_t", "src_slots", "dst")
    kind = "S2N"

    def __init__(self, level: int, coeffs_t: np.ndarray, src_slots: np.ndarray, dst: np.ndarray) -> None:
        super().__init__(level, 2.0 * coeffs_t.shape[0] * coeffs_t.shape[1] * coeffs_t.shape[2])
        self.coeffs_t = coeffs_t          # (g, m, s)
        self.src_slots = src_slots        # (g,) slot of the leaf's ũ block
        self.dst = dst                    # (g, m) global output rows

    @property
    def batch(self) -> int:
        return self.coeffs_t.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.coeffs_t, ctx.util3[self.src_slots])
        if out_lock is not None:
            with out_lock:
                ctx.output[self.dst] += res
        else:
            ctx.output[self.dst] += res


class L2LSegment(PlanSegment):
    """``u_β += [K_{βα₁} | K_{βα₂} | …] [w_α₁; w_α₂; …]`` for a batch of leaves.

    The direct part: each leaf's near blocks are concatenated horizontally,
    so the whole Near list of a leaf is one GEMM and each leaf's output rows
    appear exactly once across the L2L stage.  ``out_lock`` is still needed
    under threaded execution because S2N-at-leaves writes the same output.
    """

    __slots__ = ("blocks", "src", "dst")
    kind = "L2L"

    def __init__(self, blocks: np.ndarray, src: np.ndarray, dst: np.ndarray) -> None:
        super().__init__(0, 2.0 * blocks.shape[0] * blocks.shape[1] * blocks.shape[2])
        self.blocks = blocks              # (g, mb, K) with K = Σ |α| over Near(β)
        self.src = src                    # (g, K) global weight rows
        self.dst = dst                    # (g, mb) global output rows, unique across the stage

    @property
    def batch(self) -> int:
        return self.blocks.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        res = np.matmul(self.blocks, ctx.weights[self.src])
        if out_lock is not None:
            with out_lock:
                ctx.output[self.dst] += res
        else:
            ctx.output[self.dst] += res


class L2LSlotSegment(PlanSegment):
    """L2L fast path for uniform leaf size: gather sources as leaf blocks.

    Sources are whole leaves, gathered through the ``(leaves, m, r)`` view
    of the permuted weights; the scatter still uses global output rows
    (each leaf's rows appear once across the stage).
    """

    __slots__ = ("blocks", "src_slots", "dst")
    kind = "L2L"

    def __init__(self, blocks: np.ndarray, src_slots: np.ndarray, dst: np.ndarray) -> None:
        super().__init__(0, 2.0 * blocks.shape[0] * blocks.shape[1] * blocks.shape[2])
        self.blocks = blocks              # (g, m, p·m)
        self.src_slots = src_slots        # (g, p) leaf slots into leaf_view
        self.dst = dst                    # (g, m) global output rows, unique across the stage

    @property
    def batch(self) -> int:
        return self.blocks.shape[0]

    def run(self, ctx: PlanContext, out_lock=None) -> None:
        gathered = ctx.leaf_view[self.src_slots].reshape(self.batch, -1, ctx.num_rhs)
        res = np.matmul(self.blocks, gathered)
        if out_lock is not None:
            with out_lock:
                ctx.output[self.dst] += res
        else:
            ctx.output[self.dst] += res


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------

class EvaluationPlan:
    """Precomputed execution plan for the matvec of a compressed matrix.

    Built once by :func:`build_plan` (usually via
    ``CompressedMatrix.plan()``) and reused across matvecs; only the
    ``(R, r)`` workspace depends on the number of right-hand sides and is
    allocated per call.
    """

    def __init__(
        self,
        n: int,
        workspace_rows: int,
        skel_offset: np.ndarray,
        n2s_levels: List[List[PlanSegment]],
        s2s_segments: List[PlanSegment],
        s2n_levels: List[List[PlanSegment]],
        l2l_segments: List[PlanSegment],
        near_indptr: np.ndarray,
        near_cols: np.ndarray,
        far_indptr: np.ndarray,
        far_cols: np.ndarray,
        leaf_perm: Optional[np.ndarray] = None,
        uniform_leaf_size: int = 0,
        uniform_rank: int = 0,
    ) -> None:
        self.n = n
        self.workspace_rows = workspace_rows
        self.skel_offset = skel_offset
        self.leaf_perm = leaf_perm
        self.uniform_leaf_size = uniform_leaf_size
        self.uniform_rank = uniform_rank
        self.n2s_levels = n2s_levels          # bottom-up (leaf level first)
        self.s2s_segments = s2s_segments
        self.s2n_levels = s2n_levels          # top-down (level 1 first)
        self.l2l_segments = l2l_segments
        self.near_indptr = near_indptr
        self.near_cols = near_cols
        self.far_indptr = far_indptr
        self.far_cols = far_cols
        # Pooled per-call workspace buffers (see the module docstring): a
        # bounded LIFO of (wtil, util) pairs protected by a lock, so
        # concurrent callers are reentrant while repeated matvecs (CG,
        # serving) skip the two workspace allocations per call.
        self._pool_lock = threading.Lock()
        self._workspace_pool: List[tuple[np.ndarray, np.ndarray]] = []
        self.flops_per_rhs: Dict[str, float] = {
            "n2s": sum(s.flops_per_rhs for level in n2s_levels for s in level),
            "s2s": sum(s.flops_per_rhs for s in s2s_segments),
            "s2n": sum(s.flops_per_rhs for level in s2n_levels for s in level),
            "l2l": sum(s.flops_per_rhs for s in l2l_segments),
        }

    # -- inspection ---------------------------------------------------------
    def segments(self) -> Iterator[PlanSegment]:
        for level in self.n2s_levels:
            yield from level
        yield from self.s2s_segments
        for level in self.s2n_levels:
            yield from level
        yield from self.l2l_segments

    @property
    def num_segments(self) -> int:
        return sum(1 for _ in self.segments())

    def packed_entries(self) -> int:
        """Total float64 entries held in packed coefficient/block arrays."""
        total = 0
        for seg in self.segments():
            for name in ("coeffs", "coeffs_t", "blocks"):
                arr = getattr(seg, name, None)
                if arr is not None:
                    total += arr.size
        return total

    def stages(self) -> List[Tuple[str, List[PlanSegment]]]:
        """Barrier-separated stages, in a valid sequential order.

        Segments within one stage are mutually independent up to the locks
        described on :class:`PlanSegment`; the threaded executor builds its
        DAG from exactly this structure.
        """
        out: List[Tuple[str, List[PlanSegment]]] = []
        for i, level in enumerate(self.n2s_levels):
            if level:
                out.append((f"N2S@{level[0].level}", level))
        if self.s2s_segments:
            out.append(("S2S", self.s2s_segments))
        for level in self.s2n_levels:
            if level:
                out.append((f"S2N@{level[0].level}", level))
        if self.l2l_segments:
            out.append(("L2L", self.l2l_segments))
        return out

    def describe(self) -> str:
        fams = {"N2S": 0, "S2S": 0, "S2N": 0, "L2L": 0}
        for seg in self.segments():
            fams[seg.kind] += 1
        return (
            f"plan: {self.num_segments} segments "
            f"(N2S={fams['N2S']}, S2S={fams['S2S']}, S2N={fams['S2N']}, L2L={fams['L2L']}), "
            f"workspace {self.workspace_rows} rows, {self.packed_entries()} packed entries"
        )

    # -- execution ----------------------------------------------------------
    #: Maximum number of pooled workspace pairs kept per plan (≈ the number
    #: of concurrent evaluations worth caching for; beyond it, extra
    #: contexts simply allocate and are dropped on release).
    WORKSPACE_POOL_MAX = 8

    def new_context(self, weights: np.ndarray) -> PlanContext:
        """A fresh per-call context, reusing a pooled workspace when possible.

        Pair every ``new_context`` with a :meth:`release_context` (use
        ``try/finally`` as :meth:`execute` does) so the buffers return to
        the pool; forgetting to release is safe — it only costs the reuse.
        """
        buffers = None
        with self._pool_lock:
            for i, (wtil, _) in enumerate(self._workspace_pool):
                if wtil.shape[1] == weights.shape[1] and wtil.dtype == weights.dtype:
                    buffers = self._workspace_pool.pop(i)
                    break
        return PlanContext(
            weights,
            self.workspace_rows,
            leaf_perm=self.leaf_perm,
            leaf_size=self.uniform_leaf_size,
            rank=self.uniform_rank,
            buffers=buffers,
        )

    def release_context(self, ctx: PlanContext) -> None:
        """Return a context's workspace buffers to the pool (not the output)."""
        wtil, util = ctx.wtil, ctx.util
        # Defensive: a released context must never be run again.
        ctx.wtil = ctx.util = ctx.wtil3 = ctx.util3 = None
        if wtil is None:
            return
        with self._pool_lock:
            if len(self._workspace_pool) < self.WORKSPACE_POOL_MAX:
                self._workspace_pool.append((wtil, util))

    def workspace_pool_size(self) -> int:
        with self._pool_lock:
            return len(self._workspace_pool)

    def execute(self, weights: np.ndarray, counters: Optional[EvaluationCounters] = None) -> np.ndarray:
        """Sequential execution of the plan on an ``(N, r)`` weight matrix.

        Reentrant: all mutable state lives in the per-call context, so
        concurrent ``execute`` calls on one plan are safe and each is
        bit-identical to running alone.  With tracing enabled
        (:mod:`repro.obs`), each pass stage gets a span and its byte
        traffic is added to the ``gemm_bytes_*`` counters; the disabled
        cost is one attribute check per matvec.
        """
        ctx = self.new_context(weights)
        try:
            tracer = get_tracer()
            if tracer.enabled:
                self._execute_traced(ctx, tracer)
            else:
                for _, stage in self.stages():
                    for segment in stage:
                        segment.run(ctx)
            output = ctx.output
        finally:
            self.release_context(ctx)
        if counters is not None:
            self.add_flops(counters, weights.shape[1])
        return output

    def _execute_traced(self, ctx: PlanContext, tracer) -> None:
        """Traced sequential execution: identical work, one span per stage."""
        for _, stage in self.stages():
            kind = stage[0].kind.lower()
            with tracer.span(f"eval.{kind}", level=stage[0].level, segments=len(stage)):
                for segment in stage:
                    segment.run(ctx)
            _obs_counters.add(f"gemm_bytes_{kind}", _stage_bytes(stage, ctx.num_rhs))

    def add_flops(self, counters: EvaluationCounters, num_rhs: int) -> None:
        counters.n2s += self.flops_per_rhs["n2s"] * num_rhs
        counters.s2s += self.flops_per_rhs["s2s"] * num_rhs
        counters.s2n += self.flops_per_rhs["s2n"] * num_rhs
        counters.l2l += self.flops_per_rhs["l2l"] * num_rhs


def _stage_bytes(stage: List[PlanSegment], num_rhs: int) -> int:
    """Approximate bytes one stage moves: packed operands + workspace rows.

    For a packed ``(g, a, b)`` operand the GEMM reads ``g·b`` workspace
    rows and writes ``g·a``, each ``num_rhs`` floats wide.  Recorded only
    on the traced path, so the disabled matvec never computes this.
    """
    total = 0
    for seg in stage:
        for name in ("coeffs", "coeffs_t", "blocks"):
            arr = getattr(seg, name, None)
            if arr is not None:
                g, a, b = arr.shape
                total += arr.nbytes + g * (a + b) * num_rhs * arr.itemsize
    return total


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------

def _csr_lists(tree) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    near_indptr = np.zeros(len(tree.leaves) + 1, dtype=np.intp)
    near_cols: list[int] = []
    for i, leaf in enumerate(tree.leaves):
        near_cols.extend(leaf.near)
        near_indptr[i + 1] = len(near_cols)
    far_indptr = np.zeros(len(tree.nodes) + 1, dtype=np.intp)
    far_cols: list[int] = []
    for i, node in enumerate(tree.nodes):
        far_cols.extend(node.far)
        far_indptr[i + 1] = len(far_cols)
    return (
        near_indptr,
        np.asarray(near_cols, dtype=np.intp),
        far_indptr,
        np.asarray(far_cols, dtype=np.intp),
    )


def _active_nodes(tree, far_cols: np.ndarray) -> np.ndarray:
    """Nodes participating in the up/down passes.

    A node's ``w̃`` / ``ũ`` matters only if the node or one of its ancestors
    appears in a Far interaction (as source or target); everything else is
    dead weight the reference engine computes anyway.
    """
    active = np.zeros(len(tree.nodes), dtype=bool)
    active[far_cols] = True
    for node in tree.nodes:
        if node.far:
            active[node.node_id] = True
    # propagate down: a child inherits activity from its parent
    for node in tree.nodes:  # breadth-first order: parents precede children
        if node.parent is not None and active[node.parent.node_id]:
            active[node.node_id] = True
    return active


def _require_block(provider, key: tuple[int, int], what: str) -> np.ndarray:
    block = provider.get(key)
    if block is None:
        raise EvaluationError(f"missing {what} block {key} while building evaluation plan")
    # Keep the compression's dtype: packing must not change precision or
    # double the memory of a float32 representation.
    return np.ascontiguousarray(block)


def _padded_rank_table(tree, levels, active: np.ndarray, mode: str) -> np.ndarray:
    """Workspace rank of every node: the skeleton rank, bucketed when non-uniform.

    Adaptive-rank trees scatter ranks across many close values, fragmenting
    the shape groups below into tiny batches.  Padding each active rank up
    to a bucket (``"pow2"``: next power of two; ``"max"``: the per-level
    maximum) collapses the groups back into a few large GEMMs; every padded
    workspace row / coefficient row / block row is zero, so the evaluation
    is unchanged up to floating-point summation order.  Trees whose active
    ranks are already uniform are never padded.
    """
    true_rank = np.asarray([node.skeleton_rank for node in tree.nodes], dtype=np.intp)
    prank = true_rank.copy()
    active_mask = active & (true_rank > 0)
    if mode == "none" or np.unique(true_rank[active_mask]).size <= 1:
        return prank
    if mode == "max":
        for level_nodes in levels:
            ids = [n.node_id for n in level_nodes if active_mask[n.node_id]]
            if ids:
                prank[ids] = pad_ranks(true_rank[ids], "max")
    else:
        prank[active_mask] = pad_ranks(true_rank[active_mask], mode)
    return prank


def _padded_children_width(node, skel_offset: np.ndarray, prank: np.ndarray) -> int:
    """Padded column count of a node's coefficient matrix ``P_{α̃[l̃r̃]}``."""
    return int(
        sum(
            prank[child.node_id]
            for child in node.children()
            if child.skeleton_rank > 0 and skel_offset[child.node_id] >= 0
        )
    )


def _group_key(node, skel_offset: np.ndarray, prank: np.ndarray) -> tuple[int, int]:
    """Shape-group key of a node's (padded) coefficient matrix.

    Shared between the N2S and S2N grouping loops so both passes bucket
    nodes by exactly the same rule.
    """
    if node.is_leaf:
        return (int(prank[node.node_id]), node.size)
    return (int(prank[node.node_id]), _padded_children_width(node, skel_offset, prank))


def _padded_coeffs(node, skel_offset: np.ndarray, prank: np.ndarray) -> np.ndarray:
    """Node coefficients zero-padded to the bucketed workspace layout.

    Rows grow from the true rank to the padded rank; for internal nodes
    the columns of each child's slice move to that child's padded offset.
    """
    s = node.skeleton_rank
    big_s = int(prank[node.node_id])
    coeffs = np.asarray(node.coeffs)
    if node.is_leaf:
        if big_s == s:
            return coeffs
        out = np.zeros((big_s, coeffs.shape[1]), dtype=coeffs.dtype)
        out[:s] = coeffs
        return out
    kpad = _padded_children_width(node, skel_offset, prank)
    if big_s == s and kpad == coeffs.shape[1]:
        return coeffs
    out = np.zeros((big_s, kpad), dtype=coeffs.dtype)
    col = 0
    src = 0
    for child in node.children():
        if child.skeleton_rank > 0 and skel_offset[child.node_id] >= 0:
            out[:s, col : col + child.skeleton_rank] = coeffs[:, src : src + child.skeleton_rank]
            col += int(prank[child.node_id])
            src += child.skeleton_rank
    return out


class PassLayout:
    """Chunk-agnostic packing machinery of the up/down passes.

    Everything the evaluation needs *besides* the interaction blocks: the
    workspace row layout (``skel_offset`` / ``workspace_rows``), the packed
    N2S / S2N level segments, the CSR Near/Far index tables, and the
    uniformity metadata enabling the slot-gather fast paths.  The planned
    engine (:func:`build_plan`) combines a layout with eagerly packed
    S2S / L2L block segments; the streamed engine
    (:mod:`repro.core.streaming`) combines the same layout with chunked
    on-the-fly block materialization — one planner, two block strategies.
    """

    __slots__ = (
        "n", "workspace_rows", "skel_offset", "prank", "active", "needs_s2n",
        "n2s_levels", "s2n_levels", "near_indptr", "near_cols", "far_indptr",
        "far_cols", "leaf_perm", "uniform_leaf_size", "uniform_rank", "leaf_slot",
    )

    def __init__(self, **fields) -> None:
        for name in self.__slots__:
            setattr(self, name, fields[name])

    def new_context(self, weights: np.ndarray) -> PlanContext:
        """A per-matvec context laid out for this layout (no pooling)."""
        return PlanContext(
            weights,
            self.workspace_rows,
            leaf_perm=self.leaf_perm,
            leaf_size=self.uniform_leaf_size,
            rank=self.uniform_rank,
        )


def build_pass_layout(compressed, bucketing: str = "none") -> PassLayout:
    """Build the block-free :class:`PassLayout` of a compressed matrix.

    ``bucketing`` pads workspace ranks exactly like
    ``GOFMMConfig.plan_rank_bucketing``; the streamed engine always passes
    ``"none"`` (exact packing keeps its GEMM shapes — and therefore its
    results — identical to the per-node reference traversal).
    """
    tree = compressed.tree
    levels = tree.levels()
    near_indptr, near_cols, far_indptr, far_cols = _csr_lists(tree)
    active = _active_nodes(tree, far_cols)
    prank = _padded_rank_table(tree, levels, active, bucketing)

    # Uniformity enables the slot-gather fast paths: whole-block gathers
    # through 3-D views instead of row-wise fancy indexing.  Ranks are the
    # *padded* ranks — bucketing can turn an adaptive-rank tree uniform.
    leaf_sizes = {leaf.size for leaf in tree.leaves}
    uniform_leaf_size = leaf_sizes.pop() if len(leaf_sizes) == 1 else 0
    active_ranks = {
        int(prank[node.node_id])
        for node in tree.nodes
        if active[node.node_id] and node.skeleton_rank > 0
    }
    uniform_rank = active_ranks.pop() if len(active_ranks) == 1 else 0
    leaf_slot = {leaf.node_id: i for i, leaf in enumerate(tree.leaves)}

    # ---- workspace offsets + upward (N2S) pass, bottom-up -----------------
    skel_offset = np.full(len(tree.nodes), -1, dtype=np.intp)
    offset = 0
    n2s_levels: List[List[PlanSegment]] = []
    for level in range(tree.depth, 0, -1):
        members = [n for n in levels[level] if active[n.node_id] and n.skeleton_rank > 0]
        groups: Dict[tuple[int, int], list] = {}
        for node in members:
            if node.coeffs is None:
                raise EvaluationError(
                    f"node {node.node_id} is active in the far field but has no coefficients"
                )
            if node.coeffs.shape[0] != node.skeleton_rank:
                raise EvaluationError(
                    f"node {node.node_id}: coefficient rows {node.coeffs.shape[0]} != "
                    f"skeleton rank {node.skeleton_rank}"
                )
            groups.setdefault(_group_key(node, skel_offset, prank), []).append(node)
        level_segments: List[PlanSegment] = []
        for (s, k), nodes in sorted(groups.items()):
            dst_start = offset
            for node in nodes:
                skel_offset[node.node_id] = offset
                offset += int(prank[node.node_id])
            coeffs = np.stack([_padded_coeffs(n, skel_offset, prank) for n in nodes])
            if nodes[0].is_leaf:
                if uniform_leaf_size:
                    slots = np.asarray([leaf_slot[n.node_id] for n in nodes], dtype=np.intp)
                    level_segments.append(N2SLeafSlotSegment(level, coeffs, slots, dst_start))
                else:
                    src = np.stack([n.indices for n in nodes])
                    level_segments.append(N2SLeafSegment(level, coeffs, src, dst_start))
            else:
                src_rows = np.empty((len(nodes), k), dtype=np.intp)
                for g, node in enumerate(nodes):
                    rows = _children_rows(node, skel_offset, prank)
                    if rows.size != k:
                        raise EvaluationError(
                            f"N2S({node.node_id}): coefficient width {k} does not match "
                            f"children skeleton sizes {rows.size}"
                        )
                    src_rows[g] = rows
                if uniform_rank and s == uniform_rank and k % uniform_rank == 0:
                    slots = src_rows[:, :: uniform_rank] // uniform_rank
                    level_segments.append(N2SInternalSlotSegment(level, coeffs, slots, dst_start))
                else:
                    level_segments.append(N2SInternalSegment(level, coeffs, src_rows, dst_start))
        n2s_levels.append(level_segments)
    workspace_rows = offset

    # ---- downward (S2N) pass, top-down ------------------------------------
    # A node needs S2N only if its ũ can be nonzero: it has far interactions
    # itself or an ancestor pushes potentials into it.
    needs_s2n = np.zeros(len(tree.nodes), dtype=bool)
    for node in tree.nodes:
        has_far = bool(node.far) and node.skeleton_rank > 0
        from_parent = node.parent is not None and needs_s2n[node.parent.node_id]
        needs_s2n[node.node_id] = (has_far or from_parent) and node.skeleton_rank > 0
    s2n_levels: List[List[PlanSegment]] = []
    for level in range(1, tree.depth + 1):
        members = [n for n in levels[level] if needs_s2n[n.node_id] and n.coeffs is not None]
        groups = {}
        for node in members:
            groups.setdefault(_group_key(node, skel_offset, prank), []).append(node)
        level_segments = []
        for (s, k), nodes in sorted(groups.items()):
            coeffs_t = np.stack([_padded_coeffs(n, skel_offset, prank).T for n in nodes])
            uniform = uniform_rank and s == uniform_rank
            if nodes[0].is_leaf:
                dst = np.stack([n.indices for n in nodes])
                if uniform:
                    slots = np.asarray([skel_offset[n.node_id] // uniform_rank for n in nodes])
                    level_segments.append(S2NLeafSlotSegment(level, coeffs_t, slots, dst))
                else:
                    src_rows = np.stack(
                        [np.arange(skel_offset[n.node_id], skel_offset[n.node_id] + s) for n in nodes]
                    )
                    level_segments.append(S2NLeafSegment(level, coeffs_t, src_rows, dst))
            else:
                dst_rows = np.empty((len(nodes), k), dtype=np.intp)
                for g, node in enumerate(nodes):
                    rows = _children_rows(node, skel_offset, prank)
                    if rows.size != k:
                        raise EvaluationError(
                            f"S2N({node.node_id}): coefficient width {k} does not match "
                            f"children skeleton sizes {rows.size}"
                        )
                    dst_rows[g] = rows
                if uniform and k % uniform_rank == 0:
                    src_slots = np.asarray([skel_offset[n.node_id] // uniform_rank for n in nodes])
                    dst_slots = dst_rows[:, :: uniform_rank] // uniform_rank
                    level_segments.append(
                        S2NInternalSlotSegment(level, coeffs_t, src_slots, dst_slots, uniform_rank)
                    )
                else:
                    src_rows = np.stack(
                        [np.arange(skel_offset[n.node_id], skel_offset[n.node_id] + s) for n in nodes]
                    )
                    level_segments.append(S2NInternalSegment(level, coeffs_t, src_rows, dst_rows))
        s2n_levels.append(level_segments)

    return PassLayout(
        n=tree.n,
        workspace_rows=workspace_rows,
        skel_offset=skel_offset,
        prank=prank,
        active=active,
        needs_s2n=needs_s2n,
        n2s_levels=n2s_levels,
        s2n_levels=s2n_levels,
        near_indptr=near_indptr,
        near_cols=near_cols,
        far_indptr=far_indptr,
        far_cols=far_cols,
        leaf_perm=tree.permutation if uniform_leaf_size else None,
        uniform_leaf_size=uniform_leaf_size,
        uniform_rank=uniform_rank,
        leaf_slot=leaf_slot,
    )


def _pack_s2s_segments(compressed, layout: PassLayout) -> List[PlanSegment]:
    """Eagerly pack the far field: concatenate each target's far blocks into
    one wide block-row, then batch the block-rows by shape."""
    tree = compressed.tree
    skel_offset, prank = layout.skel_offset, layout.prank
    uniform_rank = layout.uniform_rank
    s2s_segments: List[PlanSegment] = []
    s2s_groups: Dict[tuple[int, int], list] = {}
    for node in tree.nodes:
        if not node.far or node.skeleton_rank == 0:
            continue
        blocks: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        for alpha_id in node.far:
            alpha = tree.node(alpha_id)
            if alpha.skeleton_rank == 0:
                continue
            block = _require_block(compressed.far_blocks, (node.node_id, alpha_id), "far")
            if block.shape != (node.skeleton_rank, alpha.skeleton_rank):
                raise EvaluationError(
                    f"far block ({node.node_id},{alpha_id}) has shape {block.shape}, "
                    f"expected {(node.skeleton_rank, alpha.skeleton_rank)}"
                )
            pad_shape = (int(prank[node.node_id]), int(prank[alpha.node_id]))
            if block.shape != pad_shape:
                padded = np.zeros(pad_shape, dtype=block.dtype)
                padded[: block.shape[0], : block.shape[1]] = block
                block = padded
            blocks.append(block)
            start = skel_offset[alpha.node_id]
            rows.append(np.arange(start, start + pad_shape[1]))
        if not blocks:
            continue
        row_block = np.hstack(blocks)
        s2s_groups.setdefault(row_block.shape, []).append((node, row_block, np.concatenate(rows)))
    for (s, k), entries in sorted(s2s_groups.items()):
        blocks = np.stack([e[1] for e in entries])
        if uniform_rank and s == uniform_rank and k % uniform_rank == 0:
            # every source/target is one whole rank-s block of the workspace
            src_slots = np.stack([e[2][::uniform_rank] // uniform_rank for e in entries])
            dst_slots = np.asarray([skel_offset[e[0].node_id] // uniform_rank for e in entries])
            s2s_segments.append(S2SSlotSegment(blocks, src_slots, dst_slots))
        else:
            src_rows = np.stack([e[2] for e in entries])
            dst_rows = np.stack(
                [np.arange(skel_offset[e[0].node_id], skel_offset[e[0].node_id] + s) for e in entries]
            )
            s2s_segments.append(S2SSegment(blocks, src_rows, dst_rows))
    return s2s_segments


def _pack_l2l_segments(compressed, layout: PassLayout) -> List[PlanSegment]:
    """Eagerly pack the direct part: concatenate each leaf's near blocks into
    one wide block-row, then batch the block-rows by shape."""
    tree = compressed.tree
    uniform_leaf_size, leaf_slot = layout.uniform_leaf_size, layout.leaf_slot
    l2l_segments: List[PlanSegment] = []
    l2l_groups = {}
    for leaf in tree.leaves:
        if not leaf.near:
            continue
        blocks = []
        cols: list[np.ndarray] = []
        for alpha_id in leaf.near:
            alpha = tree.node(alpha_id)
            block = _require_block(compressed.near_blocks, (leaf.node_id, alpha_id), "near")
            if block.shape != (leaf.size, alpha.size):
                raise EvaluationError(
                    f"near block ({leaf.node_id},{alpha_id}) has shape {block.shape}, "
                    f"expected {(leaf.size, alpha.size)}"
                )
            blocks.append(block)
            cols.append(alpha.indices)
        row_block = np.hstack(blocks)
        l2l_groups.setdefault(row_block.shape, []).append((leaf, row_block, np.concatenate(cols)))
    for (mb, k), entries in sorted(l2l_groups.items()):
        blocks = np.stack([e[1] for e in entries])
        dst = np.stack([e[0].indices for e in entries])
        if uniform_leaf_size and mb == uniform_leaf_size and k % uniform_leaf_size == 0:
            src_slots = np.stack(
                [np.asarray([leaf_slot[a] for a in e[0].near], dtype=np.intp) for e in entries]
            )
            l2l_segments.append(L2LSlotSegment(blocks, src_slots, dst))
        else:
            src = np.stack([e[2] for e in entries])
            l2l_segments.append(L2LSegment(blocks, src, dst))
    return l2l_segments


def build_plan(compressed) -> EvaluationPlan:
    """Flatten a :class:`~repro.core.hmatrix.CompressedMatrix` into an :class:`EvaluationPlan`."""
    bucketing = getattr(compressed.config, "plan_rank_bucketing", "none")
    layout = build_pass_layout(compressed, bucketing)
    return EvaluationPlan(
        n=layout.n,
        workspace_rows=layout.workspace_rows,
        skel_offset=layout.skel_offset,
        n2s_levels=layout.n2s_levels,
        s2s_segments=_pack_s2s_segments(compressed, layout),
        s2n_levels=layout.s2n_levels,
        l2l_segments=_pack_l2l_segments(compressed, layout),
        near_indptr=layout.near_indptr,
        near_cols=layout.near_cols,
        far_indptr=layout.far_indptr,
        far_cols=layout.far_cols,
        leaf_perm=layout.leaf_perm,
        uniform_leaf_size=layout.uniform_leaf_size,
        uniform_rank=layout.uniform_rank,
    )


def _children_rows(node, skel_offset: np.ndarray, prank: np.ndarray) -> np.ndarray:
    """Workspace rows of a node's children ``[w̃_l; w̃_r]`` (padded), in stacking order."""
    rows = []
    for child in node.children():
        if child.skeleton_rank > 0 and skel_offset[child.node_id] >= 0:
            start = skel_offset[child.node_id]
            rows.append(np.arange(start, start + prank[child.node_id]))
    if not rows:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(rows)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def evaluate_planned(compressed, w: np.ndarray, counters: Optional[EvaluationCounters] = None) -> np.ndarray:
    """Planned-engine matvec ``u ≈ K̃ w``; drop-in for :func:`repro.core.evaluate.evaluate`.

    Builds (or reuses) the cached :class:`EvaluationPlan` of ``compressed``
    and executes it sequentially.  Accepts ``(N,)`` or ``(N, r)`` weights.
    """
    weights, was_vector = _as_matrix(w, compressed.tree.n)
    plan = compressed.plan()
    output = plan.execute(weights, counters=counters)
    return output[:, 0] if was_vector else output
