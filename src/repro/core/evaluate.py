"""Evaluation phase (§2.2, Algorithm 2.7): the fast matvec ``u ≈ K̃ w``.

Four task families, matching Table 2:

* ``N2S`` (nodes → skeletons, postorder): skeleton weights
  ``w̃_β = P_{β̃β} w_β`` at leaves and ``w̃_α = P_{α̃[l̃r̃]} [w̃_l; w̃_r]`` at
  internal nodes (the upward pass of an FMM),
* ``S2S`` (skeletons → skeletons, any order): skeleton potentials
  ``ũ_β = Σ_{α ∈ Far(β)} K_{β̃α̃} w̃_α`` (the far-field translation),
* ``S2N`` (skeletons → nodes, preorder): push potentials down with the
  transposed coefficients (the downward pass),
* ``L2L`` (leaves → leaves, any order): the direct part,
  ``u_β += Σ_{α ∈ Near(β)} K_{βα} w_α``, which includes the dense diagonal
  blocks because ``β ∈ Near(β)``.

The functions are written so that each task is a standalone unit operating
on a shared state object; the sequential driver below simply runs them in a
valid order, while :mod:`repro.runtime` builds a dependency DAG over the
very same task functions to execute them out of order (in parallel or in a
scheduler simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..errors import EvaluationError
from .tree import BallTree, TreeNode

__all__ = ["EvaluationState", "EvaluationCounters", "evaluate", "task_n2s", "task_s2s", "task_s2n", "task_l2l"]


@dataclass
class EvaluationCounters:
    """FLOP counters per task family (used for the GFLOPS reporting of Table 5)."""

    n2s: float = 0.0
    s2s: float = 0.0
    s2n: float = 0.0
    l2l: float = 0.0

    @property
    def total(self) -> float:
        return self.n2s + self.s2s + self.s2n + self.l2l


@dataclass
class EvaluationState:
    """Mutable per-matvec state shared by the evaluation tasks.

    ``skeleton_weights[node_id]`` holds ``w̃`` (shape ``(rank, r)``) and
    ``skeleton_potentials[node_id]`` holds ``ũ``.  ``output`` accumulates the
    result ``u``.
    """

    weights: np.ndarray
    output: np.ndarray
    skeleton_weights: Dict[int, np.ndarray] = field(default_factory=dict)
    skeleton_potentials: Dict[int, np.ndarray] = field(default_factory=dict)
    counters: EvaluationCounters = field(default_factory=EvaluationCounters)


def _as_matrix(w: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    w = np.asarray(w, dtype=np.float64)
    if w.ndim == 1:
        if w.shape[0] != n:
            raise EvaluationError(f"weight vector has length {w.shape[0]}, expected {n}")
        return w.reshape(n, 1), True
    if w.ndim == 2:
        if w.shape[0] != n:
            raise EvaluationError(f"weight matrix has {w.shape[0]} rows, expected {n}")
        return w, False
    raise EvaluationError("weights must be a vector or a 2-D array")


# ---------------------------------------------------------------------------
# individual tasks
# ---------------------------------------------------------------------------

def task_n2s(node: TreeNode, state: EvaluationState) -> None:
    """N2S(α): compute the node's skeleton weights ``w̃_α``."""
    if node.is_root or node.coeffs is None:
        return
    r = state.weights.shape[1]
    if node.skeleton_rank == 0:
        state.skeleton_weights[node.node_id] = np.zeros((0, r))
        return
    if node.is_leaf:
        local = state.weights[node.indices]
        state.skeleton_weights[node.node_id] = node.coeffs @ local
        state.counters.n2s += 2.0 * node.coeffs.shape[0] * node.coeffs.shape[1] * r
    else:
        left, right = node.children()
        wl = state.skeleton_weights.get(left.node_id)
        wr = state.skeleton_weights.get(right.node_id)
        if wl is None or wr is None:
            raise EvaluationError(f"N2S({node.node_id}) ran before its children (postorder violated)")
        stacked = np.vstack([wl, wr]) if (wl.size or wr.size) else np.zeros((0, r))
        if stacked.shape[0] != node.coeffs.shape[1]:
            raise EvaluationError(
                f"N2S({node.node_id}): coefficient width {node.coeffs.shape[1]} does not match "
                f"children skeleton sizes {stacked.shape[0]}"
            )
        state.skeleton_weights[node.node_id] = node.coeffs @ stacked
        state.counters.n2s += 2.0 * node.coeffs.shape[0] * node.coeffs.shape[1] * r


def task_s2s(node: TreeNode, state: EvaluationState, far_blocks: Dict[tuple[int, int], np.ndarray]) -> None:
    """S2S(β): accumulate skeleton potentials from every far node."""
    if node.is_root or node.skeleton_rank == 0:
        return
    r = state.weights.shape[1]
    acc = state.skeleton_potentials.setdefault(node.node_id, np.zeros((node.skeleton_rank, r)))
    for alpha_id in node.far:
        block = far_blocks.get((node.node_id, alpha_id))
        if block is None:
            raise EvaluationError(f"missing cached far block ({node.node_id}, {alpha_id})")
        w_alpha = state.skeleton_weights.get(alpha_id)
        if w_alpha is None:
            raise EvaluationError(f"S2S({node.node_id}) needs w̃ of node {alpha_id} (N2S not finished)")
        if block.shape[1] != w_alpha.shape[0]:
            raise EvaluationError(
                f"S2S({node.node_id}): far block ({node.node_id},{alpha_id}) has {block.shape[1]} columns, "
                f"but node {alpha_id} has skeleton rank {w_alpha.shape[0]}"
            )
        acc += block @ w_alpha
        state.counters.s2s += 2.0 * block.shape[0] * block.shape[1] * r


def task_s2n(node: TreeNode, state: EvaluationState) -> None:
    """S2N(β): push skeleton potentials down to children (or to the output at leaves)."""
    if node.is_root or node.coeffs is None:
        return
    r = state.weights.shape[1]
    potentials = state.skeleton_potentials.get(node.node_id)
    if potentials is None or node.skeleton_rank == 0:
        return
    contribution = node.coeffs.T @ potentials
    state.counters.s2n += 2.0 * node.coeffs.shape[0] * node.coeffs.shape[1] * r
    if node.is_leaf:
        state.output[node.indices] += contribution
    else:
        left, right = node.children()
        split = left.skeleton_rank
        if left.skeleton_rank:
            acc_l = state.skeleton_potentials.setdefault(left.node_id, np.zeros((left.skeleton_rank, r)))
            acc_l += contribution[:split]
        if right.skeleton_rank:
            acc_r = state.skeleton_potentials.setdefault(right.node_id, np.zeros((right.skeleton_rank, r)))
            acc_r += contribution[split:]


def task_l2l(node: TreeNode, state: EvaluationState, tree: BallTree, near_blocks: Dict[tuple[int, int], np.ndarray]) -> None:
    """L2L(β): direct (dense) contribution from every near leaf."""
    if not node.is_leaf:
        return
    r = state.weights.shape[1]
    for alpha_id in node.near:
        alpha = tree.node(alpha_id)
        block = near_blocks.get((node.node_id, alpha_id))
        if block is None:
            raise EvaluationError(f"missing cached near block ({node.node_id}, {alpha_id})")
        state.output[node.indices] += block @ state.weights[alpha.indices]
        state.counters.l2l += 2.0 * block.shape[0] * block.shape[1] * r


# ---------------------------------------------------------------------------
# sequential driver
# ---------------------------------------------------------------------------

def evaluate(compressed, w: np.ndarray, counters: EvaluationCounters | None = None) -> np.ndarray:
    """Sequential Algorithm 2.7 on a :class:`repro.core.hmatrix.CompressedMatrix`.

    ``w`` may be a vector or an ``(N, r)`` matrix (GOFMM supports multiple
    right-hand sides).  Returns an array of the same shape.
    """
    tree = compressed.tree
    weights, was_vector = _as_matrix(w, tree.n)
    state = EvaluationState(weights=weights, output=np.zeros_like(weights))

    for node in tree.postorder():
        task_n2s(node, state)
    for node in tree.nodes:
        task_s2s(node, state, compressed.far_blocks)
    for node in tree.preorder():
        task_s2n(node, state)
    for leaf in tree.leaves:
        task_l2l(leaf, state, tree, compressed.near_blocks)

    if counters is not None:
        counters.n2s += state.counters.n2s
        counters.s2s += state.counters.s2s
        counters.s2n += state.counters.s2n
        counters.l2l += state.counters.l2l

    return state.output[:, 0] if was_vector else state.output
