"""Core GOFMM algorithm: distances, metric tree, interaction lists, skeletonization, evaluation.

The top-level user API lives in :mod:`repro.gofmm`; this subpackage holds the
algorithmic pieces in the order the paper presents them:

* :mod:`repro.core.distances` — the three distance measures of §2.1
  (geometric ℓ2, Gram ℓ2 "kernel", Gram angle) plus the two reference
  orderings (lexicographic, random),
* :mod:`repro.core.morton` — Morton IDs (root-to-node path codes),
* :mod:`repro.core.tree` — the balanced binary metric ball tree and
  Algorithm 2.1 ``metricSplit``,
* :mod:`repro.core.neighbors` — iterative randomized-projection-tree
  all-nearest-neighbor search,
* :mod:`repro.core.interactions` — neighbor / Near / Far lists
  (Algorithms 2.3–2.5) with the ``budget`` cap,
* :mod:`repro.core.skeletonization` — nested interpolative decomposition
  (Algorithm 2.6, tasks SKEL / COEF), the per-node ``"reference"`` backend,
* :mod:`repro.core.skeletonization_batched` — the level-batched
  ``"batched"`` backend (shape-bucketed stacked pivoted QRs),
* :mod:`repro.core.backends` — the compression-backend registry (mirrors
  the evaluation-engine registry) plus the shared rank-bucketing helpers,
* :mod:`repro.core.compress` — Algorithm 2.2 (compression driver),
* :mod:`repro.core.evaluate` — Algorithm 2.7 (N2S / S2S / S2N / L2L), the
  per-node reference engine,
* :mod:`repro.core.plan` — the packed evaluation plan executing the same
  algorithm as level-batched GEMMs (the "planned" engine),
* :mod:`repro.core.hmatrix` — the compressed-matrix object,
* :mod:`repro.core.accuracy` — the ε2 error metric.
"""

from .compress import CompressionReport, compress
from .hmatrix import CompressedMatrix
from .plan import EvaluationPlan, build_plan, evaluate_planned
from .accuracy import relative_error

__all__ = [
    "compress",
    "CompressionReport",
    "CompressedMatrix",
    "EvaluationPlan",
    "build_plan",
    "evaluate_planned",
    "relative_error",
]
