"""Accuracy metric ε2 (§3, Eq. (11)).

The paper reports

    ε2 = ||K̃ w − K w||_F / ||K w||_F,     w ∈ R^{N×r},

estimated by sampling 100 rows of ``K`` so that the reference product does
not cost O(r N²).  :func:`relative_error` implements the sampled estimator;
:func:`exact_relative_error` computes the exact quantity (used by tests at
small N).
"""

from __future__ import annotations

import numpy as np

from ..linalg.norms import relative_frobenius_error
from ..matrices.base import SPDMatrix

__all__ = ["relative_error", "exact_relative_error", "spectral_relative_error"]


def relative_error(
    compressed,
    matrix: SPDMatrix,
    num_rhs: int = 10,
    num_sample_rows: int = 100,
    rng: np.random.Generator | None = None,
    engine: str | None = None,
) -> float:
    """Sampled ε2 of a compressed matrix against its source.

    Draws ``num_rhs`` Gaussian right-hand sides, evaluates ``K̃ w`` with the
    fast matvec (``engine`` selects the evaluation engine), and compares
    ``num_sample_rows`` randomly chosen rows against the exact rows of
    ``K w``.
    """
    rng = rng or np.random.default_rng(0)
    n = matrix.n
    w = rng.standard_normal((n, num_rhs))
    approx = compressed.matvec(w, engine=engine)
    rows = np.sort(rng.choice(n, size=min(num_sample_rows, n), replace=False))
    exact_rows = matrix.entries(rows, np.arange(n, dtype=np.intp)) @ w
    return relative_frobenius_error(approx[rows, :], exact_rows)


def exact_relative_error(
    compressed,
    matrix: SPDMatrix,
    num_rhs: int = 10,
    rng: np.random.Generator | None = None,
    engine: str | None = None,
) -> float:
    """Exact ε2 (full reference product) — O(r N²), tests only."""
    rng = rng or np.random.default_rng(0)
    n = matrix.n
    w = rng.standard_normal((n, num_rhs))
    approx = compressed.matvec(w, engine=engine)
    exact = matrix.matvec(w)
    return relative_frobenius_error(approx, exact)


def spectral_relative_error(compressed, matrix: SPDMatrix, iterations: int = 25, rng: np.random.Generator | None = None) -> float:
    """Power-method estimate of ``||K̃ − K||₂ / ||K||₂`` (diagnostic, small N)."""
    rng = rng or np.random.default_rng(0)
    n = matrix.n
    dense = matrix.to_dense()
    x = rng.standard_normal(n)
    x /= np.linalg.norm(x)
    num = 0.0
    for _ in range(iterations):
        y = compressed.matvec(x) - dense @ x
        # Error operator is symmetric, so one-sided power iteration applies.
        norm_y = float(np.linalg.norm(y))
        if norm_y == 0.0:
            num = 0.0
            break
        num = norm_y
        x = y / norm_y
    denom = float(np.linalg.norm(dense, 2))
    return num / denom if denom else num
