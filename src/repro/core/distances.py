"""The geometry-oblivious distance measures of §2.1.

Because ``K`` is SPD it is the Gram matrix of some unknown vectors
``{φ_i} ⊂ R^N`` with ``K_ij = (φ_i, φ_j)``.  That lets us define distances
between *matrix indices* using only matrix entries:

* Gram ℓ2 ("kernel") distance:   ``d²_ij = K_ii + K_jj − 2 K_ij``,
* Gram angle distance:           ``d_ij = 1 − K_ij² / (K_ii K_jj)``,
* geometric ℓ2 distance:         ``d_ij = ||x_i − x_j||²`` when coordinates
  exist (the geometry-aware reference).

Each distance object serves two queries that the tree partitioner and the
neighbor search need:

``pairwise(I, J)``
    dense matrix of distances between two index sets, and
``to_centroid(I, sample)``
    distance of every index in ``I`` to the (Gram-space) centroid of a small
    sample — the quantity Algorithm 2.1 uses to seed the split without ever
    materializing the Gram vectors.

All distances are *squared* / monotone variants of the true metric: the
algorithms only compare values, so any order-equivalent form is valid (the
paper makes the same remark about the angle distance).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..config import DistanceMetric
from ..errors import ConfigurationError, NotSPDError
from ..matrices.base import SPDMatrix

__all__ = [
    "Distance",
    "GeometricDistance",
    "KernelDistance",
    "AngleDistance",
    "make_distance",
]


class Distance(ABC):
    """Pairwise distance between matrix indices ``{0, …, N−1}``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError("distance requires at least one index")
        self.n = int(n)

    @abstractmethod
    def pairwise(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Distance matrix ``d[i, j]`` for ``i ∈ rows``, ``j ∈ cols``."""

    def pairwise_blocks(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Stacked distance blocks ``d[b] = pairwise(rows[b], cols[b])``.

        ``rows`` is ``(B, p)`` and ``cols`` is ``(B, k)``; the result is
        ``(B, p, k)``.  The blocked neighbor backend evaluates one batch of
        same-size leaves through this entry point.  The default loops over
        :meth:`pairwise`; the concrete distances override it with a single
        stacked evaluation whose per-slice values are bitwise identical to
        the loop (same expression, same GEMM per slice) — the backend
        parity tests depend on that.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        out = np.empty((rows.shape[0], rows.shape[1], cols.shape[1]), dtype=np.float64)
        for b in range(rows.shape[0]):
            out[b] = self.pairwise(rows[b], cols[b])
        return out

    @abstractmethod
    def to_centroid(self, indices: np.ndarray, sample: np.ndarray) -> np.ndarray:
        """Distance of each index in ``indices`` to the centroid of ``sample``."""

    def to_point(self, indices: np.ndarray, point: int) -> np.ndarray:
        """Distance of each index in ``indices`` to a single index ``point``."""
        return self.pairwise(np.asarray(indices, dtype=np.intp), np.array([point], dtype=np.intp))[:, 0]


class GeometricDistance(Distance):
    """Point-based squared Euclidean distance (requires coordinates)."""

    def __init__(self, coordinates: np.ndarray) -> None:
        coordinates = np.asarray(coordinates, dtype=np.float64)
        if coordinates.ndim != 2:
            raise ConfigurationError("coordinates must be a 2-D array (N, d)")
        super().__init__(coordinates.shape[0])
        self.coordinates = coordinates

    def pairwise(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        x = self.coordinates[np.asarray(rows, dtype=np.intp)]
        y = self.coordinates[np.asarray(cols, dtype=np.intp)]
        xx = np.einsum("ij,ij->i", x, x)[:, None]
        yy = np.einsum("ij,ij->i", y, y)[None, :]
        d2 = xx + yy - 2.0 * (x @ y.T)
        np.clip(d2, 0.0, None, out=d2)
        return d2

    def pairwise_blocks(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        x = self.coordinates[np.asarray(rows, dtype=np.intp)]  # (B, p, d)
        y = self.coordinates[np.asarray(cols, dtype=np.intp)]  # (B, k, d)
        xx = np.einsum("bij,bij->bi", x, x)[:, :, None]
        yy = np.einsum("bij,bij->bi", y, y)[:, None, :]
        d2 = xx + yy - 2.0 * np.matmul(x, y.transpose(0, 2, 1))
        np.clip(d2, 0.0, None, out=d2)
        return d2

    def to_centroid(self, indices: np.ndarray, sample: np.ndarray) -> np.ndarray:
        centroid = self.coordinates[np.asarray(sample, dtype=np.intp)].mean(axis=0)
        x = self.coordinates[np.asarray(indices, dtype=np.intp)]
        diff = x - centroid[None, :]
        return np.einsum("ij,ij->i", diff, diff)


class _GramDistance(Distance):
    """Common machinery for the two Gram-space distances (caches the diagonal)."""

    def __init__(self, matrix: SPDMatrix) -> None:
        super().__init__(matrix.n)
        self.matrix = matrix
        diag = matrix.diagonal()
        if np.any(diag <= 0.0) or not np.all(np.isfinite(diag)):
            raise NotSPDError(
                "Gram distances require a strictly positive diagonal; "
                "the supplied matrix is not SPD"
            )
        self.diag = diag

    def _entry_blocks(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Stacked matrix blocks ``K[rows[b]][:, cols[b]]`` as one ``(B, p, k)`` array.

        Delegates to :meth:`~repro.matrices.base.SPDMatrix.entries_batched`,
        whose contract guarantees the same values and the same
        ``entry_evaluations`` accounting as per-block :meth:`entries` calls.
        """
        out = np.empty((rows.shape[0], rows.shape[1], cols.shape[1]), dtype=np.float64)
        self.matrix.entries_batched(rows, cols, out=out)
        return out


class KernelDistance(_GramDistance):
    """Gram ℓ2 distance ``d²_ij = K_ii + K_jj − 2 K_ij`` (Eq. (3))."""

    def pairwise(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        k = self.matrix.entries(rows, cols)
        d2 = self.diag[rows][:, None] + self.diag[cols][None, :] - 2.0 * k
        np.clip(d2, 0.0, None, out=d2)
        return d2

    def pairwise_blocks(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        k = self._entry_blocks(rows, cols)
        d2 = self.diag[rows][:, :, None] + self.diag[cols][:, None, :] - 2.0 * k
        np.clip(d2, 0.0, None, out=d2)
        return d2

    def to_centroid(self, indices: np.ndarray, sample: np.ndarray) -> np.ndarray:
        """``||φ_i − c||²`` with ``c`` the mean of the sampled Gram vectors.

        Expanding the square needs only matrix entries:
        ``K_ii − (2/n_c) Σ_j K_ij + (1/n_c²) Σ_{j,j'} K_jj'``.
        """
        indices = np.asarray(indices, dtype=np.intp)
        sample = np.asarray(sample, dtype=np.intp)
        k_is = self.matrix.entries(indices, sample)
        k_ss = self.matrix.entries(sample, sample)
        cross = k_is.mean(axis=1)
        centroid_norm_sq = float(k_ss.mean())
        d2 = self.diag[indices] - 2.0 * cross + centroid_norm_sq
        np.clip(d2, 0.0, None, out=d2)
        return d2


class AngleDistance(_GramDistance):
    """Gram angle distance ``d_ij = 1 − K_ij² / (K_ii K_jj)`` (Eq. (4))."""

    def pairwise(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        k = self.matrix.entries(rows, cols)
        denom = self.diag[rows][:, None] * self.diag[cols][None, :]
        d = 1.0 - (k * k) / denom
        np.clip(d, 0.0, None, out=d)
        return d

    def pairwise_blocks(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        k = self._entry_blocks(rows, cols)
        denom = self.diag[rows][:, :, None] * self.diag[cols][:, None, :]
        d = 1.0 - (k * k) / denom
        np.clip(d, 0.0, None, out=d)
        return d

    def to_centroid(self, indices: np.ndarray, sample: np.ndarray) -> np.ndarray:
        """``sin²`` of the angle between ``φ_i`` and the sampled centroid.

        ``cos² = (φ_i · c)² / (||φ_i||² ||c||²)`` with ``φ_i · c`` the mean of
        ``K_ij`` over the sample and ``||c||²`` the mean of the sampled block.
        """
        indices = np.asarray(indices, dtype=np.intp)
        sample = np.asarray(sample, dtype=np.intp)
        k_is = self.matrix.entries(indices, sample)
        k_ss = self.matrix.entries(sample, sample)
        dot = k_is.mean(axis=1)
        centroid_norm_sq = max(float(k_ss.mean()), np.finfo(np.float64).tiny)
        cos_sq = (dot * dot) / (self.diag[indices] * centroid_norm_sq)
        d = 1.0 - cos_sq
        np.clip(d, 0.0, None, out=d)
        return d


def make_distance(
    matrix: SPDMatrix,
    metric: DistanceMetric,
    coordinates: Optional[np.ndarray] = None,
) -> Optional[Distance]:
    """Build the distance object for the requested metric.

    Returns ``None`` for the two metric-free orderings (lexicographic and
    random), which is how the rest of the pipeline knows that no neighbor
    search or near/far pruning is possible (HSS-only, as in Figure 7).
    """
    metric = DistanceMetric(metric)
    if metric is DistanceMetric.GEOMETRIC:
        coords = coordinates if coordinates is not None else matrix.coordinates
        if coords is None:
            raise ConfigurationError(
                "geometric distance requested but the matrix carries no coordinates"
            )
        return GeometricDistance(coords)
    if metric is DistanceMetric.KERNEL:
        return KernelDistance(matrix)
    if metric is DistanceMetric.ANGLE:
        return AngleDistance(matrix)
    return None
