"""The compressed hierarchical matrix object produced by GOFMM.

A :class:`CompressedMatrix` bundles everything Algorithm 2.2 produced — the
metric tree (with per-node skeletons and interpolation coefficients), the
Near/Far interaction lists, and (optionally cached) near/far submatrices —
and exposes the operations a user of the library needs:

* ``matvec(w)`` / ``@`` — the fast approximate product (Algorithm 2.7),
  with interchangeable engines: the per-node ``"reference"`` traversal
  (the correctness oracle), the ``"planned"`` engine that executes a
  cached :class:`repro.core.plan.EvaluationPlan` as level-batched GEMMs,
  and the ``"streamed"`` engine that runs the same level-batched passes
  while materializing near/far blocks chunk by chunk inside a bounded
  workspace (:class:`repro.core.streaming.StreamingPlan` — for memoryless
  compressions),
* ``to_dense()`` — explicit ``K̃`` for small problems (tests, exact error),
* storage / rank / FLOP reports used by the benchmark harness,
* ``relative_error`` — the sampled ε2 metric of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..config import GOFMMConfig
from ..errors import EvaluationError
from ..matrices.base import SPDMatrix
from .engines import get_engine, is_registered
from .evaluate import EvaluationCounters
from .plan import EvaluationPlan, build_plan
from .interactions import InteractionLists
from .neighbors import NeighborTable
from .tree import BallTree, TreeNode

__all__ = ["BlockProvider", "CompressedMatrix"]


class BlockProvider:
    """Dict-like provider of near/far submatrices.

    When caching is enabled at compression time the blocks are stored in an
    internal dict (tasks ``Kba`` / ``SKba`` of Table 2).  When caching is
    disabled, each request evaluates the block from the original matrix on
    the fly — trading time for the O(N) cache memory, exactly the trade-off
    the paper describes.
    """

    def __init__(self, tree: BallTree, matrix: Optional[SPDMatrix], use_skeletons: bool) -> None:
        self._tree = tree
        self._matrix = matrix
        self._use_skeletons = use_skeletons
        self._cache: Dict[tuple[int, int], np.ndarray] = {}

    def store(self, key: tuple[int, int], block: np.ndarray) -> None:
        self._cache[key] = block

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._cache

    def get(self, key: tuple[int, int]) -> Optional[np.ndarray]:
        block = self._cache.get(key)
        if block is not None:
            return block
        if self._matrix is None:
            return None
        beta_id, alpha_id = key
        beta = self._tree.node(beta_id)
        alpha = self._tree.node(alpha_id)
        if self._use_skeletons:
            rows = beta.skeleton if beta.skeleton is not None else np.empty(0, dtype=np.intp)
            cols = alpha.skeleton if alpha.skeleton is not None else np.empty(0, dtype=np.intp)
        else:
            rows = beta.indices
            cols = alpha.indices
        return self._matrix.entries(rows, cols)

    @property
    def cached_entries(self) -> int:
        return sum(block.size for block in self._cache.values())

    def cached_items(self):
        """Iterate ``(key, block)`` over the cached blocks (insertion order)."""
        return self._cache.items()

    @property
    def bytes_resident(self) -> int:
        """Heap bytes held by the cached blocks."""
        return sum(block.nbytes for block in self._cache.values())

    @property
    def bytes_on_disk(self) -> int:
        """Disk bytes backing the blocks (always 0 for the in-memory provider)."""
        return 0

    def __len__(self) -> int:
        return len(self._cache)


@dataclass
class CompressedMatrix:
    """Hierarchically compressed SPD matrix ``K̃ ≈ K`` (Eq. (1))."""

    tree: BallTree
    lists: InteractionLists
    config: GOFMMConfig
    near_blocks: BlockProvider
    far_blocks: BlockProvider
    matrix: Optional[SPDMatrix] = None
    neighbors: Optional[NeighborTable] = None
    counters: EvaluationCounters = field(default_factory=EvaluationCounters)
    _plan: Optional[EvaluationPlan] = field(default=None, repr=False, compare=False)
    _streaming_plan: object = field(default=None, repr=False, compare=False)

    # -- linear operator interface -------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.tree.n, self.tree.n)

    @property
    def n(self) -> int:
        return self.tree.n

    def plan(self, rebuild: bool = False) -> EvaluationPlan:
        """The cached :class:`~repro.core.plan.EvaluationPlan` (built on first use)."""
        if self._plan is None or rebuild:
            self._plan = build_plan(self)
        return self._plan

    def streaming_plan(self, rebuild: bool = False):
        """The cached :class:`~repro.core.streaming.StreamingPlan` (built on first use).

        The streamed engine's schedule: the shared pass layout plus the
        chunked S2S / L2L materialization bounded by
        ``config.streaming_chunk_bytes``.
        """
        if self._streaming_plan is None or rebuild:
            from .streaming import build_streaming_plan

            self._streaming_plan = build_streaming_plan(self)
        return self._streaming_plan

    def default_engine(self) -> str:
        """Engine used when ``matvec`` is called without an explicit ``engine``.

        Normally ``config.evaluation_engine``; when block caching was
        disabled at compression time (the memory-bounded configuration) and
        the configured engine requires cached blocks (the packed plan does),
        the default falls back to the ``"streamed"`` engine — level-batched
        GEMMs with chunked block materialization in a bounded workspace —
        rather than silently packing every block into a plan.  Without a
        source matrix to stream from the fallback is ``"reference"``.  Pass
        ``engine="planned"`` (or call :meth:`plan`) to opt into the packed
        engine anyway.
        """
        engine = getattr(self.config, "evaluation_engine", "planned")
        if (
            is_registered(engine)
            and get_engine(engine).requires_cached_blocks
            and self._plan is None
            and not (self.config.cache_near_blocks and self.config.cache_far_blocks)
        ):
            return "streamed" if self.matrix is not None else "reference"
        return engine

    def matvec(self, w: np.ndarray, engine: Optional[str] = None) -> np.ndarray:
        """Approximate product ``K̃ w`` (Algorithm 2.7); accepts (N,) or (N, r).

        ``engine`` names a registered evaluation engine (see
        :mod:`repro.core.engines`): ``"planned"`` executes level-batched
        GEMMs over the cached plan, ``"streamed"`` runs the same passes
        with chunked on-the-fly block materialization in a bounded
        workspace (:mod:`repro.core.streaming`; bit-identical to the
        reference traversal), ``"reference"`` runs the per-node traversal
        of :mod:`repro.core.evaluate`.  Defaults to :meth:`default_engine`.
        """
        engine = engine or self.default_engine()
        return get_engine(engine)(self, w, counters=self.counters)

    def __matmul__(self, w: np.ndarray) -> np.ndarray:
        return self.matvec(w)

    def matvec_transpose(self, w: np.ndarray, engine: Optional[str] = None) -> np.ndarray:
        """Product with ``K̃ᵀ``.

        With symmetric interaction lists ``K̃`` is symmetric by construction
        and this equals :meth:`matvec`; it is provided so users can verify
        symmetry numerically.
        """
        return self.matvec(w, engine=engine)

    # -- explicit form (small problems only) ----------------------------------
    def ordered_indices(self) -> Dict[int, np.ndarray]:
        """Indices owned by each node in left-to-right *leaf* order.

        A node's ``indices`` array preserves the order produced by its
        parent's split, which generally differs from the concatenation of its
        children's index arrays; the telescoping expression of Eq. (10)
        stacks children blocks, so explicit reconstructions must use this
        child-concatenated ordering.
        """
        ordered: Dict[int, np.ndarray] = {}
        for node in self.tree.postorder():
            if node.is_leaf:
                ordered[node.node_id] = node.indices
            else:
                left, right = node.children()
                ordered[node.node_id] = np.concatenate([ordered[left.node_id], ordered[right.node_id]])
        return ordered

    def telescoped_coefficients(self) -> Dict[int, np.ndarray]:
        """Full coefficient matrices ``P_{α̃α}`` (Eq. (10)) for every non-root node.

        Each entry maps the node's owned indices — in the left-to-right leaf
        order returned by :meth:`ordered_indices` — to its skeleton.  Cost is
        O(s · N log N) memory, so this is intended for diagnostics and
        ``to_dense`` at test scale.
        """
        full: Dict[int, np.ndarray] = {}
        for node in self.tree.postorder():
            if node.is_root or node.coeffs is None:
                continue
            if node.is_leaf:
                full[node.node_id] = node.coeffs
            else:
                left, right = node.children()
                pl = full.get(left.node_id)
                pr = full.get(right.node_id)
                if pl is None or pr is None:
                    full[node.node_id] = np.zeros((node.skeleton_rank, node.size))
                    continue
                stacked = np.zeros((pl.shape[0] + pr.shape[0], node.size))
                stacked[: pl.shape[0], : left.size] = pl
                stacked[pl.shape[0] :, left.size :] = pr
                full[node.node_id] = node.coeffs @ stacked
        return full

    def to_dense(self) -> np.ndarray:
        """Materialize ``K̃`` (O(N²) memory; tests and small problems only)."""
        if self.matrix is None and (len(self.near_blocks) == 0 and len(self.far_blocks) == 0):
            raise EvaluationError("cannot materialize: no cached blocks and no source matrix")
        n = self.tree.n
        out = np.zeros((n, n))
        telescoped = self.telescoped_coefficients()
        ordered = self.ordered_indices()

        for leaf in self.tree.leaves:
            for alpha_id in leaf.near:
                alpha = self.tree.node(alpha_id)
                block = self.near_blocks.get((leaf.node_id, alpha_id))
                if block is None:
                    raise EvaluationError(f"missing near block ({leaf.node_id}, {alpha_id})")
                out[np.ix_(leaf.indices, alpha.indices)] += block

        for node in self.tree.nodes:
            if not node.far:
                continue
            p_beta = telescoped.get(node.node_id)
            if p_beta is None or node.skeleton_rank == 0:
                continue
            for alpha_id in node.far:
                alpha = self.tree.node(alpha_id)
                p_alpha = telescoped.get(alpha_id)
                if p_alpha is None or alpha.skeleton_rank == 0:
                    continue
                block = self.far_blocks.get((node.node_id, alpha_id))
                if block is None:
                    raise EvaluationError(f"missing far block ({node.node_id}, {alpha_id})")
                out[np.ix_(ordered[node.node_id], ordered[alpha_id])] += p_beta.T @ block @ p_alpha
        return out

    # -- accuracy ---------------------------------------------------------------
    def relative_error(
        self,
        num_rhs: int = 10,
        num_sample_rows: int = 100,
        rng: np.random.Generator | None = None,
        engine: Optional[str] = None,
    ) -> float:
        """Sampled ε2 = ||K̃w − Kw||_F / ||Kw||_F against the source matrix.

        ``engine`` selects the matvec engine used for the approximate
        product (default: :meth:`default_engine`), so ε2 measures the engine
        users actually run — matching :func:`repro.gofmm.run`.
        """
        if self.matrix is None:
            raise EvaluationError("relative_error requires the source matrix to be attached")
        from .accuracy import relative_error as _relative_error

        return _relative_error(
            self,
            self.matrix,
            num_rhs=num_rhs,
            num_sample_rows=num_sample_rows,
            rng=rng,
            engine=engine,
        )

    # -- reports -----------------------------------------------------------------
    def rank_summary(self) -> dict[str, float]:
        """Skeleton-rank statistics (the "average rank" the paper reports)."""
        ranks = [node.skeleton_rank for node in self.tree.nodes if not node.is_root]
        if not ranks:
            return {"mean": 0.0, "max": 0, "min": 0}
        return {"mean": float(np.mean(ranks)), "max": int(np.max(ranks)), "min": int(np.min(ranks))}

    def storage_report(self) -> dict[str, float]:
        """Approximate storage of the representation, in number of float64 entries."""
        coeff_entries = sum(node.coeffs.size for node in self.tree.nodes if node.coeffs is not None)
        near_entries = self.near_blocks.cached_entries
        far_entries = self.far_blocks.cached_entries
        total = coeff_entries + near_entries + far_entries
        dense = self.tree.n ** 2
        return {
            "coefficients": float(coeff_entries),
            "near_blocks": float(near_entries),
            "far_blocks": float(far_entries),
            "total": float(total),
            "dense_equivalent": float(dense),
            "compression_ratio": float(dense / total) if total else float("inf"),
        }

    def memory_report(self) -> dict[str, int]:
        """Resident vs on-disk bytes of the representation (stable schema).

        ``bytes_resident`` counts heap-held arrays: skeleton coefficients
        (unless they are mmap views into an operator store), cached blocks
        of in-memory providers, the packed plan and the streaming plan's
        index tables *if already built* (this report never builds them).
        ``bytes_on_disk`` counts mmap-backed coefficients/blocks plus any
        live streaming spill arena.  Keys are always present, so serving
        metrics and ``CompressedOperator.report()`` can rely on the schema.
        """
        from ..storage.store import is_disk_backed

        coeff_resident = coeff_disk = 0
        for node in self.tree.nodes:
            for array in (node.coeffs, node.skeleton):
                if array is None:
                    continue
                if is_disk_backed(array):
                    coeff_disk += array.nbytes
                else:
                    coeff_resident += array.nbytes
        resident = coeff_resident
        on_disk = coeff_disk
        for provider in (self.near_blocks, self.far_blocks):
            resident += int(getattr(provider, "bytes_resident", 0))
            on_disk += int(getattr(provider, "bytes_on_disk", 0))
        if self._plan is not None:
            resident += int(self._plan.packed_entries()) * 8
        if self._streaming_plan is not None:
            resident += int(self._streaming_plan.index_bytes())
            if not self._streaming_plan.spills:
                # Spilled workspaces live in the arena (counted below while
                # an evaluation holds them), not on the heap.
                resident += int(self._streaming_plan.workspace_bytes)
            arena = getattr(self._streaming_plan, "_arena", None)
            if arena is not None and not arena.closed:
                on_disk += int(arena.bytes_on_disk)
        return {"bytes_resident": int(resident), "bytes_on_disk": int(on_disk)}

    def plan_report(self) -> dict[str, float]:
        """Size of the packed evaluation plan (builds it if not yet cached)."""
        plan = self.plan()
        return {
            "segments": float(plan.num_segments),
            "workspace_rows": float(plan.workspace_rows),
            "packed_entries": float(plan.packed_entries()),
            "near_pairs": float(plan.near_cols.size),
            "far_pairs": float(plan.far_cols.size),
        }

    def streaming_report(self) -> dict[str, float]:
        """Size/chunking of the streaming plan (builds it if not yet cached)."""
        return self.streaming_plan().report()

    def interaction_report(self) -> dict[str, float]:
        """Sizes of the interaction lists (how much of K is treated directly)."""
        near_pairs = self.lists.total_near_pairs()
        far_pairs = self.lists.total_far_pairs()
        leaves = len(self.tree.leaves)
        return {
            "num_leaves": float(leaves),
            "near_pairs": float(near_pairs),
            "far_pairs": float(far_pairs),
            "avg_near_per_leaf": float(near_pairs / leaves) if leaves else 0.0,
            "budget_cap": float(self.lists.budget_cap),
            "is_hss": float(self.lists.is_hss()),
        }

    def evaluation_flops(self, num_rhs: int = 1) -> float:
        """Predicted FLOPs of one evaluation with ``num_rhs`` right-hand sides (Table 2 model)."""
        total = 0.0
        for node in self.tree.nodes:
            if node.is_root or node.coeffs is None:
                continue
            total += 2.0 * node.coeffs.shape[0] * node.coeffs.shape[1] * num_rhs  # N2S
            total += 2.0 * node.coeffs.shape[0] * node.coeffs.shape[1] * num_rhs  # S2N
            for alpha_id in node.far:
                alpha = self.tree.node(alpha_id)
                total += 2.0 * node.skeleton_rank * alpha.skeleton_rank * num_rhs  # S2S
        for leaf in self.tree.leaves:
            for alpha_id in leaf.near:
                alpha = self.tree.node(alpha_id)
                total += 2.0 * leaf.size * alpha.size * num_rhs  # L2L
        return total
