"""Interaction lists: N(α), Near(β), Far(β) (Algorithms 2.3–2.5).

Every tree node carries three lists (§2.2):

* ``N(α)`` — the node's neighbor list: the union of the κ-nearest-neighbor
  lists of the indices it owns (leaves), or of its children (internal
  nodes).  Used for near/far pruning and for importance sampling during
  skeletonization.
* ``Near(β)`` — defined for leaves only: the leaves whose interaction with
  ``β`` cannot be compressed (they contain neighbors of ``β``).  Its size is
  capped by the ``budget`` through vote counting, and the relation is
  symmetrized.  These blocks become the sparse correction ``S`` (plus the
  block-diagonal ``D``, since ``β ∈ Near(β)`` always).
* ``Far(β)`` — nodes whose interaction with ``β`` *is* compressed (the
  low-rank ``UV`` blocks).  The paper builds it per leaf with ``FindFar``
  and hoists common entries to the parents with ``MergeFar``; with
  ``symmetrize_lists`` we instead run an equivalent dual-tree construction
  that yields exactly symmetric pairs (``α ∈ Far(β) ⇔ β ∈ Far(α)``) while
  preserving the exactly-once coverage of every off-diagonal block.

Both constructions guarantee the *coverage invariant* that the evaluation
phase relies on: for every ordered pair of leaves ``(δ, γ)``, the block
``K_{δγ}`` is accounted for exactly once — either through ``Near(δ)`` or
through exactly one pair ``(B, A)`` with ``B`` an ancestor-or-self of ``δ``,
``A`` an ancestor-or-self of ``γ``, and ``A ∈ Far(B)``.  The test-suite
checks this invariant explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GOFMMConfig
from ..errors import CompressionError
from .neighbors import NeighborTable
from .tree import BallTree, TreeNode

__all__ = [
    "InteractionLists",
    "build_node_neighbor_lists",
    "build_near_lists",
    "build_far_lists_paper",
    "build_far_lists_symmetric",
    "build_interaction_lists",
    "coverage_matrix",
]


@dataclass
class InteractionLists:
    """Near / Far lists for every node, plus bookkeeping used by diagnostics.

    ``near[leaf_id]`` holds leaf node_ids; ``far[node_id]`` holds node_ids of
    any level.  ``leaf_position`` maps a leaf's node_id to its left-to-right
    position (used to index the per-node leaf masks).
    """

    near: dict[int, list[int]]
    far: dict[int, list[int]]
    leaf_position: dict[int, int]
    num_leaves: int
    budget_cap: int

    def near_of(self, node: TreeNode) -> list[int]:
        return self.near.get(node.node_id, [])

    def far_of(self, node: TreeNode) -> list[int]:
        return self.far.get(node.node_id, [])

    def total_near_pairs(self) -> int:
        return sum(len(v) for v in self.near.values())

    def total_far_pairs(self) -> int:
        return sum(len(v) for v in self.far.values())

    def is_hss(self) -> bool:
        """True when every leaf's Near list is just itself (no sparse correction)."""
        return all(v == [leaf_id] for leaf_id, v in self.near.items())


# ---------------------------------------------------------------------------
# node neighbor lists  N(α)
# ---------------------------------------------------------------------------

def build_node_neighbor_lists(
    tree: BallTree,
    neighbors: NeighborTable,
    max_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> None:
    """Attach ``N(α)`` to every tree node (stored on ``node.neighbor_list``).

    Leaves take the union of their indices' neighbor lists; internal nodes
    merge their children's lists (recursively, as in ASKIT).  ``max_size``
    caps the list by random subsampling so the cost of importance sampling
    stays bounded near the root.
    """
    rng = rng or np.random.default_rng(0)
    for node in tree.postorder():
        if node.is_leaf:
            cand = np.unique(neighbors.indices[node.indices].ravel())
        else:
            left, right = node.children()
            assert left.neighbor_list is not None and right.neighbor_list is not None
            cand = np.union1d(left.neighbor_list, right.neighbor_list)
        if max_size is not None and cand.size > max_size:
            cand = rng.choice(cand, size=max_size, replace=False)
            cand = np.sort(cand)
        node.neighbor_list = cand.astype(np.intp)


# ---------------------------------------------------------------------------
# Near lists (Algorithm 2.3 + budget voting + symmetrization)
# ---------------------------------------------------------------------------

def build_near_lists(
    tree: BallTree,
    neighbors: NeighborTable | None,
    config: GOFMMConfig,
) -> dict[int, list[int]]:
    """``Near(β)`` for every leaf β, honoring the budget cap of Eq. (6).

    Candidates are ranked by *votes*: the number of β's neighbor indices that
    live inside each candidate leaf.  β itself is always a member (the dense
    diagonal block).  When no neighbor table exists (lexicographic / random
    orderings) the list degenerates to ``{β}`` — exactly the HSS structure
    those orderings are restricted to in the paper.
    """
    near: dict[int, list[int]] = {}
    cap = config.max_near_size(tree.n)
    for leaf in tree.leaves:
        members = [leaf.node_id]
        if neighbors is not None and cap > 0 and config.budget > 0.0:
            neighbor_indices = np.unique(neighbors.indices[leaf.indices].ravel())
            owner_leaves = tree.leaf_ids_of(neighbor_indices)
            owner_leaves = owner_leaves[owner_leaves != leaf.node_id]
            if owner_leaves.size:
                candidates, votes = np.unique(owner_leaves, return_counts=True)
                order = np.argsort(votes, kind="stable")[::-1]
                chosen = candidates[order][:cap]
                members.extend(int(c) for c in chosen)
        near[leaf.node_id] = members

    if config.symmetrize_lists:
        # Enforce: α ∈ Near(β)  ⇒  β ∈ Near(α).  This may exceed the budget by
        # a small amount, matching the paper's post-hoc symmetrization.
        for beta_id, members in list(near.items()):
            for alpha_id in members:
                if alpha_id != beta_id and beta_id not in near[alpha_id]:
                    near[alpha_id].append(beta_id)
    return near


# ---------------------------------------------------------------------------
# Far lists
# ---------------------------------------------------------------------------

def _leaf_masks(tree: BallTree, near: dict[int, list[int]]) -> tuple[dict[int, int], np.ndarray, np.ndarray]:
    """Per-node boolean masks over leaf positions.

    Returns ``(leaf_position, span, near_mask)`` where ``span[node]`` marks
    which leaves descend from the node and ``near_mask[node]`` marks which
    leaves are near *some* descendant leaf of the node.
    """
    num_leaves = len(tree.leaves)
    leaf_position = {leaf.node_id: pos for pos, leaf in enumerate(tree.leaves)}
    span = np.zeros((len(tree.nodes), num_leaves), dtype=bool)
    near_mask = np.zeros((len(tree.nodes), num_leaves), dtype=bool)
    for node in tree.postorder():
        if node.is_leaf:
            pos = leaf_position[node.node_id]
            span[node.node_id, pos] = True
            for other in near.get(node.node_id, [node.node_id]):
                near_mask[node.node_id, leaf_position[other]] = True
        else:
            left, right = node.children()
            span[node.node_id] = span[left.node_id] | span[right.node_id]
            near_mask[node.node_id] = near_mask[left.node_id] | near_mask[right.node_id]
    return leaf_position, span, near_mask


def build_far_lists_paper(
    tree: BallTree,
    near: dict[int, list[int]],
) -> dict[int, list[int]]:
    """Algorithms 2.4 + 2.5: per-leaf ``FindFar`` followed by ``MergeFar``."""
    leaf_position, span, near_mask = _leaf_masks(tree, near)
    far: dict[int, list[int]] = {node.node_id: [] for node in tree.nodes}

    # FindFar(β, root) for every leaf β.
    for leaf in tree.leaves:
        beta_near = near_mask[leaf.node_id]

        def find_far(alpha: TreeNode) -> None:
            # "alpha ∩ Near(β) ≠ ∅ using MortonID": some leaf of alpha is near β.
            if bool(np.any(beta_near & span[alpha.node_id])):
                if not alpha.is_leaf:
                    left, right = alpha.children()
                    find_far(left)
                    find_far(right)
                # A leaf that intersects Near(β) is handled by the Near list.
            else:
                far[leaf.node_id].append(alpha.node_id)

        find_far(tree.root)

    # MergeFar: hoist entries shared by both children into the parent.
    for node in tree.postorder():
        if node.is_leaf:
            continue
        left, right = node.children()
        common = set(far[left.node_id]) & set(far[right.node_id])
        if common:
            far[node.node_id].extend(sorted(common))
            far[left.node_id] = [x for x in far[left.node_id] if x not in common]
            far[right.node_id] = [x for x in far[right.node_id] if x not in common]
    return far


def build_far_lists_symmetric(
    tree: BallTree,
    near: dict[int, list[int]],
) -> dict[int, list[int]]:
    """Dual-tree construction of symmetric Far lists.

    Produces ``α ∈ Far(β) ⇔ β ∈ Far(α)`` with the same exactly-once coverage
    as the paper's construction; in the HSS case (``Near(β) = {β}``) the two
    constructions coincide (each node's Far list is its sibling).
    """
    leaf_position, span, near_mask = _leaf_masks(tree, near)
    far: dict[int, list[int]] = {node.node_id: [] for node in tree.nodes}

    def well_separated(a: TreeNode, b: TreeNode) -> bool:
        return not bool(np.any(near_mask[a.node_id] & span[b.node_id]))

    def recurse(a: TreeNode, b: TreeNode) -> None:
        if a.node_id == b.node_id:
            if a.is_leaf:
                return
            left, right = a.children()
            recurse(left, left)
            recurse(left, right)
            recurse(right, right)
            return
        if well_separated(a, b):
            far[a.node_id].append(b.node_id)
            far[b.node_id].append(a.node_id)
            return
        if a.is_leaf and b.is_leaf:
            return  # near pair, handled by the Near lists
        # Split the larger node (or the one that is not a leaf).
        if a.is_leaf or (not b.is_leaf and b.size >= a.size):
            left, right = b.children()
            recurse(a, left)
            recurse(a, right)
        else:
            left, right = a.children()
            recurse(left, b)
            recurse(right, b)

    recurse(tree.root, tree.root)
    return far


def build_interaction_lists(
    tree: BallTree,
    neighbors: NeighborTable | None,
    config: GOFMMConfig,
) -> InteractionLists:
    """Build Near and Far lists and attach them to the tree nodes."""
    near = build_near_lists(tree, neighbors, config)
    if config.symmetrize_lists:
        far = build_far_lists_symmetric(tree, near)
    else:
        far = build_far_lists_paper(tree, near)

    leaf_position = {leaf.node_id: pos for pos, leaf in enumerate(tree.leaves)}
    lists = InteractionLists(
        near=near,
        far=far,
        leaf_position=leaf_position,
        num_leaves=len(tree.leaves),
        budget_cap=config.max_near_size(tree.n),
    )
    for node in tree.nodes:
        node.near = near.get(node.node_id, [])
        node.far = far.get(node.node_id, [])
    return lists


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------

def coverage_matrix(tree: BallTree, lists: InteractionLists) -> np.ndarray:
    """Count how many times each ordered leaf pair is covered by Near/Far lists.

    A correct construction yields the all-ones matrix: every ordered pair of
    leaves ``(δ, γ)`` is covered exactly once (through ``Near(δ)`` or through
    exactly one ``(ancestor-of-δ, ancestor-of-γ)`` Far pair).  Used by the
    property-based tests.
    """
    num_leaves = lists.num_leaves
    pos = lists.leaf_position
    coverage = np.zeros((num_leaves, num_leaves), dtype=np.int64)

    # Leaf positions spanned by each node.
    span: dict[int, np.ndarray] = {}
    for node in tree.postorder():
        if node.is_leaf:
            span[node.node_id] = np.array([pos[node.node_id]], dtype=np.intp)
        else:
            left, right = node.children()
            span[node.node_id] = np.concatenate([span[left.node_id], span[right.node_id]])

    for beta_id, members in lists.near.items():
        b = pos[beta_id]
        for alpha_id in members:
            coverage[b, pos[alpha_id]] += 1

    for beta_id, members in lists.far.items():
        rows = span[beta_id]
        for alpha_id in members:
            cols = span[alpha_id]
            coverage[np.ix_(rows, cols)] += 1

    return coverage
