"""Structured logging for the repo, rooted at the ``"repro"`` namespace.

Every module logs through :func:`get_logger`, so one handler / level
configuration covers the whole library (``logging.getLogger("repro")``)
and embedders can route it like any stdlib logger.  The root carries a
``NullHandler`` — importing the library never prints anything; call
:func:`configure` (or attach your own handler) to see events.

The library emits events only where behaviour silently degrades or
changes shape: shard restarts and route-arounds in the serving cluster,
deadline sheds, :class:`~repro.storage.spill.SpillArena` activation, and
legacy ``.npz`` artifact fallbacks.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["ROOT_NAME", "get_logger", "configure"]

ROOT_NAME = "repro"

_root = logging.getLogger(ROOT_NAME)
_root.addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``"repro"`` namespace (``get_logger("serving.cluster")``)."""
    return _root if not name else logging.getLogger(f"{ROOT_NAME}.{name}")


def configure(level: int = logging.INFO, stream=None, fmt: Optional[str] = None) -> logging.Logger:
    """Attach one stream handler to the ``"repro"`` root (idempotent).

    Returns the root logger.  Repeated calls update the level and keep a
    single handler, so benchmark scripts can call it unconditionally.
    """
    _root.setLevel(level)
    fmt = fmt or "%(asctime)s %(levelname)s %(name)s: %(message)s"
    for handler in _root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(handler, logging.NullHandler):
            handler.setLevel(level)
            handler.setFormatter(logging.Formatter(fmt))
            return _root
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt))
    _root.addHandler(handler)
    return _root
