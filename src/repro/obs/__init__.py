"""``repro.obs`` — the cross-cutting telemetry layer.

Three small pieces, used together:

* :mod:`repro.obs.trace` — thread-aware span tracer with a module-level
  no-op fast path (``get_tracer().enabled`` is the only disabled cost),
* :mod:`repro.obs.counters` — process-wide pipeline counters/gauges with
  a fixed vocabulary that serving metrics (schema v3) re-export,
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable)
  and flat summaries, also available as
  ``python -m repro.obs summarize <trace.json>``.

Quickstart::

    from repro.api import Session
    from repro import obs

    session = Session(matrix, config.replace(telemetry=True))
    operator = session.compress()
    operator.matvec(w)
    obs.write_chrome_trace(session.tracer, "trace.json")   # open in Perfetto
    print(obs.format_summary(obs.summary(session.tracer)))
"""

from . import counters, log
from .export import chrome_trace, format_summary, summary, write_chrome_trace
from .log import configure as configure_logging
from .log import get_logger
from .trace import NULL_TRACER, NullTracer, Span, Tracer, get_tracer, set_tracer, tracing

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "chrome_trace",
    "write_chrome_trace",
    "summary",
    "format_summary",
    "counters",
    "log",
    "get_logger",
    "configure_logging",
]
