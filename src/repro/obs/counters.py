"""Process-wide registry of named pipeline counters and gauges.

One vocabulary shared by compression, evaluation and serving, so a single
scraper (or :class:`~repro.serving.metrics.ServingMetrics` schema v3, which
re-exports these) sees where blocks, bytes and batches actually went:

=============================  =============================================
``blocks_materialized``        near/far blocks materialized on the fly by
                               the streamed engine (chunk fills)
``kernel_entries_evaluated``   kernel entries evaluated through
                               ``matrix.entries`` during skeletonization
                               and chunk materialization
``spill_bytes_out``            bytes written to the :class:`SpillArena`
``spill_bytes_in``             bytes paged back in from the arena
``chunk_stalls``               chunk-pipeline stalls (executor watchdog
                               fired while a streamed matvec waited)
``batches_assembled``          micro-batches assembled by the serving tier
``batch_requests``             requests that entered an assembled batch
``batch_occupancy_sum``        Σ (batch size / canonical GEMM width); mean
                               occupancy fraction =
                               ``batch_occupancy_sum / batches_assembled``
``requests_shed``              requests dropped by deadline shedding
``gemm_bytes_n2s`` /           bytes moved per evaluation pass (packed
``gemm_bytes_s2s`` /           operands + workspace traffic); recorded only
``gemm_bytes_s2n`` /           while tracing is enabled so the disabled
``gemm_bytes_l2l``             hot path stays untouched
``faults_injected``            faults fired by an armed
                               :class:`repro.faults.FaultPlan` (worker
                               kills detected parent-side count here too)
``faults_recovered``           faults survived without changing the
                               execution strategy: a retried shard task
                               that succeeded, a transient store read that
                               went through on retry, a shard restarted in
                               place
``faults_degraded``            faults survived by *degrading*: a sharded
                               backend falling back to its single-process
                               equivalent, spill buffers falling back to
                               heap, a shard routed around / breaker-opened
=============================  =============================================

Counters are monotone within a process; :func:`reset` (tests, benchmark
harness runs) zeroes them.  Every name in :data:`VOCABULARY` is always
present in :func:`snapshot`, so downstream schemas can rely on the keys.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

__all__ = ["VOCABULARY", "CounterRegistry", "registry", "add", "set_gauge", "get", "snapshot", "reset"]

#: The fixed counter vocabulary (see the module docstring).  Ad-hoc names
#: may be added at runtime; these keys are always present in a snapshot.
VOCABULARY = (
    "blocks_materialized",
    "kernel_entries_evaluated",
    "spill_bytes_out",
    "spill_bytes_in",
    "chunk_stalls",
    "batches_assembled",
    "batch_requests",
    "batch_occupancy_sum",
    "requests_shed",
    "gemm_bytes_n2s",
    "gemm_bytes_s2s",
    "gemm_bytes_s2n",
    "gemm_bytes_l2l",
    "faults_injected",
    "faults_recovered",
    "faults_degraded",
)


class CounterRegistry:
    """Thread-safe name → value registry (counters add, gauges set)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, float] = {name: 0 for name in VOCABULARY}

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._values[name] = value

    def get(self, name: str) -> float:
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self, names: Optional[Iterable[str]] = None) -> Dict[str, float]:
        """Copy of the registry; with ``names``, exactly those keys (0-filled).

        Without ``names`` the snapshot contains every :data:`VOCABULARY`
        key (always) plus any ad-hoc names registered so far.
        """
        with self._lock:
            if names is not None:
                return {name: self._values.get(name, 0) for name in names}
            out = {name: 0 for name in VOCABULARY}
            out.update(self._values)
            return out

    def reset(self) -> None:
        with self._lock:
            self._values = {name: 0 for name in VOCABULARY}


_registry = CounterRegistry()


def registry() -> CounterRegistry:
    """The process-wide registry instance."""
    return _registry


# Module-level conveniences bound to the process-wide registry.
add = _registry.add
set_gauge = _registry.set_gauge
get = _registry.get
snapshot = _registry.snapshot
reset = _registry.reset
