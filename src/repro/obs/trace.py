"""Thread-aware span tracing with a module-level no-op fast path.

The tracer is the substrate of the repo's observability layer: every
instrumented site — the six :class:`~repro.api.session.Session` stages,
the per-level skeletonization loops, the four evaluation passes, the
streaming chunk pipeline, :class:`~repro.runtime.executor.WorkerPool`
tasks and the serving batch phases — opens a span through the same API::

    with tracer.span("skeletonize.level", level=3, nodes=128):
        ...

Design constraints, in the order the hot paths care about them:

* **Disabled cost is one attribute check.**  :func:`get_tracer` returns a
  module-level singleton; when tracing is off that singleton is
  :data:`NULL_TRACER`, whose class attribute ``enabled`` is ``False``.
  Hot paths do ``if get_tracer().enabled:`` — a module-global load plus
  an attribute read — and skip all instrumentation: no allocation, no
  clock read, no lock.  The pinned overhead guard in
  ``tests/unit/test_obs.py`` holds this to ≤3% of a planned-engine
  matvec.
* **Thread-aware, lock-free recording.**  Every thread owns a private
  span buffer and depth counter (``threading.local``); a finished span
  is recorded with one ``list.append`` onto the owning thread's buffer,
  which is atomic under the GIL — no lock on the record path.  The
  tracer's lock is taken once per thread (buffer registration) and on
  snapshot/export, so worker threads never contend while tracing.
* **Monotonic clocks.**  All timestamps come from
  :func:`time.perf_counter` (monotonic, sub-microsecond); exporters
  rebase them against the tracer's epoch so traces start at t=0.

Spans never alter the numerical work they wrap — tracing on or off, every
engine stays bit-identical (pinned in tests).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
]


class Span:
    """One finished (or instant) span: name, interval, thread, attributes."""

    __slots__ = ("name", "start", "end", "thread_id", "thread_name", "depth", "attrs")

    def __init__(
        self,
        name: str,
        start: float,
        end: float,
        thread_id: int,
        thread_name: str,
        depth: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.depth = depth
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        return self.end == self.start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"thread={self.thread_name!r}, depth={self.depth}, attrs={self.attrs})"
        )


class _ThreadState(threading.local):
    """Per-thread recording state: the buffer, the nesting depth, identity."""

    def __init__(self) -> None:  # called once per thread by threading.local
        self.buffer: List[Span] = []
        self.depth = 0
        self.ident = 0
        self.name = ""
        self.registered = False


class _SpanCtx:
    """Context manager for one live span (allocated per ``span()`` call)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_state")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._state: Optional[_ThreadState] = None

    def set(self, **attrs: Any) -> "_SpanCtx":
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanCtx":
        state = self._tracer._state()
        state.depth += 1
        self._state = state
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = self._tracer._clock()
        state = self._state
        state.depth -= 1
        state.buffer.append(
            Span(self._name, self._start, end, state.ident, state.name, state.depth, self._attrs)
        )
        return False


class _NullSpanCtx:
    """Reusable no-op span: enter/exit/set do nothing, allocate nothing."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpanCtx":
        return self

    def __enter__(self) -> "_NullSpanCtx":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpanCtx()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is a *class* attribute, so the hot-path check
    ``get_tracer().enabled`` never touches instance state.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> _NullSpanCtx:
        return _NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        return None

    def add_span(self, name: str, start: float, end: float, **attrs: Any) -> None:
        return None

    def spans(self) -> List[Span]:
        return []

    def thread_names(self) -> Dict[int, str]:
        return {}

    def clear(self) -> None:
        return None


#: The process-wide disabled tracer; ``get_tracer()`` returns it whenever
#: no real tracer is installed.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans from any number of threads; see the module docstring."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        # thread ident -> (thread name, that thread's buffer).  Buffers are
        # appended to lock-free by their owning thread; this registry is the
        # only shared structure and is touched once per thread + on export.
        self._threads: Dict[int, Tuple[str, List[Span]]] = {}
        self._tls = _ThreadState()
        self.epoch = clock()

    # -- recording ----------------------------------------------------------
    def _state(self) -> _ThreadState:
        state = self._tls
        if not state.registered:
            t = threading.current_thread()
            state.name = t.name
            state.registered = True
            with self._lock:
                # OS thread idents are reused once a thread exits; a reused
                # ident must not overwrite the finished thread's track, so
                # probe forward to a free id for the new thread.
                tid = t.ident or 0
                while tid in self._threads:
                    tid += 1
                state.ident = tid
                self._threads[tid] = (state.name, state.buffer)
        return state

    def span(self, name: str, **attrs: Any) -> _SpanCtx:
        """Open a span; use as a context manager (``with tracer.span(...)``)."""
        return _SpanCtx(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event (e.g. a shed, a spill, a stall)."""
        state = self._state()
        now = self._clock()
        state.buffer.append(Span(name, now, now, state.ident, state.name, state.depth, attrs))

    def add_span(self, name: str, start: float, end: float, **attrs: Any) -> None:
        """Record a span with explicit timestamps (synthetic / aggregated spans)."""
        state = self._state()
        state.buffer.append(Span(name, start, end, state.ident, state.name, state.depth, attrs))

    # -- inspection / export -------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of every recorded span across all threads, by start time."""
        with self._lock:
            buffers = [list(buf) for _, buf in self._threads.values()]
        out: List[Span] = []
        for buf in buffers:
            out.extend(buf)
        out.sort(key=lambda s: s.start)
        return out

    def thread_names(self) -> Dict[int, str]:
        with self._lock:
            return {ident: name for ident, (name, _) in self._threads.items()}

    def clear(self) -> None:
        """Drop every recorded span (buffers stay registered); reset the epoch."""
        with self._lock:
            for _, buf in self._threads.values():
                del buf[:]
        self.epoch = self._clock()

    def __len__(self) -> int:
        return len(self.spans())


# ---------------------------------------------------------------------------
# the module-level active tracer (the no-op fast path)
# ---------------------------------------------------------------------------

_active: Any = NULL_TRACER


def get_tracer():
    """The active tracer — :data:`NULL_TRACER` unless one was installed."""
    return _active


def set_tracer(tracer: Optional[Tracer]):
    """Install ``tracer`` as the process-wide active tracer.

    ``None`` (or a disabled tracer) restores the no-op fast path.  Returns
    the tracer actually installed.
    """
    global _active
    _active = tracer if (tracer is not None and tracer.enabled) else NULL_TRACER
    return _active


@contextmanager
def tracing(tracer: Optional[Tracer]) -> Iterator[Any]:
    """Scoped activation: install ``tracer``, restore the previous one on exit."""
    previous = _active
    installed = set_tracer(tracer)
    try:
        yield installed
    finally:
        set_tracer(previous if isinstance(previous, Tracer) else None)
