"""Trace exporters: Chrome trace-event JSON (Perfetto-loadable) + summaries.

Two consumers, one span stream:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``, complete ``"X"`` events
  plus ``"i"`` instants, timestamps in microseconds rebased to the tracer
  epoch).  Worker threads appear as named tracks via ``thread_name``
  metadata events, so a streamed matvec's chunk pipeline is visible as
  parallel lanes in Perfetto / ``chrome://tracing``.
* :func:`summary` — a flat dict (per-name rollup, top-N spans by total
  time, per-stage and per-level rollups, counter snapshot) attached to
  benchmark artifacts behind ``--trace`` and printed by
  ``python -m repro.obs summarize <trace.json>``.

``summary`` accepts a live :class:`~repro.obs.trace.Tracer`, a list of
:class:`~repro.obs.trace.Span`, or an already-exported Chrome trace dict,
so the CLI and the in-process paths share one implementation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from . import counters as _counters
from .trace import Span, Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "summary", "format_summary"]

#: Schema version of the summary dict (bump on key changes).
SUMMARY_SCHEMA_VERSION = 1


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> Dict[str, Any]:
    """Export a tracer's spans as a Chrome trace-event dict.

    Thread idents are remapped to small consecutive track ids (main thread
    first) and each track carries a ``thread_name`` metadata event, so the
    trace loads in Perfetto with readable lane names.  The process-wide
    counter snapshot rides along under ``otherData``.
    """
    spans = tracer.spans()
    names = tracer.thread_names()
    order = sorted(names, key=lambda ident: (names[ident] != "MainThread", names[ident], ident))
    track = {ident: i for i, ident in enumerate(order)}
    epoch = tracer.epoch

    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": process_name}}
    ]
    for ident in order:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": track[ident],
                "args": {"name": names[ident]},
            }
        )
    for span in spans:
        tid = track.get(span.thread_id, len(track))
        ts = (span.start - epoch) * 1e6
        if span.is_instant:
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": tid,
                    "ts": ts,
                    "cat": _category(span.name),
                    "args": span.attrs,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": ts,
                    "dur": span.duration * 1e6,
                    "cat": _category(span.name),
                    "args": span.attrs,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"counters": _counters.snapshot()},
    }


def write_chrome_trace(tracer: Tracer, path, process_name: str = "repro"):
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, process_name=process_name), fh)
    return path


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------

def _spans_from_chrome(data: Dict[str, Any]) -> List[Span]:
    """Rebuild :class:`Span` records from an exported Chrome trace dict."""
    spans: List[Span] = []
    for event in data.get("traceEvents", ()):
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        start = float(event.get("ts", 0.0)) * 1e-6
        dur = float(event.get("dur", 0.0)) * 1e-6 if ph == "X" else 0.0
        spans.append(
            Span(
                event.get("name", "?"),
                start,
                start + dur,
                int(event.get("tid", 0)),
                str(event.get("tid", 0)),
                0,
                dict(event.get("args") or {}),
            )
        )
    spans.sort(key=lambda s: s.start)
    return spans


def summary(
    source: Union[Tracer, Dict[str, Any], Sequence[Span]],
    top: int = 10,
    counter_snapshot: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Flat rollup of a span stream (see the module docstring).

    Keys: ``schema_version``, ``total_spans``, ``wall_seconds``,
    ``by_name`` (count / total_s / mean_s / max_s per span name),
    ``top`` (top-N names by total time), ``stages`` (``session.*`` spans →
    seconds), ``levels`` (``skeletonize.level`` spans → per-level seconds,
    node and entry counts) and ``counters``.
    """
    if isinstance(source, Tracer):
        spans = source.spans()
        if counter_snapshot is None:
            counter_snapshot = _counters.snapshot()
    elif isinstance(source, dict):
        spans = _spans_from_chrome(source)
        if counter_snapshot is None:
            counter_snapshot = dict((source.get("otherData") or {}).get("counters") or {})
    else:
        spans = list(source)
        if counter_snapshot is None:
            counter_snapshot = _counters.snapshot()

    by_name: Dict[str, Dict[str, float]] = {}
    stages: Dict[str, float] = {}
    levels: Dict[str, Dict[str, float]] = {}
    t_min = t_max = None
    for span in spans:
        stat = by_name.setdefault(span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        stat["count"] += 1
        stat["total_s"] += span.duration
        stat["max_s"] = max(stat["max_s"], span.duration)
        t_min = span.start if t_min is None else min(t_min, span.start)
        t_max = span.end if t_max is None else max(t_max, span.end)
        if span.name.startswith("session."):
            stage = span.name.split(".", 1)[1]
            stages[stage] = stages.get(stage, 0.0) + span.duration
        elif span.name == "skeletonize.level":
            key = str(span.attrs.get("level", "?"))
            roll = levels.setdefault(key, {"seconds": 0.0, "nodes": 0, "entries": 0})
            roll["seconds"] += span.duration
            roll["nodes"] += int(span.attrs.get("nodes", 0) or 0)
            roll["entries"] += int(span.attrs.get("entries", 0) or 0)
    for stat in by_name.values():
        stat["mean_s"] = stat["total_s"] / stat["count"] if stat["count"] else 0.0
    ranked = sorted(by_name.items(), key=lambda kv: kv[1]["total_s"], reverse=True)
    return {
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "total_spans": len(spans),
        "wall_seconds": (t_max - t_min) if spans else 0.0,
        "by_name": by_name,
        "top": [[name, stat["total_s"]] for name, stat in ranked[: max(top, 0)]],
        "stages": stages,
        "levels": levels,
        "counters": counter_snapshot,
    }


def format_summary(data: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`summary` dict (the CLI output)."""
    lines: List[str] = []
    lines.append(
        f"{data['total_spans']} spans over {data['wall_seconds'] * 1e3:.2f} ms"
    )
    if data["top"]:
        lines.append("")
        lines.append(f"{'span':<32} {'count':>7} {'total ms':>10} {'mean ms':>10} {'max ms':>10}")
        for name, _total in data["top"]:
            stat = data["by_name"][name]
            lines.append(
                f"{name:<32} {stat['count']:>7d} {stat['total_s'] * 1e3:>10.3f} "
                f"{stat['mean_s'] * 1e3:>10.3f} {stat['max_s'] * 1e3:>10.3f}"
            )
    if data["stages"]:
        lines.append("")
        lines.append("session stages:")
        for stage, seconds in data["stages"].items():
            lines.append(f"  {stage:<16} {seconds * 1e3:>10.3f} ms")
    if data["levels"]:
        lines.append("")
        lines.append("skeletonization levels:")
        for level in sorted(data["levels"], key=lambda k: (len(k), k)):
            roll = data["levels"][level]
            lines.append(
                f"  level {level:<4} {roll['seconds'] * 1e3:>10.3f} ms"
                f"  nodes={roll['nodes']}  entries={roll['entries']}"
            )
    nonzero = {k: v for k, v in (data.get("counters") or {}).items() if v}
    if nonzero:
        lines.append("")
        lines.append("counters:")
        for name in sorted(nonzero):
            lines.append(f"  {name:<28} {nonzero[name]:>14}")
    return "\n".join(lines)
