"""CLI for trace files: ``python -m repro.obs summarize <trace.json>``.

Prints the top-N spans by total time plus the per-stage and per-level
rollups of a Chrome trace-event file exported by
:func:`repro.obs.write_chrome_trace` (or attached to a benchmark artifact
behind ``--trace``).
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import format_summary, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="print the rollup of a Chrome trace JSON file")
    p_sum.add_argument("trace", help="path to a trace.json exported by repro.obs")
    p_sum.add_argument("--top", type=int, default=10, help="number of span names to rank")
    p_sum.add_argument("--json", action="store_true", help="emit the summary dict as JSON")
    args = parser.parse_args(argv)

    with open(args.trace) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "traceEvents" not in data:
        print(f"{args.trace}: not a Chrome trace-event file (missing 'traceEvents')", file=sys.stderr)
        return 1
    rollup = summary(data, top=args.top)
    if args.json:
        print(json.dumps(rollup, indent=2, sort_keys=True))
    else:
        print(format_summary(rollup))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
