"""ASKIT-like baseline (Table 4): a geometric, level-by-level, κ-driven FMM.

ASKIT (March, Xiao, Yu, Biros 2016) is the closest relative of GOFMM — it
introduced the neighbor-based pruning and importance sampling GOFMM builds
on — but it differs in exactly the ways Table 4 probes:

* it **requires point coordinates** (the tree and the neighbor search use
  the geometric ℓ2 distance; it cannot run on the graph matrices),
* the amount of direct (near-field) evaluation is decided solely by the
  **number of neighbors κ** — there is no ``budget`` knob to cap it,
* the interaction lists are **not symmetrized**, so the resulting
  approximation is generally non-symmetric,
* its traversals are level-by-level (relevant to the runtime study, not to
  accuracy).

The implementation drives the same core substrates as GOFMM (tree, ANN,
skeletonization) with those choices, so the accuracy/cost differences seen
in the benchmark isolate the algorithmic distinctions rather than
implementation noise — the same reasoning the paper applies when comparing
against its own ASKIT code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import DistanceMetric, GOFMMConfig
from ..core.compress import CompressionReport, compress
from ..core.hmatrix import CompressedMatrix
from ..errors import ConfigurationError
from ..matrices.base import SPDMatrix, as_spd_matrix

__all__ = ["ASKITResult", "compress_askit"]


@dataclass
class ASKITResult:
    """Compressed matrix plus the report, tagged with the ASKIT configuration."""

    compressed: CompressedMatrix
    report: CompressionReport
    compression_seconds: float

    def matvec(self, w: np.ndarray) -> np.ndarray:
        return self.compressed.matvec(w)


def compress_askit(
    matrix,
    coordinates: np.ndarray | None = None,
    leaf_size: int = 256,
    max_rank: int = 256,
    tolerance: float = 1e-5,
    neighbors: int = 32,
    seed: int = 0,
) -> ASKITResult:
    """Compress with ASKIT's choices: geometric distance, κ-driven near field, no symmetrization.

    Raises :class:`ConfigurationError` when neither ``coordinates`` nor
    ``matrix.coordinates`` exist — ASKIT cannot operate without points,
    which is precisely the case GOFMM was designed to handle.
    """
    matrix = as_spd_matrix(matrix)
    coords = coordinates if coordinates is not None else matrix.coordinates
    if coords is None:
        raise ConfigurationError("ASKIT requires point coordinates; this matrix has none")

    n = matrix.n
    num_leaves = max(1, int(np.ceil(n / leaf_size)))
    # κ neighbors can reach at most κ distinct leaves per leaf; expressing that
    # as a budget fraction reproduces "the amount of direct evaluation is
    # decided by κ" without a separate cap.
    budget = min(1.0, neighbors / num_leaves)

    config = GOFMMConfig(
        leaf_size=leaf_size,
        max_rank=max_rank,
        tolerance=tolerance,
        neighbors=neighbors,
        budget=budget,
        distance=DistanceMetric.GEOMETRIC,
        symmetrize_lists=False,
        seed=seed,
    )
    t0 = time.perf_counter()
    compressed, report = compress(matrix, config, coordinates=coords, return_report=True)
    seconds = time.perf_counter() - t0
    return ASKITResult(compressed=compressed, report=report, compression_seconds=seconds)
