"""Baseline hierarchical-compression codes the paper compares against (§4).

* :mod:`repro.baselines.hodlr` — HODLR (Ambikasaran & Darve): lexicographic
  ordering, off-diagonal blocks compressed per level with adaptive cross
  approximation, non-nested factors, O(N log N) matvec.
* :mod:`repro.baselines.hss` — a STRUMPACK-like HSS compressor: lexicographic
  ordering, nested interpolative decompositions with *uniform* row
  sampling (no neighbor information), O(N) matvec.
* :mod:`repro.baselines.askit` — an ASKIT-like geometric FMM: requires point
  coordinates, neighbor-driven near field sized by κ (not by a budget),
  non-symmetric interaction lists.
"""

from .hodlr import HODLRMatrix, compress_hodlr
from .hss import HSSMatrix, compress_hss_baseline
from .askit import compress_askit

__all__ = [
    "HODLRMatrix",
    "compress_hodlr",
    "HSSMatrix",
    "compress_hss_baseline",
    "compress_askit",
]
