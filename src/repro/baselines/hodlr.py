"""HODLR baseline (Ambikasaran & Darve 2013), as compared against in Table 3.

HODLR = Hierarchically Off-Diagonal Low-Rank:

* the index set is split recursively in half **in the input (lexicographic)
  order** — no permutation, which is the crucial difference from GOFMM the
  paper highlights,
* at every level, the two off-diagonal blocks coupling the sibling subtrees
  are approximated by a low-rank factorization computed with *adaptive
  cross approximation* (partial-pivoted LU crosses, touching O(s(p+n))
  entries per block),
* the factors are **not nested**, so the matvec costs O(N log N) per
  right-hand side (each level contributes O(N s) work),
* the diagonal blocks at the leaf level are stored densely.

Since ``K`` is symmetric, only the upper off-diagonal block of each sibling
pair is compressed; the lower one uses the transposed factors, so the
approximation is symmetric by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import CompressionError
from ..linalg.aca import ACAResult, adaptive_cross_approximation
from ..matrices.base import SPDMatrix, as_spd_matrix

__all__ = ["HODLRNode", "HODLRMatrix", "compress_hodlr"]


@dataclass
class HODLRNode:
    """One node of the HODLR partition (a contiguous index range [start, stop))."""

    start: int
    stop: int
    level: int
    left: Optional["HODLRNode"] = None
    right: Optional["HODLRNode"] = None
    # Low-rank coupling between the two children: K[left, right] ≈ u @ v.
    coupling: Optional[ACAResult] = None
    # Dense diagonal block (leaves only).
    dense: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class HODLRMatrix:
    """Compressed HODLR representation with an O(N log N) matvec."""

    n: int
    root: HODLRNode
    leaf_size: int
    max_rank: int
    tolerance: float
    compression_seconds: float = 0.0
    entry_evaluations: int = 0
    ranks: list[int] = field(default_factory=list)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def average_rank(self) -> float:
        return float(np.mean(self.ranks)) if self.ranks else 0.0

    def matvec(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.float64)
        was_vector = w.ndim == 1
        w2 = w.reshape(self.n, -1)
        out = np.zeros_like(w2)
        self._apply(self.root, w2, out)
        return out[:, 0] if was_vector else out

    def __matmul__(self, w: np.ndarray) -> np.ndarray:
        return self.matvec(w)

    def _apply(self, node: HODLRNode, w: np.ndarray, out: np.ndarray) -> None:
        if node.is_leaf:
            assert node.dense is not None
            out[node.start : node.stop] += node.dense @ w[node.start : node.stop]
            return
        assert node.left is not None and node.right is not None and node.coupling is not None
        left, right = node.left, node.right
        u, v = node.coupling.u, node.coupling.v
        if node.coupling.rank > 0:
            # Upper block: K[left, right] ≈ u v ; lower block is its transpose.
            out[left.start : left.stop] += u @ (v @ w[right.start : right.stop])
            out[right.start : right.stop] += v.T @ (u.T @ w[left.start : left.stop])
        self._apply(left, w, out)
        self._apply(right, w, out)

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n))
        self._fill(self.root, out)
        return out

    def _fill(self, node: HODLRNode, out: np.ndarray) -> None:
        if node.is_leaf:
            assert node.dense is not None
            out[node.start : node.stop, node.start : node.stop] = node.dense
            return
        assert node.left is not None and node.right is not None and node.coupling is not None
        left, right = node.left, node.right
        if node.coupling.rank > 0:
            block = node.coupling.reconstruct()
            out[left.start : left.stop, right.start : right.stop] = block
            out[right.start : right.stop, left.start : left.stop] = block.T
        self._fill(left, out)
        self._fill(right, out)

    def storage_entries(self) -> int:
        total = 0

        def visit(node: HODLRNode) -> None:
            nonlocal total
            if node.is_leaf:
                total += node.dense.size if node.dense is not None else 0
                return
            if node.coupling is not None:
                total += node.coupling.u.size + node.coupling.v.size
            visit(node.left)  # type: ignore[arg-type]
            visit(node.right)  # type: ignore[arg-type]

        visit(self.root)
        return total


def compress_hodlr(
    matrix,
    leaf_size: int = 256,
    max_rank: int = 256,
    tolerance: float = 1e-5,
    rng: np.random.Generator | None = None,
) -> HODLRMatrix:
    """Build a HODLR approximation of an SPD matrix in its input ordering."""
    matrix = as_spd_matrix(matrix)
    if leaf_size < 2:
        raise CompressionError("HODLR leaf size must be at least 2")
    rng = rng or np.random.default_rng(0)
    n = matrix.n
    start_evals = matrix.entry_evaluations
    ranks: list[int] = []
    t0 = time.perf_counter()

    def build(start: int, stop: int, level: int) -> HODLRNode:
        node = HODLRNode(start=start, stop=stop, level=level)
        size = stop - start
        if size <= leaf_size:
            idx = np.arange(start, stop, dtype=np.intp)
            node.dense = matrix.entries(idx, idx)
            return node
        mid = start + size // 2
        node.left = build(start, mid, level + 1)
        node.right = build(mid, stop, level + 1)

        rows = np.arange(start, mid, dtype=np.intp)
        cols = np.arange(mid, stop, dtype=np.intp)
        node.coupling = adaptive_cross_approximation(
            row_fn=lambda i: matrix.entries(rows[i : i + 1], cols)[0],
            col_fn=lambda j: matrix.entries(rows, cols[j : j + 1])[:, 0],
            shape=(rows.size, cols.size),
            max_rank=max_rank,
            tolerance=tolerance,
            rng=rng,
        )
        ranks.append(node.coupling.rank)
        return node

    root = build(0, n, 0)
    seconds = time.perf_counter() - t0
    return HODLRMatrix(
        n=n,
        root=root,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tolerance=tolerance,
        compression_seconds=seconds,
        entry_evaluations=matrix.entry_evaluations - start_evals,
        ranks=ranks,
    )
