"""STRUMPACK-like HSS baseline (Table 3).

STRUMPACK compresses a dense matrix into an HSS (hierarchically
semi-separable) form: like GOFMM's HSS mode the off-diagonal blocks are
nested low-rank, but

* the matrix is **not permuted** — the lexicographic (input) order is used,
  which is exactly why it struggles on matrices (like high-dimensional
  kernel matrices) whose input ordering scatters nearby points, and
* the skeletons are found from **uniformly sampled** rows (or a random
  sketch) rather than from neighbor-based importance sampling — without a
  distance there is nothing better to sample with.

The construction here mirrors GOFMM's nested-ID machinery but is entirely
self-contained so the baseline can be benchmarked and unit-tested on its
own: bottom-up ID skeletonization on contiguous index blocks, sibling-pair
coupling blocks, and an O(N) matvec with an upward/downward pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import CompressionError
from ..linalg.id import interpolative_decomposition
from ..matrices.base import SPDMatrix, as_spd_matrix

__all__ = ["HSSNode", "HSSMatrix", "compress_hss_baseline"]


@dataclass
class HSSNode:
    """One node of the HSS partition (contiguous range [start, stop))."""

    node_id: int
    start: int
    stop: int
    level: int
    parent: Optional["HSSNode"] = None
    left: Optional["HSSNode"] = None
    right: Optional["HSSNode"] = None
    skeleton: Optional[np.ndarray] = None   # global indices
    coeffs: Optional[np.ndarray] = None     # (rank, block width) interpolation matrix
    rank: int = 0
    dense: Optional[np.ndarray] = None      # leaf diagonal block
    coupling: Optional[np.ndarray] = None   # K[skel(self), skel(sibling)] stored on the left sibling

    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class HSSMatrix:
    """Compressed HSS representation (lexicographic ordering, nested factors)."""

    n: int
    nodes: list[HSSNode]
    root: HSSNode
    leaf_size: int
    max_rank: int
    tolerance: float
    compression_seconds: float = 0.0
    entry_evaluations: int = 0

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def ranks(self) -> list[int]:
        return [node.rank for node in self.nodes if not (node.parent is None)]

    @property
    def average_rank(self) -> float:
        ranks = self.ranks
        return float(np.mean(ranks)) if ranks else 0.0

    # -- matvec -----------------------------------------------------------
    def matvec(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.float64)
        was_vector = w.ndim == 1
        w2 = w.reshape(self.n, -1)
        out = np.zeros_like(w2)

        # Upward pass: skeleton weights.
        skel_w: dict[int, np.ndarray] = {}
        for node in self._postorder():
            if node.parent is None or node.coeffs is None:
                continue
            if node.is_leaf:
                skel_w[node.node_id] = node.coeffs @ w2[node.start : node.stop]
            else:
                assert node.left is not None and node.right is not None
                stacked = np.vstack([skel_w[node.left.node_id], skel_w[node.right.node_id]])
                skel_w[node.node_id] = node.coeffs @ stacked

        # Sibling couplings: each internal node couples its two children.
        skel_u: dict[int, np.ndarray] = {nid: np.zeros_like(sw) for nid, sw in skel_w.items()}
        for node in self.nodes:
            if node.is_leaf:
                continue
            assert node.left is not None and node.right is not None
            if node.coupling is None or node.left.rank == 0 or node.right.rank == 0:
                continue
            skel_u[node.left.node_id] += node.coupling @ skel_w[node.right.node_id]
            skel_u[node.right.node_id] += node.coupling.T @ skel_w[node.left.node_id]

        # Downward pass: push potentials to the output.
        for node in self._preorder():
            if node.parent is None or node.coeffs is None or node.rank == 0:
                continue
            contribution = node.coeffs.T @ skel_u[node.node_id]
            if node.is_leaf:
                out[node.start : node.stop] += contribution
            else:
                assert node.left is not None and node.right is not None
                split = node.left.rank
                if node.left.rank:
                    skel_u[node.left.node_id] += contribution[:split]
                if node.right.rank:
                    skel_u[node.right.node_id] += contribution[split:]

        # Dense leaf diagonal blocks.
        for node in self.nodes:
            if node.is_leaf and node.dense is not None:
                out[node.start : node.stop] += node.dense @ w2[node.start : node.stop]

        return out[:, 0] if was_vector else out

    def __matmul__(self, w: np.ndarray) -> np.ndarray:
        return self.matvec(w)

    # -- traversals ----------------------------------------------------------
    def _postorder(self):
        out: list[HSSNode] = []

        def visit(node: HSSNode) -> None:
            if not node.is_leaf:
                visit(node.left)   # type: ignore[arg-type]
                visit(node.right)  # type: ignore[arg-type]
            out.append(node)

        visit(self.root)
        return out

    def _preorder(self):
        out: list[HSSNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)   # type: ignore[arg-type]
        return out

    def storage_entries(self) -> int:
        total = 0
        for node in self.nodes:
            if node.dense is not None:
                total += node.dense.size
            if node.coeffs is not None:
                total += node.coeffs.size
            if node.coupling is not None:
                total += node.coupling.size
        return total


def compress_hss_baseline(
    matrix,
    leaf_size: int = 256,
    max_rank: int = 256,
    tolerance: float = 1e-5,
    sample_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> HSSMatrix:
    """STRUMPACK-like HSS compression with uniform row sampling, lexicographic order."""
    matrix = as_spd_matrix(matrix)
    rng = rng or np.random.default_rng(0)
    n = matrix.n
    if sample_size is None:
        sample_size = 2 * max_rank
    start_evals = matrix.entry_evaluations
    t0 = time.perf_counter()

    # Build the (complete, contiguous) binary partition.
    nodes: list[HSSNode] = []

    def build(start: int, stop: int, level: int, parent: Optional[HSSNode]) -> HSSNode:
        node = HSSNode(node_id=len(nodes), start=start, stop=stop, level=level, parent=parent)
        nodes.append(node)
        if stop - start > leaf_size:
            mid = start + (stop - start) // 2
            node.left = build(start, mid, level + 1, node)
            node.right = build(mid, stop, level + 1, node)
        return node

    root = build(0, n, 0, None)

    # Bottom-up skeletonization with uniform row sampling.
    def skeletonize(node: HSSNode) -> None:
        if not node.is_leaf:
            skeletonize(node.left)   # type: ignore[arg-type]
            skeletonize(node.right)  # type: ignore[arg-type]
        if node.parent is None:
            return
        if node.is_leaf:
            columns = np.arange(node.start, node.stop, dtype=np.intp)
            node.dense = matrix.entries(columns, columns)
        else:
            assert node.left is not None and node.right is not None
            columns = np.concatenate([node.left.skeleton, node.right.skeleton])  # type: ignore[arg-type]
        if columns.size == 0:
            node.skeleton = np.empty(0, dtype=np.intp)
            node.coeffs = np.zeros((0, 0))
            node.rank = 0
            return
        # Uniform sample of rows outside the node (no distance → no importance sampling).
        outside = np.concatenate(
            [np.arange(0, node.start, dtype=np.intp), np.arange(node.stop, n, dtype=np.intp)]
        )
        if outside.size > sample_size:
            outside = np.sort(rng.choice(outside, size=sample_size, replace=False))
        block = matrix.entries(outside, columns)
        decomposition = interpolative_decomposition(block, max_rank=max_rank, tolerance=tolerance, adaptive=True)
        node.skeleton = columns[decomposition.skeleton]
        node.coeffs = decomposition.coeffs
        node.rank = decomposition.rank

    skeletonize(root)

    # Couplings between sibling skeletons (stored once per internal node).
    for node in nodes:
        if node.is_leaf:
            continue
        assert node.left is not None and node.right is not None
        ls, rs = node.left.skeleton, node.right.skeleton
        if ls is None or rs is None or ls.size == 0 or rs.size == 0:
            node.coupling = None
            continue
        node.coupling = matrix.entries(ls, rs)

    # A single leaf (no parent) degenerates to the dense matrix.
    if root.is_leaf:
        idx = np.arange(n, dtype=np.intp)
        root.dense = matrix.entries(idx, idx)

    seconds = time.perf_counter() - t0
    return HSSMatrix(
        n=n,
        nodes=nodes,
        root=root,
        leaf_size=leaf_size,
        max_rank=max_rank,
        tolerance=tolerance,
        compression_seconds=seconds,
        entry_evaluations=matrix.entry_evaluations - start_evals,
    )
