"""Top-level user API of the GOFMM reproduction.

Typical one-shot usage::

    import numpy as np
    from repro import gofmm
    from repro.matrices import build_matrix

    K = build_matrix("K02", n=2048)
    config = gofmm.GOFMMConfig(leaf_size=128, max_rank=128, tolerance=1e-5, budget=0.05)
    Ktilde, report = gofmm.compress(K, config, return_report=True)

    w = np.random.default_rng(0).standard_normal((K.n, 4))
    u = Ktilde.matvec(w)                      # ≈ K @ w in O(N) / O(N log N)
    eps2 = Ktilde.relative_error()            # the paper's ε2 metric

``matvec`` accepts any engine registered in :mod:`repro.core.engines`
(built-ins: ``"planned"``, packed level-batched GEMMs over the cached
evaluation plan, and ``"reference"``, the per-node traversal of
Algorithm 2.7 kept as the correctness oracle).

The compression side is symmetric: ``config.compression_backend`` selects
a skeletonization backend registered in :mod:`repro.core.backends`
(built-ins: ``"batched"``, the default level-batched skeletonizer with
shape-bucketed stacked pivoted QRs, and ``"reference"``, the per-node
postorder loop of Algorithm 2.6).  Both backends share per-node sampling
streams and therefore select identical skeletons (up to floating-point
pivot ties on exactly rank-deficient blocks)::

    config = gofmm.GOFMMConfig(compression_backend="reference")  # oracle
    Ktilde = gofmm.compress(K, config)

The functions here are thin, backwards-compatible wrappers over the staged
session API of :mod:`repro.api` — for parameter sweeps, operator families
or SciPy solver interop, use :class:`repro.api.Session` directly::

    from repro.api import Session

    session = Session(K, config)
    operator = session.compress()                  # scipy LinearOperator
    op2 = session.recompress(tolerance=1e-3)       # reuses tree + ANN work

Both paths produce identical results (the pipeline stages and their
per-stage seeding are shared); the session simply caches stage artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from typing import Optional

import numpy as np

from .api.operator import CompressedOperator
from .api.session import Session
from .api.stages import changed_fields
from .config import DistanceMetric, GOFMMConfig, default_config, fmm_config, hss_config
from .core.accuracy import exact_relative_error, relative_error
from .core.compress import CompressionReport
from .core.hmatrix import CompressedMatrix
from .errors import EvaluationError

__all__ = [
    "GOFMMConfig",
    "DistanceMetric",
    "default_config",
    "hss_config",
    "fmm_config",
    "compress",
    "compress_operator",
    "compress_hss",
    "compress_fmm",
    "CompressedMatrix",
    "CompressedOperator",
    "CompressionReport",
    "Session",
    "RunResult",
    "run",
    "compare_fmm_hss",
]


def compress(
    matrix,
    config: Optional[GOFMMConfig] = None,
    coordinates: Optional[np.ndarray] = None,
    return_report: bool = False,
):
    """Compress an SPD matrix into a hierarchical (FMM/HSS) representation.

    Backwards-compatible wrapper over a one-shot :class:`repro.api.Session`;
    returns the :class:`CompressedMatrix` (optionally with the
    :class:`CompressionReport`).  For reusable stage artifacts across
    parameter changes, hold on to a session instead.
    """
    session = Session(matrix, config, coordinates=coordinates)
    operator = session.compress()
    if return_report:
        return operator.compressed, operator.report
    return operator.compressed


def compress_operator(
    matrix,
    config: Optional[GOFMMConfig] = None,
    coordinates: Optional[np.ndarray] = None,
) -> CompressedOperator:
    """One-shot compression returning the SciPy-compatible operator."""
    return Session(matrix, config, coordinates=coordinates).compress()


def compress_hss(matrix, **config_overrides) -> CompressedMatrix:
    """Compress with ``budget = 0`` (pure HSS / HODLR structure, S = 0 in Eq. (1))."""
    return compress(matrix, hss_config(**config_overrides))


def compress_fmm(matrix, budget: float = 0.03, **config_overrides) -> CompressedMatrix:
    """Compress with a nonzero direct-evaluation budget (the FMM variant)."""
    return compress(matrix, fmm_config(budget=budget, **config_overrides))


@dataclass
class RunResult:
    """One full compress + evaluate run, as reported in the paper's tables.

    ``compression_seconds`` and ``evaluation_seconds`` correspond to the
    "Comp" and "Eval" columns; ``epsilon2`` to the accuracy column; and
    ``average_rank`` to the average skeleton rank the text quotes.
    """

    compressed: CompressedMatrix
    report: CompressionReport
    compression_seconds: float
    evaluation_seconds: float
    epsilon2: float
    average_rank: float
    num_rhs: int
    engine: str = "planned"

    def summary(self) -> str:
        return (
            f"eps2={self.epsilon2:.2e}  comp={self.compression_seconds:.3f}s  "
            f"eval={self.evaluation_seconds:.3f}s  avg-rank={self.average_rank:.1f}"
        )


def _evaluate_run(
    compressed: CompressedMatrix,
    report: CompressionReport,
    compression_seconds: float,
    num_rhs: int,
    exact_error: bool,
    rng: np.random.Generator,
    engine: Optional[str],
) -> RunResult:
    """Shared evaluate + ε2 measurement behind :func:`run` / :func:`compare_fmm_hss`."""
    engine = engine or compressed.default_engine()

    w = rng.standard_normal((compressed.n, num_rhs))
    t1 = time.perf_counter()
    compressed.matvec(w, engine=engine)
    evaluation_seconds = time.perf_counter() - t1

    if exact_error:
        eps2 = exact_relative_error(compressed, compressed.matrix, num_rhs=min(num_rhs, 10), rng=rng, engine=engine)
    else:
        eps2 = relative_error(compressed, compressed.matrix, num_rhs=min(num_rhs, 10), rng=rng, engine=engine)

    return RunResult(
        compressed=compressed,
        report=report,
        compression_seconds=compression_seconds,
        evaluation_seconds=evaluation_seconds,
        epsilon2=eps2,
        average_rank=compressed.rank_summary()["mean"],
        num_rhs=num_rhs,
        engine=engine,
    )


def run(
    matrix,
    config: Optional[GOFMMConfig] = None,
    num_rhs: int = 16,
    exact_error: bool = False,
    rng: Optional[np.random.Generator] = None,
    engine: Optional[str] = None,
    session: Optional[Session] = None,
) -> RunResult:
    """Compress, evaluate ``num_rhs`` right-hand sides, and measure ε2.

    This is the unit of work behind every table/figure harness in
    ``benchmarks/``: it mirrors the paper's experiment workflow (compress,
    evaluate, report runtime and accuracy).  ``engine`` overrides the
    matvec engine (``"planned"`` / ``"reference"``); the planned engine's
    one-time plan construction is charged to evaluation time here.

    Passing ``session`` reuses that session's cached stage artifacts
    (``config`` is then applied via :meth:`Session.recompress`, and
    ``matrix`` must be ``None`` or the session's own matrix — the run is
    always measured against ``session.matrix``), so repeated ``run`` calls
    in a sweep pay only for the invalidated stages.
    """
    rng = rng or np.random.default_rng(0)
    config = config or (session.config if session is not None else GOFMMConfig())

    t0 = time.perf_counter()
    if session is None:
        session = Session(matrix, config)
        operator = session.compress()
    else:
        if matrix is not None and matrix is not session.matrix:
            raise EvaluationError(
                "run(session=...) evaluates the session's own matrix; pass matrix=None "
                "(or session.matrix), or use session.attach(matrix) for a different operator"
            )
        operator = session.recompress(**_config_changes(session.config, config))
    compression_seconds = time.perf_counter() - t0

    return _evaluate_run(
        operator.compressed, operator.report, compression_seconds, num_rhs, exact_error, rng, engine
    )


def _config_changes(old: GOFMMConfig, new: GOFMMConfig) -> dict:
    """Field-value changes turning ``old`` into ``new`` (for Session.recompress)."""
    return {name: getattr(new, name) for name in changed_fields(old, new)}


def compare_fmm_hss(
    matrix,
    budget: float = 0.03,
    num_rhs: int = 16,
    **config_overrides,
) -> dict[str, RunResult]:
    """Run the same matrix as HSS (budget 0) and FMM (given budget) — the Figure 6 experiment.

    Both variants share one session, so the FMM run reuses the HSS run's
    partition and ANN artifacts (only the interaction lists and the stages
    downstream differ between the two).
    """
    session = Session(matrix, hss_config(**config_overrides))
    rng = np.random.default_rng(0)

    t0 = time.perf_counter()
    hss_op = session.compress()
    hss_seconds = time.perf_counter() - t0
    hss = _evaluate_run(hss_op.compressed, hss_op.report, hss_seconds, num_rhs, False, rng, None)

    t0 = time.perf_counter()
    fmm_op = session.recompress(budget=budget)
    fmm_seconds = time.perf_counter() - t0
    fmm = _evaluate_run(fmm_op.compressed, fmm_op.report, fmm_seconds, num_rhs, False, np.random.default_rng(0), None)

    return {"hss": hss, "fmm": fmm}
