"""Top-level user API of the GOFMM reproduction.

Typical usage::

    import numpy as np
    from repro import gofmm
    from repro.matrices import build_matrix

    K = build_matrix("K02", n=2048)
    config = gofmm.GOFMMConfig(leaf_size=128, max_rank=128, tolerance=1e-5, budget=0.05)
    Ktilde, report = gofmm.compress(K, config, return_report=True)

    w = np.random.default_rng(0).standard_normal((K.n, 4))
    u = Ktilde.matvec(w)                      # ≈ K @ w in O(N) / O(N log N)
    eps2 = Ktilde.relative_error()            # the paper's ε2 metric

``matvec`` accepts ``engine="planned"`` (default: packed level-batched
GEMMs over the cached evaluation plan) or ``engine="reference"`` (the
per-node traversal of Algorithm 2.7, kept as the correctness oracle).

The heavy lifting lives in :mod:`repro.core`; this module re-exports the
pieces a downstream user needs, and adds small conveniences
(:func:`compress_hss`, :func:`compress_fmm`, :func:`compare_fmm_hss`).
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from typing import Optional

import numpy as np

from .config import DistanceMetric, GOFMMConfig, default_config, fmm_config, hss_config
from .core.accuracy import exact_relative_error, relative_error
from .core.compress import CompressionReport, compress
from .core.hmatrix import CompressedMatrix

__all__ = [
    "GOFMMConfig",
    "DistanceMetric",
    "default_config",
    "hss_config",
    "fmm_config",
    "compress",
    "compress_hss",
    "compress_fmm",
    "CompressedMatrix",
    "CompressionReport",
    "RunResult",
    "run",
    "compare_fmm_hss",
]


def compress_hss(matrix, **config_overrides) -> CompressedMatrix:
    """Compress with ``budget = 0`` (pure HSS / HODLR structure, S = 0 in Eq. (1))."""
    return compress(matrix, hss_config(**config_overrides))


def compress_fmm(matrix, budget: float = 0.03, **config_overrides) -> CompressedMatrix:
    """Compress with a nonzero direct-evaluation budget (the FMM variant)."""
    return compress(matrix, fmm_config(budget=budget, **config_overrides))


@dataclass
class RunResult:
    """One full compress + evaluate run, as reported in the paper's tables.

    ``compression_seconds`` and ``evaluation_seconds`` correspond to the
    "Comp" and "Eval" columns; ``epsilon2`` to the accuracy column; and
    ``average_rank`` to the average skeleton rank the text quotes.
    """

    compressed: CompressedMatrix
    report: CompressionReport
    compression_seconds: float
    evaluation_seconds: float
    epsilon2: float
    average_rank: float
    num_rhs: int
    engine: str = "planned"

    def summary(self) -> str:
        return (
            f"eps2={self.epsilon2:.2e}  comp={self.compression_seconds:.3f}s  "
            f"eval={self.evaluation_seconds:.3f}s  avg-rank={self.average_rank:.1f}"
        )


def run(
    matrix,
    config: Optional[GOFMMConfig] = None,
    num_rhs: int = 16,
    exact_error: bool = False,
    rng: Optional[np.random.Generator] = None,
    engine: Optional[str] = None,
) -> RunResult:
    """Compress, evaluate ``num_rhs`` right-hand sides, and measure ε2.

    This is the unit of work behind every table/figure harness in
    ``benchmarks/``: it mirrors the paper's experiment workflow (compress,
    evaluate, report runtime and accuracy).  ``engine`` overrides the
    matvec engine (``"planned"`` / ``"reference"``); the planned engine's
    one-time plan construction is charged to evaluation time here.
    """
    rng = rng or np.random.default_rng(0)
    config = config or GOFMMConfig()

    t0 = time.perf_counter()
    compressed, report = compress(matrix, config, return_report=True)
    compression_seconds = time.perf_counter() - t0
    engine = engine or compressed.default_engine()

    w = rng.standard_normal((compressed.n, num_rhs))
    t1 = time.perf_counter()
    compressed.matvec(w, engine=engine)
    evaluation_seconds = time.perf_counter() - t1

    if exact_error:
        eps2 = exact_relative_error(compressed, compressed.matrix, num_rhs=min(num_rhs, 10), rng=rng, engine=engine)
    else:
        eps2 = relative_error(compressed, compressed.matrix, num_rhs=min(num_rhs, 10), rng=rng, engine=engine)

    return RunResult(
        compressed=compressed,
        report=report,
        compression_seconds=compression_seconds,
        evaluation_seconds=evaluation_seconds,
        epsilon2=eps2,
        average_rank=compressed.rank_summary()["mean"],
        num_rhs=num_rhs,
        engine=engine,
    )


def compare_fmm_hss(
    matrix,
    budget: float = 0.03,
    num_rhs: int = 16,
    **config_overrides,
) -> dict[str, RunResult]:
    """Run the same matrix as HSS (budget 0) and FMM (given budget) — the Figure 6 experiment."""
    hss = run(matrix, hss_config(**config_overrides), num_rhs=num_rhs)
    fmm = run(matrix, fmm_config(budget=budget, **config_overrides), num_rhs=num_rhs)
    return {"hss": hss, "fmm": fmm}
