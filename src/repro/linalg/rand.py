"""Randomized global low-rank approximations.

These are the "set D and S to zero" competitors described in the paper's
related-work section: a single global low-rank factorization of the whole
matrix.  They serve three purposes in this reproduction:

* the STRUMPACK-like HSS baseline uses a randomized / uniform-sample ID to
  compress its off-diagonal blocks,
* the Nyström method is the classical global low-rank reference point for
  kernel matrices,
* the randomized range finder provides an independent accuracy yard-stick
  in tests (a hierarchical scheme at rank ``s`` should never be wildly worse
  than a global scheme at the same total storage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from .id import InterpolativeDecomposition, interpolative_decomposition

__all__ = [
    "LowRankFactorization",
    "randomized_range_finder",
    "randomized_svd",
    "randomized_id",
    "nystrom_approximation",
]


@dataclass(frozen=True)
class LowRankFactorization:
    """A factorization ``A ≈ left @ right`` with ``left: (m, s)``, ``right: (s, n)``."""

    left: np.ndarray
    right: np.ndarray

    @property
    def rank(self) -> int:
        return self.left.shape[1]

    def reconstruct(self) -> np.ndarray:
        return self.left @ self.right

    def matvec(self, w: np.ndarray) -> np.ndarray:
        return self.left @ (self.right @ w)


def randomized_range_finder(
    matrix: np.ndarray,
    rank: int,
    oversampling: int = 10,
    power_iterations: int = 1,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Return an orthonormal basis ``Q`` approximating the range of ``matrix``.

    Standard Halko–Martinsson–Tropp sketch: multiply by a Gaussian test
    matrix, optionally run power iterations for spectral-decay-poor inputs,
    and orthonormalize.
    """
    a = np.asarray(matrix, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    k = min(rank + oversampling, min(a.shape))
    omega = rng.standard_normal((a.shape[1], k))
    y = a @ omega
    for _ in range(power_iterations):
        y, _ = sla.qr(y, mode="economic", check_finite=False)
        y = a @ (a.T @ y)
    q, _ = sla.qr(y, mode="economic", check_finite=False)
    return q[:, : min(rank, q.shape[1])]


def randomized_svd(
    matrix: np.ndarray,
    rank: int,
    oversampling: int = 10,
    power_iterations: int = 1,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD ``A ≈ U diag(s) Vt`` computed through a randomized sketch."""
    a = np.asarray(matrix, dtype=np.float64)
    q = randomized_range_finder(a, rank, oversampling, power_iterations, rng)
    b = q.T @ a
    ub, s, vt = sla.svd(b, full_matrices=False, check_finite=False)
    u = q @ ub
    k = min(rank, s.size)
    return u[:, :k], s[:k], vt[:k, :]


def randomized_id(
    matrix: np.ndarray,
    rank: int,
    tolerance: float = 0.0,
    oversampling: int = 10,
    rng: np.random.Generator | None = None,
) -> InterpolativeDecomposition:
    """Column ID computed from a row sketch instead of the full matrix.

    This mimics STRUMPACK's randomized compression: instead of looking at
    every row of the tall block, compress ``Ω A`` (a small random projection
    of it) and read the column skeleton off the sketch.
    """
    a = np.asarray(matrix, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    p = min(a.shape[0], rank + oversampling)
    omega = rng.standard_normal((p, a.shape[0]))
    sketch = omega @ a
    return interpolative_decomposition(sketch, max_rank=rank, tolerance=tolerance, adaptive=tolerance > 0)


def nystrom_approximation(
    matrix: np.ndarray,
    landmarks: np.ndarray,
    shift: float = 1e-10,
) -> LowRankFactorization:
    """Nyström approximation of an SPD matrix from a set of landmark columns.

    ``A ≈ A[:, L] pinv(A[L, L]) A[L, :]``.  ``shift`` regularizes the
    landmark block before the pseudo-inverse, which matters when landmark
    columns are nearly dependent.
    """
    a = np.asarray(matrix, dtype=np.float64)
    landmarks = np.asarray(landmarks, dtype=np.intp)
    c = a[:, landmarks]
    w = a[np.ix_(landmarks, landmarks)]
    w_reg = w + shift * np.trace(w) / max(1, w.shape[0]) * np.eye(w.shape[0])
    # Factor through the symmetric square root so the approximation stays PSD.
    evals, evecs = sla.eigh(w_reg, check_finite=False)
    evals = np.clip(evals, a_min=np.finfo(np.float64).tiny, a_max=None)
    w_inv_half = evecs @ np.diag(1.0 / np.sqrt(evals)) @ evecs.T
    left = c @ w_inv_half
    return LowRankFactorization(left=left, right=left.T)
