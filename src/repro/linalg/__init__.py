"""Dense linear-algebra building blocks used by GOFMM and the baselines.

The public pieces are:

* :func:`repro.linalg.id.interpolative_decomposition` — column ID via a
  rank-revealing (pivoted) QR, the analogue of the paper's GEQP3 + TRSM
  skeletonization kernel,
* :func:`repro.linalg.aca.adaptive_cross_approximation` — partially pivoted
  ACA, used by the HODLR baseline,
* :mod:`repro.linalg.rand` — randomized range finder / randomized ID /
  Nyström global low-rank approximations,
* :mod:`repro.linalg.norms` — sampled norm estimators used by the accuracy
  metric ε2.
"""

from .id import InterpolativeDecomposition, interpolative_decomposition
from .aca import ACAResult, adaptive_cross_approximation
from .rand import nystrom_approximation, randomized_id, randomized_range_finder
from .norms import relative_frobenius_error, sampled_spectral_norm

__all__ = [
    "InterpolativeDecomposition",
    "interpolative_decomposition",
    "ACAResult",
    "adaptive_cross_approximation",
    "randomized_range_finder",
    "randomized_id",
    "nystrom_approximation",
    "sampled_spectral_norm",
    "relative_frobenius_error",
]
