"""Interpolative decomposition (ID) via rank-revealing pivoted QR.

GOFMM's skeletonization (§2.2, Eq. (7)) approximates a sampled off-diagonal
block ``A = K_{I'β}`` of shape ``(p, n)`` by a column ID

    A ≈ A[:, skeleton] @ P,

where ``skeleton`` is a subset of ``s`` column indices (the *skeletons* β̃)
and ``P`` is an ``s × n`` interpolation matrix whose restriction to the
skeleton columns is the identity.  The skeletons are the first ``s`` pivots
of a pivoted QR factorization (LAPACK GEQP3); ``P`` is obtained from a
triangular solve with the leading ``s × s`` block of ``R`` (TRSM).

The rank ``s`` is chosen adaptively: the diagonal of ``R`` is a cheap proxy
for the singular values of ``A``, and we truncate at the first diagonal
entry falling below ``tolerance`` relative to the largest one (matching the
paper's ``σ_{s+1}(K_{I'β}) < τ`` criterion on the sampled block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

__all__ = ["InterpolativeDecomposition", "interpolative_decomposition", "id_reconstruction"]


@dataclass(frozen=True)
class InterpolativeDecomposition:
    """Result of a column interpolative decomposition ``A ≈ A[:, skeleton] @ coeffs``.

    Attributes
    ----------
    skeleton:
        integer array of ``rank`` column indices into the original matrix.
    coeffs:
        ``(rank, n)`` interpolation matrix ``P``.  ``P[:, skeleton]`` is (up
        to round-off) the identity.
    rank:
        the selected rank ``s``.
    diag_r:
        absolute values of the diagonal of the pivoted-QR ``R`` factor —
        useful as singular-value estimates for diagnostics.
    """

    skeleton: np.ndarray
    coeffs: np.ndarray
    rank: int
    diag_r: np.ndarray

    def reconstruct(self, columns: np.ndarray) -> np.ndarray:
        """Reconstruct ``A`` from its skeleton columns: ``columns @ coeffs``."""
        return np.asarray(columns) @ self.coeffs


def _select_rank(diag_r: np.ndarray, tolerance: float, max_rank: int, relative: bool) -> int:
    """Pick the adaptive rank from |diag(R)| of a pivoted QR.

    Keeps pivots while ``|r_kk|`` stays above ``tolerance`` (relative to
    ``|r_00|`` when ``relative`` is true), capped at ``max_rank``.  At least
    one pivot is always kept when the matrix is nonzero.
    """
    if diag_r.size == 0:
        return 0
    scale = diag_r[0] if relative else 1.0
    if scale <= 0.0 or not np.isfinite(scale):
        return 0
    keep = np.nonzero(diag_r >= tolerance * scale)[0]
    if keep.size == 0:
        rank = 1 if diag_r[0] > 0.0 else 0
    else:
        rank = int(keep[-1]) + 1
    return int(min(rank, max_rank, diag_r.size))


def interpolative_decomposition(
    matrix: np.ndarray,
    max_rank: int,
    tolerance: float = 0.0,
    adaptive: bool = True,
    relative: bool = True,
) -> InterpolativeDecomposition:
    """Compute a column ID of ``matrix`` with at most ``max_rank`` skeleton columns.

    Parameters
    ----------
    matrix:
        ``(p, n)`` dense array.  Rows are the sampled "observer" indices
        ``I'``, columns are the indices of the node being skeletonized.
    max_rank:
        hard cap ``s`` on the number of skeleton columns.
    tolerance:
        adaptive truncation threshold ``τ`` applied to the diagonal of the
        pivoted-QR ``R`` factor.  Ignored when ``adaptive`` is false.
    adaptive:
        when false, keep exactly ``min(max_rank, n, p)`` columns regardless
        of ``tolerance``.
    relative:
        interpret ``tolerance`` relative to the largest pivot magnitude
        (the paper's behaviour) instead of as an absolute threshold.

    Returns
    -------
    InterpolativeDecomposition
        skeleton indices, interpolation coefficients, selected rank, and the
        pivot magnitudes.
    """
    a = np.ascontiguousarray(matrix, dtype=np.float64)
    p, n = a.shape
    hard_cap = int(min(max_rank, n, p)) if p > 0 else 0
    if n == 0 or p == 0 or hard_cap == 0:
        return InterpolativeDecomposition(
            skeleton=np.empty(0, dtype=np.intp),
            coeffs=np.zeros((0, n)),
            rank=0,
            diag_r=np.empty(0),
        )

    # Rank-revealing QR with column pivoting (GEQP3).  mode="r" avoids
    # forming Q, which we never need.
    r, piv = sla.qr(a, mode="r", pivoting=True, check_finite=False)
    k = min(r.shape[0], n)
    diag_r = np.abs(np.diag(r[:k, :k]))

    if adaptive:
        rank = _select_rank(diag_r, tolerance, hard_cap, relative)
    else:
        rank = hard_cap
    if rank == 0:
        # Zero matrix: represent it with an empty skeleton and zero coeffs.
        return InterpolativeDecomposition(
            skeleton=np.empty(0, dtype=np.intp),
            coeffs=np.zeros((0, n)),
            rank=0,
            diag_r=diag_r,
        )

    r11 = r[:rank, :rank]
    r12 = r[:rank, rank:n]
    # Guard against an exactly singular leading block (can happen when the
    # adaptive rule keeps a pivot that is numerically zero).
    if rank > 0 and np.abs(r11[-1, -1]) <= np.finfo(np.float64).tiny:
        nz = np.nonzero(np.abs(np.diag(r11)) > np.finfo(np.float64).tiny)[0]
        rank = int(nz[-1]) + 1 if nz.size else 0
        if rank == 0:
            return InterpolativeDecomposition(
                skeleton=np.empty(0, dtype=np.intp),
                coeffs=np.zeros((0, n)),
                rank=0,
                diag_r=diag_r,
            )
        r11 = r[:rank, :rank]
        r12 = r[:rank, rank:n]

    if n > rank:
        t = sla.solve_triangular(r11, r12, lower=False, check_finite=False)
    else:
        t = np.zeros((rank, 0))

    # Assemble P in the *original* (unpivoted) column order: the skeleton
    # columns get identity coefficients, the rest get T.
    coeffs = np.zeros((rank, n))
    coeffs[:, piv[:rank]] = np.eye(rank)
    if n > rank:
        coeffs[:, piv[rank:n]] = t

    return InterpolativeDecomposition(
        skeleton=np.asarray(piv[:rank], dtype=np.intp),
        coeffs=coeffs,
        rank=int(rank),
        diag_r=diag_r,
    )


def id_reconstruction(matrix: np.ndarray, decomposition: InterpolativeDecomposition) -> np.ndarray:
    """Reconstruct the full block from an ID of it (for testing/diagnostics)."""
    if decomposition.rank == 0:
        return np.zeros_like(np.asarray(matrix, dtype=np.float64))
    cols = np.asarray(matrix, dtype=np.float64)[:, decomposition.skeleton]
    return cols @ decomposition.coeffs
