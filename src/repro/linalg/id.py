"""Interpolative decomposition (ID) via rank-revealing pivoted QR.

GOFMM's skeletonization (§2.2, Eq. (7)) approximates a sampled off-diagonal
block ``A = K_{I'β}`` of shape ``(p, n)`` by a column ID

    A ≈ A[:, skeleton] @ P,

where ``skeleton`` is a subset of ``s`` column indices (the *skeletons* β̃)
and ``P`` is an ``s × n`` interpolation matrix whose restriction to the
skeleton columns is the identity.  The skeletons are the first ``s`` pivots
of a pivoted QR factorization (LAPACK GEQP3); ``P`` is obtained from a
triangular solve with the leading ``s × s`` block of ``R`` (TRSM).

The rank ``s`` is chosen adaptively: the diagonal of ``R`` is a cheap proxy
for the singular values of ``A``, and we truncate at the first diagonal
entry falling below ``tolerance`` relative to the largest one (matching the
paper's ``σ_{s+1}(K_{I'β}) < τ`` criterion on the sampled block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

__all__ = [
    "InterpolativeDecomposition",
    "interpolative_decomposition",
    "batched_interpolative_decomposition",
    "id_reconstruction",
]


@dataclass(frozen=True)
class InterpolativeDecomposition:
    """Result of a column interpolative decomposition ``A ≈ A[:, skeleton] @ coeffs``.

    Attributes
    ----------
    skeleton:
        integer array of ``rank`` column indices into the original matrix.
    coeffs:
        ``(rank, n)`` interpolation matrix ``P``.  ``P[:, skeleton]`` is (up
        to round-off) the identity.
    rank:
        the selected rank ``s``.
    diag_r:
        absolute values of the diagonal of the pivoted-QR ``R`` factor —
        useful as singular-value estimates for diagnostics.
    """

    skeleton: np.ndarray
    coeffs: np.ndarray
    rank: int
    diag_r: np.ndarray

    def reconstruct(self, columns: np.ndarray) -> np.ndarray:
        """Reconstruct ``A`` from its skeleton columns: ``columns @ coeffs``."""
        return np.asarray(columns) @ self.coeffs


def _select_rank(diag_r: np.ndarray, tolerance: float, max_rank: int, relative: bool) -> int:
    """Pick the adaptive rank from |diag(R)| of a pivoted QR.

    Keeps pivots while ``|r_kk|`` stays above ``tolerance`` (relative to
    ``|r_00|`` when ``relative`` is true), capped at ``max_rank``.  At least
    one pivot is always kept when the matrix is nonzero.
    """
    if diag_r.size == 0:
        return 0
    scale = diag_r[0] if relative else 1.0
    if scale <= 0.0 or not np.isfinite(scale):
        return 0
    keep = np.nonzero(diag_r >= tolerance * scale)[0]
    if keep.size == 0:
        rank = 1 if diag_r[0] > 0.0 else 0
    else:
        rank = int(keep[-1]) + 1
    return int(min(rank, max_rank, diag_r.size))


def interpolative_decomposition(
    matrix: np.ndarray,
    max_rank: int,
    tolerance: float = 0.0,
    adaptive: bool = True,
    relative: bool = True,
) -> InterpolativeDecomposition:
    """Compute a column ID of ``matrix`` with at most ``max_rank`` skeleton columns.

    Parameters
    ----------
    matrix:
        ``(p, n)`` dense array.  Rows are the sampled "observer" indices
        ``I'``, columns are the indices of the node being skeletonized.
    max_rank:
        hard cap ``s`` on the number of skeleton columns.
    tolerance:
        adaptive truncation threshold ``τ`` applied to the diagonal of the
        pivoted-QR ``R`` factor.  Ignored when ``adaptive`` is false.
    adaptive:
        when false, keep exactly ``min(max_rank, n, p)`` columns regardless
        of ``tolerance``.
    relative:
        interpret ``tolerance`` relative to the largest pivot magnitude
        (the paper's behaviour) instead of as an absolute threshold.

    Returns
    -------
    InterpolativeDecomposition
        skeleton indices, interpolation coefficients, selected rank, and the
        pivot magnitudes.
    """
    a = np.ascontiguousarray(matrix, dtype=np.float64)
    p, n = a.shape
    hard_cap = int(min(max_rank, n, p)) if p > 0 else 0
    if n == 0 or p == 0 or hard_cap == 0:
        return InterpolativeDecomposition(
            skeleton=np.empty(0, dtype=np.intp),
            coeffs=np.zeros((0, n)),
            rank=0,
            diag_r=np.empty(0),
        )

    # Rank-revealing QR with column pivoting (GEQP3).  mode="r" avoids
    # forming Q, which we never need.
    r, piv = sla.qr(a, mode="r", pivoting=True, check_finite=False)
    k = min(r.shape[0], n)
    diag_r = np.abs(np.diag(r[:k, :k]))

    if adaptive:
        rank = _select_rank(diag_r, tolerance, hard_cap, relative)
    else:
        rank = hard_cap
    if rank == 0:
        # Zero matrix: represent it with an empty skeleton and zero coeffs.
        return InterpolativeDecomposition(
            skeleton=np.empty(0, dtype=np.intp),
            coeffs=np.zeros((0, n)),
            rank=0,
            diag_r=diag_r,
        )

    r11 = r[:rank, :rank]
    r12 = r[:rank, rank:n]
    # Guard against an exactly singular leading block (can happen when the
    # adaptive rule keeps a pivot that is numerically zero).
    if rank > 0 and np.abs(r11[-1, -1]) <= np.finfo(np.float64).tiny:
        nz = np.nonzero(np.abs(np.diag(r11)) > np.finfo(np.float64).tiny)[0]
        rank = int(nz[-1]) + 1 if nz.size else 0
        if rank == 0:
            return InterpolativeDecomposition(
                skeleton=np.empty(0, dtype=np.intp),
                coeffs=np.zeros((0, n)),
                rank=0,
                diag_r=diag_r,
            )
        r11 = r[:rank, :rank]
        r12 = r[:rank, rank:n]

    if n > rank:
        t = sla.solve_triangular(r11, r12, lower=False, check_finite=False)
    else:
        t = np.zeros((rank, 0))

    # Assemble P in the *original* (unpivoted) column order: the skeleton
    # columns get identity coefficients, the rest get T.
    coeffs = np.zeros((rank, n))
    coeffs[:, piv[:rank]] = np.eye(rank)
    if n > rank:
        coeffs[:, piv[rank:n]] = t

    return InterpolativeDecomposition(
        skeleton=np.asarray(piv[:rank], dtype=np.intp),
        coeffs=coeffs,
        rank=int(rank),
        diag_r=diag_r,
    )


#: Dispatch threshold of :func:`batched_interpolative_decomposition`: the
#: stacked sweep engages for blocks of at most this many elements
#: (~16 KiB).  Small blocks are where per-block LAPACK calls are
#: overhead-bound; larger blocks stay cache-resident inside one GEQP3
#: call but would be re-streamed from memory on every step of a stacked
#: sweep, so they go block by block.
_STACK_MAX_BLOCK_ELEMENTS = 2048


def stacked_sweep_applies(num_blocks: int, rows: int, cols: int) -> bool:
    """Whether :func:`batched_interpolative_decomposition` would use the
    stacked sweep for a bucket of ``num_blocks`` blocks of shape
    ``(rows, cols)``.  Callers can skip building the padded stack when the
    bucket would be dispatched block by block anyway.

    The decision depends only on the block *shape*, never on the bucket
    size: the stacked sweep and GEQP3 resolve floating-point pivot ties
    differently, so a count-based dispatch would let the grouping (how a
    tree level is sliced across processes) leak into the results.  A
    shape-only rule is what keeps every slicing of the same nodes —
    whole level, subtree slice, single node — bitwise identical, the
    invariant the process-sharded compression backend is built on.
    """
    return rows * cols <= _STACK_MAX_BLOCK_ELEMENTS


def _batched_cpqr(
    at: np.ndarray,
    piv: np.ndarray,
    diag: np.ndarray,
    cols_true: np.ndarray,
    steps: int,
    tolerance: float,
    adaptive: bool,
    relative: bool,
) -> int:
    """In-place batched column-pivoted QR on transposed blocks.

    ``at`` has shape ``(g, k, p)`` — every block stored **transposed**, so
    that an original column is one contiguous row and a column swap is a
    single fancy-indexed row swap.  On return ``at[i, c, j]`` holds the
    pivoted ``R`` factor entry ``R[j, c]`` (for ``c >= j``), ``piv`` the
    column pivots, and ``diag`` the pivot magnitudes; the return value is
    the number of steps performed (early-stopped once every block's
    trailing pivot falls below its adaptive threshold).

    Pivots come from downdated partial squared column norms with the
    GEQP3 cancellation safeguard: ``vn2`` remembers each column's squared
    norm at its last exact evaluation, and once the downdated ``vn``
    falls below ``sqrt(eps) * vn2`` the downdate has lost its significant
    digits and the column is re-measured from the (fully updated)
    trailing matrix.  Columns at or beyond ``cols_true[i]`` are zero
    padding: they are masked out of pivot selection until every real
    column of block ``i`` is consumed, so padding can never enter a
    skeleton.
    """
    g, k, p = at.shape
    batch = np.arange(g)
    padded = bool(np.any(cols_true < k))
    real = piv < cols_true[:, None]
    # Squared partial norms: the downdate is then one subtraction, and the
    # LAPACK reliability test ``temp * (vn1/vn2)^2 <= tol3z`` becomes the
    # direct comparison ``vn <= tol3z * vn2``.
    vn = np.einsum("gkp,gkp->gk", at, at)
    vn2 = vn.copy()
    tol3z = np.sqrt(np.finfo(np.float64).eps)
    stop_thresh: np.ndarray | None = None
    j_col = np.empty((g, 2), dtype=np.intp)
    done = 0

    for j in range(steps):
        # -- pivot from downdated squared norms (padded columns masked) -----
        scored = np.where(real[:, j:], vn[:, j:], -1.0) if padded else vn[:, j:]
        col = j + np.argmax(scored, axis=1)
        # one fancy assignment swaps rows j <-> col of every block
        j_col[:, 0] = j
        j_col[:, 1] = col
        col_j = j_col[:, ::-1]
        at[batch[:, None], j_col] = at[batch[:, None], col_j]
        piv[batch[:, None], j_col] = piv[batch[:, None], col_j]
        if padded:
            real[batch[:, None], j_col] = real[batch[:, None], col_j]
        vn[batch[:, None], j_col] = vn[batch[:, None], col_j]
        vn2[batch[:, None], j_col] = vn2[batch[:, None], col_j]

        # -- Householder reflector (LARFG conventions, v0 = 1) --------------
        x = at[:, j, j:]
        xnorm = np.sqrt(np.einsum("gp,gp->g", x, x))
        diag[:, j] = xnorm
        x0 = x[:, 0].copy()
        beta = -np.copysign(xnorm, x0)
        live = xnorm > 0.0
        denom = np.where(live, x0 - beta, 1.0)
        tau = np.where(live, (beta - x0) / np.where(beta != 0.0, beta, 1.0), 0.0)
        v = x / denom[:, None]
        v[:, 0] = 1.0
        at[:, j, j] = np.where(live, beta, x0)
        at[:, j, j + 1 :] = 0.0

        # -- apply the reflection to the trailing columns -------------------
        if j + 1 < k:
            trail = at[:, j + 1 :, j:]
            w = np.matmul(trail, v[:, :, None])[..., 0]
            trail -= (tau[:, None] * w)[:, :, None] * v[:, None, :]

            # Downdate the partial squared norms with the now-final row j of
            # R (= the first entry of every updated trailing row); columns
            # whose downdate cancels catastrophically are re-measured from
            # the (fully updated) trailing matrix.
            vt = vn[:, j + 1 :]
            vt2 = vn2[:, j + 1 :]
            vt -= np.square(at[:, j + 1 :, j])
            unreliable = (vt <= tol3z * vt2) & (vt2 > 0.0)
            np.clip(vt, 0.0, None, out=vt)
            if np.any(unreliable):
                cols = j + 1 + np.unique(np.nonzero(unreliable)[1])
                sub = at[:, cols, j + 1 :]
                fresh = np.einsum("gcp,gcp->gc", sub, sub)
                flagged = unreliable[:, cols - (j + 1)]
                vt[unreliable] = fresh[flagged]
                vt2[unreliable] = fresh[flagged]

        done = j + 1
        if adaptive:
            if stop_thresh is None:
                stop_thresh = tolerance * (diag[:, 0] if relative else np.ones(g))
                # Zero blocks (first pivot 0 → rank 0, threshold 0) count as
                # converged from the start, or one such block would keep the
                # whole bucket sweeping to the step cap.
                converged_at_start = diag[:, 0] <= 0.0
            # diag(R) of a pivoted QR is non-increasing, so the check can
            # run every few steps: extra steps past the stopping point only
            # append below-threshold diag entries, which the per-block rank
            # selection ignores.
            if (j & 3) == 3 and np.all(converged_at_start | (diag[:, j] < stop_thresh)):
                break
    return done


def _empty_id(n: int, diag_r: np.ndarray | None = None) -> InterpolativeDecomposition:
    return InterpolativeDecomposition(
        skeleton=np.empty(0, dtype=np.intp),
        coeffs=np.zeros((0, n)),
        rank=0,
        diag_r=diag_r if diag_r is not None else np.empty(0),
    )


def batched_interpolative_decomposition(
    stack: np.ndarray,
    max_rank: int,
    tolerance: float = 0.0,
    adaptive: bool = True,
    relative: bool = True,
    row_counts: np.ndarray | None = None,
    col_counts: np.ndarray | None = None,
) -> list[InterpolativeDecomposition]:
    """Column IDs of a stack of same-shape (possibly zero-padded) blocks.

    This is the batched entry point behind the ``"batched"`` compression
    backend: ``stack`` is a ``(g, P, K)`` array holding ``g`` sampled
    off-diagonal blocks, each padded with zero rows/columns up to the
    bucket shape ``(P, K)``.  ``row_counts`` / ``col_counts`` give each
    block's true (unpadded) shape; padding never affects the result —
    zero rows contribute nothing to column norms or reflections, and zero
    columns are excluded from pivoting, so block ``i`` receives exactly
    the decomposition :func:`interpolative_decomposition` would produce
    on its unpadded ``(row_counts[i], col_counts[i])`` block, up to
    floating-point summation order.  (On *exactly* rank-deficient blocks
    the two implementations may break the resulting pivot ties
    differently; both decompositions remain equally accurate.)

    The factorization is a batched Businger–Golub pivoted QR over the
    transposed stack: pivots come from downdated partial column norms
    with the GEQP3 cancellation safeguard, every per-step operation is
    one stacked array call instead of ``g`` interpreter-bound LAPACK
    calls, and the sweep stops early once every block's trailing pivot
    falls below its adaptive threshold — at most ``min(max_rank, P, K)``
    steps instead of the full ``min(P, K)`` a per-block GEQP3 performs.
    The interpolation coefficients come from one stacked triangular
    solve (``numpy.linalg.solve`` on the batched, identity-padded
    ``R11``).

    Stacking pays exactly where per-block LAPACK calls are
    overhead-bound: many small blocks.  Large blocks stay cache-resident
    inside a per-block GEQP3 but would be re-streamed from memory on
    every step of a stacked sweep, so buckets of large blocks (or
    near-singleton buckets) are dispatched to
    :func:`interpolative_decomposition` block by block instead — same
    results either way.
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ValueError(f"stack must be a (g, P, K) array, got shape {stack.shape}")
    g, p, k = stack.shape
    rows_true = (
        np.full(g, p, dtype=np.intp) if row_counts is None else np.asarray(row_counts, dtype=np.intp)
    )
    cols_true = (
        np.full(g, k, dtype=np.intp) if col_counts is None else np.asarray(col_counts, dtype=np.intp)
    )
    hard_caps = np.minimum(max_rank, np.minimum(rows_true, cols_true))
    steps = int(min(max_rank, p, k))
    if g == 0:
        return []
    if steps <= 0 or p == 0 or k == 0:
        return [_empty_id(int(n)) for n in cols_true]

    if not stacked_sweep_applies(g, p, k):
        return [
            interpolative_decomposition(
                stack[i, : rows_true[i], : cols_true[i]],
                max_rank=max_rank,
                tolerance=tolerance,
                adaptive=adaptive,
                relative=relative,
            )
            for i in range(g)
        ]

    at = np.ascontiguousarray(stack.transpose(0, 2, 1))
    piv = np.tile(np.arange(k), (g, 1))
    diag = np.zeros((g, steps))
    done = _batched_cpqr(at, piv, diag, cols_true, steps, tolerance, adaptive, relative)
    a = at.transpose(0, 2, 1)  # R view: a[i, j, c] = R[j, c] for c >= j
    diag = diag[:, :done]
    tiny = np.finfo(np.float64).tiny

    ranks = np.empty(g, dtype=np.intp)
    for i in range(g):
        if adaptive:
            rank = _select_rank(diag[i], tolerance, int(hard_caps[i]), relative)
        else:
            rank = int(min(hard_caps[i], done))
        if rank > 0 and np.abs(a[i, rank - 1, rank - 1]) <= tiny:
            nz = np.nonzero(np.abs(np.diagonal(a[i, :rank, :rank])) > tiny)[0]
            rank = int(nz[-1]) + 1 if nz.size else 0
        ranks[i] = rank

    # One stacked triangular solve for every block's interpolation matrix:
    # R11 is embedded into an (rmax, rmax) identity so np.linalg.solve can
    # run batched; rows at or beyond each block's rank solve the identity.
    rmax = int(ranks.max()) if g else 0
    if rmax > 0:
        r11 = np.broadcast_to(np.eye(rmax), (g, rmax, rmax)).copy()
        rhs = np.zeros((g, rmax, k))
        for i in range(g):
            r = int(ranks[i])
            if r > 0:
                r11[i, :r, :r] = a[i, :r, :r]
                r11[i, :r, r:] = 0.0
                rhs[i, :r, :] = a[i, :r, :]
        sol = np.linalg.solve(r11, rhs)

    out: list[InterpolativeDecomposition] = []
    for i in range(g):
        r = int(ranks[i])
        n_i = int(cols_true[i])
        if r == 0:
            out.append(_empty_id(n_i, diag[i]))
            continue
        skeleton = piv[i, :r]
        coeffs = np.zeros((r, n_i))
        coeffs[np.arange(r), skeleton] = 1.0
        rest = piv[i, r:]
        real = rest < n_i  # drop padded columns from the interpolation matrix
        if np.any(real):
            coeffs[:, rest[real]] = sol[i, :r, r:][:, real]
        out.append(
            InterpolativeDecomposition(
                skeleton=np.asarray(skeleton, dtype=np.intp),
                coeffs=coeffs,
                rank=r,
                diag_r=diag[i].copy(),
            )
        )
    return out


def id_reconstruction(matrix: np.ndarray, decomposition: InterpolativeDecomposition) -> np.ndarray:
    """Reconstruct the full block from an ID of it (for testing/diagnostics)."""
    if decomposition.rank == 0:
        return np.zeros_like(np.asarray(matrix, dtype=np.float64))
    cols = np.asarray(matrix, dtype=np.float64)[:, decomposition.skeleton]
    return cols @ decomposition.coeffs
