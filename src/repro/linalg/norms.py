"""Norm and error estimators.

The paper measures accuracy with the relative error

    ε2 = ||K̃ w − K w||_F / ||K w||_F,        w ∈ R^{N×r},

and, because computing ``K w`` exactly costs ``O(r N²)``, estimates it by
sampling 100 rows of ``K`` (§3).  The helpers here implement both the exact
and the sampled version, plus a power-method spectral-norm estimate used in
diagnostics and tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "relative_frobenius_error",
    "sampled_relative_error",
    "sampled_spectral_norm",
    "power_method_norm",
]


def relative_frobenius_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``||approx − exact||_F / ||exact||_F`` with a safe zero-denominator fallback."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    denom = float(np.linalg.norm(exact))
    if denom == 0.0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(approx - exact) / denom)


def sampled_relative_error(
    approx_product: np.ndarray,
    row_fn: Callable[[np.ndarray], np.ndarray],
    weights: np.ndarray,
    num_samples: int = 100,
    rng: np.random.Generator | None = None,
) -> float:
    """Sampled ε2: compare ``num_samples`` rows of ``K w`` against the approximation.

    Parameters
    ----------
    approx_product:
        the full approximate product ``K̃ w`` of shape ``(N, r)``.
    row_fn:
        callback mapping an index array ``I`` to the exact rows ``K[I, :]``.
    weights:
        the multiplied matrix ``w`` of shape ``(N, r)``.
    num_samples:
        how many rows to sample (paper: 100).
    """
    approx_product = np.atleast_2d(np.asarray(approx_product, dtype=np.float64))
    weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    if approx_product.ndim == 2 and approx_product.shape[0] == 1 and weights.shape[0] > 1:
        approx_product = approx_product.T
    if weights.shape[0] == 1 and approx_product.shape[0] > 1:
        weights = weights.T
    n = approx_product.shape[0]
    rng = rng or np.random.default_rng(0)
    num_samples = min(num_samples, n)
    rows = np.sort(rng.choice(n, size=num_samples, replace=False))
    exact_rows = np.asarray(row_fn(rows), dtype=np.float64) @ weights
    return relative_frobenius_error(approx_product[rows, :], exact_rows)


def power_method_norm(
    matvec: Callable[[np.ndarray], np.ndarray],
    n: int,
    iterations: int = 20,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate the spectral norm of a symmetric operator by power iteration."""
    rng = rng or np.random.default_rng(0)
    x = rng.standard_normal(n)
    x /= np.linalg.norm(x)
    estimate = 0.0
    for _ in range(iterations):
        y = np.asarray(matvec(x), dtype=np.float64).reshape(n)
        norm_y = float(np.linalg.norm(y))
        if norm_y == 0.0:
            return 0.0
        estimate = norm_y
        x = y / norm_y
    return estimate


def sampled_spectral_norm(matrix: np.ndarray, iterations: int = 20, rng: np.random.Generator | None = None) -> float:
    """Power-method spectral norm of an explicit (symmetric) matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return power_method_norm(lambda x: matrix @ x, matrix.shape[0], iterations=iterations, rng=rng)
