"""Adaptive cross approximation (ACA) with partial pivoting.

HODLR (Ambikasaran & Darve, 2013) constructs its off-diagonal low-rank
blocks with ACA, a greedy partially pivoted LU that touches only ``O(s(p+n))``
entries of a ``p × n`` block to build a rank-``s`` approximation

    A ≈ U @ V,    U ∈ R^{p×s},  V ∈ R^{s×n}.

The block is accessed through row/column callbacks so the baseline can work
from the same entry-evaluation interface as GOFMM (it never needs the whole
block unless the rank approaches ``min(p, n)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ACAResult", "adaptive_cross_approximation", "aca_from_dense"]


@dataclass(frozen=True)
class ACAResult:
    """Low-rank factors ``A ≈ u @ v`` produced by ACA.

    ``rows_sampled`` / ``cols_sampled`` record which crosses were evaluated,
    which is what makes the method's cost ``O(s (p + n))`` entry evaluations.
    """

    u: np.ndarray
    v: np.ndarray
    rank: int
    rows_sampled: np.ndarray
    cols_sampled: np.ndarray

    def reconstruct(self) -> np.ndarray:
        if self.rank == 0:
            return np.zeros((self.u.shape[0], self.v.shape[1]))
        return self.u @ self.v


def adaptive_cross_approximation(
    row_fn: Callable[[int], np.ndarray],
    col_fn: Callable[[int], np.ndarray],
    shape: tuple[int, int],
    max_rank: int,
    tolerance: float = 1e-8,
    rng: np.random.Generator | None = None,
) -> ACAResult:
    """Greedy partially pivoted ACA of an implicitly defined ``p × n`` block.

    Parameters
    ----------
    row_fn / col_fn:
        callbacks returning row ``i`` (length ``n``) / column ``j`` (length
        ``p``) of the block.
    shape:
        ``(p, n)`` block dimensions.
    max_rank:
        maximum number of crosses.
    tolerance:
        stop when the Frobenius norm of the newest cross falls below
        ``tolerance`` times the running estimate of ``||A||_F``.
    rng:
        generator used to pick the starting row (defaults to row 0).

    Notes
    -----
    This is the standard partial-pivoting variant: at each step the pivot
    column is the largest-magnitude entry of the current residual row, and
    the next pivot row is the largest-magnitude entry of the residual pivot
    column.  Degenerate (all-zero) residual rows are skipped by falling back
    to an unused random row.
    """
    p, n = shape
    if p == 0 or n == 0 or max_rank == 0:
        return ACAResult(np.zeros((p, 0)), np.zeros((0, n)), 0, np.empty(0, np.intp), np.empty(0, np.intp))

    rng = rng or np.random.default_rng(0)
    max_rank = int(min(max_rank, p, n))

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    used_rows: list[int] = []
    used_cols: list[int] = []
    norm_est_sq = 0.0

    next_row = 0
    available_rows = np.ones(p, dtype=bool)

    for _ in range(max_rank):
        # Residual row = original row minus contribution of existing crosses.
        row = np.asarray(row_fn(next_row), dtype=np.float64).copy()
        for u_k, v_k in zip(us, vs):
            row -= u_k[next_row] * v_k
        available_rows[next_row] = False
        used_rows.append(next_row)

        if used_cols:
            masked = row.copy()
            masked[np.asarray(used_cols)] = 0.0
        else:
            masked = row
        pivot_col = int(np.argmax(np.abs(masked)))
        pivot_val = masked[pivot_col]

        if abs(pivot_val) <= np.finfo(np.float64).tiny:
            # Row is (numerically) fully captured; try a fresh random row.
            candidates = np.nonzero(available_rows)[0]
            if candidates.size == 0:
                break
            next_row = int(rng.choice(candidates))
            continue

        col = np.asarray(col_fn(pivot_col), dtype=np.float64).copy()
        for u_k, v_k in zip(us, vs):
            col -= v_k[pivot_col] * u_k
        used_cols.append(pivot_col)

        u_new = col / pivot_val
        v_new = row
        us.append(u_new)
        vs.append(v_new)

        cross_norm_sq = float(np.dot(u_new, u_new) * np.dot(v_new, v_new))
        norm_est_sq += cross_norm_sq
        for u_k, v_k in zip(us[:-1], vs[:-1]):
            norm_est_sq += 2.0 * float(np.dot(u_k, u_new) * np.dot(v_k, v_new))
        norm_est_sq = max(norm_est_sq, cross_norm_sq)

        if cross_norm_sq <= (tolerance ** 2) * norm_est_sq:
            break

        # Next pivot row: largest residual entry of the new column among
        # rows not yet used.
        masked_col = np.abs(u_new).copy()
        masked_col[~available_rows] = -np.inf
        next_row = int(np.argmax(masked_col))
        if not np.isfinite(masked_col[next_row]):
            break

    if not us:
        return ACAResult(np.zeros((p, 0)), np.zeros((0, n)), 0, np.empty(0, np.intp), np.empty(0, np.intp))

    u = np.column_stack(us)
    v = np.vstack(vs)
    return ACAResult(
        u=u,
        v=v,
        rank=u.shape[1],
        rows_sampled=np.asarray(used_rows, dtype=np.intp),
        cols_sampled=np.asarray(used_cols, dtype=np.intp),
    )


def aca_from_dense(
    block: np.ndarray,
    max_rank: int,
    tolerance: float = 1e-8,
    rng: np.random.Generator | None = None,
) -> ACAResult:
    """Convenience wrapper running ACA on an explicit dense block."""
    block = np.asarray(block, dtype=np.float64)
    return adaptive_cross_approximation(
        row_fn=lambda i: block[i, :],
        col_fn=lambda j: block[:, j],
        shape=block.shape,
        max_rank=max_rank,
        tolerance=tolerance,
        rng=rng,
    )
