"""Small plain-text reporting helpers shared by the examples and benchmarks.

The paper reports its results as tables (time, GFLOPS, ε2) and log-log
scaling plots.  Matplotlib is not assumed to be available, so the harnesses
render ASCII tables and simple text "plots" (value columns per series) that
can be diffed / inspected in a terminal and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_scaling"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    rows = [[_fmt(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    """One named series as aligned (x, y) pairs — the text analogue of one plot curve."""
    pairs = ", ".join(f"{_fmt(x)}:{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_scaling(xs: Sequence[float], ys: Sequence[float]) -> str:
    """Empirical scaling exponent between consecutive points (slope on log-log axes).

    Used to verify the O(N²) / O(N log N) / O(N) claims of Figure 1: the
    printed exponents should hover around 2, ~1.1, and 1 respectively.
    """
    import math

    slopes = []
    for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
        if x0 <= 0 or x1 <= 0 or y0 <= 0 or y1 <= 0:
            slopes.append(float("nan"))
            continue
        slopes.append(math.log(y1 / y0) / math.log(x1 / x0))
    return "slopes: " + ", ".join(f"{s:.2f}" for s in slopes)
