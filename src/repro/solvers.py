"""Iterative solvers built on top of the compressed matvec.

The paper notes that the usual end goal of an H-matrix approximation is a
factorization / solver for ``K x = b`` (its future work).  This module
provides the piece that is well defined for the FMM-style representation
GOFMM produces: Krylov solvers whose matrix products use the compressed
operator, optionally preconditioned with the block-Jacobi preconditioner
that falls out of the compression for free (the dense leaf diagonal blocks
are already cached by the ``Kba`` task).

* :func:`conjugate_gradient` — (blocked) CG for ``(A + shift·I) X = B``
  given any matvec callable (dense, compressed, or matrix-free); a block of
  right-hand sides runs per-column recurrences over shared wide matvecs,
* :class:`BlockJacobiPreconditioner` — Cholesky factors of the leaf diagonal
  blocks of a :class:`repro.core.hmatrix.CompressedMatrix`,
* :func:`solve` — convenience wrapper: compressed operator + optional
  block-Jacobi preconditioning + (P)CG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.linalg as sla

from .core.hmatrix import CompressedMatrix
from .errors import EvaluationError

__all__ = ["CGResult", "conjugate_gradient", "BlockJacobiPreconditioner", "solve"]


@dataclass
class CGResult:
    """Outcome of a (preconditioned, possibly blocked) conjugate-gradient solve.

    ``solution`` has the shape of the input ``rhs`` (``(n,)`` or ``(n, k)``).
    For a multi-RHS solve, ``residual_norm`` / ``converged`` summarize the
    worst column (max norm / all converged); ``column_residual_norms`` and
    ``column_converged`` carry the per-column outcome.  ``residual_history``
    records the max residual norm across columns per iteration.
    """

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float]
    column_residual_norms: Optional[np.ndarray] = None
    column_converged: Optional[np.ndarray] = None


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    shift: float = 0.0,
    tolerance: float = 1e-8,
    max_iterations: int = 500,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
) -> CGResult:
    """Preconditioned (blocked) CG for ``(A + shift·I) X = B`` with ``A`` SPD.

    ``rhs`` may be a single vector ``(n,)`` or a block of ``k`` right-hand
    sides ``(n, k)``.  In the blocked case every iteration applies one wide
    product ``A @ P`` for all still-active columns at once — exactly the
    shape the planned engine's level-batched GEMMs are fastest at — while
    the CG recurrences (``alpha``, ``beta``) run independently per column;
    converged or broken-down columns are dropped from the active block and
    the iteration continues until all columns finish or ``max_iterations``.

    ``matvec`` only needs to implement products with ``A``; the shift is
    applied here so callers can regularize without touching the compressed
    representation.  ``preconditioner`` must accept the shape it is given
    (the :class:`BlockJacobiPreconditioner` handles both).  Convergence is
    declared per column when the true (unpreconditioned) residual norm drops
    below ``tolerance · ||b||``.
    """
    b_in = np.asarray(rhs, dtype=np.float64)
    if b_in.ndim not in (1, 2):
        raise EvaluationError(
            f"conjugate_gradient expects a vector (n,) or a block (n, k) of right-hand sides, "
            f"got shape {b_in.shape}"
        )
    single = b_in.ndim == 1
    b = b_in[:, None] if single else b_in
    n, k = b.shape

    def apply(x: np.ndarray) -> np.ndarray:
        """(A + shift·I) @ x for any column width (single path stays 1-D)."""
        out = np.asarray(matvec(x[:, 0] if single else x), dtype=np.float64)
        return out.reshape(x.shape) + shift * x

    def precondition(r: np.ndarray) -> np.ndarray:
        if preconditioner is None:
            return r
        out = np.asarray(preconditioner(r[:, 0] if single else r), dtype=np.float64)
        return out.reshape(r.shape)

    if x0 is None:
        x = np.zeros((n, k))
    else:
        x = np.asarray(x0, dtype=np.float64).reshape(n, k).copy()
    r = b - apply(x)
    z = precondition(r)
    p = z.copy()
    rz = np.einsum("ij,ij->j", r, z)
    b_norms = np.linalg.norm(b, axis=0)
    b_norms[b_norms == 0.0] = 1.0

    res_norms = np.linalg.norm(r, axis=0)
    history = [float(res_norms.max())]
    converged_cols = res_norms <= tolerance * b_norms
    # Converged / broken-down columns are dropped from the active index set:
    # the wide matvec and preconditioner then run only on the columns still
    # iterating, so a hard column does not keep paying for finished ones.
    active = np.flatnonzero(~converged_cols)
    iterations = 0
    while active.size and iterations < max_iterations:
        pa = p[:, active]
        ap = apply(pa)
        denom = np.einsum("ij,ij->j", pa, ap)
        # Numerical loss of positive definiteness (heavy compression error):
        # freeze the affected columns rather than diverge; the caller sees
        # converged=False for them.
        ok = denom > 0.0
        if not ok.all():
            active, pa, ap, denom = active[ok], pa[:, ok], ap[:, ok], denom[ok]
            if not active.size:
                break
        alpha = rz[active] / denom
        x[:, active] += alpha * pa
        r[:, active] -= alpha * ap
        iterations += 1
        res_norms[active] = np.linalg.norm(r[:, active], axis=0)
        history.append(float(res_norms[active].max()))
        newly = res_norms[active] <= tolerance * b_norms[active]
        converged_cols[active[newly]] = True
        active = active[~newly]
        if not active.size:
            break
        za = precondition(r[:, active])
        rz_new = np.einsum("ij,ij->j", r[:, active], za)
        # Loss of positive definiteness in the (preconditioned) operator —
        # typically a sign that the compression error exceeds the shift.
        good = (rz_new > 0.0) & np.isfinite(rz_new)
        if not good.all():
            active, za, rz_new = active[good], za[:, good], rz_new[good]
            if not active.size:
                break
        beta = rz_new / rz[active]
        rz[active] = rz_new
        p[:, active] = za + beta * p[:, active]

    final_norms = res_norms
    solution = x[:, 0] if single else x
    return CGResult(
        solution=solution,
        iterations=iterations,
        residual_norm=float(final_norms.max()),
        converged=bool(np.all(converged_cols)),
        residual_history=history,
        column_residual_norms=None if single else final_norms,
        column_converged=None if single else converged_cols.copy(),
    )


class BlockJacobiPreconditioner:
    """Block-Jacobi preconditioner from the leaf diagonal blocks of a compression.

    The compression already stores (or can lazily evaluate) every dense leaf
    block ``K_{ββ}``; their Cholesky factors define the preconditioner
    ``M⁻¹ = blockdiag(K_{ββ})⁻¹`` — the standard cheap preconditioner for
    kernel systems, obtained here with no extra entry evaluations.

    ``shift`` must match the shift passed to the solver so the preconditioner
    approximates the actual system matrix ``K + shift·I``.
    """

    def __init__(self, compressed: CompressedMatrix, shift: float = 0.0) -> None:
        self.n = compressed.n
        self._factors: list[tuple[np.ndarray, np.ndarray]] = []
        for leaf in compressed.tree.leaves:
            block = compressed.near_blocks.get((leaf.node_id, leaf.node_id))
            if block is None:
                raise EvaluationError(
                    f"leaf {leaf.node_id} has no cached or computable diagonal block; "
                    "compress with cache_near_blocks=True or attach the source matrix"
                )
            shifted = block + shift * np.eye(block.shape[0])
            try:
                factor = sla.cho_factor(shifted, check_finite=False)
            except sla.LinAlgError as exc:
                raise EvaluationError(
                    f"leaf {leaf.node_id} diagonal block is not positive definite "
                    f"(shift={shift}): {exc}"
                ) from exc
            self._factors.append((leaf.indices, factor))

    def __call__(self, residual: np.ndarray) -> np.ndarray:
        residual = np.asarray(residual, dtype=np.float64)
        out = np.empty_like(residual)
        for indices, factor in self._factors:
            out[indices] = sla.cho_solve(factor, residual[indices], check_finite=False)
        return out


def solve(
    compressed: CompressedMatrix,
    rhs: np.ndarray,
    shift: float = 0.0,
    tolerance: float = 1e-8,
    max_iterations: int = 500,
    use_preconditioner: bool = True,
    engine: Optional[str] = None,
) -> CGResult:
    """Solve ``(K̃ + shift·I) x = b`` with (block-Jacobi preconditioned) CG.

    ``rhs`` may be a vector ``(n,)`` or a block ``(n, k)``; the blocked
    solver evaluates each Krylov product for all right-hand sides as one
    wide matvec, which the planned engine executes as level-batched GEMMs.
    ``engine`` selects the matvec engine for the Krylov iterations; the
    default (planned) builds the evaluation plan once and amortizes it over
    every CG iteration.
    """
    preconditioner = BlockJacobiPreconditioner(compressed, shift=shift) if use_preconditioner else None
    return conjugate_gradient(
        matvec=lambda v: compressed.matvec(v, engine=engine),
        rhs=rhs,
        shift=shift,
        tolerance=tolerance,
        max_iterations=max_iterations,
        preconditioner=preconditioner,
    )
