"""Iterative solvers built on top of the compressed matvec.

The paper notes that the usual end goal of an H-matrix approximation is a
factorization / solver for ``K x = b`` (its future work).  This module
provides the piece that is well defined for the FMM-style representation
GOFMM produces: Krylov solvers whose matrix products use the compressed
operator, optionally preconditioned with the block-Jacobi preconditioner
that falls out of the compression for free (the dense leaf diagonal blocks
are already cached by the ``Kba`` task).

* :func:`conjugate_gradient` — CG for ``(A + shift·I) x = b`` given any
  matvec callable (dense, compressed, or matrix-free),
* :class:`BlockJacobiPreconditioner` — Cholesky factors of the leaf diagonal
  blocks of a :class:`repro.core.hmatrix.CompressedMatrix`,
* :func:`solve` — convenience wrapper: compressed operator + optional
  block-Jacobi preconditioning + (P)CG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.linalg as sla

from .core.hmatrix import CompressedMatrix
from .errors import EvaluationError

__all__ = ["CGResult", "conjugate_gradient", "BlockJacobiPreconditioner", "solve"]


@dataclass
class CGResult:
    """Outcome of a (preconditioned) conjugate-gradient solve."""

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float]


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    shift: float = 0.0,
    tolerance: float = 1e-8,
    max_iterations: int = 500,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
) -> CGResult:
    """Preconditioned CG for ``(A + shift·I) x = b`` with ``A`` SPD.

    ``matvec`` only needs to implement products with ``A``; the shift is
    applied here so callers can regularize without touching the compressed
    representation.  Convergence is declared when the true (unpreconditioned)
    residual norm drops below ``tolerance · ||b||``.
    """
    b = np.asarray(rhs, dtype=np.float64)
    if b.ndim != 1:
        raise EvaluationError("conjugate_gradient expects a single right-hand side vector")
    n = b.shape[0]

    def apply(x: np.ndarray) -> np.ndarray:
        return np.asarray(matvec(x), dtype=np.float64).reshape(n) + shift * x

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - apply(x)
    z = preconditioner(r) if preconditioner is not None else r
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b)) or 1.0

    history = [float(np.linalg.norm(r))]
    converged = history[-1] <= tolerance * b_norm
    iterations = 0
    while not converged and iterations < max_iterations:
        ap = apply(p)
        denom = float(p @ ap)
        if denom <= 0.0:
            # Numerical loss of positive definiteness (heavy compression error):
            # stop rather than diverge; the caller sees converged=False.
            break
        alpha = rz / denom
        x += alpha * p
        r -= alpha * ap
        iterations += 1
        res_norm = float(np.linalg.norm(r))
        history.append(res_norm)
        if res_norm <= tolerance * b_norm:
            converged = True
            break
        z = preconditioner(r) if preconditioner is not None else r
        rz_new = float(r @ z)
        if rz_new <= 0.0 or not np.isfinite(rz_new):
            # Loss of positive definiteness in the (preconditioned) operator —
            # typically a sign that the compression error exceeds the shift.
            break
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    return CGResult(
        solution=x,
        iterations=iterations,
        residual_norm=history[-1],
        converged=converged,
        residual_history=history,
    )


class BlockJacobiPreconditioner:
    """Block-Jacobi preconditioner from the leaf diagonal blocks of a compression.

    The compression already stores (or can lazily evaluate) every dense leaf
    block ``K_{ββ}``; their Cholesky factors define the preconditioner
    ``M⁻¹ = blockdiag(K_{ββ})⁻¹`` — the standard cheap preconditioner for
    kernel systems, obtained here with no extra entry evaluations.

    ``shift`` must match the shift passed to the solver so the preconditioner
    approximates the actual system matrix ``K + shift·I``.
    """

    def __init__(self, compressed: CompressedMatrix, shift: float = 0.0) -> None:
        self.n = compressed.n
        self._factors: list[tuple[np.ndarray, np.ndarray]] = []
        for leaf in compressed.tree.leaves:
            block = compressed.near_blocks.get((leaf.node_id, leaf.node_id))
            if block is None:
                raise EvaluationError(
                    f"leaf {leaf.node_id} has no cached or computable diagonal block; "
                    "compress with cache_near_blocks=True or attach the source matrix"
                )
            shifted = block + shift * np.eye(block.shape[0])
            try:
                factor = sla.cho_factor(shifted, check_finite=False)
            except sla.LinAlgError as exc:
                raise EvaluationError(
                    f"leaf {leaf.node_id} diagonal block is not positive definite "
                    f"(shift={shift}): {exc}"
                ) from exc
            self._factors.append((leaf.indices, factor))

    def __call__(self, residual: np.ndarray) -> np.ndarray:
        residual = np.asarray(residual, dtype=np.float64)
        out = np.empty_like(residual)
        for indices, factor in self._factors:
            out[indices] = sla.cho_solve(factor, residual[indices], check_finite=False)
        return out


def solve(
    compressed: CompressedMatrix,
    rhs: np.ndarray,
    shift: float = 0.0,
    tolerance: float = 1e-8,
    max_iterations: int = 500,
    use_preconditioner: bool = True,
    engine: Optional[str] = None,
) -> CGResult:
    """Solve ``(K̃ + shift·I) x = b`` with (block-Jacobi preconditioned) CG.

    ``engine`` selects the matvec engine for the Krylov iterations; the
    default (planned) builds the evaluation plan once and amortizes it over
    every CG iteration.
    """
    preconditioner = BlockJacobiPreconditioner(compressed, shift=shift) if use_preconditioner else None
    return conjugate_gradient(
        matvec=lambda v: compressed.matvec(v, engine=engine),
        rhs=rhs,
        shift=shift,
        tolerance=tolerance,
        max_iterations=max_iterations,
        preconditioner=preconditioner,
    )
