"""GOFMM reproduction: geometry-oblivious FMM compression of dense SPD matrices.

Reimplementation (in numpy/scipy) of

    Yu, Levitt, Reiz, Biros.  "Geometry-Oblivious FMM for Compressing Dense
    SPD Matrices."  SC'17.

Public entry points:

* :mod:`repro.api` — staged compression sessions (``Session`` with cached,
  individually invalidated pipeline artifacts; ``CompressedOperator``, a
  ``scipy.sparse.linalg.LinearOperator``),
* :mod:`repro.gofmm` — the classic one-shot API (``compress``,
  ``GOFMMConfig``, ``CompressedMatrix``, ``run``), now thin wrappers over
  sessions,
* :mod:`repro.matrices` — the SPD test-matrix registry (K02–K18, G01–G05,
  COVTYPE/HIGGS/MNIST-like kernel matrices) and the entry-evaluation
  interface,
* :mod:`repro.baselines` — HODLR, STRUMPACK-like HSS and ASKIT-like
  baselines used in the paper's comparisons,
* :mod:`repro.runtime` — task DAG, schedulers (level-by-level, omp-task,
  dynamic HEFT), machine models and a threaded executor, reproducing the
  scheduling and architecture studies.
"""

from .api.operator import CompressedOperator
from .api.session import Session
from .config import DistanceMetric, GOFMMConfig, default_config, fmm_config, hss_config
from .core.compress import CompressionReport
from .core.hmatrix import CompressedMatrix
from .gofmm import compress, compress_operator
from .errors import (
    CompressionError,
    ConfigurationError,
    EvaluationError,
    GOFMMError,
    MatrixDefinitionError,
    NotSPDError,
    RankDeficiencyError,
    SchedulingError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GOFMMConfig",
    "DistanceMetric",
    "default_config",
    "hss_config",
    "fmm_config",
    "compress",
    "compress_operator",
    "Session",
    "CompressedOperator",
    "CompressedMatrix",
    "CompressionReport",
    "GOFMMError",
    "ConfigurationError",
    "NotSPDError",
    "CompressionError",
    "RankDeficiencyError",
    "EvaluationError",
    "SchedulingError",
    "MatrixDefinitionError",
]
