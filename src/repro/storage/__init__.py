"""Out-of-core operator storage.

Three pillars let operators larger than RAM compress, cold-start and
serve (the ROADMAP's "out-of-core end-to-end" thread):

* :mod:`repro.storage.store` — the mmap artifact format v2: a directory
  of per-array ``.npy`` files behind a fingerprinted ``manifest.json``,
  opened read-only with ``np.load(..., mmap_mode="r")`` so coefficients,
  interaction lists and cached blocks page in on demand.
* :mod:`repro.storage.panels` — :class:`PanelSource` / :class:`PanelSink`
  adapters that stream RHS weights and outputs through the evaluation as
  bounded column panels instead of full ``(n, r)`` arrays.
* :mod:`repro.storage.spill` — :class:`SpillArena`, the bounded
  temp-file arena the streamed engine spills oversized chunk buffers to
  instead of over-allocating anonymous memory.
"""

from .panels import (
    ArrayPanelSink,
    ArrayPanelSource,
    MmapPanelSink,
    MmapPanelSource,
    PanelSink,
    PanelSource,
    as_panel_sink,
    as_panel_source,
)
from .spill import SpillArena
from .store import (
    MANIFEST_NAME,
    STORE_SCHEMA_VERSION,
    OperatorStore,
    StoredBlockProvider,
    is_disk_backed,
    read_array_dir,
    write_array_dir,
)

__all__ = [
    "PanelSource",
    "PanelSink",
    "ArrayPanelSource",
    "ArrayPanelSink",
    "MmapPanelSource",
    "MmapPanelSink",
    "as_panel_source",
    "as_panel_sink",
    "SpillArena",
    "MANIFEST_NAME",
    "STORE_SCHEMA_VERSION",
    "OperatorStore",
    "StoredBlockProvider",
    "is_disk_backed",
    "read_array_dir",
    "write_array_dir",
]
