"""Disk-backed spill arena for streaming workspace buffers.

When a :class:`~repro.core.streaming.StreamingPlan` discovers at plan time
that its cycling chunk buffers cannot fit inside the configured workspace
budget (a single interaction block larger than one buffer's share of
``streaming_chunk_bytes``), it allocates those buffers from a
:class:`SpillArena` instead of refusing or silently over-allocating
anonymous memory.

Arena buffers are plain ``np.memmap`` arrays over files in a private
temporary directory, so the hot loop reads and writes them exactly like
heap arrays while the OS is free to page cold regions out.  The arena
adds the bookkeeping the kernel cannot do for us:

* **LRU pinning** — callers :meth:`~SpillArena.pin` a buffer for the
  duration of a materialize/execute pair and :meth:`~SpillArena.unpin`
  it afterwards.  Whenever the bytes accounted as resident exceed the
  arena budget, unpinned buffers are flushed and marked cold in
  least-recently-pinned order.  Pinned buffers are never evicted, and a
  single pinned buffer may exceed the budget by itself (mirroring the
  chunk packer's one-block minimum) — the arena bounds what the plan
  actively holds, not what the OS caches.
* **Crash-safe naming** — the backing directory comes from
  ``tempfile.mkdtemp`` (unique per arena, never reused), and a
  ``weakref.finalize`` hook removes it even if :meth:`close` is never
  called, so an interrupted run leaves at worst an orphaned temp
  directory with an unambiguous ``gofmm-spill-*`` prefix.
* **Explicit lifecycle** — ``close()`` (idempotent) or use as a context
  manager; allocation after close raises :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

import errno
import os
import shutil
import tempfile
import threading
import weakref
from collections import OrderedDict
from typing import Iterator, Tuple

import numpy as np

from ..errors import SpillCapacityError, StorageError
from ..faults import injection as _faults
from ..obs import counters as _obs_counters
from ..obs import get_logger
from ..obs.trace import get_tracer

__all__ = ["SpillArena"]

_LOG = get_logger("storage.spill")


class _SpillSlot:
    """Bookkeeping record for one arena allocation."""

    __slots__ = ("array", "nbytes", "pins", "resident", "evicted", "path")

    def __init__(self, array: np.memmap, nbytes: int, path: str) -> None:
        self.array = array
        self.nbytes = int(nbytes)
        self.pins = 0
        self.resident = False
        self.evicted = False
        self.path = path


class SpillArena:
    """A bounded temp-file arena handing out memmap-backed work buffers."""

    def __init__(
        self,
        budget_bytes: int,
        directory: str | None = None,
        prefix: str = "gofmm-spill-",
    ) -> None:
        if budget_bytes <= 0:
            raise StorageError(f"spill arena budget must be positive, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self._dir = tempfile.mkdtemp(prefix=prefix, dir=directory)
        self._lock = threading.Lock()
        self._slots: "OrderedDict[int, _SpillSlot]" = OrderedDict()
        self._seq = 0
        self._closed = False
        # Best-effort cleanup if the owner forgets close(); ignore_errors so
        # a finalizer racing an explicit close never raises at interpreter exit.
        self._finalizer = weakref.finalize(self, shutil.rmtree, self._dir, True)

    # ------------------------------------------------------------------ api

    @property
    def path(self) -> str:
        """Backing directory (useful for tests and diagnostics)."""
        return self._dir

    @property
    def closed(self) -> bool:
        return self._closed

    def allocate(self, shape: int | Tuple[int, ...], dtype: np.dtype | type = np.float64) -> np.memmap:
        """Create a new zero-filled spill buffer backed by its own file.

        A full disk (ENOSPC, or EDQUOT on quota'd filesystems) raises the
        typed :class:`~repro.errors.SpillCapacityError` so the streaming
        planner can fall back to heap buffers instead of crashing the run.
        """
        with self._lock:
            if self._closed:
                raise StorageError("spill arena is closed")
            self._seq += 1
            path = os.path.join(self._dir, f"spill-{self._seq:04d}.bin")
        try:
            _faults.fire("spill.write", path=path)
            buf = np.memmap(path, dtype=np.dtype(dtype), mode="w+", shape=shape)
        except OSError as exc:
            if exc.errno in (errno.ENOSPC, errno.EDQUOT):
                try:
                    os.unlink(path)
                except OSError:
                    pass
                raise SpillCapacityError(
                    f"spill arena out of disk space at {path}: {exc}"
                ) from exc
            raise
        with self._lock:
            self._slots[id(buf)] = _SpillSlot(buf, buf.nbytes, path)
        return buf

    def pin(self, buf: np.memmap) -> None:
        """Mark ``buf`` hot (about to be written/read); may evict cold peers."""
        with self._lock:
            slot = self._slot(buf)
            reloaded = slot.evicted
            slot.evicted = False
            slot.pins += 1
            slot.resident = True
            self._slots.move_to_end(id(buf))
            self._evict_locked()
        if reloaded:
            _obs_counters.add("spill_bytes_in", slot.nbytes)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant("spill.load", bytes=slot.nbytes)

    def unpin(self, buf: np.memmap) -> None:
        """Release a pin; the buffer becomes eligible for LRU eviction."""
        with self._lock:
            slot = self._slot(buf)
            if slot.pins <= 0:
                raise StorageError("unpin without matching pin")
            slot.pins -= 1

    def release(self, buf: np.memmap) -> None:
        """Drop an allocation and delete its backing file.

        The caller's memmap view stays readable while referenced (POSIX
        unlink semantics) but the arena stops accounting for it; callers
        release their cycling buffers after each evaluation so repeated
        matvecs do not accrete spill files.
        """
        with self._lock:
            if self._closed:
                return
            slot = self._slots.pop(id(buf), None)
        if slot is None:
            raise StorageError("buffer was not allocated from this arena")
        slot.array = None  # type: ignore[assignment]
        try:
            os.unlink(slot.path)
        except OSError:
            pass

    @property
    def resident_bytes(self) -> int:
        """Bytes currently accounted as hot (pinned or not yet evicted)."""
        with self._lock:
            return sum(s.nbytes for s in self._slots.values() if s.resident)

    @property
    def bytes_on_disk(self) -> int:
        """Total bytes of backing files ever allocated and still live."""
        with self._lock:
            return sum(s.nbytes for s in self._slots.values())

    def close(self) -> None:
        """Flush, drop all buffers, and remove the backing directory."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots = list(self._slots.values())
            self._slots.clear()
        for slot in slots:
            try:
                slot.array.flush()
            except (OSError, ValueError):
                pass
            slot.array = None  # type: ignore[assignment]
        self._finalizer()

    def __enter__(self) -> "SpillArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except (OSError, ValueError, StorageError) as exc:
            # The only failures close() can hit: flush/unlink I/O errors and
            # views over already-released buffers.  Log instead of swallowing
            # blind — anything else escaping here is a genuine bug and should
            # surface (the interpreter prints it, it cannot propagate).
            _LOG.warning("spill arena cleanup failed in __del__: %s", exc)

    # ------------------------------------------------------------- internals

    def _slot(self, buf: np.memmap) -> _SpillSlot:
        if self._closed:
            raise StorageError("spill arena is closed")
        slot = self._slots.get(id(buf))
        if slot is None:
            raise StorageError("buffer was not allocated from this arena")
        return slot

    def _evict_locked(self) -> None:
        """Flush unpinned buffers, least-recently-pinned first, until the
        resident accounting fits the budget (or only pinned buffers remain)."""
        resident = sum(s.nbytes for s in self._slots.values() if s.resident)
        if resident <= self.budget_bytes:
            return
        evicted_bytes = 0
        for slot in list(self._slots.values()):  # OrderedDict => LRU order
            if resident <= self.budget_bytes:
                break
            if slot.resident and slot.pins == 0:
                try:
                    slot.array.flush()
                except OSError as exc:
                    if exc.errno in (errno.ENOSPC, errno.EDQUOT):
                        raise SpillCapacityError(
                            f"spill arena out of disk space flushing {slot.path}: {exc}"
                        ) from exc
                    raise
                slot.resident = False
                slot.evicted = True
                resident -= slot.nbytes
                evicted_bytes += slot.nbytes
        if evicted_bytes:
            _obs_counters.add("spill_bytes_out", evicted_bytes)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant("spill.evict", bytes=evicted_bytes)

    def _iter_slots(self) -> Iterator[_SpillSlot]:  # pragma: no cover - debug aid
        with self._lock:
            return iter(list(self._slots.values()))
