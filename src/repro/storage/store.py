"""Mmap artifact format v2: directory-backed operator and session stores.

The legacy persistence path (PR 3) packs everything into a single ``.npz``
— loading it materializes every array in memory, which caps ``n`` at what
RAM holds.  Format v2 is a *directory*: a ``manifest.json`` carrying the
``schema_version``, the full config, per-stage fingerprints and an array
inventory (name → file, dtype, shape, nbytes), next to one plain ``.npy``
file per array.  Every array then opens read-only through
``np.load(..., mmap_mode="r")``, so skeleton coefficients, interaction
lists and cached near/far blocks page in on demand — a server can
cold-start an operator much larger than RAM.

Two stores share the layout machinery:

* :class:`OperatorStore` — the complete compressed operator (tree +
  skeletons + coefficients + interaction lists + cached blocks), written
  by :meth:`OperatorStore.save` / ``CompressedOperator.save`` and opened
  by :meth:`OperatorStore.open` / ``CompressedOperator.open``.
* the session-artifact directory written by
  ``Session.save_artifacts(path, format="dir")`` — same arrays as the
  legacy ``.npz``, one file each, manifest instead of the JSON-in-uint8
  ``meta`` buffer.

Writes are crash-safe: everything lands in a uniquely named temp
directory next to the target (manifest last) and is renamed into place in
one step, so a crashed writer can never leave a half-valid store behind.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import random
import shutil
import tempfile
import time
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from ..config import DistanceMetric, GOFMMConfig
from ..errors import (
    ArtifactMismatchError,
    ConfigurationError,
    StorageError,
    StorageRetryExhaustedError,
)
from ..faults import injection as _faults
from ..obs import counters as _obs_counters
from ..obs import get_logger

__all__ = [
    "MANIFEST_NAME",
    "STORE_SCHEMA_VERSION",
    "DEFAULT_READ_RETRIES",
    "OperatorStore",
    "StoredBlockProvider",
    "write_array_dir",
    "read_array_dir",
    "config_to_jsonable",
    "config_from_jsonable",
    "is_disk_backed",
]

MANIFEST_NAME = "manifest.json"

#: Version of the directory layout.  v1 is the legacy single-``.npz``
#: session format; v2 is the manifest + per-array ``.npy`` directory.
STORE_SCHEMA_VERSION = 2

_LOG = get_logger("storage.store")

#: Module default for the transient-read retry budget; callers with a
#: config pass ``GOFMMConfig.storage_read_retries`` instead.
DEFAULT_READ_RETRIES = 2

#: Base/backoff of the retry delay (exponential, jittered, capped).
_READ_BACKOFF_S = 0.02
_READ_BACKOFF_MAX_S = 0.5

#: ``errno`` values treated as *transient* — a device hiccup worth
#: retrying, as opposed to a missing or corrupt artifact.  ``ENOENT`` is
#: deliberately absent (missing file → :class:`ArtifactMismatchError`).
_TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EBUSY, errno.EINTR, errno.ETIMEDOUT, errno.ESTALE}
)


def _is_transient(exc: OSError) -> bool:
    return not isinstance(exc, FileNotFoundError) and exc.errno in _TRANSIENT_ERRNOS


def _read_with_retry(what: str, fn: Callable, retries: int):
    """Run ``fn`` retrying transient ``OSError``\\ s with jittered backoff.

    Non-transient errors propagate on the first occurrence; transient ones
    are retried up to ``retries`` extra attempts (each survived retry
    counts ``faults_recovered``) and then surface as a typed
    :class:`~repro.errors.StorageRetryExhaustedError`.
    """
    attempt = 0
    while True:
        try:
            result = fn()
        except OSError as exc:
            if not _is_transient(exc):
                raise
            if attempt >= retries:
                raise StorageRetryExhaustedError(
                    f"transient read error on {what} persisted past "
                    f"{attempt + 1} attempt(s) (storage_read_retries={retries}): {exc}",
                    path=what,
                    attempts=attempt + 1,
                ) from exc
            delay = min(_READ_BACKOFF_MAX_S, _READ_BACKOFF_S * (2**attempt))
            delay *= 1.0 + 0.25 * random.random()  # jitter: desynchronize cold-start herds
            _LOG.warning(
                "transient read error on %s (%s); retry %d/%d in %.0f ms",
                what, exc, attempt + 1, retries, delay * 1e3,
            )
            time.sleep(delay)
            attempt += 1
            continue
        if attempt:
            _obs_counters.add("faults_recovered")
            _LOG.warning("read of %s recovered after %d retry/retries", what, attempt)
        return result


# ---------------------------------------------------------------------------
# generic directory layout
# ---------------------------------------------------------------------------

def write_array_dir(path, manifest: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Atomically publish ``arrays`` + ``manifest`` as a format-v2 directory.

    The arrays are written into a uniquely named sibling temp directory
    (one ``.npy`` per array, manifest last) which is then renamed onto
    ``path`` — a crash mid-write leaves only an inert ``*.tmp-*`` orphan,
    never a directory that parses as a store.  An existing directory at
    ``path`` is replaced.
    """
    path = os.path.abspath(os.fspath(path))
    parent = os.path.dirname(path)
    os.makedirs(parent, exist_ok=True)
    tmp = tempfile.mkdtemp(prefix=os.path.basename(path) + ".tmp-", dir=parent)
    try:
        inventory: Dict[str, dict] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            filename = f"{name}.npy"
            np.save(os.path.join(tmp, filename), array)
            inventory[name] = {
                "file": filename,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "nbytes": int(array.nbytes),
            }
        manifest = dict(manifest)
        manifest["arrays"] = inventory
        with open(os.path.join(tmp, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        if os.path.isdir(path):
            shutil.rmtree(path)
        elif os.path.exists(path):
            raise StorageError(f"store target {path!r} exists and is not a directory")
        os.rename(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def read_array_dir(
    path, mmap: bool = True, retries: Optional[int] = None
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Open a format-v2 directory; validate the inventory at the trust boundary.

    With ``mmap=True`` every array is an ``np.load(..., mmap_mode="r")``
    view — nothing is read until the pages are touched.  A missing /
    truncated / dtype-shifted file raises
    :class:`~repro.errors.ArtifactMismatchError` here rather than
    surfacing as an IndexError deep inside evaluation.  *Transient*
    ``OSError``\\ s (EIO, EAGAIN, ESTALE …) are retried with jittered
    backoff up to ``retries`` extra attempts (default
    :data:`DEFAULT_READ_RETRIES`; pass ``GOFMMConfig.storage_read_retries``
    when a config is at hand) and then raise the typed
    :class:`~repro.errors.StorageRetryExhaustedError`.
    """
    path = os.fspath(path)
    if retries is None:
        retries = DEFAULT_READ_RETRIES
    manifest_path = os.path.join(path, MANIFEST_NAME)

    def _load_manifest():
        _faults.fire("storage.read", path=manifest_path, what="manifest")
        with open(manifest_path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    try:
        manifest = _read_with_retry(manifest_path, _load_manifest, retries)
    except FileNotFoundError as exc:
        raise ArtifactMismatchError(
            f"{path!r} is not an artifact directory (no {MANIFEST_NAME})"
        ) from exc
    except StorageRetryExhaustedError:
        raise
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactMismatchError(f"corrupt manifest in {path!r}: {exc}") from exc
    if not isinstance(manifest, dict) or not isinstance(manifest.get("arrays"), dict):
        raise ArtifactMismatchError(f"corrupt manifest in {path!r}: no array inventory")

    arrays: Dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        filename = spec.get("file", "")
        if os.path.basename(filename) != filename or not filename:
            raise ArtifactMismatchError(f"manifest entry {name!r} names an invalid file {filename!r}")
        file_path = os.path.join(path, filename)

        def _load_array(file_path=file_path):
            _faults.fire("storage.read", path=file_path, what="array")
            return np.load(file_path, mmap_mode="r" if mmap else None, allow_pickle=False)

        try:
            array = _read_with_retry(file_path, _load_array, retries)
        except FileNotFoundError as exc:
            raise ArtifactMismatchError(f"artifact array {name!r} is missing ({filename})") from exc
        except StorageRetryExhaustedError:
            raise
        except (OSError, ValueError) as exc:
            raise ArtifactMismatchError(
                f"artifact array {name!r} is truncated or corrupt ({filename}): {exc}"
            ) from exc
        if array.dtype.str != spec.get("dtype") or list(array.shape) != list(spec.get("shape", [])):
            raise ArtifactMismatchError(
                f"artifact array {name!r} does not match its manifest entry "
                f"(file has {array.dtype.str}{list(array.shape)}, "
                f"manifest says {spec.get('dtype')}{spec.get('shape')})"
            )
        arrays[name] = array
    return manifest, arrays


def dir_bytes_on_disk(manifest: dict) -> int:
    """Total payload bytes recorded in a manifest's array inventory."""
    return sum(int(spec.get("nbytes", 0)) for spec in manifest.get("arrays", {}).values())


# ---------------------------------------------------------------------------
# config (de)serialization
# ---------------------------------------------------------------------------

def config_to_jsonable(config: GOFMMConfig) -> dict:
    """Every config field as a JSON-stable value."""
    out = {}
    for f in dataclasses.fields(GOFMMConfig):
        value = getattr(config, f.name)
        if isinstance(value, DistanceMetric):
            value = value.value
        elif isinstance(value, np.dtype):
            value = value.name
        out[f.name] = value
    return out


def config_from_jsonable(data: dict) -> GOFMMConfig:
    """Rebuild a config from :func:`config_to_jsonable` output.

    Unknown keys are ignored so stores written by a newer library version
    still open; ``__post_init__`` coerces the string-encoded distance
    metric and dtype back to their rich types and re-validates everything.
    """
    known = {f.name for f in dataclasses.fields(GOFMMConfig)}
    try:
        return GOFMMConfig(**{k: v for k, v in data.items() if k in known})
    except ConfigurationError:
        raise
    except (TypeError, ValueError) as exc:
        raise ArtifactMismatchError(f"store manifest holds an invalid config: {exc}") from exc


def is_disk_backed(array: Optional[np.ndarray]) -> bool:
    """True when an array (or any base it views) is an ``np.memmap``."""
    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False


# ---------------------------------------------------------------------------
# stored blocks
# ---------------------------------------------------------------------------

class StoredBlockProvider:
    """Read-only near/far block provider over a store's packed arrays.

    The same protocol as :class:`repro.core.hmatrix.BlockProvider`
    (``in`` / ``get`` / ``cached_entries`` / ``len``) but backed by one
    flat data array — an mmap view when the store was opened with
    ``resident="mmap"``, so a block's bytes are only paged in when an
    evaluation actually touches it.
    """

    def __init__(
        self,
        keys: np.ndarray,
        indptr: np.ndarray,
        shapes: np.ndarray,
        data: np.ndarray,
    ) -> None:
        keys = np.asarray(keys, dtype=np.intp).reshape(-1, 2)
        indptr = np.asarray(indptr, dtype=np.intp)
        shapes = np.asarray(shapes, dtype=np.intp).reshape(-1, 2)
        num = keys.shape[0]
        if (
            indptr.shape != (num + 1,)
            or shapes.shape != (num, 2)
            or indptr[0] != 0
            or np.any(np.diff(indptr) < 0)
            or indptr[-1] != data.size
            or (num and np.any(np.diff(indptr) != shapes[:, 0] * shapes[:, 1]))
        ):
            raise ArtifactMismatchError("store holds malformed block index arrays")
        self._keys = keys
        self._indptr = indptr
        self._shapes = shapes
        self._data = data
        self._index = {(int(keys[i, 0]), int(keys[i, 1])): i for i in range(num)}

    def store(self, key: tuple, block: np.ndarray) -> None:
        raise StorageError("stored block providers are read-only")

    def __contains__(self, key: tuple) -> bool:
        return key in self._index

    def get(self, key: tuple) -> Optional[np.ndarray]:
        i = self._index.get(key)
        if i is None:
            return None
        rows, cols = self._shapes[i]
        return self._data[self._indptr[i] : self._indptr[i + 1]].reshape(int(rows), int(cols))

    def cached_items(self) -> Iterator[tuple]:
        for key in self._index:
            yield key, self.get(key)

    @property
    def cached_entries(self) -> int:
        return int(self._data.size)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def bytes_resident(self) -> int:
        return 0 if is_disk_backed(self._data) else int(self._data.nbytes)

    @property
    def bytes_on_disk(self) -> int:
        return int(self._data.nbytes) if is_disk_backed(self._data) else 0


# ---------------------------------------------------------------------------
# the operator store
# ---------------------------------------------------------------------------

class OperatorStore:
    """A compressed operator persisted as a format-v2 directory.

    ``OperatorStore.save(operator, path)`` writes the complete operator —
    tree structure, skeletons, interpolation coefficients, Near/Far lists
    and every cached near/far block — as flat arrays.
    ``OperatorStore(path)`` validates the manifest;
    :meth:`open` rebuilds a :class:`~repro.core.hmatrix.CompressedMatrix`
    whose large arrays stay on disk (``resident="mmap"``) or are loaded
    eagerly (``resident="ram"``).
    """

    KIND = "operator-store"

    def __init__(self, path, retries: Optional[int] = None) -> None:
        self.path = os.path.abspath(os.fspath(path))
        manifest, _ = read_array_dir(self.path, mmap=True, retries=retries)
        self._validate_manifest(manifest)
        self.manifest = manifest
        if retries is None:
            # Adopt the store's own knob for subsequent reads: stores written
            # with a tuned ``storage_read_retries`` open with it (older
            # manifests without the field keep the module default).
            stored = manifest.get("config", {}).get("storage_read_retries", DEFAULT_READ_RETRIES)
            retries = stored if isinstance(stored, int) and stored >= 0 else DEFAULT_READ_RETRIES
        self.retries = int(retries)

    @classmethod
    def _validate_manifest(cls, manifest: dict) -> None:
        if manifest.get("kind") != cls.KIND:
            raise ArtifactMismatchError(
                f"directory is not an operator store (kind={manifest.get('kind')!r})"
            )
        version = manifest.get("schema_version")
        if version != STORE_SCHEMA_VERSION:
            raise ArtifactMismatchError(
                f"unsupported operator-store schema_version {version!r} "
                f"(this library reads version {STORE_SCHEMA_VERSION})"
            )

    # -- properties ---------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.manifest["n"])

    @property
    def bytes_on_disk(self) -> int:
        """Total array payload bytes of the store (from the manifest inventory)."""
        return dir_bytes_on_disk(self.manifest)

    @property
    def fingerprints(self) -> dict:
        return dict(self.manifest.get("fingerprints", {}))

    def config(self) -> GOFMMConfig:
        return config_from_jsonable(self.manifest["config"])

    # -- save ---------------------------------------------------------------

    @staticmethod
    def save(operator, path) -> "OperatorStore":
        """Write an operator (or a bare ``CompressedMatrix``) to ``path``.

        Cached near/far blocks are packed key-sorted into one flat data
        array per list; with memoryless compressions (no cached blocks)
        the store still round-trips the skeleton representation, and an
        opened operator then needs a source matrix attached for the
        direct/near part.
        """
        compressed = getattr(operator, "compressed", operator)
        tree = compressed.tree
        lists = compressed.lists
        nodes = tree.nodes
        num_nodes = len(nodes)
        dtype = np.dtype(compressed.config.dtype)

        def ragged(rows) -> Tuple[np.ndarray, np.ndarray]:
            indptr = np.zeros(num_nodes + 1, dtype=np.intp)
            chunks = []
            for i, row in enumerate(rows):
                indptr[i + 1] = indptr[i] + len(row)
                if len(row):
                    chunks.append(np.asarray(row))
            flat = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.intp)
            return indptr, flat.astype(np.intp, copy=False)

        skeleton_indptr, skeleton_indices = ragged(
            [n.skeleton if n.skeleton is not None else () for n in nodes]
        )
        skeleton_ranks = np.array([n.skeleton_rank for n in nodes], dtype=np.intp)
        coeff_shapes = np.array(
            [n.coeffs.shape if n.coeffs is not None else (0, 0) for n in nodes], dtype=np.intp
        )
        coeff_indptr = np.zeros(num_nodes + 1, dtype=np.intp)
        np.cumsum(coeff_shapes[:, 0] * coeff_shapes[:, 1], out=coeff_indptr[1:])
        coeff_data = np.empty(int(coeff_indptr[-1]), dtype=dtype)
        for i, node in enumerate(nodes):
            if node.coeffs is not None:
                coeff_data[coeff_indptr[i] : coeff_indptr[i + 1]] = node.coeffs.ravel()

        near_indptr, near_cols = ragged([lists.near.get(n.node_id, []) for n in nodes])
        far_indptr, far_cols = ragged([lists.far.get(n.node_id, []) for n in nodes])

        def pack_blocks(provider) -> Dict[str, np.ndarray]:
            items = sorted(provider.cached_items(), key=lambda kv: kv[0])
            keys = np.array([k for k, _ in items], dtype=np.intp).reshape(len(items), 2)
            shapes = np.array([b.shape for _, b in items], dtype=np.intp).reshape(len(items), 2)
            indptr = np.zeros(len(items) + 1, dtype=np.intp)
            np.cumsum(shapes[:, 0] * shapes[:, 1], out=indptr[1:])
            data = np.empty(int(indptr[-1]), dtype=dtype)
            for i, (_, block) in enumerate(items):
                data[indptr[i] : indptr[i + 1]] = np.asarray(block).ravel()
            return {"keys": keys, "indptr": indptr, "shapes": shapes, "data": data}

        near_blocks = pack_blocks(compressed.near_blocks)
        far_blocks = pack_blocks(compressed.far_blocks)

        from ..api.stages import STAGE_ORDER, stage_fingerprint

        def jsonable_fingerprint(fingerprint: dict) -> dict:
            # Unlike the session's three persisted stages, the full six
            # include the skeletons stage whose fingerprint carries a dtype.
            return {
                key: (
                    value.value
                    if isinstance(value, DistanceMetric)
                    else value.name if isinstance(value, np.dtype) else value
                )
                for key, value in sorted(fingerprint.items())
            }

        partition_arrays = {
            "node_offsets": np.concatenate(
                [[0], np.cumsum([n.indices.size for n in nodes])]
            ).astype(np.intp),
            "node_indices": np.concatenate([n.indices for n in nodes]),
        }
        near_pairs = lists.total_near_pairs()
        far_pairs = lists.total_far_pairs()
        manifest = {
            "kind": OperatorStore.KIND,
            "schema_version": STORE_SCHEMA_VERSION,
            "n": int(tree.n),
            "depth": int(tree.depth),
            "num_nodes": num_nodes,
            "num_leaves": int(lists.num_leaves),
            "budget_cap": int(lists.budget_cap),
            "config": config_to_jsonable(compressed.config),
            "fingerprints": {
                stage: jsonable_fingerprint(stage_fingerprint(compressed.config, stage))
                for stage in STAGE_ORDER
            },
            "counts": {
                "near_pairs": int(near_pairs),
                "far_pairs": int(far_pairs),
                "near_blocks": int(len(near_blocks["keys"])),
                "far_blocks": int(len(far_blocks["keys"])),
            },
            # Whether every interaction pair has a stored block.  When
            # False (memoryless compression) an opened operator needs its
            # source matrix re-attached before it can evaluate.
            "blocks_complete": bool(
                len(near_blocks["keys"]) == near_pairs and len(far_blocks["keys"]) == far_pairs
            ),
        }
        arrays: Dict[str, np.ndarray] = {
            **partition_arrays,
            "skeleton_indptr": skeleton_indptr,
            "skeleton_indices": skeleton_indices,
            "skeleton_ranks": skeleton_ranks,
            "coeff_indptr": coeff_indptr,
            "coeff_shapes": coeff_shapes,
            "coeff_data": coeff_data,
            "near_indptr": near_indptr,
            "near_cols": near_cols,
            "far_indptr": far_indptr,
            "far_cols": far_cols,
        }
        for prefix, packed in (("near_block", near_blocks), ("far_block", far_blocks)):
            for part, array in packed.items():
                arrays[f"{prefix}_{part}"] = array
        write_array_dir(path, manifest, arrays)
        return OperatorStore(path)

    # -- open ---------------------------------------------------------------

    def open(self, resident: str = "mmap", matrix=None, **config_overrides):
        """Rebuild the :class:`~repro.core.hmatrix.CompressedMatrix`.

        ``resident="mmap"`` keeps coefficients and blocks as read-only
        mmap views (paged in on demand) and defaults the evaluation
        engine to ``"streamed"`` so matvecs run level-batched passes in
        the bounded chunk workspace; ``resident="ram"`` loads everything
        eagerly and keeps the engine the operator was saved with.
        ``matrix`` re-attaches the source SPD matrix (required to
        evaluate stores saved from memoryless compressions).
        """
        if resident not in ("mmap", "ram"):
            raise ConfigurationError(f"resident must be 'mmap' or 'ram', got {resident!r}")
        mmap = resident == "mmap"
        manifest, arrays = read_array_dir(self.path, mmap=mmap, retries=self.retries)
        self._validate_manifest(manifest)

        config = config_from_jsonable(manifest["config"])
        if mmap:
            config_overrides.setdefault("evaluation_engine", "streamed")
        if config_overrides:
            config = config.replace(**config_overrides)

        from ..api.stages import Partition
        from ..core.hmatrix import CompressedMatrix
        from ..core.interactions import InteractionLists

        n = int(manifest["n"])
        num_nodes = int(manifest["num_nodes"])
        try:
            partition = Partition.from_arrays(
                arrays["node_offsets"], arrays["node_indices"], int(manifest["depth"]), n
            )
            partition.tree.check_invariants(config.leaf_size)
        except ArtifactMismatchError:
            raise
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            # The specific shapes of a hand-edited / truncated partition:
            # bad offsets (ValueError/IndexError), wrong dtypes (TypeError),
            # missing arrays (KeyError).  Anything else — MemoryError, a
            # transient OSError from the mmap — is a real failure and
            # propagates instead of masquerading as a corrupt artifact.
            _LOG.warning(
                "store partition rejected at the trust boundary: %s: %s",
                type(exc).__name__, exc,
            )
            raise ArtifactMismatchError(f"store holds a malformed partition: {exc}") from exc
        tree = partition.tree
        if len(tree.nodes) != num_nodes:
            raise ArtifactMismatchError(
                f"store manifest says {num_nodes} nodes, partition has {len(tree.nodes)}"
            )

        def check_indptr(name: str, flat_name: str) -> np.ndarray:
            indptr = arrays[name]
            flat = arrays[flat_name]
            if (
                indptr.shape != (num_nodes + 1,)
                or indptr[0] != 0
                or np.any(np.diff(indptr) < 0)
                or indptr[-1] != flat.size
            ):
                raise ArtifactMismatchError(f"store holds malformed {name} arrays")
            return indptr

        skeleton_indptr = check_indptr("skeleton_indptr", "skeleton_indices")
        coeff_indptr = check_indptr("coeff_indptr", "coeff_data")
        near_indptr = check_indptr("near_indptr", "near_cols")
        far_indptr = check_indptr("far_indptr", "far_cols")
        skeleton_indices = arrays["skeleton_indices"]
        skeleton_ranks = arrays["skeleton_ranks"]
        coeff_shapes = arrays["coeff_shapes"]
        coeff_data = arrays["coeff_data"]
        near_cols = arrays["near_cols"]
        far_cols = arrays["far_cols"]
        if skeleton_ranks.shape != (num_nodes,) or coeff_shapes.shape != (num_nodes, 2):
            raise ArtifactMismatchError("store holds malformed skeleton rank/shape arrays")
        for cols, what in ((near_cols, "Near"), (far_cols, "Far")):
            if cols.size and (cols.min() < 0 or cols.max() >= num_nodes):
                raise ArtifactMismatchError(f"store holds {what} lists referencing unknown nodes")

        near: Dict[int, list] = {}
        far: Dict[int, list] = {}
        leaf_ids = {leaf.node_id for leaf in tree.leaves}
        for i, node in enumerate(tree.nodes):
            rank = int(skeleton_ranks[i])
            skeleton = skeleton_indices[skeleton_indptr[i] : skeleton_indptr[i + 1]]
            if skeleton.size != rank:
                raise ArtifactMismatchError(
                    f"store skeleton of node {i} has {skeleton.size} indices, rank says {rank}"
                )
            if rank:
                node.skeleton = skeleton
                node.skeleton_rank = rank
            rows, cols_ = (int(coeff_shapes[i, 0]), int(coeff_shapes[i, 1]))
            span = int(coeff_indptr[i + 1] - coeff_indptr[i])
            if rows * cols_ != span:
                raise ArtifactMismatchError(f"store coefficients of node {i} are truncated")
            if span:
                node.coeffs = coeff_data[coeff_indptr[i] : coeff_indptr[i + 1]].reshape(rows, cols_)
            node.near = near_cols[near_indptr[i] : near_indptr[i + 1]].tolist()
            node.far = far_cols[far_indptr[i] : far_indptr[i + 1]].tolist()
            if node.near:
                if i not in leaf_ids:
                    raise ArtifactMismatchError("store holds Near lists on internal nodes")
                near[i] = node.near
            elif i in leaf_ids:
                near[i] = []
            if node.far:
                far[i] = node.far

        lists = InteractionLists(
            near=near,
            far=far,
            leaf_position={leaf.node_id: pos for pos, leaf in enumerate(tree.leaves)},
            num_leaves=int(manifest["num_leaves"]),
            budget_cap=int(manifest["budget_cap"]),
        )
        near_provider = StoredBlockProvider(
            arrays["near_block_keys"], arrays["near_block_indptr"],
            arrays["near_block_shapes"], arrays["near_block_data"],
        )
        far_provider = StoredBlockProvider(
            arrays["far_block_keys"], arrays["far_block_indptr"],
            arrays["far_block_shapes"], arrays["far_block_data"],
        )
        self.manifest = manifest
        return CompressedMatrix(
            tree=tree,
            lists=lists,
            config=config,
            near_blocks=near_provider,
            far_blocks=far_provider,
            matrix=matrix,
        )
