"""Panel sources and sinks: chunked access to RHS weights and outputs.

The streamed engine (PR 5) bounds the *block* workspace but historically
still required the full ``(n, r)`` weight and output arrays in memory.
These adapters let :meth:`repro.core.streaming.StreamingPlan.execute`
consume weights and produce outputs as **column panels** read/written in
**row-range slices**, so peak residency is ``O(workspace + panel)``
instead of ``O(n * r)``.

A :class:`PanelSource` is anything with ``shape`` and a
``read(row_start, row_stop, col_start, col_stop)`` method returning that
2-D slice; a :class:`PanelSink` mirrors it with ``write``.  Two backings
ship here — plain in-memory arrays and ``.npy`` files opened through
``numpy``'s mmap machinery — and anything structurally compatible (a
network fetcher, a database cursor) plugs in without subclassing.
"""

from __future__ import annotations

import os
from typing import Protocol, Tuple, runtime_checkable

import numpy as np
from numpy.lib.format import open_memmap

from ..errors import StorageError

__all__ = [
    "PanelSource",
    "PanelSink",
    "ArrayPanelSource",
    "MmapPanelSource",
    "ArrayPanelSink",
    "MmapPanelSink",
    "as_panel_source",
    "as_panel_sink",
]


@runtime_checkable
class PanelSource(Protocol):
    """Read-only 2-D slice provider for RHS weights."""

    @property
    def shape(self) -> Tuple[int, int]: ...

    def read(self, row_start: int, row_stop: int, col_start: int, col_stop: int) -> np.ndarray: ...


@runtime_checkable
class PanelSink(Protocol):
    """Write-only 2-D slice consumer for matvec outputs."""

    @property
    def shape(self) -> Tuple[int, int]: ...

    def write(self, row_start: int, col_start: int, panel: np.ndarray) -> None: ...


def _check_2d(shape: Tuple[int, ...], what: str) -> Tuple[int, int]:
    if len(shape) != 2:
        raise StorageError(f"{what} must be 2-D, got shape {shape}")
    return int(shape[0]), int(shape[1])


class ArrayPanelSource:
    """Panel view over an in-memory (or already-mmapped) 2-D array."""

    def __init__(self, array: np.ndarray) -> None:
        _check_2d(array.shape, "panel source array")
        self._array = array

    @property
    def shape(self) -> Tuple[int, int]:
        return self._array.shape  # type: ignore[return-value]

    def read(self, row_start: int, row_stop: int, col_start: int, col_stop: int) -> np.ndarray:
        return self._array[row_start:row_stop, col_start:col_stop]


class MmapPanelSource:
    """Panel view over a ``.npy`` file opened with ``mmap_mode='r'``.

    Only the pages covering the requested slice are faulted in, so a
    weight file much larger than RAM streams through a bounded buffer.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        try:
            array = np.load(self.path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise StorageError(f"cannot mmap panel file {self.path!r}: {exc}") from exc
        _check_2d(array.shape, f"panel file {self.path!r}")
        self._array = array

    @property
    def shape(self) -> Tuple[int, int]:
        return self._array.shape  # type: ignore[return-value]

    def read(self, row_start: int, row_stop: int, col_start: int, col_stop: int) -> np.ndarray:
        return self._array[row_start:row_stop, col_start:col_stop]


class ArrayPanelSink:
    """Panel writer into a caller-owned 2-D array."""

    def __init__(self, array: np.ndarray) -> None:
        _check_2d(array.shape, "panel sink array")
        if not array.flags.writeable:
            raise StorageError("panel sink array is read-only")
        self.array = array

    @property
    def shape(self) -> Tuple[int, int]:
        return self.array.shape  # type: ignore[return-value]

    def write(self, row_start: int, col_start: int, panel: np.ndarray) -> None:
        self.array[row_start : row_start + panel.shape[0], col_start : col_start + panel.shape[1]] = panel


class MmapPanelSink:
    """Panel writer into a freshly created ``.npy`` file (write-mode mmap).

    The file carries a normal ``.npy`` header, so the finished output
    round-trips through ``np.load`` (mmap or eager) like any other array.
    """

    def __init__(self, path: str | os.PathLike, shape: Tuple[int, int], dtype: np.dtype | type = np.float64) -> None:
        self.path = os.fspath(path)
        n, r = _check_2d(tuple(shape), "panel sink")
        self._array = open_memmap(self.path, mode="w+", dtype=np.dtype(dtype), shape=(n, r))

    @property
    def shape(self) -> Tuple[int, int]:
        return self._array.shape  # type: ignore[return-value]

    def write(self, row_start: int, col_start: int, panel: np.ndarray) -> None:
        self._array[row_start : row_start + panel.shape[0], col_start : col_start + panel.shape[1]] = panel

    def flush(self) -> None:
        self._array.flush()

    def close(self) -> None:
        self.flush()
        self._array = None  # type: ignore[assignment]


def as_panel_source(obj: "np.ndarray | PanelSource | str | os.PathLike") -> PanelSource:
    """Coerce arrays, paths, or structural panel sources to a PanelSource."""
    if isinstance(obj, np.ndarray):
        return ArrayPanelSource(obj)
    if isinstance(obj, (str, os.PathLike)):
        return MmapPanelSource(obj)
    if hasattr(obj, "read") and hasattr(obj, "shape"):
        return obj  # structural match — use as-is
    raise StorageError(f"cannot interpret {type(obj).__name__} as a panel source")


def as_panel_sink(obj: "np.ndarray | PanelSink | str | os.PathLike", shape: Tuple[int, int]) -> PanelSink:
    """Coerce arrays, paths, or structural panel sinks to a PanelSink."""
    if isinstance(obj, np.ndarray):
        sink = ArrayPanelSink(obj)
    elif isinstance(obj, (str, os.PathLike)):
        return MmapPanelSink(obj, shape)
    elif hasattr(obj, "write") and hasattr(obj, "shape"):
        sink = obj  # structural match — use as-is
    else:
        raise StorageError(f"cannot interpret {type(obj).__name__} as a panel sink")
    if tuple(sink.shape) != tuple(shape):
        raise StorageError(f"panel sink shape {tuple(sink.shape)} does not match output shape {tuple(shape)}")
    return sink
