"""Pseudo-spectral operators (the paper's K15–K17).

K15 and K16 are "2D pseudo-spectral advection–diffusion–reaction operators
with variable coefficients"; K17 is a 3D pseudo-spectral operator.  The
paper highlights them as matrices whose off-diagonal blocks have *high*
numerical rank — they are the cases in Figure 5 that do not compress at
rank 512 / 3% budget.

We build them with Fourier spectral differentiation on a periodic grid:
the differentiation matrices are dense (every point couples to every other
point, which is exactly why the off-diagonal rank is high), a rough variable
coefficient multiplies the diffusion term, and the non-normal operator is
symmetrized through ``AᵀA`` plus a diagonal shift so the test matrix is SPD.
"""

from __future__ import annotations

import numpy as np

from .base import DenseSPD
from .stencils import variable_coefficient_field

__all__ = [
    "fourier_diff_matrix",
    "fourier_second_diff_matrix",
    "pseudo_spectral_adr_2d",
    "pseudo_spectral_3d",
]


def fourier_diff_matrix(n: int) -> np.ndarray:
    """First-derivative Fourier differentiation matrix on ``n`` periodic points.

    Standard Trefethen construction: for even ``n`` the entries are
    ``0.5 (−1)^{i−j} cot((i−j) h / 2)`` with ``h = 2π/n``.
    """
    if n < 2:
        return np.zeros((max(n, 1), max(n, 1)))
    h = 2.0 * np.pi / n
    idx = np.arange(n)
    diff = idx[:, None] - idx[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        if n % 2 == 0:
            entries = 0.5 * ((-1.0) ** diff) / np.tan(diff * h / 2.0)
        else:
            entries = 0.5 * ((-1.0) ** diff) / np.sin(diff * h / 2.0)
    entries[diff == 0] = 0.0
    return entries


def fourier_second_diff_matrix(n: int) -> np.ndarray:
    """Second-derivative Fourier differentiation matrix on ``n`` periodic points."""
    if n < 2:
        return np.zeros((max(n, 1), max(n, 1)))
    h = 2.0 * np.pi / n
    idx = np.arange(n)
    diff = idx[:, None] - idx[None, :]
    out = np.empty((n, n))
    with np.errstate(divide="ignore", invalid="ignore"):
        if n % 2 == 0:
            out = -((-1.0) ** diff) / (2.0 * np.sin(diff * h / 2.0) ** 2)
            np.fill_diagonal(out, -(np.pi**2) / (3.0 * h**2) - 1.0 / 6.0)
        else:
            out = -((-1.0) ** diff) * np.cos(diff * h / 2.0) / (2.0 * np.sin(diff * h / 2.0) ** 2)
            np.fill_diagonal(out, -(np.pi**2) / (3.0 * h**2) + 1.0 / 12.0)
    return out


def _grid_side_for(n_target: int, dim: int) -> int:
    side = int(np.ceil(n_target ** (1.0 / dim)))
    while side**dim < n_target:
        side += 1
    return side


def _periodic_coords(side: int, dim: int) -> np.ndarray:
    pts = np.linspace(0.0, 2.0 * np.pi, side, endpoint=False)
    grids = np.meshgrid(*([pts] * dim), indexing="ij")
    return np.column_stack([g.ravel() for g in grids])


def pseudo_spectral_adr_2d(
    n_target: int,
    diffusion: float = 1.0,
    advection: float = 5.0,
    reaction: float = 1.0,
    contrast: float = 50.0,
    seed: int = 0,
    regularization: float = 1e-2,
    name: str = "K15",
) -> DenseSPD:
    """K15/K16: 2D pseudo-spectral advection–diffusion–reaction test matrix.

    ``A = −ν diag(a) (D₂ ⊗ I + I ⊗ D₂) + c (D₁ ⊗ I + I ⊗ D₁) + r I`` with a
    rough coefficient ``a``; the returned SPD matrix is a normalized
    ``AᵀA + λI``.
    """
    side = _grid_side_for(n_target, 2)
    d1 = fourier_diff_matrix(side)
    d2 = fourier_second_diff_matrix(side)
    eye = np.eye(side)
    lap = np.kron(d2, eye) + np.kron(eye, d2)
    adv = np.kron(d1, eye) + np.kron(eye, d1)
    coeff = variable_coefficient_field(side, contrast, seed, dim=2)
    a = -diffusion * (coeff[:, None] * lap) + advection * adv + reaction * np.eye(side * side)
    spd = a.T @ a
    spd = spd[:n_target, :n_target]
    spd = 0.5 * (spd + spd.T)
    scale = float(np.mean(np.diag(spd)))
    spd += regularization * scale * np.eye(n_target)
    spd /= max(np.abs(spd).max(), np.finfo(np.float64).tiny)
    coords = _periodic_coords(side, 2)[:n_target]
    return DenseSPD(spd, coordinates=coords, validate=False, name=name)


def pseudo_spectral_3d(
    n_target: int,
    diffusion: float = 1.0,
    reaction: float = 1.0,
    contrast: float = 20.0,
    seed: int = 0,
    regularization: float = 1e-2,
    name: str = "K17",
) -> DenseSPD:
    """K17: 3D pseudo-spectral operator with variable coefficients (SPD form)."""
    side = _grid_side_for(n_target, 3)
    d2 = fourier_second_diff_matrix(side)
    eye = np.eye(side)
    lap = (
        np.kron(np.kron(d2, eye), eye)
        + np.kron(np.kron(eye, d2), eye)
        + np.kron(np.kron(eye, eye), d2)
    )
    coeff = variable_coefficient_field(side, contrast, seed, dim=3)
    a = -diffusion * (coeff[:, None] * lap) + reaction * np.eye(side**3)
    spd = a.T @ a
    spd = spd[:n_target, :n_target]
    spd = 0.5 * (spd + spd.T)
    scale = float(np.mean(np.diag(spd)))
    spd += regularization * scale * np.eye(n_target)
    spd /= max(np.abs(spd).max(), np.finfo(np.float64).tiny)
    coords = _periodic_coords(side, 3)[:n_target]
    return DenseSPD(spd, coordinates=coords, validate=False, name=name)
