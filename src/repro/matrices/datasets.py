"""Synthetic stand-ins for the paper's machine-learning datasets.

The paper evaluates Gaussian-kernel matrices on COVTYPE (100K points, 54
cartographic features), HIGGS (500K points, 28 physics features) and MNIST
(60K points, 780 pixel features).  Those datasets cannot be downloaded in
this offline environment, so each generator below produces a point cloud
with the same dimensionality and the structural property that matters for
hierarchical compression: points concentrated near a low-dimensional,
clustered manifold embedded in the ambient space.  The kernel-matrix rank
structure (and hence GOFMM's behaviour) is governed by that intrinsic
geometry, not by the semantic content of the features.

All generators return ``(points, metadata)`` where points are standardized
(zero mean, unit variance per feature, like the paper's preprocessing), and
are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DatasetSpec", "covtype_like", "higgs_like", "mnist_like", "clustered_points", "DATASETS"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a synthetic dataset generator."""

    name: str
    ambient_dim: int
    intrinsic_dim: int
    clusters: int
    default_bandwidth: float


def clustered_points(
    n: int,
    ambient_dim: int,
    intrinsic_dim: int,
    clusters: int,
    noise: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Points on a union of ``clusters`` random affine patches of dimension ``intrinsic_dim``.

    Each cluster has a random center and a random ``intrinsic_dim``-dimensional
    orientation; points are spread along the patch with unit variance and
    perturbed with isotropic ambient noise.  This is the canonical model of
    "high ambient dimension, low intrinsic dimension" data for which
    kernel-matrix compression works well.
    """
    rng = np.random.default_rng(seed)
    intrinsic_dim = min(intrinsic_dim, ambient_dim)
    sizes = np.full(clusters, n // clusters)
    sizes[: n % clusters] += 1
    blocks = []
    for c in range(clusters):
        center = rng.standard_normal(ambient_dim) * 3.0
        basis = np.linalg.qr(rng.standard_normal((ambient_dim, intrinsic_dim)))[0]
        local = rng.standard_normal((sizes[c], intrinsic_dim))
        pts = center[None, :] + local @ basis.T + noise * rng.standard_normal((sizes[c], ambient_dim))
        blocks.append(pts)
    points = np.vstack(blocks)
    rng.shuffle(points, axis=0)
    # Standardize features (zero mean / unit variance) as in typical kernel-ML pipelines.
    points -= points.mean(axis=0, keepdims=True)
    std = points.std(axis=0, keepdims=True)
    std[std == 0.0] = 1.0
    points /= std
    return points


COVTYPE = DatasetSpec(name="covtype", ambient_dim=54, intrinsic_dim=8, clusters=7, default_bandwidth=0.1)
HIGGS = DatasetSpec(name="higgs", ambient_dim=28, intrinsic_dim=10, clusters=2, default_bandwidth=0.9)
# The paper uses h=1 on raw 0–255 pixel features; our stand-in points are
# standardized (unit variance per feature), so an equivalent "moderate"
# bandwidth relative to typical pairwise distances is larger.
MNIST = DatasetSpec(name="mnist", ambient_dim=780, intrinsic_dim=12, clusters=10, default_bandwidth=4.0)

DATASETS: dict[str, DatasetSpec] = {spec.name: spec for spec in (COVTYPE, HIGGS, MNIST)}


def _generate(spec: DatasetSpec, n: int, seed: int) -> np.ndarray:
    return clustered_points(
        n=n,
        ambient_dim=spec.ambient_dim,
        intrinsic_dim=spec.intrinsic_dim,
        clusters=spec.clusters,
        seed=seed,
    )


def covtype_like(n: int, seed: int = 0) -> np.ndarray:
    """COVTYPE stand-in: 54-D points from 7 clusters (cartographic cover types)."""
    return _generate(COVTYPE, n, seed)


def higgs_like(n: int, seed: int = 0) -> np.ndarray:
    """HIGGS stand-in: 28-D points from 2 broad clusters (signal / background)."""
    return _generate(HIGGS, n, seed)


def mnist_like(n: int, seed: int = 0) -> np.ndarray:
    """MNIST stand-in: 780-D points from 10 clusters on a low-dimensional manifold."""
    return _generate(MNIST, n, seed)
