"""Finite-difference stencil operators and their regularized inverses.

These generators emulate the paper's PDE-derived test matrices:

* ``K02`` — 2D regularized inverse Laplacian squared (Hessian of a
  PDE-constrained optimization problem),
* ``K03`` — the same construction with an oscillatory Helmholtz operator
  (10 points per wavelength),
* ``K12``–``K14`` — 2D advection–diffusion operators with highly variable
  coefficients,
* ``K18`` — 3D inverse squared Laplacian with variable coefficients.

All operators are discretized with standard central finite differences on a
regular grid with Dirichlet boundary conditions.  Non-symmetric operators
(advection) are symmetrized through the normal-equations form ``AᵀA`` so the
resulting test matrix is SPD, and inverses are regularized (``+ λI``) before
inversion — both steps mirror what is required to make the paper's matrices
SPD in the first place (it calls them "regularized").

The returned objects are :class:`repro.matrices.base.DenseSPD` instances
carrying the grid coordinates, so the geometric-distance reference
permutation of Figure 7 can be evaluated against them.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import MatrixDefinitionError
from .base import DenseSPD

__all__ = [
    "laplacian_1d",
    "laplacian_2d",
    "laplacian_3d",
    "helmholtz_2d",
    "advection_diffusion_2d",
    "variable_coefficient_field",
    "inverse_operator_matrix",
    "regularized_inverse_squared_laplacian_2d",
    "regularized_inverse_helmholtz_squared_2d",
    "advection_diffusion_matrix",
    "inverse_squared_laplacian_3d",
    "grid_coordinates_2d",
    "grid_coordinates_3d",
]


# ---------------------------------------------------------------------------
# sparse stencil operators
# ---------------------------------------------------------------------------

def laplacian_1d(n: int) -> sp.csr_matrix:
    """1D Dirichlet Laplacian (−u'') on ``n`` interior points, scaled by 1/h²."""
    if n < 1:
        raise MatrixDefinitionError("grid must have at least one point")
    h = 1.0 / (n + 1)
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr") / h**2


def laplacian_2d(n: int) -> sp.csr_matrix:
    """2D 5-point Dirichlet Laplacian on an ``n × n`` interior grid."""
    l1 = laplacian_1d(n)
    eye = sp.identity(n, format="csr")
    return (sp.kron(l1, eye) + sp.kron(eye, l1)).tocsr()


def laplacian_3d(n: int) -> sp.csr_matrix:
    """3D 7-point Dirichlet Laplacian on an ``n × n × n`` interior grid."""
    l1 = laplacian_1d(n)
    eye = sp.identity(n, format="csr")
    return (
        sp.kron(sp.kron(l1, eye), eye)
        + sp.kron(sp.kron(eye, l1), eye)
        + sp.kron(sp.kron(eye, eye), l1)
    ).tocsr()


def helmholtz_2d(n: int, points_per_wavelength: float = 10.0) -> sp.csr_matrix:
    """2D Helmholtz operator ``−Δ − k²`` with ``k`` set from the grid resolution.

    Following the paper's setup (10 points per wavelength): the wavenumber is
    chosen so that one wavelength spans ``points_per_wavelength`` grid cells,
    i.e. ``k = 2π (n+1) / points_per_wavelength`` on the unit square.
    """
    lap = laplacian_2d(n)
    k = 2.0 * np.pi * (n + 1) / points_per_wavelength
    return (lap - (k**2) * sp.identity(n * n, format="csr")).tocsr()


def variable_coefficient_field(n: int, contrast: float, seed: int, dim: int = 2) -> np.ndarray:
    """Smooth, highly variable positive coefficient field on an ``n^dim`` grid.

    A superposition of a few random low-frequency sines, exponentiated so the
    field is positive with ratio ``max/min ≈ contrast``.
    """
    rng = np.random.default_rng(seed)
    axes = [np.linspace(0.0, 1.0, n) for _ in range(dim)]
    grids = np.meshgrid(*axes, indexing="ij")
    field = np.zeros_like(grids[0])
    for _ in range(4):
        freqs = rng.integers(1, 4, size=dim)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=dim)
        amp = rng.uniform(0.5, 1.0)
        wave = np.ones_like(field)
        for g, f, p in zip(grids, freqs, phases):
            wave = wave * np.sin(np.pi * f * g + p)
        field += amp * wave
    field -= field.min()
    if field.max() > 0:
        field /= field.max()
    log_contrast = np.log(max(contrast, 1.0 + 1e-12))
    return np.exp(field * log_contrast).ravel()


def advection_diffusion_2d(
    n: int,
    diffusion_contrast: float = 100.0,
    advection_strength: float = 10.0,
    seed: int = 0,
) -> sp.csr_matrix:
    """2D advection–diffusion operator ``−∇·(a ∇u) + b·∇u`` with variable ``a`` and ``b``.

    The diffusion coefficient ``a`` is a rough positive field with the given
    contrast; the advection field ``b`` is a random smooth rotational field
    scaled by ``advection_strength``.  The operator is *not* symmetric; use
    :func:`advection_diffusion_matrix` for the SPD test matrix built from it.
    """
    h = 1.0 / (n + 1)
    a = variable_coefficient_field(n, diffusion_contrast, seed).reshape(n, n)
    rng = np.random.default_rng(seed + 1)
    bx = advection_strength * np.cos(2.0 * np.pi * rng.uniform()) * np.ones((n, n))
    by = advection_strength * np.sin(2.0 * np.pi * rng.uniform()) * np.ones((n, n))

    size = n * n

    def idx(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return i * n + j

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    ii = ii.ravel()
    jj = jj.ravel()
    center = idx(ii, jj)

    # Harmonic-mean face coefficients for the divergence-form diffusion term.
    def face_coeff(di: int, dj: int) -> np.ndarray:
        ni = np.clip(ii + di, 0, n - 1)
        nj = np.clip(jj + dj, 0, n - 1)
        a_c = a[ii, jj]
        a_n = a[ni, nj]
        return 2.0 * a_c * a_n / (a_c + a_n)

    diag = np.zeros(size)
    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        coeff = face_coeff(di, dj) / h**2
        diag += coeff
        inside = (ii + di >= 0) & (ii + di < n) & (jj + dj >= 0) & (jj + dj < n)
        rows.append(center[inside])
        cols.append(idx(ii[inside] + di, jj[inside] + dj))
        vals.append(-coeff[inside])

    # First-order upwind advection.
    bx_flat = bx.ravel()
    by_flat = by.ravel()
    diag += (np.abs(bx_flat) + np.abs(by_flat)) / h
    for vec, di, dj in ((bx_flat, 1, 0), (bx_flat, -1, 0), (by_flat, 0, 1), (by_flat, 0, -1)):
        direction = -1.0 if (di + dj) > 0 else 1.0
        take = vec * direction > 0  # upwind side
        inside = (ii + di >= 0) & (ii + di < n) & (jj + dj >= 0) & (jj + dj < n) & take
        rows.append(center[inside])
        cols.append(idx(ii[inside] + di, jj[inside] + dj))
        vals.append(-np.abs(vec[inside]) / h)

    rows.append(center)
    cols.append(center)
    vals.append(diag)

    data = np.concatenate(vals)
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    return sp.csr_matrix((data, (r, c)), shape=(size, size))


# ---------------------------------------------------------------------------
# dense SPD test matrices built from the operators
# ---------------------------------------------------------------------------

def grid_coordinates_2d(n: int) -> np.ndarray:
    """Coordinates of the interior points of the ``n × n`` unit-square grid."""
    pts = np.linspace(0.0, 1.0, n + 2)[1:-1]
    xx, yy = np.meshgrid(pts, pts, indexing="ij")
    return np.column_stack([xx.ravel(), yy.ravel()])


def grid_coordinates_3d(n: int) -> np.ndarray:
    """Coordinates of the interior points of the ``n³`` unit-cube grid."""
    pts = np.linspace(0.0, 1.0, n + 2)[1:-1]
    xx, yy, zz = np.meshgrid(pts, pts, pts, indexing="ij")
    return np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])


def _grid_side_for(n_target: int, dim: int) -> int:
    side = int(np.ceil(n_target ** (1.0 / dim)))
    while side**dim < n_target:
        side += 1
    return side


def inverse_operator_matrix(
    operator: sp.spmatrix,
    n_target: int,
    regularization: float,
    squared: bool = True,
    normal_equations: bool = False,
    coordinates: np.ndarray | None = None,
    name: str = "inverse-operator",
) -> DenseSPD:
    """Dense SPD matrix ``(AᵀA + λI)^{-1}`` (or ``(A + λI)^{-1}`` symmetric) truncated to ``n_target``.

    Parameters
    ----------
    operator:
        sparse operator ``A`` on the full grid.
    n_target:
        number of rows/columns to keep (leading principal submatrix — a
        principal submatrix of an SPD matrix is SPD, so truncation is safe).
    regularization:
        diagonal shift ``λ`` relative to the mean diagonal of the (possibly
        squared) operator.
    squared:
        build the inverse of the *squared* operator, matching the paper's
        "inverse Laplacian squared" Hessian-like matrices.
    normal_equations:
        symmetrize a non-symmetric ``A`` through ``AᵀA`` before inverting.
    """
    a = operator.tocsr()
    if normal_equations or squared:
        sym = (a.T @ a).tocsc()
    else:
        sym = ((a + a.T) * 0.5).tocsc()
    scale = float(np.mean(sym.diagonal()))
    shifted = (sym + regularization * scale * sp.identity(sym.shape[0], format="csc")).tocsc()
    solver = spla.factorized(shifted)
    rhs = np.eye(shifted.shape[0], n_target)
    dense = np.column_stack([solver(rhs[:, j]) for j in range(n_target)])
    dense = dense[:n_target, :]
    dense = 0.5 * (dense + dense.T)
    coords = None if coordinates is None else coordinates[:n_target]
    # Normalize so matrices of different provenance have comparable norms.
    dense /= max(np.abs(dense).max(), np.finfo(np.float64).tiny)
    return DenseSPD(dense, coordinates=coords, validate=False, name=name)


def regularized_inverse_squared_laplacian_2d(n_target: int, regularization: float = 1e-2, name: str = "K02") -> DenseSPD:
    """K02: 2D regularized inverse Laplacian squared on a regular grid."""
    side = _grid_side_for(n_target, 2)
    lap = laplacian_2d(side)
    # Scale to O(1) entries before squaring to keep conditioning reasonable.
    lap = lap * (1.0 / (side + 1) ** 2)
    coords = grid_coordinates_2d(side)
    return inverse_operator_matrix(lap, n_target, regularization, squared=True, coordinates=coords, name=name)


def regularized_inverse_helmholtz_squared_2d(
    n_target: int,
    points_per_wavelength: float = 10.0,
    regularization: float = 1e-2,
    name: str = "K03",
) -> DenseSPD:
    """K03: same construction as K02 with the oscillatory Helmholtz operator."""
    side = _grid_side_for(n_target, 2)
    helm = helmholtz_2d(side, points_per_wavelength) * (1.0 / (side + 1) ** 2)
    coords = grid_coordinates_2d(side)
    return inverse_operator_matrix(helm, n_target, regularization, squared=True, coordinates=coords, name=name)


def advection_diffusion_matrix(
    n_target: int,
    diffusion_contrast: float = 100.0,
    advection_strength: float = 10.0,
    seed: int = 0,
    invert: bool = False,
    regularization: float = 1e-2,
    name: str = "K12",
) -> DenseSPD:
    """K12–K14: SPD matrices derived from variable-coefficient advection–diffusion.

    The operator itself is non-symmetric, so the SPD test matrix is the
    normal-equations form ``AᵀA`` (scaled), or its regularized inverse when
    ``invert`` is set.  Different seeds / contrasts give the K12, K13, K14
    variants.
    """
    side = _grid_side_for(n_target, 2)
    op = advection_diffusion_2d(side, diffusion_contrast, advection_strength, seed)
    op = op * (1.0 / (side + 1) ** 2)
    coords = grid_coordinates_2d(side)
    if invert:
        return inverse_operator_matrix(
            op, n_target, regularization, squared=True, normal_equations=True, coordinates=coords, name=name
        )
    sym = (op.T @ op).toarray()[:n_target, :n_target]
    sym = 0.5 * (sym + sym.T)
    scale = float(np.mean(np.diag(sym)))
    sym += regularization * scale * np.eye(n_target)
    sym /= max(np.abs(sym).max(), np.finfo(np.float64).tiny)
    return DenseSPD(sym, coordinates=coords[:n_target], validate=False, name=name)


def inverse_squared_laplacian_3d(
    n_target: int,
    contrast: float = 10.0,
    seed: int = 0,
    regularization: float = 1e-2,
    name: str = "K18",
) -> DenseSPD:
    """K18: 3D inverse squared Laplacian with variable coefficients."""
    side = _grid_side_for(n_target, 3)
    lap = laplacian_3d(side) * (1.0 / (side + 1) ** 2)
    coeff = variable_coefficient_field(side, contrast, seed, dim=3)
    scaled = sp.diags(np.sqrt(coeff)) @ lap @ sp.diags(np.sqrt(coeff))
    coords = grid_coordinates_3d(side)
    return inverse_operator_matrix(scaled, n_target, regularization, squared=True, coordinates=coords, name=name)
