"""SPD test matrices and the entry-evaluation interface GOFMM consumes.

GOFMM's only required input is a routine returning ``K[I, J]`` for arbitrary
index sets (the paper's problem statement).  :class:`repro.matrices.base.SPDMatrix`
is that interface; everything else in this subpackage builds concrete
instances of it:

* :mod:`repro.matrices.kernels` — kernel functions (Gaussian, exponential,
  inverse-multiquadric Green's-like, polynomial, cosine similarity),
* :mod:`repro.matrices.stencils` — finite-difference operators (Laplacian,
  Helmholtz, variable-coefficient advection–diffusion) and their regularized
  inverses / squared inverses,
* :mod:`repro.matrices.spectral` — pseudo-spectral operators,
* :mod:`repro.matrices.graphs` — (regularized inverse) graph Laplacians of
  synthetic graphs emulating the paper's UFL graphs G01–G05,
* :mod:`repro.matrices.datasets` — synthetic point clouds standing in for
  COVTYPE / HIGGS / MNIST,
* :mod:`repro.matrices.registry` — the named testbed K02–K18, G01–G05, plus
  the machine-learning kernel matrices.
"""

from .base import CallbackMatrix, DenseSPD, KernelMatrix, SPDMatrix
from .kernels import (
    CosineKernel,
    GaussianKernel,
    InverseMultiquadricKernel,
    LaplaceKernel,
    PolynomialKernel,
)
from .registry import available_matrices, build_matrix, matrix_info

__all__ = [
    "SPDMatrix",
    "DenseSPD",
    "KernelMatrix",
    "CallbackMatrix",
    "GaussianKernel",
    "LaplaceKernel",
    "InverseMultiquadricKernel",
    "PolynomialKernel",
    "CosineKernel",
    "build_matrix",
    "available_matrices",
    "matrix_info",
]
