"""Kernel functions used to build the paper's kernel test matrices.

The paper's K04–K10 are "kernel matrices in six dimensions (Gaussians with
different bandwidths, narrow and wide; Laplacian Green's function,
polynomial and cosine-similarity)", and the machine-learning matrices
(COVTYPE / HIGGS / MNIST) use a Gaussian kernel with a dataset-specific
bandwidth ``h``.

Each kernel is a small callable object: ``kernel(X, Y)`` returns the dense
pairwise block, ``kernel.diagonal(X)`` returns ``k(x, x)`` cheaply.  All of
them are positive (semi-)definite on distinct points; generators that use
potentially rank-deficient kernels add a small diagonal shift when wrapping
them in :class:`repro.matrices.base.KernelMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "pairwise_sq_dists",
    "GaussianKernel",
    "LaplaceKernel",
    "InverseMultiquadricKernel",
    "PolynomialKernel",
    "CosineKernel",
    "MaternKernel",
]


def pairwise_sq_dists(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every row of ``x`` and of ``y``.

    Uses the expansion ``||a-b||² = ||a||² + ||b||² − 2 a·b`` (one GEMM) and
    clips tiny negatives caused by cancellation.  Accepts stacked inputs
    (``(..., p, d)`` against ``(..., k, d)``), returning ``(..., p, k)`` —
    the batched entry evaluator computes a whole group of blocks through
    the same formula as the per-block path.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    xx = np.einsum("...ij,...ij->...i", x, x)[..., :, None]
    yy = np.einsum("...ij,...ij->...i", y, y)[..., None, :]
    d2 = xx + yy - 2.0 * np.matmul(x, np.swapaxes(y, -1, -2))
    np.clip(d2, 0.0, None, out=d2)
    return d2


@dataclass(frozen=True)
class GaussianKernel:
    """Gaussian (RBF) kernel ``k(x, y) = exp(−||x−y||² / (2 h²))``.

    ``bandwidth`` is the paper's ``h``; small ``h`` gives a "narrow" kernel
    whose matrix is nearly diagonal (high off-diagonal rank after
    normalization), large ``h`` gives a "wide", numerically low-rank matrix.
    """

    bandwidth: float = 1.0

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.from_sq_dists(pairwise_sq_dists(x, y))

    def from_sq_dists(self, d2: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Kernel values from squared distances (any shape; enables batching).

        ``out`` receives the values in place (the streamed engine writes
        straight into its chunk buffer); the values are bitwise identical
        either way — only the output memory differs.
        """
        return np.exp(-d2 / (2.0 * self.bandwidth**2), out=out)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        return np.ones(np.atleast_2d(x).shape[0])


@dataclass(frozen=True)
class LaplaceKernel:
    """Exponential ("Laplace") kernel ``k(x, y) = exp(−||x−y|| / h)``.

    Positive definite in every dimension; decays more slowly than the
    Gaussian so its off-diagonal blocks carry higher numerical rank.
    """

    bandwidth: float = 1.0

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.from_sq_dists(pairwise_sq_dists(x, y))

    def from_sq_dists(self, d2: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Kernel values from squared distances (any shape; enables batching)."""
        return np.exp(-np.sqrt(d2) / self.bandwidth, out=out)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        return np.ones(np.atleast_2d(x).shape[0])


@dataclass(frozen=True)
class InverseMultiquadricKernel:
    """Inverse multiquadric ``k(x, y) = (||x−y||² + c²)^(−p/2)``.

    This is the positive-definite stand-in for the "Laplacian Green's
    function" kernel of the paper (a Green's function decays like a negative
    power of distance and blows up at the origin; the ``c²`` shift keeps the
    diagonal finite while preserving the long-range algebraic decay that
    makes these matrices hard for pure low-rank methods).
    """

    shift: float = 1.0
    power: float = 1.0

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.from_sq_dists(pairwise_sq_dists(x, y))

    def from_sq_dists(self, d2: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Kernel values from squared distances (any shape; enables batching)."""
        return np.power(d2 + self.shift**2, -self.power / 2.0, out=out)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        n = np.atleast_2d(x).shape[0]
        return np.full(n, self.shift ** (-self.power))


@dataclass(frozen=True)
class PolynomialKernel:
    """Polynomial kernel ``k(x, y) = (γ x·y + c)^p`` (normalized inputs assumed)."""

    gamma: float = 1.0
    coef0: float = 1.0
    degree: int = 2

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        return (self.gamma * (x @ y.T) + self.coef0) ** self.degree

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        sq = np.einsum("ij,ij->i", x, x)
        return (self.gamma * sq + self.coef0) ** self.degree


@dataclass(frozen=True)
class CosineKernel:
    """Cosine-similarity kernel ``k(x, y) = x·y / (||x|| ||y||)``.

    The Gram matrix of normalized vectors is PSD but typically rank-deficient
    (rank ≤ d), so generators wrapping it in a
    :class:`repro.matrices.base.KernelMatrix` add a diagonal regularization
    there — matching how the paper's angle-similarity matrices must be
    regularized to be strictly SPD.  The ``shift`` field is kept only as a
    label of that convention; the kernel itself is the plain cosine
    similarity (diagonal exactly 1).
    """

    shift: float = 1e-3

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        nx = np.linalg.norm(x, axis=1)
        ny = np.linalg.norm(y, axis=1)
        nx = np.where(nx == 0.0, 1.0, nx)
        ny = np.where(ny == 0.0, 1.0, ny)
        return (x @ y.T) / nx[:, None] / ny[None, :]

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        return np.ones(np.atleast_2d(x).shape[0])


@dataclass(frozen=True)
class MaternKernel:
    """Matérn-3/2 kernel ``k(r) = (1 + √3 r/h) exp(−√3 r/h)``.

    Not used by the paper's testbed directly but exercised by the extension
    benchmarks; it sits between the Gaussian (smooth, fast rank decay) and
    the exponential (rough, slow rank decay).
    """

    bandwidth: float = 1.0

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.from_sq_dists(pairwise_sq_dists(x, y))

    def from_sq_dists(self, d2: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Kernel values from squared distances (any shape; enables batching)."""
        scaled = np.sqrt(3.0) * np.sqrt(d2) / self.bandwidth
        return np.multiply(1.0 + scaled, np.exp(-scaled), out=out)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        return np.ones(np.atleast_2d(x).shape[0])
