"""The entry-evaluation interface consumed by GOFMM and the baselines.

The compression algorithm never needs the whole matrix: it needs a routine
that returns ``K[I, J]`` for arbitrary row/column index sets, plus the
diagonal (for the Gram distances of §2.1).  :class:`SPDMatrix` captures that
contract and adds bookkeeping (how many entries were evaluated) so the
benchmark harness can report sampling cost alongside wall-clock time.

Three concrete implementations cover every use in the repo:

* :class:`DenseSPD` wraps an explicit ``N × N`` array (the test matrices
  K02–K18 and G01–G05 are generated densely at laptop scale),
* :class:`KernelMatrix` evaluates ``K_ij = k(x_i, x_j)`` on the fly from a
  point set and a kernel function (the machine-learning matrices),
* :class:`CallbackMatrix` adapts an arbitrary ``f(I, J) -> K[I, J]``
  callable, the fully matrix-free case.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import NotSPDError
from .kernels import pairwise_sq_dists

__all__ = ["SPDMatrix", "DenseSPD", "KernelMatrix", "CallbackMatrix", "as_spd_matrix"]


#: Per-block element cap of the vectorized kernel batch path: blocks above
#: this stay cache-resident in per-block evaluation but would turn the
#: stacked distance/kernel temporaries into main-memory traffic.
_KERNEL_BATCH_MAX_BLOCK_ELEMENTS = 8192


def _as_index_array(indices: Sequence[int] | np.ndarray) -> np.ndarray:
    out = np.asarray(indices, dtype=np.intp)
    if out.ndim == 0:
        out = out.reshape(1)
    return out


class SPDMatrix(ABC):
    """Abstract SPD matrix accessed through entry evaluation.

    Subclasses must implement :meth:`entries` and :attr:`shape`; everything
    else (diagonal, rows, dense materialization, matvec) has a default
    implementation in terms of those.

    Attributes
    ----------
    entry_evaluations:
        running count of scalar entries served, used by benchmarks to report
        the sampling cost of compression.
    """

    def __init__(self) -> None:
        self.entry_evaluations: int = 0

    # -- required interface ------------------------------------------------
    @property
    @abstractmethod
    def shape(self) -> tuple[int, int]:
        """Matrix dimensions ``(N, N)``."""

    @abstractmethod
    def _entries(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Return the dense block ``K[rows][:, cols]`` without bookkeeping."""

    # -- optional geometric side information --------------------------------
    @property
    def coordinates(self) -> Optional[np.ndarray]:
        """Point coordinates ``(N, d)`` when available, else ``None``.

        GOFMM does not require them; when present they enable the
        geometric-ℓ2 distance (the paper's geometry-aware reference).
        """
        return None

    # -- derived operations --------------------------------------------------
    @property
    def n(self) -> int:
        return self.shape[0]

    def entries(self, rows: Sequence[int] | np.ndarray, cols: Sequence[int] | np.ndarray) -> np.ndarray:
        """Dense block ``K[rows][:, cols]`` as a ``(len(rows), len(cols))`` array."""
        rows = _as_index_array(rows)
        cols = _as_index_array(cols)
        self.entry_evaluations += rows.size * cols.size
        block = np.asarray(self._entries(rows, cols), dtype=np.float64)
        if block.shape != (rows.size, cols.size):
            block = block.reshape(rows.size, cols.size)
        return block

    def entries_batched(
        self,
        row_sets: Sequence[np.ndarray],
        col_sets: Sequence[np.ndarray],
        out: Optional[np.ndarray] = None,
    ) -> list[np.ndarray]:
        """Dense blocks ``K[rows_i][:, cols_i]`` for several index sets at once.

        The batched compression backend evaluates one tree level's sampled
        blocks through this entry point, and the streamed evaluation engine
        materializes its chunks here — **from several worker threads
        concurrently** (its chunk pipeline): implementations, including
        :meth:`entries` overrides this default delegates to, must be
        thread-safe for concurrent reads.  The built-in matrix classes are
        (pure functions of immutable state); a custom subclass that
        memoizes or wraps a non-reentrant library must either lock
        internally or avoid the streamed engine.  The default simply loops
        over :meth:`entries`; matrix classes with vectorizable entry formulas
        (:class:`KernelMatrix` for distance-based kernels) override it to
        evaluate the whole batch with a handful of stacked array
        operations.  Overrides must produce the same values and account
        the same ``entry_evaluations`` as the per-block loop.

        ``out``, when given, is a preallocated ``(len(row_sets), p, k)``
        array receiving the blocks (all index sets must then share the
        shape ``(p, k)``); the returned list holds views into it.  The
        values are identical with or without ``out`` — it only lets
        callers that own a reusable workspace (the streamed engine's chunk
        buffers) skip one allocation + copy per block.
        """
        if out is None:
            return [self.entries(rows, cols) for rows, cols in zip(row_sets, col_sets)]
        for i, (rows, cols) in enumerate(zip(row_sets, col_sets)):
            out[i] = self.entries(rows, cols)
        return [out[i] for i in range(len(row_sets))]

    def diagonal(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Diagonal entries ``K_ii`` for the given indices (all by default)."""
        if indices is None:
            indices = np.arange(self.n, dtype=np.intp)
        else:
            indices = _as_index_array(indices)
        self.entry_evaluations += indices.size
        return self._diagonal(indices)

    def _diagonal(self, indices: np.ndarray) -> np.ndarray:
        # Default: evaluate one entry at a time via the block interface.
        out = np.empty(indices.size, dtype=np.float64)
        for k, i in enumerate(indices):
            out[k] = self._entries(np.array([i], dtype=np.intp), np.array([i], dtype=np.intp))[0, 0]
        return out

    def rows(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Full rows ``K[indices, :]`` (used by the sampled ε2 estimator)."""
        return self.entries(indices, np.arange(self.n, dtype=np.intp))

    def to_dense(self) -> np.ndarray:
        """Materialize the full matrix (only sensible at test scale)."""
        idx = np.arange(self.n, dtype=np.intp)
        return self.entries(idx, idx)

    def matvec(self, w: np.ndarray) -> np.ndarray:
        """Exact product ``K @ w`` (O(N²); reference for accuracy checks)."""
        return self.to_dense() @ np.asarray(w, dtype=np.float64)

    def reset_counter(self) -> None:
        self.entry_evaluations = 0

    # -- validation ----------------------------------------------------------
    def validate_spd(self, sample: int = 64, rng: Optional[np.random.Generator] = None) -> None:
        """Cheap SPD sanity check: positive diagonal and symmetric sampled entries.

        A full eigenvalue check is O(N³); this samples entries so it is
        usable inside the compression path (and by tests).  Raises
        :class:`NotSPDError` on violation.
        """
        rng = rng or np.random.default_rng(0)
        n = self.n
        idx = rng.choice(n, size=min(sample, n), replace=False)
        diag = self.diagonal(idx)
        if np.any(diag <= 0.0) or not np.all(np.isfinite(diag)):
            raise NotSPDError("matrix has non-positive or non-finite diagonal entries")
        block = self.entries(idx, idx)
        if not np.allclose(block, block.T, rtol=1e-8, atol=1e-10 * max(1.0, float(np.abs(block).max()))):
            raise NotSPDError("sampled block is not symmetric")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class DenseSPD(SPDMatrix):
    """SPD matrix stored as an explicit dense array.

    Parameters
    ----------
    matrix:
        the ``N × N`` symmetric array.
    coordinates:
        optional point coordinates associated with the rows/columns.
    validate:
        if true, check symmetry on construction (cheap relative to having
        built the dense matrix in the first place).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        coordinates: Optional[np.ndarray] = None,
        validate: bool = True,
        name: str = "dense",
    ) -> None:
        super().__init__()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise NotSPDError(f"expected a square matrix, got shape {matrix.shape}")
        if validate and not np.allclose(matrix, matrix.T, rtol=1e-8, atol=1e-10 * max(1.0, float(np.abs(matrix).max()))):
            raise NotSPDError("matrix is not symmetric")
        self._matrix = matrix
        self._coords = None if coordinates is None else np.asarray(coordinates, dtype=np.float64)
        self.name = name

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    @property
    def coordinates(self) -> Optional[np.ndarray]:
        return self._coords

    def _entries(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return self._matrix[np.ix_(rows, cols)]

    def _diagonal(self, indices: np.ndarray) -> np.ndarray:
        return np.diag(self._matrix)[indices].astype(np.float64)

    def to_dense(self) -> np.ndarray:
        self.entry_evaluations += self.n * self.n
        return self._matrix.copy()

    def matvec(self, w: np.ndarray) -> np.ndarray:
        return self._matrix @ np.asarray(w, dtype=np.float64)

    @property
    def array(self) -> np.ndarray:
        """Read-only view of the underlying dense array (no bookkeeping)."""
        return self._matrix


class KernelMatrix(SPDMatrix):
    """Kernel matrix ``K_ij = k(x_i, x_j)`` evaluated lazily from points.

    Parameters
    ----------
    points:
        ``(N, d)`` array of coordinates.
    kernel:
        a kernel object from :mod:`repro.matrices.kernels` exposing
        ``__call__(X, Y) -> pairwise kernel block`` and ``diagonal(X)``.
    regularization:
        value added to the diagonal (``K + λ I``); kernel matrices of
        clustered data are frequently numerically rank-deficient and a small
        shift keeps them safely SPD, matching common practice.
    """

    def __init__(
        self,
        points: np.ndarray,
        kernel: Callable[[np.ndarray, np.ndarray], np.ndarray],
        regularization: float = 0.0,
        name: str = "kernel",
    ) -> None:
        super().__init__()
        self._points = np.asarray(points, dtype=np.float64)
        if self._points.ndim != 2:
            raise NotSPDError("points must be a 2-D array (N, d)")
        self._kernel = kernel
        self._reg = float(regularization)
        self.name = name

    @property
    def shape(self) -> tuple[int, int]:
        n = self._points.shape[0]
        return (n, n)

    @property
    def coordinates(self) -> np.ndarray:
        return self._points

    @property
    def kernel(self):
        return self._kernel

    def _entries(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        block = self._kernel(self._points[rows], self._points[cols])
        if self._reg != 0.0:
            same = rows[:, None] == cols[None, :]
            if np.any(same):
                block = block + self._reg * same
        return block

    def entries_batched(
        self,
        row_sets: Sequence[np.ndarray],
        col_sets: Sequence[np.ndarray],
        out: Optional[np.ndarray] = None,
    ) -> list[np.ndarray]:
        """Stacked evaluation of many blocks for distance-based kernels.

        Kernels exposing ``from_sq_dists`` (Gaussian, Laplace, inverse
        multiquadric, Matérn) are a pointwise function of the pairwise
        squared distances, so a batch of same-shape blocks reduces to one
        stacked GEMM plus one vectorized kernel application — the entry
        values (and the ``entry_evaluations`` count) are identical to the
        per-block loop, which remains the fallback for dot-product
        kernels.  Mixed-shape batches are grouped by shape first.

        With ``out`` (a same-shape batch from the streamed engine) the
        kernel values are written directly into the caller's buffer —
        ``from_sq_dists(..., out=...)`` — skipping the stacked result
        allocation and the per-block copies.
        """
        from_sq_dists = getattr(self._kernel, "from_sq_dists", None)
        if from_sq_dists is None or len(row_sets) < 2:
            return super().entries_batched(row_sets, col_sets, out=out)

        if (
            isinstance(row_sets, np.ndarray) and row_sets.ndim == 2
            and isinstance(col_sets, np.ndarray) and col_sets.ndim == 2
            and 0 < row_sets.shape[1] * col_sets.shape[1] <= _KERNEL_BATCH_MAX_BLOCK_ELEMENTS
        ):
            # Pre-stacked same-shape batch (the streamed engine's hot path):
            # one distance GEMM + one kernel application, no regrouping.
            self.entry_evaluations += row_sets.size * col_sets.shape[1]
            blocks, direct = self._stacked_kernel_blocks(from_sq_dists, row_sets, col_sets, out)
            if out is not None and not direct:
                for g in range(len(row_sets)):
                    out[g] = blocks[g]
                return [out[g] for g in range(len(row_sets))]
            return [blocks[g] for g in range(len(row_sets))]

        row_sets = [np.asarray(r, dtype=np.intp) for r in row_sets]
        col_sets = [np.asarray(c, dtype=np.intp) for c in col_sets]
        groups: dict[tuple[int, int], list[int]] = {}
        for i, (rows, cols) in enumerate(zip(row_sets, col_sets)):
            groups.setdefault((rows.size, cols.size), []).append(i)

        results: list[Optional[np.ndarray]] = [None] * len(row_sets)
        for (p, k), members in groups.items():
            if p * k > _KERNEL_BATCH_MAX_BLOCK_ELEMENTS or len(members) < 2:
                # Large blocks: the stacked temporaries (distances, kernel
                # values) fall out of cache and lose to per-block calls.
                for i in members:
                    results[i] = self.entries(row_sets[i], col_sets[i])
                    if out is not None:
                        out[i] = results[i]
                        results[i] = out[i]
                continue
            self.entry_evaluations += len(members) * p * k
            if p == 0 or k == 0:
                for i in members:
                    results[i] = np.zeros((p, k))
                continue
            rows = np.stack([row_sets[i] for i in members])
            cols = np.stack([col_sets[i] for i in members])
            # Only a single shape group covering the whole batch may write
            # straight into the caller's buffer (group order == out order).
            whole = out is not None and len(members) == len(row_sets)
            blocks, direct = self._stacked_kernel_blocks(
                from_sq_dists, rows, cols, out if whole else None
            )
            if direct:
                for g, i in enumerate(members):
                    results[i] = out[i]
            else:
                for g, i in enumerate(members):
                    if out is not None:
                        out[i] = blocks[g]
                        results[i] = out[i]
                    else:
                        results[i] = blocks[g]
        return results  # type: ignore[return-value]

    def _stacked_kernel_blocks(
        self,
        from_sq_dists,
        rows: np.ndarray,
        cols: np.ndarray,
        out: Optional[np.ndarray],
    ) -> tuple[np.ndarray, bool]:
        """Kernel values of one stacked ``(g, p) × (g, k)`` index batch.

        Writes into ``out`` when given and the kernel supports it (returns
        ``direct=True``); the values — including the diagonal
        regularization, applied in place — are bitwise identical either
        way.  Both ``entries_batched`` paths evaluate through this one
        helper so they can never drift apart.
        """
        d2 = pairwise_sq_dists(self._points[rows], self._points[cols])
        direct = out is not None
        if direct:
            try:
                blocks = np.asarray(from_sq_dists(d2, out=out), dtype=np.float64)
            except TypeError:  # custom kernel without an out parameter
                direct = False
            else:
                # Trust the buffer only if the kernel really wrote it: a
                # kernel that accepts ``out`` but returns a fresh array (or
                # a non-float64 one that asarray had to copy) must fall
                # back to the copy path, not hand out uninitialized memory.
                direct = blocks is out
        if not direct:
            blocks = np.asarray(from_sq_dists(d2), dtype=np.float64)
        if self._reg != 0.0:
            same = rows[:, :, None] == cols[:, None, :]
            if np.any(same):
                np.add(blocks, self._reg * same, out=blocks)
        return blocks, direct

    def _diagonal(self, indices: np.ndarray) -> np.ndarray:
        diag_fn = getattr(self._kernel, "diagonal", None)
        if diag_fn is not None:
            diag = np.asarray(diag_fn(self._points[indices]), dtype=np.float64)
        else:
            x = self._points[indices]
            diag = np.array([self._kernel(x[k : k + 1], x[k : k + 1])[0, 0] for k in range(indices.size)])
        return diag + self._reg


class CallbackMatrix(SPDMatrix):
    """Matrix defined purely by a submatrix callback ``f(rows, cols)``.

    This is the fully geometry-oblivious, matrix-free case: GOFMM only sees
    entry values.
    """

    def __init__(
        self,
        entry_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        n: int,
        coordinates: Optional[np.ndarray] = None,
        name: str = "callback",
    ) -> None:
        super().__init__()
        if n < 1:
            raise NotSPDError("matrix dimension must be positive")
        self._fn = entry_fn
        self._n = int(n)
        self._coords = None if coordinates is None else np.asarray(coordinates, dtype=np.float64)
        self.name = name

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    @property
    def coordinates(self) -> Optional[np.ndarray]:
        return self._coords

    def _entries(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return np.asarray(self._fn(rows, cols), dtype=np.float64)


def as_spd_matrix(obj) -> SPDMatrix:
    """Coerce an object into the :class:`SPDMatrix` interface.

    Accepts an existing :class:`SPDMatrix`, a dense ``numpy`` array, or a
    tuple ``(callback, n)``.
    """
    if isinstance(obj, SPDMatrix):
        return obj
    if isinstance(obj, np.ndarray):
        return DenseSPD(obj)
    if isinstance(obj, tuple) and len(obj) == 2 and callable(obj[0]):
        return CallbackMatrix(obj[0], int(obj[1]))
    raise TypeError(f"cannot interpret {type(obj)!r} as an SPD matrix")
