"""Graph-Laplacian test matrices (the paper's G01–G05).

The paper compresses the (regularized) *inverse* Laplacian of five sparse
graphs from the UFL collection — powersim (power grid), poli_large
(economics), rgg_n_2_16_s0 (random geometric graph), denormal, and
conf6_0-8x8-30 (lattice QCD).  These are the headline "no coordinates
available" cases: a dense SPD matrix with no geometric side information.

Those exact graphs are not downloadable offline, so each generator here
builds a synthetic graph of the same structural family with ``networkx`` and
returns ``K = (L + σ D_avg I)^{-1}`` densely, which is SPD because
``L + σ I`` is.  The inverse is computed through a sparse factorization of
the shifted Laplacian, exactly how a user of the real graphs would obtain
entry evaluations.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx
import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import MatrixDefinitionError
from .base import DenseSPD

__all__ = [
    "inverse_graph_laplacian",
    "power_grid_graph",
    "economic_network_graph",
    "random_geometric_graph",
    "near_regular_graph",
    "lattice_qcd_like_graph",
    "graph_matrix",
]


def _connected(graph: nx.Graph) -> nx.Graph:
    """Return the largest connected component with nodes relabelled 0..n-1."""
    if graph.number_of_nodes() == 0:
        raise MatrixDefinitionError("graph has no nodes")
    if not nx.is_connected(graph):
        component = max(nx.connected_components(graph), key=len)
        graph = graph.subgraph(component).copy()
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def power_grid_graph(n: int, seed: int = 0) -> nx.Graph:
    """Sparse, tree-like graph with a few redundancy edges (powersim-like)."""
    rng = np.random.default_rng(seed)
    graph = nx.random_labeled_tree(n, seed=seed)
    extra = max(1, n // 20)
    nodes = np.arange(n)
    for _ in range(extra):
        u, v = rng.choice(nodes, size=2, replace=False)
        graph.add_edge(int(u), int(v))
    return _connected(graph)

def economic_network_graph(n: int, seed: int = 0) -> nx.Graph:
    """Heavy-tailed-degree graph (poli_large-like) via powerlaw cluster model."""
    m = max(1, min(3, n - 1))
    graph = nx.powerlaw_cluster_graph(n, m, 0.3, seed=seed)
    return _connected(graph)


def random_geometric_graph(n: int, seed: int = 0) -> nx.Graph:
    """Random geometric graph in the unit square (rgg_n_2_16_s0-like)."""
    radius = np.sqrt(4.0 / max(n, 2))  # ~4 expected neighbors, stays connected after LCC
    graph = nx.random_geometric_graph(n, radius, seed=seed)
    return _connected(graph)


def near_regular_graph(n: int, seed: int = 0) -> nx.Graph:
    """Nearly-regular expander-ish graph (denormal-like banded structure)."""
    k = min(6, max(2, n - 1))
    if k % 2 == 1:
        k -= 1
    graph = nx.connected_watts_strogatz_graph(n, max(k, 2), 0.05, seed=seed)
    return _connected(graph)


def lattice_qcd_like_graph(n: int, seed: int = 0) -> nx.Graph:
    """Periodic 4D lattice graph (conf6_0-8x8-30-like)."""
    side = max(2, int(round(n ** 0.25)))
    dims = [side, side, side, max(2, int(np.ceil(n / side**3)))]
    graph = nx.grid_graph(dim=dims, periodic=True)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    if graph.number_of_nodes() > n:
        graph = graph.subgraph(range(n)).copy()
    return _connected(graph)


_GRAPH_BUILDERS: dict[str, Callable[[int, int], nx.Graph]] = {
    "G01": power_grid_graph,
    "G02": economic_network_graph,
    "G03": random_geometric_graph,
    "G04": near_regular_graph,
    "G05": lattice_qcd_like_graph,
}


def inverse_graph_laplacian(
    graph: nx.Graph,
    shift: float = 1e-2,
    n_target: int | None = None,
    name: str = "graph",
) -> DenseSPD:
    """Dense SPD matrix ``(L + σ d̄ I)^{-1}`` for the given graph.

    ``L`` is the combinatorial Laplacian, ``d̄`` the average degree, and the
    shift ``σ d̄`` regularizes the singular Laplacian.  The result carries
    **no coordinates** on purpose: it is the geometry-oblivious test case.
    """
    n = graph.number_of_nodes()
    lap = nx.laplacian_matrix(graph).astype(np.float64).tocsc()
    avg_degree = float(lap.diagonal().mean()) if n else 1.0
    shifted = (lap + shift * max(avg_degree, 1.0) * sp.identity(n, format="csc")).tocsc()
    solver = spla.factorized(shifted)
    keep = n if n_target is None else min(n_target, n)
    cols = np.column_stack([solver(np.eye(n, 1, -j).ravel()) for j in range(keep)])
    dense = cols[:keep, :]
    dense = 0.5 * (dense + dense.T)
    dense /= max(np.abs(dense).max(), np.finfo(np.float64).tiny)
    return DenseSPD(dense, coordinates=None, validate=False, name=name)


def graph_matrix(which: str, n: int, seed: int = 0, shift: float = 1e-2) -> DenseSPD:
    """Build one of the G01–G05 emulated inverse graph Laplacians at size ``n``."""
    key = which.upper()
    if key not in _GRAPH_BUILDERS:
        raise MatrixDefinitionError(f"unknown graph matrix {which!r}; expected one of {sorted(_GRAPH_BUILDERS)}")
    # Build slightly larger than requested so the largest connected component
    # still has at least n nodes, then truncate.
    oversize = int(np.ceil(n * 1.1)) + 4
    graph = _GRAPH_BUILDERS[key](oversize, seed)
    if graph.number_of_nodes() < n:
        graph = _GRAPH_BUILDERS[key](2 * oversize, seed)
    return inverse_graph_laplacian(graph, shift=shift, n_target=n, name=key)
