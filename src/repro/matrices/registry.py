"""The named SPD matrix testbed: K02–K18, G01–G05, and the ML kernel matrices.

The paper's evaluation runs on 22 generated matrices plus three machine
learning kernel matrices (§3).  This registry maps each name to a generator
function of signature ``(n, seed) -> SPDMatrix`` together with descriptive
metadata so benchmarks can iterate over the whole testbed by name.

The matrices are grouped exactly as in §3:

* K02–K03      inverse (squared) elliptic / Helmholtz operators ("Hessians"),
* K04–K10      kernel matrices on 6-D points (Gaussians of various
               bandwidths, Green's-like, polynomial, cosine similarity),
* K12–K14      variable-coefficient advection–diffusion operators,
* K15–K17      pseudo-spectral operators (high off-diagonal rank),
* K18          3D inverse squared Laplacian with variable coefficients,
* G01–G05      inverse graph Laplacians with no coordinates,
* covtype / higgs / mnist   Gaussian-kernel matrices on ML-like point clouds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import MatrixDefinitionError
from .base import KernelMatrix, SPDMatrix
from .datasets import DATASETS, clustered_points, covtype_like, higgs_like, mnist_like
from .graphs import graph_matrix
from .kernels import (
    CosineKernel,
    GaussianKernel,
    InverseMultiquadricKernel,
    LaplaceKernel,
    PolynomialKernel,
)
from .spectral import pseudo_spectral_adr_2d, pseudo_spectral_3d
from .stencils import (
    advection_diffusion_matrix,
    inverse_squared_laplacian_3d,
    regularized_inverse_helmholtz_squared_2d,
    regularized_inverse_squared_laplacian_2d,
)

__all__ = ["MatrixInfo", "build_matrix", "available_matrices", "matrix_info", "MATRIX_GROUPS"]


@dataclass(frozen=True)
class MatrixInfo:
    """Metadata describing one entry of the testbed."""

    name: str
    description: str
    group: str
    has_coordinates: bool
    default_n: int
    compresses_well: bool


def _points_6d(n: int, seed: int) -> np.ndarray:
    """6-D point cloud used by the kernel matrices K04–K10 (clustered, low intrinsic dim)."""
    return clustered_points(n, ambient_dim=6, intrinsic_dim=3, clusters=4, seed=seed)


def _kernel_matrix(n: int, seed: int, kernel, name: str, regularization: float = 1e-6) -> KernelMatrix:
    pts = _points_6d(n, seed)
    return KernelMatrix(pts, kernel, regularization=regularization, name=name)


_BUILDERS: dict[str, Callable[[int, int], SPDMatrix]] = {
    # -- inverse elliptic operators (Hessian-like) --------------------------
    "K02": lambda n, seed: regularized_inverse_squared_laplacian_2d(n, name="K02"),
    "K03": lambda n, seed: regularized_inverse_helmholtz_squared_2d(n, name="K03"),
    # -- 6-D kernel matrices -------------------------------------------------
    "K04": lambda n, seed: _kernel_matrix(n, seed, GaussianKernel(bandwidth=1.0), "K04"),
    "K05": lambda n, seed: _kernel_matrix(n, seed, GaussianKernel(bandwidth=3.0), "K05"),
    "K06": lambda n, seed: _kernel_matrix(n, seed, GaussianKernel(bandwidth=0.15), "K06", regularization=1e-3),
    "K07": lambda n, seed: _kernel_matrix(n, seed, InverseMultiquadricKernel(shift=1.0, power=1.0), "K07"),
    "K08": lambda n, seed: _kernel_matrix(n, seed, InverseMultiquadricKernel(shift=0.5, power=2.0), "K08"),
    "K09": lambda n, seed: _kernel_matrix(n, seed, PolynomialKernel(gamma=1.0 / 6.0, coef0=1.0, degree=2), "K09", regularization=1e-3),
    "K10": lambda n, seed: _kernel_matrix(n, seed, CosineKernel(shift=1e-2), "K10", regularization=1e-2),
    "K11": lambda n, seed: _kernel_matrix(n, seed, LaplaceKernel(bandwidth=1.0), "K11"),
    # -- advection–diffusion operators ---------------------------------------
    "K12": lambda n, seed: advection_diffusion_matrix(n, diffusion_contrast=100.0, advection_strength=5.0, seed=seed, invert=True, name="K12"),
    "K13": lambda n, seed: advection_diffusion_matrix(n, diffusion_contrast=1000.0, advection_strength=20.0, seed=seed + 1, invert=True, name="K13"),
    "K14": lambda n, seed: advection_diffusion_matrix(n, diffusion_contrast=10000.0, advection_strength=50.0, seed=seed + 2, invert=False, name="K14"),
    # -- pseudo-spectral operators (high rank) --------------------------------
    "K15": lambda n, seed: pseudo_spectral_adr_2d(n, advection=5.0, contrast=50.0, seed=seed, name="K15"),
    "K16": lambda n, seed: pseudo_spectral_adr_2d(n, advection=20.0, contrast=200.0, seed=seed + 1, name="K16"),
    "K17": lambda n, seed: pseudo_spectral_3d(n, contrast=20.0, seed=seed, name="K17"),
    # -- 3D inverse squared Laplacian -----------------------------------------
    "K18": lambda n, seed: inverse_squared_laplacian_3d(n, contrast=10.0, seed=seed, name="K18"),
    # -- graph Laplacians ------------------------------------------------------
    "G01": lambda n, seed: graph_matrix("G01", n, seed),
    "G02": lambda n, seed: graph_matrix("G02", n, seed),
    "G03": lambda n, seed: graph_matrix("G03", n, seed),
    "G04": lambda n, seed: graph_matrix("G04", n, seed),
    "G05": lambda n, seed: graph_matrix("G05", n, seed),
    # -- machine-learning kernel matrices --------------------------------------
    "covtype": lambda n, seed: KernelMatrix(
        covtype_like(n, seed), GaussianKernel(bandwidth=DATASETS["covtype"].default_bandwidth), regularization=1e-6, name="covtype"
    ),
    "higgs": lambda n, seed: KernelMatrix(
        higgs_like(n, seed), GaussianKernel(bandwidth=DATASETS["higgs"].default_bandwidth), regularization=1e-6, name="higgs"
    ),
    "mnist": lambda n, seed: KernelMatrix(
        mnist_like(n, seed), GaussianKernel(bandwidth=DATASETS["mnist"].default_bandwidth), regularization=1e-6, name="mnist"
    ),
}


_INFO: dict[str, MatrixInfo] = {
    "K02": MatrixInfo("K02", "2D regularized inverse Laplacian squared (PDE-constrained Hessian)", "hessian", True, 4096, True),
    "K03": MatrixInfo("K03", "2D regularized inverse Helmholtz squared, 10 points/wavelength", "hessian", True, 4096, True),
    "K04": MatrixInfo("K04", "Gaussian kernel in 6D, moderate bandwidth", "kernel6d", True, 4096, True),
    "K05": MatrixInfo("K05", "Gaussian kernel in 6D, wide bandwidth", "kernel6d", True, 4096, True),
    "K06": MatrixInfo("K06", "Gaussian kernel in 6D, narrow bandwidth (high rank)", "kernel6d", True, 4096, False),
    "K07": MatrixInfo("K07", "Green's-function-like inverse multiquadric kernel in 6D", "kernel6d", True, 4096, True),
    "K08": MatrixInfo("K08", "Steeper inverse multiquadric kernel in 6D", "kernel6d", True, 4096, True),
    "K09": MatrixInfo("K09", "Polynomial kernel (degree 2) in 6D", "kernel6d", True, 4096, True),
    "K10": MatrixInfo("K10", "Cosine-similarity kernel in 6D", "kernel6d", True, 4096, True),
    "K11": MatrixInfo("K11", "Exponential (Laplace) kernel in 6D", "kernel6d", True, 4096, True),
    "K12": MatrixInfo("K12", "2D variable-coefficient advection-diffusion, inverse normal form", "advection", True, 4096, True),
    "K13": MatrixInfo("K13", "2D advection-diffusion, higher contrast (rank easily underestimated)", "advection", True, 4096, True),
    "K14": MatrixInfo("K14", "2D advection-diffusion operator (forward normal form)", "advection", True, 4096, True),
    "K15": MatrixInfo("K15", "2D pseudo-spectral advection-diffusion-reaction (high rank)", "spectral", True, 4096, False),
    "K16": MatrixInfo("K16", "2D pseudo-spectral ADR, stronger advection (high rank)", "spectral", True, 4096, False),
    "K17": MatrixInfo("K17", "3D pseudo-spectral operator with variable coefficients (high rank)", "spectral", True, 4096, False),
    "K18": MatrixInfo("K18", "3D inverse squared Laplacian with variable coefficients", "hessian", True, 4096, True),
    "G01": MatrixInfo("G01", "inverse Laplacian of a power-grid-like graph (no coordinates)", "graph", False, 4096, True),
    "G02": MatrixInfo("G02", "inverse Laplacian of a heavy-tailed economic-network-like graph", "graph", False, 4096, True),
    "G03": MatrixInfo("G03", "inverse Laplacian of a random geometric graph", "graph", False, 4096, True),
    "G04": MatrixInfo("G04", "inverse Laplacian of a near-regular small-world graph", "graph", False, 4096, True),
    "G05": MatrixInfo("G05", "inverse Laplacian of a periodic 4D lattice (QCD-like)", "graph", False, 4096, True),
    "covtype": MatrixInfo("covtype", "Gaussian kernel on COVTYPE-like 54D points", "ml", True, 8192, True),
    # The paper itself only reaches eps2 ~ 2e-1 on HIGGS (Table 5, #32-#34):
    # the narrow bandwidth relative to the point spread makes it a hard case.
    "higgs": MatrixInfo("higgs", "Gaussian kernel on HIGGS-like 28D points (narrow bandwidth, hard)", "ml", True, 8192, False),
    "mnist": MatrixInfo("mnist", "Gaussian kernel on MNIST-like 780D points", "ml", True, 8192, True),
}

MATRIX_GROUPS: dict[str, list[str]] = {}
for _name, _info in _INFO.items():
    MATRIX_GROUPS.setdefault(_info.group, []).append(_name)


def available_matrices(group: str | None = None) -> list[str]:
    """Names of the matrices in the testbed (optionally restricted to one group)."""
    if group is None:
        return sorted(_BUILDERS)
    if group not in MATRIX_GROUPS:
        raise MatrixDefinitionError(f"unknown matrix group {group!r}; expected one of {sorted(MATRIX_GROUPS)}")
    return sorted(MATRIX_GROUPS[group])


def matrix_info(name: str) -> MatrixInfo:
    """Metadata for one named matrix."""
    if name not in _INFO:
        raise MatrixDefinitionError(f"unknown matrix {name!r}; expected one of {sorted(_INFO)}")
    return _INFO[name]


def build_matrix(name: str, n: int, seed: int = 0) -> SPDMatrix:
    """Construct the named test matrix at size ``n``.

    Raises :class:`MatrixDefinitionError` for unknown names or invalid sizes.
    """
    if name not in _BUILDERS:
        raise MatrixDefinitionError(f"unknown matrix {name!r}; expected one of {sorted(_BUILDERS)}")
    if n < 4:
        raise MatrixDefinitionError(f"matrix size must be at least 4, got {n}")
    return _BUILDERS[name](int(n), int(seed))
