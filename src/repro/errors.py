"""Exception hierarchy for the GOFMM reproduction.

All library-raised exceptions derive from :class:`GOFMMError` so callers can
catch everything the package raises with a single ``except`` clause while the
more specific subclasses carry enough context to act on programmatically.
"""

from __future__ import annotations

__all__ = [
    "GOFMMError",
    "ConfigurationError",
    "NotSPDError",
    "CompressionError",
    "ArtifactMismatchError",
    "StorageError",
    "StorageRetryExhaustedError",
    "SpillCapacityError",
    "RankDeficiencyError",
    "EvaluationError",
    "SchedulingError",
    "ExecutorStallError",
    "WorkerCrashError",
    "MatrixDefinitionError",
    "ServingError",
    "ServingConfigError",
    "ServerOverloadedError",
    "DeadlineExceededError",
    "ShardUnavailableError",
]


class GOFMMError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(GOFMMError, ValueError):
    """A user-supplied parameter is invalid or inconsistent.

    Raised at configuration time (before any expensive work) so parameter
    mistakes are surfaced immediately.
    """


class NotSPDError(GOFMMError, ValueError):
    """The supplied matrix violates a symmetric-positive-definite requirement.

    GOFMM's Gram distances (kernel / angle) are only proper metrics when the
    input is SPD; a non-positive diagonal entry, for instance, makes the
    Gram-space geometry ill-defined.
    """


class CompressionError(GOFMMError, RuntimeError):
    """The compression phase failed to produce a usable hierarchical matrix."""


class ArtifactMismatchError(CompressionError, ConfigurationError):
    """A persisted artifact cannot be installed into the current session.

    Raised by ``Session.load_artifacts`` / the operator store when a file's
    stage fingerprints do not match the loading config, or when the file
    itself is truncated, hand-edited, or otherwise fails the trust-boundary
    validation.  Subclasses both :class:`CompressionError` (the historical
    type, so existing handlers keep working) and
    :class:`ConfigurationError` (it is a configuration-level mistake:
    pointing a session at artifacts built under a different config).
    """


class StorageError(GOFMMError, RuntimeError):
    """The out-of-core storage layer was used in an invalid state.

    A closed spill arena, a write into a read-only stored block provider,
    an object that cannot be interpreted as a panel source/sink.
    """


class StorageRetryExhaustedError(StorageError):
    """A transient storage read kept failing past the retry budget.

    Raised by :func:`repro.storage.store.read_array_dir` once a manifest or
    array read has failed with a *transient* ``OSError`` (EIO, EAGAIN,
    ESTALE, ...) ``storage_read_retries + 1`` times in a row.  Distinct from
    :class:`ArtifactMismatchError`: the artifact may be perfectly valid —
    the device serving it is not.  ``attempts`` counts the reads performed.
    """

    def __init__(self, message: str, path: str = "", attempts: int = 0) -> None:
        super().__init__(message)
        self.path = str(path)
        self.attempts = int(attempts)


class SpillCapacityError(StorageError):
    """The spill arena's backing device is out of space (ENOSPC).

    Raised by :meth:`repro.storage.spill.SpillArena.allocate` (and the
    eviction flush) when the filesystem refuses the write.  The streamed
    engine catches it and — when ``spill_degrade_to_heap`` is set — falls
    back to heap chunk buffers instead of dying mid-matvec.
    """


class RankDeficiencyError(CompressionError):
    """A skeletonization produced an empty or invalid skeleton.

    Typically means a leaf's off-diagonal block is numerically zero, or the
    sampling set was degenerate.
    """


class EvaluationError(GOFMMError, RuntimeError):
    """The evaluation (matvec) phase was invoked in an invalid state."""


class SchedulingError(GOFMMError, RuntimeError):
    """The task runtime was given an inconsistent DAG or machine model."""


class ExecutorStallError(SchedulingError):
    """The executor's stall watchdog abandoned a run.

    Subclasses :class:`SchedulingError` (and therefore ``RuntimeError`` and
    :class:`GOFMMError`), so existing handlers keep working, but carries
    the identities of the tasks that were in flight when the watchdog
    fired — the first one is exposed as :attr:`task_label` for log lines
    and dashboards.
    """

    def __init__(self, message: str, stalled_tasks: tuple = ()) -> None:
        super().__init__(message)
        self.stalled_tasks = tuple(str(t) for t in stalled_tasks)

    @property
    def task_label(self) -> str:
        """The first stalled task's id (empty when none were in flight)."""
        return self.stalled_tasks[0] if self.stalled_tasks else ""


class WorkerCrashError(GOFMMError, RuntimeError):
    """A supervised fork-pool shard exhausted its retry budget.

    Raised by :class:`repro.core.sharding.SupervisedPool` after a shard
    task has died (killed worker), stalled past ``shard_task_timeout_s``,
    or errored on every one of its ``shard_retries + 1`` attempts.  The
    sharded backends catch it and degrade to their single-process
    equivalents.  ``failed_tasks`` are the task keys still outstanding;
    ``attempts`` is the attempt count the budget was measured against.
    """

    def __init__(self, message: str, failed_tasks: tuple = (), attempts: int = 0) -> None:
        super().__init__(message)
        self.failed_tasks = tuple(failed_tasks)
        self.attempts = int(attempts)


class MatrixDefinitionError(GOFMMError, ValueError):
    """A test-matrix generator was asked for an impossible configuration."""


class ServingError(GOFMMError, RuntimeError):
    """The serving runtime was used in an invalid state.

    Unknown operator name, a closed server/batcher, a malformed request
    vector, or a hot-reload attempt on an entry with no artifact source.
    """


class ServingConfigError(ServingError, ConfigurationError):
    """An invalid serving configuration value (batch policy, lane, shard count).

    Raised at construction time — before any server thread starts — so a
    bad knob fails where it was written instead of deep inside the batcher.
    Subclasses both :class:`ServingError` and :class:`ConfigurationError`,
    so either family of handler catches it.
    """


class ServerOverloadedError(ServingError):
    """Backpressure rejection: the request queue is at capacity.

    Carries ``retry_after_s`` — the server's hint for how long the client
    should back off before retrying (the serving clients honor it).
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DeadlineExceededError(ServingError):
    """A request's deadline expired while it was still queued; it was shed.

    Shedding happens *before* the request occupies a GEMM slot — the
    evaluation never ran, so retrying (with a fresh deadline) is always
    safe.  ``lane`` is the latency lane the request was queued on and
    ``waited_ms`` how long it sat in the queue before being shed.
    """

    def __init__(self, message: str, lane: str = "", waited_ms: float = 0.0) -> None:
        super().__init__(message)
        self.lane = lane
        self.waited_ms = float(waited_ms)


class ShardUnavailableError(ServingError):
    """No healthy shard can serve the operator (all replicas are down)."""
