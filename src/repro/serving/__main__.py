"""Demo / smoke driver for the serving runtime: ``python -m repro.serving``.

Builds a testbed operator, registers it with a :class:`MatvecServer`, fires
a concurrent request stream (optionally mixed matvec + solve) through the
micro-batcher, verifies a sample of responses against direct evaluation,
and prints the metrics snapshot.  Exits non-zero if any response is wrong
or any request fails — CI runs this as the serving smoke test.

Examples::

    python -m repro.serving                                   # defaults
    python -m repro.serving --matrix K05 --n 2048 --requests 512
    python -m repro.serving --solve-fraction 0.25 --max-batch 8
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import GOFMMConfig
from repro.matrices import build_matrix
from repro.serving import BatchPolicy, MatvecServer, ServingClient


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--matrix", default="K02", help="testbed matrix name (default K02)")
    parser.add_argument("--n", type=int, default=1024)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--concurrency", type=int, default=32, help="client threads")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=1024)
    parser.add_argument("--solve-fraction", type=float, default=0.0,
                        help="fraction of requests that are CG solves (default 0)")
    parser.add_argument("--interactive-fraction", type=float, default=0.0,
                        help="fraction of matvec requests on the interactive lane (default 0)")
    parser.add_argument("--metrics-json", action="store_true",
                        help="print the stable metrics schema (ServingMetrics.to_dict) "
                             "instead of the legacy snapshot")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    config = GOFMMConfig(leaf_size=64, max_rank=32, tolerance=1e-6, neighbors=8, budget=0.05)
    matrix = build_matrix(args.matrix, args.n, seed=args.seed)
    policy = BatchPolicy(
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms, max_queue=args.max_queue
    )
    server = MatvecServer(policy=policy)
    print(f"compressing {args.matrix} (n={args.n}) ...")
    entry = server.register("demo", matrix=matrix, config=config)
    operator = entry.operator

    rng = np.random.default_rng(args.seed)
    vectors = rng.standard_normal((args.requests, args.n))
    is_solve = rng.random(args.requests) < args.solve_fraction
    is_interactive = rng.random(args.requests) < args.interactive_fraction
    client = ServingClient(server)

    def fire(i: int):
        if is_solve[i]:
            return client.solve("demo", vectors[i], shift=1.0, tolerance=1e-8)
        lane = "interactive" if is_interactive[i] else None
        return client.matvec("demo", vectors[i], lane=lane)

    print(
        f"firing {args.requests} requests "
        f"({int(is_solve.sum())} solves) from {args.concurrency} client threads ..."
    )
    failures = 0
    with server:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
            responses = list(pool.map(fire, range(args.requests)))
        elapsed = time.perf_counter() - started

        # verify a sample against direct evaluation
        sample = rng.choice(args.requests, size=min(16, args.requests), replace=False)
        for i in sample:
            if is_solve[i]:
                result = responses[i]
                residual = operator.apply(result.solution) + 1.0 * result.solution - vectors[i]
                if np.linalg.norm(residual) > 1e-6 * np.linalg.norm(vectors[i]):
                    failures += 1
            else:
                direct = np.asarray(operator.apply(vectors[i]))
                if not np.allclose(responses[i], direct, atol=1e-10, rtol=1e-10):
                    failures += 1
        stats = server.stats()["demo"]
        metrics_json = {"demo": server.entry("demo").metrics.to_dict()}

    print(f"served {args.requests} requests in {elapsed:.3f}s "
          f"({args.requests / elapsed:.1f} req/s), "
          f"mean batch occupancy {stats['batch_occupancy']:.2f}")
    if args.metrics_json:
        print(json.dumps(metrics_json, indent=2, sort_keys=True))
    else:
        print(json.dumps(stats, indent=2))
    if failures or stats["errors"]:
        print(f"FAILED: {failures} wrong responses, {stats['errors']} request errors")
        return 1
    print("all sampled responses verified against direct evaluation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
