"""`MatvecServer`: a registry of named compressed operators behind micro-batchers.

The server is the composition point of the serving runtime:

* a **registry** of named :class:`~repro.api.operator.CompressedOperator`
  entries — registered in-process, or built through a
  :class:`~repro.api.session.Session` (optionally cold-starting from a
  ``Session.save_artifacts`` file, which since format 2 carries the
  partition, the ANN table *and* the interaction lists, so a server pays
  only skeletonization onward at boot),
* one :class:`~repro.serving.batcher.MicroBatcher` per entry, coalescing
  concurrent ``matvec`` / ``solve`` requests into wide evaluations,
* **hot reload**: artifact-backed entries remember their file's stamp
  (mtime + size) and config fingerprints; :meth:`reload` /
  :meth:`poll_reloads` rebuild the operator when the file changes and swap
  it atomically.  Batches formed before the swap finish on the operator
  they captured — in-flight requests are never dropped — and a reload
  failure (missing file, fingerprint mismatch) keeps the old operator
  serving and is recorded in the metrics,
* per-operator :class:`~repro.serving.metrics.ServingMetrics`.

Evaluation runs the sequential planned engine by default (deterministic,
and the batched GEMMs already saturate BLAS threads); pass
``num_workers > 1`` to execute each wide evaluation on a shared
:class:`~repro.runtime.executor.WorkerPool` across all entries — higher
throughput for huge operators, at the cost of the bitwise batch-invariance
guarantee (threaded output accumulation order varies run to run).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future
from typing import Dict, Optional

import numpy as np

from ..api.operator import CompressedOperator
from ..api.session import Session
from ..config import GOFMMConfig
from ..errors import ServingError
from ..obs.trace import Tracer, get_tracer, tracing
from ..solvers import CGResult
from .batcher import MATVEC, SOLVE, BatchPolicy, MicroBatcher
from .metrics import ServingMetrics

__all__ = ["MatvecServer", "OperatorEntry"]

#: Solver parameters a solve request may carry (forwarded to CompressedOperator.solve).
_SOLVE_PARAMS = ("shift", "tolerance", "max_iterations", "use_preconditioner", "engine")


def _file_stamp(path) -> tuple[int, int]:
    # A store / dir-format artifact directory is stamped by its manifest:
    # write_array_dir publishes the manifest last, so a manifest change is
    # the authoritative "new contents" signal (directory mtimes are not).
    if os.path.isdir(path):
        path = os.path.join(path, "manifest.json")
    stat = os.stat(path)
    return (stat.st_mtime_ns, stat.st_size)


def _record_memory(entry: "OperatorEntry") -> None:
    """Refresh the entry's resident/on-disk gauges from its current operator."""
    memory = entry.operator.compressed.memory_report()
    entry.metrics.record_memory(memory["bytes_resident"], memory["bytes_on_disk"])


def _prebuild_plan(operator: CompressedOperator) -> None:
    """Build the default engine's execution plan so the first request skips it.

    ``"planned"`` prebuilds the packed plan; ``"streamed"`` — the default of
    memoryless (uncached-block) operators, which are servable like any
    other — prebuilds the chunked streaming plan.
    """
    engine = operator.default_engine()
    if engine == "planned":
        operator.compressed.plan()
    elif engine == "streamed":
        operator.compressed.streaming_plan()


class OperatorEntry:
    """One served operator: the current operator, its batcher, and its source."""

    def __init__(
        self,
        name: str,
        operator: CompressedOperator,
        policy: BatchPolicy,
        metrics: ServingMetrics,
        evaluate,
        source: Optional[dict] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.name = name
        self.operator = operator
        self.policy = policy
        self.metrics = metrics
        self.source = source  # {"matrix", "config", "artifacts", "coordinates", "stamp"}
        self.version = 1
        self.tracer = tracer
        self._evaluate = evaluate  # (operator, (n,k) block) -> (n,k) result
        self.batcher = MicroBatcher(self._run_batch, policy, metrics, name=name, tracer=tracer)

    def _active_tracer(self):
        """The server's own tracer when it has an enabled one, else the global."""
        tracer = self.tracer
        return tracer if (tracer is not None and tracer.enabled) else get_tracer()

    @property
    def n(self) -> int:
        return self.operator.shape[0]

    def swap(self, operator: CompressedOperator) -> None:
        """Atomically replace the served operator (new batches use it immediately)."""
        if operator.shape != self.operator.shape:
            raise ServingError(
                f"cannot swap operator {self.name!r}: shape {operator.shape} != {self.operator.shape}"
            )
        self.operator = operator
        self.version += 1

    # -- batch execution (called by the batcher worker) ----------------------
    def _run_batch(self, kind: str, block: np.ndarray, params: Optional[dict]):
        operator = self.operator  # snapshot: a reload mid-batch must not mix engines
        if kind == MATVEC:
            k = block.shape[1]
            if self.policy.pad_to_full_width and k < self.policy.max_batch:
                padded = np.zeros((block.shape[0], self.policy.max_batch), dtype=block.dtype)
                padded[:, :k] = block
                block = padded
            tracer = self._active_tracer()
            if tracer.enabled:
                # Activate the server's tracer around the evaluation so the
                # engine-level spans (eval.*) land in the same trace as the
                # serving batch phases.
                with tracing(tracer):
                    with tracer.span(
                        "serve.batch.gemm", operator=self.name, requests=k, width=block.shape[1]
                    ):
                        out = np.asarray(self._evaluate(operator, block))
            else:
                out = np.asarray(self._evaluate(operator, block))
            return [out[:, j].copy() for j in range(k)]
        # solve lane: blocked multi-RHS CG, one wide matvec per Krylov iteration
        result = operator.solve(block, **(params or {}))
        solutions = np.asarray(result.solution)
        responses = []
        for j in range(block.shape[1]):
            responses.append(
                CGResult(
                    solution=solutions[:, j].copy(),
                    iterations=result.iterations,
                    residual_norm=float(result.column_residual_norms[j])
                    if result.column_residual_norms is not None
                    else result.residual_norm,
                    converged=bool(result.column_converged[j])
                    if result.column_converged is not None
                    else result.converged,
                    residual_history=result.residual_history,
                )
            )
        return responses


class MatvecServer:
    """Micro-batching serving runtime over a registry of compressed operators.

    Usage::

        from repro.serving import BatchPolicy, MatvecServer

        server = MatvecServer(policy=BatchPolicy(max_batch=16, max_wait_ms=2.0))
        server.register("kernel", operator)                    # in-process
        server.register("cold", matrix=K, config=cfg,
                        artifacts="artifacts.npz")             # cold start from disk
        server.register("ooc", store="op.store")               # mmap'd operator store
        with server:                                            # start()/stop()
            u = server.matvec("kernel", w)                      # sync convenience
            fut = server.submit("kernel", w)                    # raw future
            res = server.solve("kernel", b, shift=1e-4)

    ``num_workers > 1`` attaches a shared :class:`WorkerPool` so every
    entry's wide evaluations run threaded on the same workers (see the
    module docstring for the determinism trade-off).
    """

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        num_workers: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.policy = policy or BatchPolicy()
        self.tracer = tracer
        self._entries: Dict[str, OperatorEntry] = {}
        self._lock = threading.Lock()
        self._started = False
        self._num_workers = int(num_workers)
        self._pool = None
        if self._num_workers > 1:
            from ..runtime.executor import WorkerPool

            self._pool = WorkerPool(self._num_workers, name="serving-eval")

    # -- registry ------------------------------------------------------------
    def register(
        self,
        name: str,
        operator: Optional[CompressedOperator] = None,
        *,
        matrix=None,
        config: Optional[GOFMMConfig] = None,
        artifacts=None,
        coordinates=None,
        store=None,
        resident: str = "mmap",
        policy: Optional[BatchPolicy] = None,
    ) -> OperatorEntry:
        """Register a named operator, building it first if needed.

        Either pass a ready ``operator``, or ``matrix`` (+ optional
        ``config`` / ``coordinates``) to compress one here; adding
        ``artifacts`` (a ``Session.save_artifacts`` file) cold-starts the
        build from the persisted partition / ANN / interaction lists and
        arms hot reload on that file.  Alternatively pass ``store`` (a
        ``CompressedOperator.save`` directory) to cold-start the *complete*
        operator from disk with no matrix and no recompression —
        ``resident="mmap"`` (default) serves straight off the mmap'd store
        with a bounded resident footprint, ``resident="ram"`` loads it
        eagerly; hot reload is armed on the store's manifest.  The
        evaluation plan is prebuilt so the first request does not pay the
        plan build.
        """
        with self._lock:
            if name in self._entries:
                # fail before the (possibly minutes-long) build, not after
                raise ServingError(f"operator {name!r} is already registered (use swap/reload)")
        if store is not None and (operator is not None or matrix is not None or artifacts is not None):
            raise ServingError(
                f"register({name!r}): store= is a complete source; it cannot be combined "
                f"with operator/matrix/artifacts"
            )
        if artifacts is not None and matrix is None:
            raise ServingError(
                f"register({name!r}): hot reload from artifacts requires the matrix"
            )
        # Stamp BEFORE building: a file rewritten during the (possibly long)
        # build must look changed to the next poll_reloads, not silently
        # current while the entry serves the pre-rewrite operator.
        source_path = store if store is not None else artifacts
        stamp = _file_stamp(source_path) if source_path is not None else None
        if operator is None:
            if store is not None:
                operator = CompressedOperator.open(store, resident=resident)
            elif matrix is None:
                raise ServingError(
                    f"register({name!r}) needs an operator, a store, or a matrix to compress one from"
                )
            else:
                operator = self._build(matrix, config, artifacts, coordinates)
        source = None
        if store is not None:
            source = {"store": store, "resident": resident, "stamp": stamp}
        elif artifacts is not None:
            source = {
                "matrix": matrix,
                "config": config,
                "artifacts": artifacts,
                "coordinates": coordinates,
                "stamp": stamp,
            }
        _prebuild_plan(operator)  # first request pays no plan build
        with self._lock:
            if name in self._entries:
                raise ServingError(f"operator {name!r} is already registered (use swap/reload)")
            entry = OperatorEntry(
                name,
                operator,
                policy or self.policy,
                ServingMetrics(),
                self._evaluate,
                source=source,
                tracer=self.tracer,
            )
            self._entries[name] = entry
            if self._started:
                entry.batcher.start()
        _record_memory(entry)
        return entry

    def unregister(self, name: str, drain: bool = True) -> None:
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:  # concurrent double-unregister must fail cleanly
            raise ServingError(f"unknown operator {name!r}")
        entry.batcher.close(drain=drain)

    def operators(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def entry(self, name: str) -> OperatorEntry:
        return self._entry(name)

    def _entry(self, name: str) -> OperatorEntry:
        with self._lock:
            entry = self._entries.get(name)
            known = sorted(self._entries)  # snapshot under the lock
        if entry is None:
            raise ServingError(
                f"unknown operator {name!r}; registered: {', '.join(known) or 'none'}"
            )
        return entry

    def _build(self, matrix, config, artifacts, coordinates) -> CompressedOperator:
        session = Session(matrix, config, coordinates=coordinates)
        if artifacts is not None:
            session.load_artifacts(artifacts)
        return session.compress()

    def _evaluate(self, operator: CompressedOperator, block: np.ndarray) -> np.ndarray:
        if self._pool is not None:
            from ..runtime.executor import parallel_evaluate

            return parallel_evaluate(
                operator.compressed, block, num_workers=self._num_workers, pool=self._pool
            )
        return operator.apply(block)

    # -- hot reload -----------------------------------------------------------
    def swap(self, name: str, operator: CompressedOperator) -> None:
        """Hot-swap an in-process operator; in-flight batches finish on the old one."""
        entry = self._entry(name)
        entry.swap(operator)
        _record_memory(entry)
        entry.metrics.record_reload()

    def reload(self, name: str, force: bool = False) -> bool:
        """Rebuild an artifact-backed entry when its file changed; returns whether it did.

        The file stamp (mtime + size) is the cheap change trigger;
        :meth:`Session.load_artifacts` then re-validates the stored config
        fingerprints, so a stamp change that swapped in an incompatible
        file raises here (and :meth:`poll_reloads` records it) while the
        old operator keeps serving.
        """
        entry = self._entry(name)
        source = entry.source
        if source is None:
            raise ServingError(f"operator {name!r} has no artifact source to reload from")
        try:
            stamp = _file_stamp(source.get("store") or source["artifacts"])
            if not force and stamp == source["stamp"]:
                return False
            if source.get("store") is not None:
                operator = CompressedOperator.open(
                    source["store"], resident=source["resident"]
                )
            else:
                operator = self._build(
                    source["matrix"], source["config"], source["artifacts"], source["coordinates"]
                )
            _prebuild_plan(operator)
            entry.swap(operator)
            source["stamp"] = stamp
        except BaseException:
            entry.metrics.record_reload(ok=False)
            raise
        _record_memory(entry)
        entry.metrics.record_reload()
        return True

    def poll_reloads(self) -> Dict[str, bool]:
        """Try :meth:`reload` on every artifact-backed entry; never raises.

        Returns ``{name: reloaded}``; failures are recorded in the entry's
        metrics (``reload_failures``) and reported as ``False`` — the old
        operator keeps serving.
        """
        outcome: Dict[str, bool] = {}
        with self._lock:
            names = [name for name, entry in self._entries.items() if entry.source is not None]
        for name in names:
            try:
                outcome[name] = self.reload(name)
            except BaseException:
                outcome[name] = False
        return outcome

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "MatvecServer":
        """Start serving; a stopped server restarts (batchers reopen, pool rebuilt)."""
        with self._lock:
            self._started = True
            if self._num_workers > 1 and self._pool is None:
                from ..runtime.executor import WorkerPool

                self._pool = WorkerPool(self._num_workers, name="serving-eval")
            for entry in self._entries.values():
                entry.batcher.start()
        return self

    def stop(self, drain: bool = True) -> None:
        with self._lock:
            self._started = False
            entries = list(self._entries.values())
        for entry in entries:
            entry.batcher.close(drain=drain)
        if self._pool is not None:
            # Bounded join: a watchdog-abandoned evaluation may have left a
            # worker wedged in a payload; stop() must not hang on it.
            self._pool.shutdown(join_timeout=5.0)
            self._pool = None

    @property
    def serving(self) -> bool:
        """Whether the server is started and every entry's batcher is alive.

        This is the liveness probe the cluster health checks use: a worker
        thread that died (or a server that was stopped out from under the
        router) makes the shard unhealthy.
        """
        with self._lock:
            if not self._started:
                return False
            entries = list(self._entries.values())
        return all(entry.batcher.alive for entry in entries)

    def __enter__(self) -> "MatvecServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- requests ---------------------------------------------------------------
    def submit(
        self,
        name: str,
        w: np.ndarray,
        kind: str = MATVEC,
        *,
        lane: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        **solve_params,
    ) -> Future:
        """Enqueue one request; returns a ``concurrent.futures.Future``.

        ``kind="matvec"`` resolves to the ``(n,)`` product ``K̃ w``;
        ``kind="solve"`` resolves to a per-request
        :class:`~repro.solvers.CGResult` for ``(K̃ + shift·I) x = w``.
        ``lane`` selects the latency lane (default ``"throughput"``;
        ``"interactive"`` flushes immediately) and ``deadline_ms`` arms
        shed-on-deadline: a request still queued when its deadline expires
        fails with :class:`~repro.errors.DeadlineExceededError` without
        ever occupying a GEMM slot.  Raises
        :class:`ServerOverloadedError` under backpressure.
        """
        entry = self._entry(name)
        # float64 mirrors the evaluation engines: _as_matrix promotes every
        # weight block to float64 regardless of the compression dtype, so a
        # served response matches a direct operator.apply() bit for bit.
        vector = np.ascontiguousarray(np.asarray(w, dtype=np.float64))
        if vector.shape != (entry.n,):
            raise ServingError(
                f"operator {name!r} serves vectors of shape ({entry.n},), got {vector.shape}"
            )
        if kind == SOLVE:
            unknown = set(solve_params) - set(_SOLVE_PARAMS)
            if unknown:
                raise ServingError(
                    f"unknown solve parameter(s) {sorted(unknown)}; allowed: {list(_SOLVE_PARAMS)}"
                )
            return entry.batcher.submit(SOLVE, vector, solve_params,
                                        lane=lane, deadline_ms=deadline_ms)
        if solve_params:
            raise ServingError(f"matvec requests take no solver parameters, got {sorted(solve_params)}")
        return entry.batcher.submit(MATVEC, vector, lane=lane, deadline_ms=deadline_ms)

    def matvec(self, name: str, w: np.ndarray, timeout: Optional[float] = None, *,
               lane: Optional[str] = None, deadline_ms: Optional[float] = None) -> np.ndarray:
        """Blocking convenience: submit one matvec and wait for its response."""
        return self.submit(name, w, lane=lane, deadline_ms=deadline_ms).result(timeout)

    def solve(self, name: str, rhs: np.ndarray, timeout: Optional[float] = None, *,
              lane: Optional[str] = None, deadline_ms: Optional[float] = None, **solve_params):
        """Blocking convenience: submit one solve and wait for its :class:`CGResult`."""
        return self.submit(name, rhs, kind=SOLVE, lane=lane, deadline_ms=deadline_ms,
                           **solve_params).result(timeout)

    # -- reporting ---------------------------------------------------------------
    def stats(self) -> Dict[str, dict]:
        """Per-operator metrics snapshots plus registry/version information."""
        with self._lock:
            entries = dict(self._entries)
        out: Dict[str, dict] = {}
        for name, entry in entries.items():
            snapshot = entry.metrics.snapshot()
            snapshot["version"] = entry.version
            snapshot["queue_depth"] = entry.batcher.queue_depth
            snapshot["n"] = entry.n
            snapshot["hot_reload"] = entry.source is not None
            out[name] = snapshot
        return out

    def __repr__(self) -> str:
        names = ", ".join(self.operators()) or "none"
        return f"<MatvecServer operators=[{names}] started={self._started}>"
