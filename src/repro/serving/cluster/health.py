"""Shard health policy: restart-on-death or route-around.

The cluster's failure model is deliberately simple — a shard is either
*serving* (its :class:`~repro.serving.server.MatvecServer` is started and
every entry's batcher thread is alive) or it is *dead*.  The probe is
:attr:`ClusterShard.healthy`; it runs on demand (``router.check_health()``)
and lazily on the submit path whenever a shard rejects a request in a way
that looks like death rather than load.

Two recovery modes (:class:`HealthPolicy.mode`):

* ``"restart"`` — rebuild the dead shard's server in place and re-register
  the operators placed on it.  Placement is untouched, so the ring stays
  balanced; ``max_restarts`` caps restart storms — a shard that keeps
  dying is demoted to route-around,
* ``"route-around"`` — mark the shard ``DOWN`` and re-place its operators
  onto the surviving shards (consistent hashing sends each operator to
  its next ring successor, so only the dead shard's operators move).

A shard demoted after a restart storm is not gone forever: under
``mode="restart"`` the demotion opens a **circuit breaker** for
``breaker_cooldown_s`` seconds.  While the breaker is open the shard takes
no traffic and burns no more rebuilds; once the cooldown elapses,
``router.check_health()`` probes it *half-open* — one rebuild attempt.  A
successful probe closes the breaker (the shard returns ``UP`` and its
operators are re-placed onto it); a failed probe re-opens it for another
cooldown.

Either way, requests already queued on the dead shard are lost (their
futures fail) — the guarantee is that *new* traffic keeps flowing and the
cluster metrics record the event.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ServingConfigError
from ...obs import get_logger

__all__ = ["HealthPolicy", "RESTART", "ROUTE_AROUND", "log_recovery"]

RESTART = "restart"
ROUTE_AROUND = "route-around"

_LOG = get_logger("serving.cluster.health")


def log_recovery(shard_id: str, action: str, restarts: int) -> None:
    """Surface a shard recovery that would otherwise happen silently.

    Called by the router after it has applied the health policy; the log
    line is the operator-facing record of the event (the metrics only show
    an incremented counter).
    """
    if action == "restarted":
        _LOG.warning(
            "shard %s was dead and has been rebuilt in place (restart %d)",
            shard_id,
            restarts,
        )
    elif action == "probe-recovered":
        _LOG.warning(
            "shard %s passed its half-open breaker probe and is UP again "
            "(restart %d); its operators have been re-placed",
            shard_id,
            restarts,
        )
    elif action == "probe-failed":
        _LOG.warning(
            "shard %s failed its half-open breaker probe; breaker re-opened "
            "for another cooldown (restart %d)",
            shard_id,
            restarts,
        )
    else:
        _LOG.warning(
            "shard %s was dead and has been routed around (marked DOWN; "
            "its operators moved to their ring successors)",
            shard_id,
        )


@dataclass(frozen=True)
class HealthPolicy:
    """How the router reacts to a dead shard (see the module docstring).

    ``max_restarts`` is per shard, cumulative over the router's lifetime:
    once a shard has been rebuilt that many times, the next failure
    demotes it to route-around even under ``mode="restart"`` — but the
    demotion opens a circuit breaker rather than being permanent:
    ``breaker_cooldown_s`` seconds later a health check probes the shard
    half-open (one rebuild; success closes the breaker, failure re-opens
    it).  ``breaker_cooldown_s=0`` probes on the very next health check.
    """

    mode: str = RESTART
    max_restarts: int = 3
    breaker_cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in (RESTART, ROUTE_AROUND):
            raise ServingConfigError(
                f"HealthPolicy.mode must be {RESTART!r} or {ROUTE_AROUND!r}, got {self.mode!r}"
            )
        if not isinstance(self.max_restarts, int) or self.max_restarts < 0:
            raise ServingConfigError(
                f"HealthPolicy.max_restarts must be a non-negative integer, got {self.max_restarts!r}"
            )
        if not isinstance(self.breaker_cooldown_s, (int, float)) or isinstance(
            self.breaker_cooldown_s, bool
        ) or self.breaker_cooldown_s < 0:
            raise ServingConfigError(
                "HealthPolicy.breaker_cooldown_s must be a non-negative number, "
                f"got {self.breaker_cooldown_s!r}"
            )

    def should_restart(self, shard) -> bool:
        """Whether a dead ``shard`` gets rebuilt in place (vs routed around)."""
        return self.mode == RESTART and shard.restarts < self.max_restarts
