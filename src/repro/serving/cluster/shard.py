"""One serving shard: a :class:`~repro.serving.server.MatvecServer` plus lifecycle state.

A shard is the unit of placement, isolation and failure in the serving
cluster: the router places each operator (with its replicas) onto shards
via consistent hashing, and the health machinery restarts or routes
around a shard whose server died.  Each shard runs its own batcher
threads, so two shards never share a request queue — the bulkhead that
lets the router keep the interactive lane's SLO intact while another
shard's throughput backlog saturates its queue.

Shards of an operator family share the matrix-light artifacts the usual
way: build the operators from one :class:`~repro.api.session.Session`
(``session.attach(...)`` per family member, or ``save_artifacts`` files)
and register the resulting operators; replicas of one operator share the
*same* :class:`~repro.api.operator.CompressedOperator` object — its
workspace pool makes concurrent evaluations safe and bit-identical.
"""

from __future__ import annotations

from typing import Optional

from ...errors import ServingError
from ...obs import get_logger
from ..batcher import BatchPolicy
from ..server import MatvecServer

_LOG = get_logger("serving.cluster.shard")

__all__ = ["ClusterShard", "UP", "DOWN"]

#: Shard states: ``UP`` shards take placements and traffic; ``DOWN`` shards
#: are excluded from placement until explicitly revived.
UP = "up"
DOWN = "down"


class ClusterShard:
    """A named serving shard owned by a :class:`~repro.serving.cluster.ShardRouter`.

    The shard object survives server crashes: :meth:`rebuild` swaps in a
    fresh :class:`MatvecServer` (the router re-registers the operators
    placed here afterwards) and counts the restart, so the health policy
    can cap restart storms and demote a flapping shard to ``DOWN``.
    """

    def __init__(self, shard_id: str, policy: Optional[BatchPolicy] = None,
                 num_workers: int = 0) -> None:
        self.shard_id = shard_id
        self.policy = policy
        self.state = UP
        self.restarts = 0
        #: Circuit breaker: monotonic deadline before which a demoted shard
        #: is not probed for recovery (0.0 = no breaker open).  Owned by the
        #: router — the shard just carries the state.
        self.breaker_open_until = 0.0
        self._num_workers = int(num_workers)
        self._started = False
        self.server = self._new_server()

    def _new_server(self) -> MatvecServer:
        return MatvecServer(policy=self.policy, num_workers=self._num_workers)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self.server.start()
        self._started = True

    def stop(self, drain: bool = True) -> None:
        self.server.stop(drain=drain)
        self._started = False

    def kill(self) -> None:
        """Abruptly stop the shard's server without marking it stopped.

        This is the chaos hook the tests (and operators rehearsing
        failover) use: the shard still claims to be started, but its
        batcher threads are gone — exactly what a crashed process looks
        like to the health checks.
        """
        self.server.stop(drain=False)

    def rebuild(self) -> None:
        """Replace a dead server with a fresh one and count the restart.

        The new server starts empty — the router re-registers every
        operator placed on this shard right after.
        """
        try:
            self.server.stop(drain=False)
        except (ServingError, RuntimeError) as exc:
            # A wedged server must not block its own replacement — but the
            # failure should leave a trace (stop() only raises on serving /
            # thread-state problems; anything else is a bug to surface).
            _LOG.warning("shard %s: discarding wedged server failed: %s", self.shard_id, exc)
        self.server = self._new_server()
        self.restarts += 1
        if self._started:
            self.server.start()

    # -- health --------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """``True`` iff the shard is ``UP``, started, and its server is serving."""
        if self.state != UP or not self._started:
            return False
        return self.server.serving

    # -- introspection ---------------------------------------------------------
    def queue_depth(self, name: str) -> int:
        """Queued requests for one operator on this shard (∞-like for dead shards)."""
        try:
            return self.server.entry(name).batcher.queue_depth
        except ServingError:
            return 1 << 30  # unknown here (mid-rebuild): never the preferred replica

    def stats(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "state": self.state,
            "healthy": self.healthy,
            "restarts": self.restarts,
            "operators": self.server.stats(),
        }

    def __repr__(self) -> str:
        return (f"<ClusterShard {self.shard_id} state={self.state} "
                f"healthy={self.healthy} operators={list(self.server.operators())}>")
