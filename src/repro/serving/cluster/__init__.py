"""Sharded, SLO-aware serving cluster: shard router, health policy, shards.

See :class:`ShardRouter` for the front door.  The cluster composes the
single-process micro-batching server (``repro.serving.server``) with
consistent-hash placement, per-lane replica isolation, deadline shedding
(inherited from the batcher's latency lanes) and shard-death recovery.
"""

from .health import RESTART, ROUTE_AROUND, HealthPolicy
from .router import HashRing, ShardRouter
from .shard import DOWN, UP, ClusterShard

__all__ = [
    "ShardRouter",
    "HashRing",
    "ClusterShard",
    "HealthPolicy",
    "RESTART",
    "ROUTE_AROUND",
    "UP",
    "DOWN",
]
