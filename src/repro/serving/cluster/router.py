"""`ShardRouter`: consistent operator→shard placement, lane isolation, failover.

The router is the cluster's front door.  It owns a set of
:class:`~repro.serving.cluster.shard.ClusterShard`\\ s and

* **places** every registered operator onto ``replicas`` shards with a
  consistent hash ring (:class:`HashRing`): placement is a pure function
  of the shard ids and the operator name — deterministic across runs and
  processes, and losing a shard only moves *that shard's* operators (each
  to its next ring successor),
* **routes** requests: with one owning shard, straight through; with
  replicated operators, each latency lane is pinned to its own replica
  (**lane isolation**) — interactive traffic never shares a queue (or a
  ``max_queue`` budget) with a throughput backlog, which is what keeps
  the interactive SLO intact while the throughput lane saturates.
  Replicas share the same :class:`CompressedOperator` object, and every
  shard batches at the same canonical GEMM width, so a routed response is
  bit-identical to unbatched single-server serving no matter which
  replica, lane or co-traffic it saw,
* **survives shard death**: the submit path detects a dead shard (its
  server rejects with a shutdown error while unhealthy), applies the
  :class:`~repro.serving.cluster.health.HealthPolicy` (restart in place,
  or mark ``DOWN`` and re-place its operators), and retries the request
  once on the recovered/alternate shard; ``check_health()`` does the same
  sweep proactively,
* **aggregates metrics**: ``stats()`` rolls every shard's per-operator
  :class:`~repro.serving.metrics.ServingMetrics` up into per-operator and
  cluster-wide summaries (one stable schema, see
  :func:`~repro.serving.metrics.aggregate_metrics`).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...api.operator import CompressedOperator
from ...api.session import Session
from ...errors import (
    ServerOverloadedError,
    ServingConfigError,
    ServingError,
    ShardUnavailableError,
)
from ...faults import injection as _faults
from ...obs import counters as _obs_counters
from ..batcher import MATVEC, SOLVE, THROUGHPUT, BatchPolicy
from ..metrics import aggregate_metrics
from .health import RESTART, HealthPolicy, log_recovery
from .shard import DOWN, UP, ClusterShard

__all__ = ["ShardRouter", "HashRing"]


def _stable_hash(key: str) -> int:
    """64-bit stable hash (Python's ``hash`` is salted per process)."""
    return int.from_bytes(hashlib.blake2b(key.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Consistent hashing of operator names onto shard ids.

    Each shard contributes ``vnodes`` points on a 64-bit ring; an operator
    lands on the shards owning the first ``replicas`` *distinct* points at
    or after its own hash.  Pure function of ``(shard_ids, vnodes)`` — two
    routers built over the same ids place identically.
    """

    def __init__(self, shard_ids: Sequence[str], vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ServingConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        points: List[Tuple[int, str]] = []
        for shard_id in shard_ids:
            for v in range(self.vnodes):
                points.append((_stable_hash(f"{shard_id}#{v}"), shard_id))
        points.sort()
        self._points = points
        self._keys = [p[0] for p in points]

    def place(self, name: str, replicas: int, alive: Sequence[str]) -> Tuple[str, ...]:
        """The ``replicas`` alive shards owning ``name``, in ring order.

        Returns fewer than ``replicas`` when not enough alive shards exist
        (degraded but serving); empty when none are alive.
        """
        alive_set = set(alive)
        if not alive_set or not self._points:
            return ()
        chosen: List[str] = []
        start = bisect.bisect_left(self._keys, _stable_hash(name))
        for i in range(len(self._points)):
            shard_id = self._points[(start + i) % len(self._points)][1]
            if shard_id in alive_set and shard_id not in chosen:
                chosen.append(shard_id)
                if len(chosen) == replicas:
                    break
        return tuple(chosen)


@dataclass
class _OperatorSpec:
    """Everything needed to (re-)register one operator on a shard."""

    name: str
    operator: CompressedOperator
    policy: Optional[BatchPolicy]
    replicas: int


class ShardRouter:
    """SLO-aware serving cluster over ``num_shards`` micro-batching shards.

    Usage::

        from repro.serving.cluster import HealthPolicy, ShardRouter

        router = ShardRouter(num_shards=4, policy=BatchPolicy(max_batch=16))
        router.register("kernel", operator, replicas=2)
        with router:
            u = router.matvec("kernel", w)                         # routed
            fut = router.submit("kernel", w, lane="interactive",
                                deadline_ms=25.0)                  # SLO lane
            report = router.check_health()                         # probe + recover
            stats = router.stats()                                 # cluster rollup

    ``lane_isolation`` (default on) pins each latency lane of a replicated
    operator to its own shard; turn it off to balance purely by queue
    depth instead.  The router and a single :class:`MatvecServer` accept
    the same request surface, so :class:`~repro.serving.client.ServingClient`
    / :class:`AsyncServingClient` work unchanged on either.
    """

    def __init__(
        self,
        num_shards: int = 2,
        *,
        policy: Optional[BatchPolicy] = None,
        health: Optional[HealthPolicy] = None,
        num_workers: int = 0,
        vnodes: int = 64,
        lane_isolation: bool = True,
    ) -> None:
        if not isinstance(num_shards, int) or num_shards < 1:
            raise ServingConfigError(f"num_shards must be a positive integer, got {num_shards!r}")
        self.policy = policy or BatchPolicy()
        self.health = health or HealthPolicy()
        self.lane_isolation = bool(lane_isolation)
        self._lock = threading.RLock()
        self._shards: Dict[str, ClusterShard] = {}
        for i in range(num_shards):
            shard_id = f"shard-{i}"
            self._shards[shard_id] = ClusterShard(shard_id, policy=self.policy,
                                                  num_workers=num_workers)
        self._ring = HashRing(sorted(self._shards), vnodes=vnodes)
        self._specs: Dict[str, _OperatorSpec] = {}
        self._placement: Dict[str, Tuple[str, ...]] = {}
        self._started = False
        # Breaker clock; tests patch this to drive cooldowns without sleeping.
        self._clock = time.monotonic

    # -- registry --------------------------------------------------------------
    def _alive_ids(self) -> List[str]:
        return [sid for sid, shard in self._shards.items() if shard.state == UP]

    def register(
        self,
        name: str,
        operator: Optional[CompressedOperator] = None,
        *,
        matrix=None,
        config=None,
        artifacts=None,
        coordinates=None,
        store=None,
        resident: str = "mmap",
        replicas: int = 1,
        policy: Optional[BatchPolicy] = None,
    ) -> Tuple[str, ...]:
        """Register an operator on its ``replicas`` ring-placed shards.

        Either pass a ready ``operator``, or ``matrix`` (+ optional
        ``config`` / ``coordinates`` / ``artifacts``) to build one *once*
        here — replicas then share that single operator object (its
        workspace pool makes concurrent evaluation safe and the responses
        bit-identical).  ``store`` (a ``CompressedOperator.save``
        directory) instead cold-starts the complete operator from disk with
        no matrix and no recompression; ``resident="mmap"`` keeps its
        coefficients and blocks paged in on demand, shared read-only by all
        replicas.  Returns the placement (shard ids, ring order).
        """
        if not isinstance(replicas, int) or replicas < 1:
            raise ServingConfigError(f"replicas must be a positive integer, got {replicas!r}")
        if store is not None and (operator is not None or matrix is not None or artifacts is not None):
            raise ServingError(
                f"register({name!r}): store= is a complete source; it cannot be combined "
                f"with operator/matrix/artifacts"
            )
        if operator is None:
            if store is not None:
                operator = CompressedOperator.open(store, resident=resident)
            elif matrix is None:
                raise ServingError(
                    f"register({name!r}) needs an operator, a store, or a matrix to compress one from"
                )
            else:
                session = Session(matrix, config, coordinates=coordinates)
                if artifacts is not None:
                    session.load_artifacts(artifacts)
                operator = session.compress()
        with self._lock:
            if name in self._specs:
                raise ServingError(f"operator {name!r} is already registered on the cluster")
            placement = self._ring.place(name, replicas, self._alive_ids())
            if not placement:
                raise ShardUnavailableError(
                    f"cannot place operator {name!r}: no shard is up"
                )
            spec = _OperatorSpec(name, operator, policy, replicas)
            for shard_id in placement:
                self._shards[shard_id].server.register(name, operator, policy=policy)
            self._specs[name] = spec
            self._placement[name] = placement
        return placement

    def unregister(self, name: str, drain: bool = True) -> None:
        with self._lock:
            spec = self._specs.pop(name, None)
            placement = self._placement.pop(name, ())
        if spec is None:
            raise ServingError(f"unknown operator {name!r}")
        for shard_id in placement:
            try:
                self._shards[shard_id].server.unregister(name, drain=drain)
            except ServingError:
                pass  # the shard died with the entry; nothing to drain

    def operators(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def placement(self) -> Dict[str, Tuple[str, ...]]:
        """Current operator → shard-ids map (ring order)."""
        with self._lock:
            return dict(self._placement)

    def swap(self, name: str, operator: CompressedOperator) -> None:
        """Hot-swap an operator on every replica; in-flight batches finish on the old one."""
        with self._lock:
            if name not in self._specs:
                raise ServingError(f"unknown operator {name!r}")
            placement = self._placement[name]
            shards = [self._shards[sid] for sid in placement]
        for shard in shards:
            shard.server.swap(name, operator)
        with self._lock:
            self._specs[name].operator = operator

    # -- routing ---------------------------------------------------------------
    def _owners(self, name: str) -> List[ClusterShard]:
        with self._lock:
            if name not in self._specs:
                known = ", ".join(sorted(self._specs)) or "none"
                raise ServingError(f"unknown operator {name!r}; registered: {known}")
            placement = self._placement.get(name, ())
            owners = [self._shards[sid] for sid in placement
                      if self._shards[sid].state == UP]
        if not owners:
            raise ShardUnavailableError(
                f"no healthy shard serves operator {name!r} (placement {placement})"
            )
        return owners

    def _lane_slot(self, name: str, lane_name: str) -> int:
        """Deterministic lane → replica-offset mapping (lane isolation)."""
        policy = self._specs[name].policy or self.policy
        lanes = sorted(policy.lanes)
        if lane_name in lanes:
            return lanes.index(lane_name)
        return _stable_hash(lane_name) % max(len(lanes), 1)

    def _pick(self, name: str, owners: List[ClusterShard], lane_name: str) -> ClusterShard:
        if len(owners) == 1:
            return owners[0]
        if self.lane_isolation:
            return owners[self._lane_slot(name, lane_name) % len(owners)]
        return min(owners, key=lambda shard: shard.queue_depth(name))

    def submit(
        self,
        name: str,
        w: np.ndarray,
        kind: str = MATVEC,
        *,
        lane: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        **solve_params,
    ):
        """Route one request; same surface and semantics as :meth:`MatvecServer.submit`.

        A shard that turns out to be dead is handled per the health policy
        and the request is retried once on the recovered or alternate
        shard; request-level errors (bad shape, unknown lane, overload,
        expired deadline) propagate untouched.
        """
        lane_name = THROUGHPUT if lane is None else lane
        for attempt in range(2):
            owners = self._owners(name)
            shard = self._pick(name, owners, lane_name)
            if _faults.fire("serving.shard", shard=shard.shard_id, operator=name, attempt=attempt):
                # Chaos seam: the plan asked for this shard to die right as
                # it was picked — exactly the window the failover retry covers.
                shard.kill()
            try:
                return shard.server.submit(name, w, kind, lane=lane,
                                           deadline_ms=deadline_ms, **solve_params)
            except ServerOverloadedError:
                raise  # load, not death: backpressure is the answer
            except ServingError:
                if shard.healthy or attempt == 1:
                    raise  # a real request error, or we already failed over once
                self._handle_unhealthy(shard)
        raise AssertionError("unreachable")  # pragma: no cover

    def matvec(self, name: str, w: np.ndarray, timeout: Optional[float] = None, *,
               lane: Optional[str] = None, deadline_ms: Optional[float] = None) -> np.ndarray:
        return self.submit(name, w, lane=lane, deadline_ms=deadline_ms).result(timeout)

    def solve(self, name: str, rhs: np.ndarray, timeout: Optional[float] = None, *,
              lane: Optional[str] = None, deadline_ms: Optional[float] = None, **solve_params):
        return self.submit(name, rhs, kind=SOLVE, lane=lane, deadline_ms=deadline_ms,
                           **solve_params).result(timeout)

    # -- health ----------------------------------------------------------------
    def _reregister_placed(self, shard: ClusterShard) -> None:
        """Re-register every operator placed on ``shard`` (after a rebuild)."""
        for name, placement in self._placement.items():
            if shard.shard_id in placement and name not in shard.server:
                spec = self._specs[name]
                shard.server.register(name, spec.operator, policy=spec.policy)

    def _route_around(self, shard: ClusterShard) -> None:
        """Mark ``shard`` DOWN and move its operators to their ring successors."""
        shard.state = DOWN
        alive = self._alive_ids()
        for name, spec in self._specs.items():
            if shard.shard_id not in self._placement.get(name, ()):
                continue  # consistent hashing: only the dead shard's operators move
            placement = self._ring.place(name, spec.replicas, alive)
            if not placement:
                self._placement[name] = ()
                continue
            for shard_id in placement:
                target = self._shards[shard_id]
                if name not in target.server:
                    target.server.register(name, spec.operator, policy=spec.policy)
            self._placement[name] = placement

    def _handle_unhealthy(self, shard: ClusterShard) -> Optional[str]:
        """Apply the health policy to a dead shard; returns the action taken."""
        with self._lock:
            if shard.healthy:
                return None  # another thread already recovered it
            if self.health.should_restart(shard):
                shard.rebuild()
                self._reregister_placed(shard)
                log_recovery(shard.shard_id, "restarted", shard.restarts)
                _obs_counters.add("faults_recovered")
                return "restarted"
            self._route_around(shard)
            if self.health.mode == RESTART:
                # Demoted after a restart storm: open the circuit breaker so
                # check_health() can probe the shard half-open after cooldown
                # instead of leaving it DOWN forever.
                shard.breaker_open_until = self._clock() + self.health.breaker_cooldown_s
            log_recovery(shard.shard_id, "routed-around", shard.restarts)
            _obs_counters.add("faults_degraded")
            return "routed-around"

    def _probe_half_open(self, shard: ClusterShard) -> Optional[str]:
        """Probe a breaker-opened DOWN shard once its cooldown has elapsed.

        One rebuild attempt: success closes the breaker (the shard returns
        ``UP`` and placement is recomputed so its operators move back);
        failure re-opens the breaker for another cooldown.  Shards marked
        DOWN without a breaker (``mode="route-around"``) are never probed —
        the operator chose not to restart them.
        """
        with self._lock:
            if shard.state != DOWN or shard.breaker_open_until <= 0.0:
                return None
            if self._clock() < shard.breaker_open_until:
                return None
            shard.rebuild()
            if shard.server.serving:
                shard.state = UP
                shard.breaker_open_until = 0.0
                alive = self._alive_ids()
                for name, spec in self._specs.items():
                    placement = self._ring.place(name, spec.replicas, alive)
                    for shard_id in placement:
                        target = self._shards[shard_id]
                        if name not in target.server:
                            target.server.register(name, spec.operator, policy=spec.policy)
                    self._placement[name] = placement
                log_recovery(shard.shard_id, "probe-recovered", shard.restarts)
                _obs_counters.add("faults_recovered")
                return "probe-recovered"
            shard.breaker_open_until = self._clock() + self.health.breaker_cooldown_s
            log_recovery(shard.shard_id, "probe-failed", shard.restarts)
            return "probe-failed"

    def check_health(self) -> Dict[str, dict]:
        """Probe every shard; recover dead ones per the health policy.

        Returns ``{shard_id: {"healthy": bool, "action": None | "restarted"
        | "routed-around" | "probe-recovered" | "probe-failed"}}`` where
        ``healthy`` is the *post-action* state.  DOWN shards whose circuit
        breaker cooldown has elapsed are probed half-open here (see
        :meth:`_probe_half_open`).
        """
        report: Dict[str, dict] = {}
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            action = None
            if shard.state == UP and not shard.healthy:
                action = self._handle_unhealthy(shard)
            elif shard.state == DOWN:
                action = self._probe_half_open(shard)
            report[shard.shard_id] = {"healthy": shard.healthy, "action": action}
        return report

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> "ShardRouter":
        with self._lock:
            self._started = True
            for shard in self._shards.values():
                if shard.state == UP:
                    shard.start()
        return self

    def stop(self, drain: bool = True) -> None:
        with self._lock:
            self._started = False
            shards = list(self._shards.values())
        for shard in shards:
            if shard.state == UP:
                shard.stop(drain=drain)

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- reporting ---------------------------------------------------------------
    def shards(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._shards))

    def shard(self, shard_id: str) -> ClusterShard:
        with self._lock:
            try:
                return self._shards[shard_id]
            except KeyError:
                raise ServingError(
                    f"unknown shard {shard_id!r}; shards: {', '.join(sorted(self._shards))}"
                ) from None

    def stats(self) -> Dict[str, object]:
        """Cluster rollup: per-shard, per-operator, and cluster-wide metrics.

        Every rollup uses the stable schema of
        :func:`~repro.serving.metrics.aggregate_metrics`, so one scraper
        consumes a single server's ``--metrics-json``, a shard's stats and
        the cluster aggregate interchangeably.
        """
        with self._lock:
            shards = dict(self._shards)
            placement = dict(self._placement)
            specs = dict(self._specs)
        all_metrics = []
        per_operator: Dict[str, dict] = {}
        for name, spec in specs.items():
            op_metrics = []
            for shard_id in placement.get(name, ()):
                shard = shards[shard_id]
                try:
                    entry = shard.server.entry(name)
                except ServingError:
                    continue  # dead shard mid-recovery
                op_metrics.append(entry.metrics)
            all_metrics.extend(op_metrics)
            rollup = aggregate_metrics(op_metrics)
            rollup["placement"] = list(placement.get(name, ()))
            rollup["replicas"] = spec.replicas
            per_operator[name] = rollup
        return {
            "cluster": aggregate_metrics(all_metrics),
            "operators": per_operator,
            "shards": {shard_id: shard.stats() for shard_id, shard in shards.items()},
            "num_shards": len(shards),
            "healthy_shards": sum(1 for shard in shards.values() if shard.healthy),
        }

    def __repr__(self) -> str:
        with self._lock:
            up = sum(1 for s in self._shards.values() if s.state == UP)
            return (f"<ShardRouter shards={len(self._shards)} up={up} "
                    f"operators={sorted(self._specs)} started={self._started}>")
