"""Micro-batching serving runtime for compressed-operator traffic.

The paper's thesis is that hierarchical matrix evaluation reaches hardware
throughput only when fine-grained work is batched into level-wise BLAS-3
calls; the planned engine (PR 1) therefore wants wide ``(n, k)`` blocks,
while a serving workload arrives as independent single vectors.  This
package turns the one into the other:

* :class:`MatvecServer` — a registry of named
  :class:`~repro.api.operator.CompressedOperator` entries, each behind a
  :class:`MicroBatcher`, with hot reload of artifact-backed operators,
* :class:`BatchPolicy` — the batching knobs (``max_batch``,
  ``max_wait_ms``, bounded queue with
  :class:`~repro.errors.ServerOverloadedError` backpressure, canonical
  GEMM width for bitwise batch-invariance) plus named **latency lanes**
  (:class:`LanePolicy`): a ``"throughput"`` lane that coalesces and an
  ``"interactive"`` lane that flushes immediately, with per-request
  ``deadline_ms`` shed-on-deadline
  (:class:`~repro.errors.DeadlineExceededError`),
* :class:`ServingClient` / :class:`AsyncServingClient` — blocking and
  ``asyncio`` front ends with capped-exponential retry-after backoff,
* :class:`ServingMetrics` — request / latency / batch-occupancy metrics,
  per lane, with a stable :meth:`~ServingMetrics.to_dict` schema and
  :func:`aggregate_metrics` cluster rollups,
* :mod:`repro.serving.cluster` — the sharded, SLO-aware serving cluster:
  :class:`~repro.serving.cluster.ShardRouter` (consistent-hash operator
  placement, lane-isolated replicas, shard health checks with restart or
  route-around) over per-shard :class:`MatvecServer` instances.

Quickstart::

    from repro.serving import BatchPolicy, MatvecServer

    server = MatvecServer(policy=BatchPolicy(max_batch=16, max_wait_ms=2.0))
    server.register("kernel", operator)
    with server:
        u = server.matvec("kernel", w)          # one request
        futs = [server.submit("kernel", w) for w in stream]   # batched

A demo traffic generator ships as ``python -m repro.serving`` (with
``--metrics-json`` for the stable metrics schema);
``benchmarks/bench_serving_throughput.py`` measures the batched-vs-
sequential request throughput and tail latency, and
``benchmarks/bench_serving_frontier.py`` sweeps the shards × lanes ×
offered-load latency/throughput frontier.
"""

from .batcher import (
    INTERACTIVE,
    MATVEC,
    SOLVE,
    THROUGHPUT,
    BatchPolicy,
    LanePolicy,
    MicroBatcher,
)
from .client import AsyncServingClient, ServingClient
from .cluster import ClusterShard, HashRing, HealthPolicy, ShardRouter
from .metrics import METRICS_SCHEMA_VERSION, ServingMetrics, aggregate_metrics
from .server import MatvecServer, OperatorEntry

__all__ = [
    "MatvecServer",
    "OperatorEntry",
    "MicroBatcher",
    "BatchPolicy",
    "LanePolicy",
    "ShardRouter",
    "HashRing",
    "ClusterShard",
    "HealthPolicy",
    "ServingClient",
    "AsyncServingClient",
    "ServingMetrics",
    "aggregate_metrics",
    "METRICS_SCHEMA_VERSION",
    "MATVEC",
    "SOLVE",
    "THROUGHPUT",
    "INTERACTIVE",
]
