"""Micro-batching serving runtime for compressed-operator traffic.

The paper's thesis is that hierarchical matrix evaluation reaches hardware
throughput only when fine-grained work is batched into level-wise BLAS-3
calls; the planned engine (PR 1) therefore wants wide ``(n, k)`` blocks,
while a serving workload arrives as independent single vectors.  This
package turns the one into the other:

* :class:`MatvecServer` — a registry of named
  :class:`~repro.api.operator.CompressedOperator` entries, each behind a
  :class:`MicroBatcher`, with hot reload of artifact-backed operators,
* :class:`BatchPolicy` — the batching knobs (``max_batch``,
  ``max_wait_ms``, bounded queue with
  :class:`~repro.errors.ServerOverloadedError` backpressure, canonical
  GEMM width for bitwise batch-invariance),
* :class:`ServingClient` / :class:`AsyncServingClient` — blocking and
  ``asyncio`` front ends with retry-after-aware backoff,
* :class:`ServingMetrics` — request / latency / batch-occupancy metrics.

Quickstart::

    from repro.serving import BatchPolicy, MatvecServer

    server = MatvecServer(policy=BatchPolicy(max_batch=16, max_wait_ms=2.0))
    server.register("kernel", operator)
    with server:
        u = server.matvec("kernel", w)          # one request
        futs = [server.submit("kernel", w) for w in stream]   # batched

A demo traffic generator ships as ``python -m repro.serving``;
``benchmarks/bench_serving_throughput.py`` measures the batched-vs-
sequential request throughput and tail latency.
"""

from .batcher import MATVEC, SOLVE, BatchPolicy, MicroBatcher
from .client import AsyncServingClient, ServingClient
from .metrics import ServingMetrics
from .server import MatvecServer, OperatorEntry

__all__ = [
    "MatvecServer",
    "OperatorEntry",
    "MicroBatcher",
    "BatchPolicy",
    "ServingClient",
    "AsyncServingClient",
    "ServingMetrics",
    "MATVEC",
    "SOLVE",
]
