"""Serving clients: a blocking thread-based client and an ``asyncio`` front end.

Both are thin wrappers over :meth:`MatvecServer.submit` (or
:meth:`ShardRouter.submit` — anything with the same ``submit`` surface)
that add the two behaviours a caller should not hand-roll:

* **overload retry** — :class:`~repro.errors.ServerOverloadedError` carries
  the server's ``retry_after_s`` hint; the clients honor it with *capped
  exponential backoff plus jitter*: attempt ``i`` sleeps
  ``min(max_backoff_s, retry_after_s · backoff_growth^i)`` scaled by a
  uniform jitter factor in ``[1 - jitter, 1]`` (jitter decorrelates
  retrying clients so a rejected burst does not come back as the same
  burst), up to ``retries`` times before re-raising.  Deadline sheds
  (:class:`~repro.errors.DeadlineExceededError`) are *not* retried — the
  deadline already expired; the caller owns that decision,
* **event-loop integration** — :class:`AsyncServingClient` wraps the
  request future with :func:`asyncio.wrap_future`, so thousands of
  outstanding requests cost coroutines, not threads, while the batcher
  coalesces them into wide evaluations exactly as with the sync client.

Both clients pass latency-lane and deadline selection through:
``client.matvec(name, w, lane="interactive", deadline_ms=50.0)``.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Optional

import numpy as np

from ..errors import ServerOverloadedError, ServingConfigError
from .batcher import MATVEC, SOLVE

__all__ = ["ServingClient", "AsyncServingClient"]


class _BackoffMixin:
    """Shared retry-budget bookkeeping for the two clients."""

    def _init_backoff(self, retries: int, backoff_growth: float, max_backoff_s: float,
                      jitter: float, rng: Optional[random.Random]) -> None:
        if retries < 0:
            raise ServingConfigError(f"retries must be >= 0, got {retries}")
        if backoff_growth < 1.0:
            raise ServingConfigError(f"backoff_growth must be >= 1, got {backoff_growth}")
        if max_backoff_s <= 0.0:
            raise ServingConfigError(f"max_backoff_s must be positive, got {max_backoff_s}")
        if not (0.0 <= jitter < 1.0):
            raise ServingConfigError(f"jitter must be in [0, 1), got {jitter}")
        self.retries = int(retries)
        self.backoff_growth = float(backoff_growth)
        self.max_backoff_s = float(max_backoff_s)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else random.Random()

    def _backoff_s(self, retry_after_s: float, attempt: int) -> float:
        """Capped exponential backoff from the server's hint, with jitter."""
        base = max(retry_after_s, 1e-4) * self.backoff_growth ** attempt
        capped = min(self.max_backoff_s, base)
        return capped * (1.0 - self.jitter * self._rng.random())


class ServingClient(_BackoffMixin):
    """Blocking client with bounded, jittered retry on backpressure rejections."""

    def __init__(self, server, retries: int = 3, *, backoff_growth: float = 2.0,
                 max_backoff_s: float = 1.0, jitter: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        self.server = server
        self._init_backoff(retries, backoff_growth, max_backoff_s, jitter, rng)

    def _submit(self, name: str, w: np.ndarray, kind: str, params: dict,
                lane: Optional[str], deadline_ms: Optional[float]):
        for attempt in range(self.retries + 1):
            try:
                return self.server.submit(name, w, kind=kind, lane=lane,
                                          deadline_ms=deadline_ms, **params)
            except ServerOverloadedError as exc:
                if attempt == self.retries:
                    raise
                time.sleep(self._backoff_s(exc.retry_after_s, attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def matvec(self, name: str, w: np.ndarray, timeout: Optional[float] = None, *,
               lane: Optional[str] = None, deadline_ms: Optional[float] = None) -> np.ndarray:
        return self._submit(name, w, MATVEC, {}, lane, deadline_ms).result(timeout)

    def solve(self, name: str, rhs: np.ndarray, timeout: Optional[float] = None, *,
              lane: Optional[str] = None, deadline_ms: Optional[float] = None, **solve_params):
        return self._submit(name, rhs, SOLVE, solve_params, lane, deadline_ms).result(timeout)


class AsyncServingClient(_BackoffMixin):
    """``asyncio`` front end: awaitable requests over the same thread-based server.

    Usage::

        client = AsyncServingClient(server)
        results = await asyncio.gather(*(client.matvec("kernel", w) for w in vectors))

    Submissions happen on the event-loop thread (they only enqueue);
    responses are awaited without blocking the loop.  Backpressure retries
    use ``asyncio.sleep`` with the same capped-exponential-plus-jitter
    schedule as the sync client, so a congested server never stalls
    unrelated coroutines.
    """

    def __init__(self, server, retries: int = 3, *, backoff_growth: float = 2.0,
                 max_backoff_s: float = 1.0, jitter: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        self.server = server
        self._init_backoff(retries, backoff_growth, max_backoff_s, jitter, rng)

    async def _submit(self, name: str, w: np.ndarray, kind: str, params: dict,
                      lane: Optional[str], deadline_ms: Optional[float]):
        for attempt in range(self.retries + 1):
            try:
                future = self.server.submit(name, w, kind=kind, lane=lane,
                                            deadline_ms=deadline_ms, **params)
            except ServerOverloadedError as exc:
                if attempt == self.retries:
                    raise
                await asyncio.sleep(self._backoff_s(exc.retry_after_s, attempt))
                continue
            return await asyncio.wrap_future(future)
        raise AssertionError("unreachable")  # pragma: no cover

    async def matvec(self, name: str, w: np.ndarray, *, lane: Optional[str] = None,
                     deadline_ms: Optional[float] = None) -> np.ndarray:
        return await self._submit(name, w, MATVEC, {}, lane, deadline_ms)

    async def solve(self, name: str, rhs: np.ndarray, *, lane: Optional[str] = None,
                    deadline_ms: Optional[float] = None, **solve_params):
        return await self._submit(name, rhs, SOLVE, solve_params, lane, deadline_ms)
