"""Serving clients: a blocking thread-based client and an ``asyncio`` front end.

Both are thin wrappers over :meth:`MatvecServer.submit` that add the two
behaviours a caller should not hand-roll:

* **overload retry** — :class:`~repro.errors.ServerOverloadedError` carries
  the server's ``retry_after_s`` hint; the clients back off for that long
  (plus a small multiplicative factor per attempt) and retry up to
  ``retries`` times before re-raising,
* **event-loop integration** — :class:`AsyncServingClient` wraps the
  request future with :func:`asyncio.wrap_future`, so thousands of
  outstanding requests cost coroutines, not threads, while the batcher
  coalesces them into wide evaluations exactly as with the sync client.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

import numpy as np

from ..errors import ServerOverloadedError
from .batcher import MATVEC, SOLVE

__all__ = ["ServingClient", "AsyncServingClient"]

#: Per-attempt multiplier on the server's retry_after hint.
_BACKOFF_GROWTH = 1.5


class ServingClient:
    """Blocking client with bounded retry on backpressure rejections."""

    def __init__(self, server, retries: int = 3) -> None:
        self.server = server
        self.retries = int(retries)

    def _submit(self, name: str, w: np.ndarray, kind: str, params: dict):
        backoff = None
        for attempt in range(self.retries + 1):
            try:
                return self.server.submit(name, w, kind=kind, **params)
            except ServerOverloadedError as exc:
                if attempt == self.retries:
                    raise
                backoff = exc.retry_after_s if backoff is None else backoff * _BACKOFF_GROWTH
                time.sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def matvec(self, name: str, w: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        return self._submit(name, w, MATVEC, {}).result(timeout)

    def solve(self, name: str, rhs: np.ndarray, timeout: Optional[float] = None, **solve_params):
        return self._submit(name, rhs, SOLVE, solve_params).result(timeout)


class AsyncServingClient:
    """``asyncio`` front end: awaitable requests over the same thread-based server.

    Usage::

        client = AsyncServingClient(server)
        results = await asyncio.gather(*(client.matvec("kernel", w) for w in vectors))

    Submissions happen on the event-loop thread (they only enqueue);
    responses are awaited without blocking the loop.  Backpressure retries
    use ``asyncio.sleep``, so a congested server never stalls unrelated
    coroutines.
    """

    def __init__(self, server, retries: int = 3) -> None:
        self.server = server
        self.retries = int(retries)

    async def _submit(self, name: str, w: np.ndarray, kind: str, params: dict):
        backoff = None
        for attempt in range(self.retries + 1):
            try:
                future = self.server.submit(name, w, kind=kind, **params)
            except ServerOverloadedError as exc:
                if attempt == self.retries:
                    raise
                backoff = exc.retry_after_s if backoff is None else backoff * _BACKOFF_GROWTH
                await asyncio.sleep(backoff)
                continue
            return await asyncio.wrap_future(future)
        raise AssertionError("unreachable")  # pragma: no cover

    async def matvec(self, name: str, w: np.ndarray) -> np.ndarray:
        return await self._submit(name, w, MATVEC, {})

    async def solve(self, name: str, rhs: np.ndarray, **solve_params):
        return await self._submit(name, rhs, SOLVE, solve_params)
