"""Micro-batching request queue: coalesce single-vector requests into wide GEMMs.

conf_sc_YuLRB17's central performance observation is that the compressed
evaluation only reaches BLAS-3 throughput when fed wide right-hand-side
blocks — the planned engine is several-fold faster at 16 RHS than at 1.  A
serving workload, however, arrives as a stream of *independent* ``(n,)``
vectors.  This module closes that gap: a :class:`MicroBatcher` queues
concurrent requests per operator and hands the evaluation one ``(n, k)``
block, slicing the result columns back to per-request futures.

Batching policy (:class:`BatchPolicy`):

* ``max_batch`` — evaluate as soon as this many coalescable requests are
  queued (the GEMM width the operator was tuned for),
* ``max_wait_ms`` — a request never waits longer than this for co-batched
  traffic; an idle server degenerates to at most one ``max_wait_ms`` of
  added latency,
* ``max_queue`` — bounded queue; submissions beyond it are rejected with
  :class:`~repro.errors.ServerOverloadedError` carrying a ``retry_after_s``
  hint (backpressure instead of unbounded memory),
* ``latency_target_ms`` — adaptive batching: the effective wait shrinks
  and grows with an EWMA of the observed p90 batch latency so occupancy
  stays high without blowing the latency budget (see
  :class:`BatchPolicy`); the current wait is exported in the metrics,
* ``pad_to_full_width`` — see below.

**Bit-identity.**  BLAS kernels select different accumulation strategies
for different GEMM widths, so the columns of ``K̃ @ [w₁ … w₁₆]`` are *not*
bitwise equal to the sixteen ``K̃ @ wⱼ`` products.  At a *fixed* width,
however, each output column is a bit-deterministic function of its own
input column alone (a GEMM output element only ever accumulates products
of its own column; zero padding and column position are irrelevant — the
serving tests pin this).  The batcher therefore evaluates every matvec
batch at the canonical width ``max_batch``, zero-padding partial batches:
a request's response is bitwise identical whether it ran alone, in a full
batch, or co-batched with any other traffic.  Setting
``pad_to_full_width=False`` trades that guarantee for fewer padded columns
at low load (responses stay within floating-point round-off of each
other).

Requests only coalesce within a *lane* — same kind (``"matvec"`` /
``"solve"``) and, for solves, identical solver parameters.  Solve batches
run the blocked CG of :mod:`repro.solvers` (one wide matvec per Krylov
iteration); their responses are accurate to the requested tolerance but
not bit-pinned, because the blocked CG drops converged columns from the
active set, which couples the iteration shapes across co-batched requests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import ServerOverloadedError, ServingError

__all__ = ["BatchPolicy", "MicroBatcher", "MATVEC", "SOLVE"]

MATVEC = "matvec"
SOLVE = "solve"


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the micro-batching queue (see the module docstring).

    ``latency_target_ms`` arms **adaptive batching**: the batcher tracks an
    EWMA of the observed p90 request latency per batch and shrinks its
    effective wait (halving) whenever the estimate exceeds the target, or
    grows it back (by 25%, never past ``max_wait_ms``) while the estimate
    sits comfortably below — keeping batch occupancy high at light load
    without letting co-batching wait blow the latency budget under heavy
    or slow-evaluating traffic.  ``None`` (the default) keeps the fixed
    ``max_wait_ms`` behavior.  The current effective wait is exposed as
    ``adaptive_wait_ms`` in the operator's metrics snapshot.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_queue: int = 256
    pad_to_full_width: bool = True
    retry_after_ms: float = 25.0
    latency_target_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0.0:
            raise ServingError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 1:
            raise ServingError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.retry_after_ms < 0.0:
            raise ServingError(f"retry_after_ms must be >= 0, got {self.retry_after_ms}")
        if self.latency_target_ms is not None and not (self.latency_target_ms > 0.0):
            raise ServingError(
                f"latency_target_ms must be positive or None, got {self.latency_target_ms}"
            )


class _Request:
    __slots__ = ("kind", "lane", "vector", "params", "future", "enqueued_at")

    def __init__(self, kind: str, lane: tuple, vector: np.ndarray, params: Optional[dict]) -> None:
        self.kind = kind
        self.lane = lane
        self.vector = vector
        self.params = params
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()


class MicroBatcher:
    """One bounded queue + one worker thread coalescing requests for one operator.

    ``runner(kind, W, params)`` performs the wide evaluation: it receives
    the request kind, the stacked ``(n, k)`` block (``k`` = the number of
    coalesced requests; the runner applies the policy's canonical-width
    padding for matvec lanes), and the lane's solver parameters; it
    returns one response per request, in column order.  The runner is
    looked up per batch, so
    swapping the underlying operator (hot reload) applies to every batch
    formed after the swap while in-flight batches finish on the operator
    they captured.
    """

    def __init__(
        self,
        runner: Callable[[str, np.ndarray, Optional[dict]], Sequence],
        policy: BatchPolicy,
        metrics,
        name: str = "operator",
    ) -> None:
        self._runner = runner
        self.policy = policy
        self.metrics = metrics
        self.name = name
        self._cond = threading.Condition()
        #: Effective co-batching wait; fixed at policy.max_wait_ms unless
        #: the policy sets a latency target (then adapted per batch).
        self._wait_ms = policy.max_wait_ms
        self._latency_ewma_ms: Optional[float] = None
        self._queue: deque[_Request] = deque()
        #: queued requests per lane — keeps the batch-fullness check O(1)
        #: instead of rescanning the queue on every submit notification.
        self._lane_counts: dict[tuple, int] = {}
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._thread is not None

    def start(self) -> None:
        """Start (or restart) the worker; a closed batcher reopens empty."""
        if self._thread is not None:
            return
        with self._cond:
            self._closed = False
        self._thread = threading.Thread(
            target=self._worker, name=f"serving-batcher-{self.name}", daemon=True
        )
        self._thread.start()

    def close(self, drain: bool = True) -> None:
        """Stop the worker.  ``drain=True`` serves queued requests first;
        ``drain=False`` fails them with :class:`ServingError`."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            dropped: List[_Request] = []
            if not drain:
                dropped = list(self._queue)
                self._queue.clear()
                self._lane_counts.clear()
            self._cond.notify_all()
        for request in dropped:
            if not request.future.set_running_or_notify_cancel():
                continue  # already cancelled by the caller
            request.future.set_exception(
                ServingError(f"server for operator {self.name!r} shut down before the request ran")
            )
            self.metrics.record_response(time.monotonic() - request.enqueued_at, ok=False)
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # -- submission ---------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def submit(self, kind: str, vector: np.ndarray, params: Optional[dict] = None) -> Future:
        """Enqueue one request; returns its future.

        Raises :class:`ServerOverloadedError` when the queue is full and
        :class:`ServingError` when the batcher is closed or was never
        started.
        """
        if kind == SOLVE:
            lane = (SOLVE, tuple(sorted((params or {}).items())))
        elif kind == MATVEC:
            lane = (MATVEC,)
        else:
            raise ServingError(f"unknown request kind {kind!r}; use {MATVEC!r} or {SOLVE!r}")
        request = _Request(kind, lane, vector, params)
        with self._cond:
            if self._closed:
                raise ServingError(f"server for operator {self.name!r} is shut down")
            if self._thread is None:
                raise ServingError(
                    f"server for operator {self.name!r} is not started (call MatvecServer.start())"
                )
            if len(self._queue) >= self.policy.max_queue:
                self.metrics.record_reject()
                raise ServerOverloadedError(
                    f"operator {self.name!r} queue is full ({self.policy.max_queue} requests); "
                    f"retry after {self.policy.retry_after_ms:g} ms",
                    retry_after_s=self.policy.retry_after_ms / 1e3,
                )
            self._queue.append(request)
            self._lane_counts[lane] = self._lane_counts.get(lane, 0) + 1
            self.metrics.record_submit(len(self._queue))
            self._cond.notify_all()
        return request.future

    # -- adaptive wait -------------------------------------------------------
    @property
    def current_wait_ms(self) -> float:
        """The effective co-batching wait (== ``policy.max_wait_ms`` unless adaptive)."""
        with self._cond:
            return self._wait_ms

    #: EWMA smoothing factor for the observed p90 batch latency.
    _EWMA_ALPHA = 0.2
    #: Floor of the adaptive wait: adaptation may effectively disable
    #: co-batching waiting but must be able to recover (0 would make the
    #: multiplicative grow-back a no-op).
    _MIN_WAIT_MS = 0.05

    def _adapt_wait(self, batch: List[_Request], now: float) -> None:
        """Shrink/grow the effective wait from the observed p90 batch latency.

        Called by the worker after every evaluated batch when the policy
        sets ``latency_target_ms``.  The p90 of the batch's end-to-end
        request latencies feeds an EWMA; above the target the wait halves
        (waiting for co-traffic is the one latency component the batcher
        controls), below 70% of it the wait grows 25% back toward
        ``max_wait_ms`` to recover occupancy.
        """
        target = self.policy.latency_target_ms
        if target is None:
            return
        latencies_ms = [(now - request.enqueued_at) * 1e3 for request in batch]
        observed = float(np.percentile(latencies_ms, 90))
        with self._cond:
            if self._latency_ewma_ms is None:
                self._latency_ewma_ms = observed
            else:
                self._latency_ewma_ms += self._EWMA_ALPHA * (observed - self._latency_ewma_ms)
            if self._latency_ewma_ms > target:
                self._wait_ms = max(self._MIN_WAIT_MS, self._wait_ms * 0.5)
            elif self._latency_ewma_ms < 0.7 * target:
                self._wait_ms = min(
                    self.policy.max_wait_ms, max(self._wait_ms * 1.25, self._MIN_WAIT_MS)
                )
            self.metrics.record_adaptive_wait(self._wait_ms, self._latency_ewma_ms)

    # -- worker -------------------------------------------------------------
    def _lane_count(self, lane: tuple) -> int:
        return self._lane_counts.get(lane, 0)

    def _collect(self) -> Optional[List[_Request]]:
        """Block until a batch is ready; ``None`` means closed and drained.

        A batch is the oldest request's lane-mates, up to ``max_batch`` of
        them, gathered once that lane is full or the oldest request has
        waited ``max_wait_ms``.  Requests of other lanes stay queued in
        order.
        """
        policy = self.policy
        with self._cond:
            while True:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return None  # closed and drained
                head = self._queue[0]
                deadline = head.enqueued_at + self._wait_ms / 1e3
                while not self._closed:
                    if self._lane_count(head.lane) >= policy.max_batch:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._cond.wait(remaining)
                batch: List[_Request] = []
                rest: deque[_Request] = deque()
                for request in self._queue:
                    if request.lane == head.lane and len(batch) < policy.max_batch:
                        batch.append(request)
                    else:
                        rest.append(request)
                self._queue = rest
                remaining = self._lane_counts.get(head.lane, 0) - len(batch)
                if remaining > 0:
                    self._lane_counts[head.lane] = remaining
                else:
                    self._lane_counts.pop(head.lane, None)
                return batch

    def _worker(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            # Claim every future before evaluating: a pending future can be
            # cancelled at any time (e.g. an asyncio caller timing out), and
            # set_result on a cancelled future raises — which would kill this
            # worker and wedge the operator.  set_running_or_notify_cancel
            # atomically drops already-cancelled requests and makes the rest
            # uncancellable for the duration of the batch.
            batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
            if not batch:
                continue
            started = time.monotonic()
            try:
                block = np.stack([request.vector for request in batch], axis=1)
                results = self._runner(batch[0].kind, block, batch[0].params)
                if len(results) != len(batch):
                    raise ServingError(
                        f"runner returned {len(results)} responses for a batch of {len(batch)}"
                    )
            except BaseException as exc:  # fail the whole batch, keep serving
                now = time.monotonic()
                for request in batch:
                    request.future.set_exception(exc)
                    self.metrics.record_response(now - request.enqueued_at, ok=False)
                continue
            now = time.monotonic()
            self.metrics.record_batch(len(batch), now - started)
            self._adapt_wait(batch, now)
            for request, result in zip(batch, results):
                request.future.set_result(result)
                self.metrics.record_response(now - request.enqueued_at)
