"""Micro-batching request queue: coalesce single-vector requests into wide GEMMs.

conf_sc_YuLRB17's central performance observation is that the compressed
evaluation only reaches BLAS-3 throughput when fed wide right-hand-side
blocks — the planned engine is several-fold faster at 16 RHS than at 1.  A
serving workload, however, arrives as a stream of *independent* ``(n,)``
vectors.  This module closes that gap: a :class:`MicroBatcher` queues
concurrent requests per operator and hands the evaluation one ``(n, k)``
block, slicing the result columns back to per-request futures.

Batching policy (:class:`BatchPolicy`):

* ``max_batch`` — evaluate as soon as this many coalescable requests are
  queued (the GEMM width the operator was tuned for),
* ``max_wait_ms`` — a request never waits longer than this for co-batched
  traffic; an idle server degenerates to at most one ``max_wait_ms`` of
  added latency,
* ``max_queue`` — bounded queue (shared across lanes); submissions beyond
  it are rejected with :class:`~repro.errors.ServerOverloadedError`
  carrying a ``retry_after_s`` hint (backpressure instead of unbounded
  memory),
* ``latency_target_ms`` — adaptive batching: the effective wait shrinks
  and grows with an EWMA of the observed p90 batch latency so occupancy
  stays high without blowing the latency budget (see
  :class:`BatchPolicy`); the current wait is exported in the metrics,
* ``lanes`` — named **latency lanes**, see below,
* ``pad_to_full_width`` — see below.

**Latency lanes.**  Every request is submitted on a named lane.  The
default ``"throughput"`` lane batches under ``max_wait_ms`` as above; the
built-in ``"interactive"`` lane sets ``max_wait_ms=0`` — it *flushes
immediately* with whatever lane-mates are already queued, trading batch
occupancy for latency.  Custom lanes are declared with
``BatchPolicy(lanes={"bulk": LanePolicy(max_wait_ms=50.0)})``.  Ready
lanes are served **lowest-wait first**: at every batch boundary a
non-empty low-latency lane preempts the throughput backlog, so a deep
throughput queue cannot head-of-line-block interactive traffic (it can
still exhaust the shared ``max_queue`` — shard-level isolation, see
:mod:`repro.serving.cluster`, is the remedy for that).

**Deadlines and shedding.**  A request may carry ``deadline_ms``; if the
deadline expires while the request is still queued it is **shed**: its
future fails with :class:`~repro.errors.DeadlineExceededError` and the
request never occupies a GEMM slot — the evaluation capacity goes to
requests that can still meet their SLO, instead of computing answers
nobody is waiting for.  A request admitted into a batch is always
evaluated (the deadline bounds queueing, not evaluation).

**Bit-identity.**  BLAS kernels select different accumulation strategies
for different GEMM widths, so the columns of ``K̃ @ [w₁ … w₁₆]`` are *not*
bitwise equal to the sixteen ``K̃ @ wⱼ`` products.  At a *fixed* width,
however, each output column is a bit-deterministic function of its own
input column alone (a GEMM output element only ever accumulates products
of its own column; zero padding and column position are irrelevant — the
serving tests pin this).  The batcher therefore evaluates every matvec
batch at the canonical width ``max_batch``, zero-padding partial batches:
a request's response is bitwise identical whether it ran alone, in a full
batch, co-batched with any other traffic, **or on any lane** (lanes only
change waiting, never the GEMM width).  Setting
``pad_to_full_width=False`` trades that guarantee for fewer padded columns
at low load (responses stay within floating-point round-off of each
other).

Requests only coalesce within a *lane* — same kind (``"matvec"`` /
``"solve"``), same lane name and, for solves, identical solver
parameters.  Solve batches run the blocked CG of :mod:`repro.solvers`
(one wide matvec per Krylov iteration); their responses are accurate to
the requested tolerance but not bit-pinned, because the blocked CG drops
converged columns from the active set, which couples the iteration shapes
across co-batched requests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DeadlineExceededError, ServerOverloadedError, ServingConfigError, ServingError
from ..obs import counters as _obs_counters
from ..obs import get_logger
from ..obs.trace import get_tracer

_LOG = get_logger("serving.batcher")

__all__ = [
    "BatchPolicy",
    "LanePolicy",
    "MicroBatcher",
    "MATVEC",
    "SOLVE",
    "THROUGHPUT",
    "INTERACTIVE",
]

MATVEC = "matvec"
SOLVE = "solve"

#: The default lane: batches under the policy's ``max_wait_ms`` (adaptive
#: when ``latency_target_ms`` is set).
THROUGHPUT = "throughput"
#: The built-in low-latency lane: flushes immediately, never waits for
#: co-batched traffic.
INTERACTIVE = "interactive"


@dataclass(frozen=True)
class LanePolicy:
    """Per-lane overrides of the batching knobs.

    ``max_wait_ms=None`` inherits the policy's ``max_wait_ms`` (including
    its adaptive adjustment when ``latency_target_ms`` is set); ``0.0``
    makes the lane flush immediately.  ``max_batch=None`` inherits the
    policy's ``max_batch``; an explicit value must not exceed it (the
    canonical GEMM width — and therefore bit-identity — is always the
    policy's ``max_batch``).
    """

    max_wait_ms: Optional[float] = None
    max_batch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_wait_ms is not None and not (self.max_wait_ms >= 0.0):
            raise ServingConfigError(
                f"LanePolicy.max_wait_ms must be >= 0 (or None to inherit), got {self.max_wait_ms}"
            )
        if self.max_batch is not None and self.max_batch < 1:
            raise ServingConfigError(
                f"LanePolicy.max_batch must be >= 1 (or None to inherit), got {self.max_batch}"
            )


#: The two lanes every policy ships with.  Custom ``lanes`` entries are
#: merged over these (and may override them).
DEFAULT_LANES: Mapping[str, LanePolicy] = {
    THROUGHPUT: LanePolicy(),
    INTERACTIVE: LanePolicy(max_wait_ms=0.0),
}


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the micro-batching queue (see the module docstring).

    ``latency_target_ms`` arms **adaptive batching**: the batcher tracks an
    EWMA of the observed p90 request latency per batch and shrinks its
    effective wait (halving) whenever the estimate exceeds the target, or
    grows it back (by 25%, never past ``max_wait_ms``) while the estimate
    sits comfortably below — keeping batch occupancy high at light load
    without letting co-batching wait blow the latency budget under heavy
    or slow-evaluating traffic.  ``None`` (the default) keeps the fixed
    ``max_wait_ms`` behavior.  The current effective wait is exposed as
    ``adaptive_wait_ms`` in the operator's metrics snapshot.  Only lanes
    that *inherit* the policy wait (``LanePolicy.max_wait_ms is None``)
    follow — and feed — the adaptive wait; lanes with an explicit wait are
    fixed.

    ``lanes`` declares extra latency lanes (merged over
    :data:`DEFAULT_LANES`); all validation happens here, at construction,
    raising :class:`~repro.errors.ServingConfigError`.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_queue: int = 256
    pad_to_full_width: bool = True
    retry_after_ms: float = 25.0
    latency_target_ms: Optional[float] = None
    lanes: Optional[Mapping[str, LanePolicy]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_batch, int) or self.max_batch < 1:
            raise ServingConfigError(
                f"max_batch must be a positive integer (the canonical GEMM width), got {self.max_batch!r}"
            )
        if not (self.max_wait_ms >= 0.0):
            raise ServingConfigError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if not isinstance(self.max_queue, int) or self.max_queue < 1:
            raise ServingConfigError(f"max_queue must be a positive integer, got {self.max_queue!r}")
        if not (self.retry_after_ms >= 0.0):
            raise ServingConfigError(f"retry_after_ms must be >= 0, got {self.retry_after_ms}")
        if self.latency_target_ms is not None and not (self.latency_target_ms > 0.0):
            raise ServingConfigError(
                f"latency_target_ms must be positive or None, got {self.latency_target_ms}"
            )
        table = dict(DEFAULT_LANES)
        if self.lanes is not None:
            for name, lane in self.lanes.items():
                if not isinstance(name, str) or not name:
                    raise ServingConfigError(f"lane names must be non-empty strings, got {name!r}")
                if not isinstance(lane, LanePolicy):
                    raise ServingConfigError(
                        f"lane {name!r} must be a LanePolicy, got {type(lane).__name__}"
                    )
                table[name] = lane
        for name, lane in table.items():
            if lane.max_batch is not None and lane.max_batch > self.max_batch:
                raise ServingConfigError(
                    f"lane {name!r} max_batch={lane.max_batch} exceeds the policy's "
                    f"canonical width max_batch={self.max_batch}"
                )
        object.__setattr__(self, "lanes", table)

    # -- lane resolution ------------------------------------------------------
    def lane_policy(self, name: str) -> LanePolicy:
        """The :class:`LanePolicy` for ``name``; unknown lanes raise."""
        try:
            return self.lanes[name]
        except KeyError:
            raise ServingError(
                f"unknown lane {name!r}; declared lanes: {', '.join(sorted(self.lanes))}"
            ) from None

    def lane_limits(self, name: str) -> Tuple[Optional[float], int]:
        """``(max_wait_ms, max_batch)`` for a lane; wait ``None`` means
        "inherit the (possibly adaptive) policy wait"."""
        lane = self.lane_policy(name)
        return lane.max_wait_ms, lane.max_batch if lane.max_batch is not None else self.max_batch


class _Request:
    __slots__ = ("kind", "lane", "lane_name", "vector", "params", "future",
                 "enqueued_at", "deadline_at")

    def __init__(
        self,
        kind: str,
        lane: tuple,
        lane_name: str,
        vector: np.ndarray,
        params: Optional[dict],
        deadline_at: Optional[float],
    ) -> None:
        self.kind = kind
        self.lane = lane
        self.lane_name = lane_name
        self.vector = vector
        self.params = params
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()
        self.deadline_at = deadline_at


class MicroBatcher:
    """One bounded queue + one worker thread coalescing requests for one operator.

    ``runner(kind, W, params)`` performs the wide evaluation: it receives
    the request kind, the stacked ``(n, k)`` block (``k`` = the number of
    coalesced requests; the runner applies the policy's canonical-width
    padding for matvec lanes), and the lane's solver parameters; it
    returns one response per request, in column order.  The runner is
    looked up per batch, so
    swapping the underlying operator (hot reload) applies to every batch
    formed after the swap while in-flight batches finish on the operator
    they captured.
    """

    def __init__(
        self,
        runner: Callable[[str, np.ndarray, Optional[dict]], Sequence],
        policy: BatchPolicy,
        metrics,
        name: str = "operator",
        tracer=None,
    ) -> None:
        self._runner = runner
        self.policy = policy
        self.metrics = metrics
        self.name = name
        self.tracer = tracer
        self._cond = threading.Condition()
        #: Effective co-batching wait of wait-inheriting lanes; fixed at
        #: policy.max_wait_ms unless the policy sets a latency target
        #: (then adapted per batch).
        self._wait_ms = policy.max_wait_ms
        self._latency_ewma_ms: Optional[float] = None
        #: One FIFO per lane key; requests only coalesce within a lane.
        self._queues: dict[tuple, deque[_Request]] = {}
        self._depth = 0        # total queued requests (bounded by max_queue)
        self._deadlined = 0    # queued requests carrying a deadline (shed fast path)
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._thread is not None

    @property
    def alive(self) -> bool:
        """Whether the worker thread is running (health checks probe this)."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start (or restart) the worker; a closed batcher reopens empty."""
        if self._thread is not None:
            return
        with self._cond:
            self._closed = False
        self._thread = threading.Thread(
            target=self._worker, name=f"serving-batcher-{self.name}", daemon=True
        )
        self._thread.start()

    def close(self, drain: bool = True) -> None:
        """Stop the worker.  ``drain=True`` serves queued requests first;
        ``drain=False`` fails them with :class:`ServingError`."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            dropped: List[_Request] = []
            if not drain:
                for queue in self._queues.values():
                    dropped.extend(queue)
                self._queues.clear()
                self._depth = 0
                self._deadlined = 0
            self._cond.notify_all()
        for request in dropped:
            if not request.future.set_running_or_notify_cancel():
                continue  # already cancelled by the caller
            request.future.set_exception(
                ServingError(f"server for operator {self.name!r} shut down before the request ran")
            )
            self.metrics.record_response(time.monotonic() - request.enqueued_at, ok=False)
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # -- submission ---------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._depth

    def submit(
        self,
        kind: str,
        vector: np.ndarray,
        params: Optional[dict] = None,
        lane: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> Future:
        """Enqueue one request; returns its future.

        ``lane`` selects the latency lane (default :data:`THROUGHPUT`);
        ``deadline_ms`` arms shed-on-deadline (measured from now).  Raises
        :class:`ServerOverloadedError` when the queue is full and
        :class:`ServingError` for unknown lanes or when the batcher is
        closed or was never started.
        """
        lane_name = THROUGHPUT if lane is None else lane
        self.policy.lane_policy(lane_name)  # validate before touching the queue
        if kind == SOLVE:
            lane_key = (SOLVE, lane_name, tuple(sorted((params or {}).items())))
        elif kind == MATVEC:
            lane_key = (MATVEC, lane_name)
        else:
            raise ServingError(f"unknown request kind {kind!r}; use {MATVEC!r} or {SOLVE!r}")
        deadline_at = None
        if deadline_ms is not None:
            if not (deadline_ms > 0.0):
                raise ServingError(f"deadline_ms must be positive, got {deadline_ms}")
            deadline_at = time.monotonic() + deadline_ms / 1e3
        request = _Request(kind, lane_key, lane_name, vector, params, deadline_at)
        with self._cond:
            if self._closed:
                raise ServingError(f"server for operator {self.name!r} is shut down")
            if self._thread is None:
                raise ServingError(
                    f"server for operator {self.name!r} is not started (call MatvecServer.start())"
                )
            if self._depth >= self.policy.max_queue:
                self.metrics.record_reject(lane_name)
                raise ServerOverloadedError(
                    f"operator {self.name!r} queue is full ({self.policy.max_queue} requests); "
                    f"retry after {self.policy.retry_after_ms:g} ms",
                    retry_after_s=self.policy.retry_after_ms / 1e3,
                )
            self._queues.setdefault(lane_key, deque()).append(request)
            self._depth += 1
            if deadline_at is not None:
                self._deadlined += 1
            self.metrics.record_submit(self._depth, lane_name)
            self._cond.notify_all()
        return request.future

    # -- adaptive wait -------------------------------------------------------
    @property
    def current_wait_ms(self) -> float:
        """The effective co-batching wait (== ``policy.max_wait_ms`` unless adaptive)."""
        with self._cond:
            return self._wait_ms

    #: EWMA smoothing factor for the observed p90 batch latency.
    _EWMA_ALPHA = 0.2
    #: Floor of the adaptive wait: adaptation may effectively disable
    #: co-batching waiting but must be able to recover (0 would make the
    #: multiplicative grow-back a no-op).
    _MIN_WAIT_MS = 0.05

    def _adapt_wait(self, batch: List[_Request], now: float) -> None:
        """Shrink/grow the effective wait from the observed p90 batch latency.

        Called by the worker after every evaluated batch of a
        wait-inheriting lane when the policy sets ``latency_target_ms``.
        The p90 of the batch's end-to-end request latencies feeds an EWMA;
        above the target the wait halves (waiting for co-traffic is the
        one latency component the batcher controls), below 70% of it the
        wait grows 25% back toward ``max_wait_ms`` to recover occupancy.
        """
        target = self.policy.latency_target_ms
        if target is None:
            return
        latencies_ms = [(now - request.enqueued_at) * 1e3 for request in batch]
        observed = float(np.percentile(latencies_ms, 90))
        with self._cond:
            if self._latency_ewma_ms is None:
                self._latency_ewma_ms = observed
            else:
                self._latency_ewma_ms += self._EWMA_ALPHA * (observed - self._latency_ewma_ms)
            if self._latency_ewma_ms > target:
                self._wait_ms = max(self._MIN_WAIT_MS, self._wait_ms * 0.5)
            elif self._latency_ewma_ms < 0.7 * target:
                self._wait_ms = min(
                    self.policy.max_wait_ms, max(self._wait_ms * 1.25, self._MIN_WAIT_MS)
                )
            self.metrics.record_adaptive_wait(self._wait_ms, self._latency_ewma_ms)

    # -- worker -------------------------------------------------------------
    def _effective_wait_ms(self, lane_name: str) -> Tuple[float, int, bool]:
        """(wait_ms, lane_max_batch, inherits) with the adaptive wait applied."""
        wait_ms, lane_batch = self.policy.lane_limits(lane_name)
        if wait_ms is None:
            return self._wait_ms, lane_batch, True
        return wait_ms, lane_batch, False

    def _extract_expired_locked(self, now: float) -> List[_Request]:
        """Remove and return every queued request whose deadline has passed."""
        if self._deadlined == 0:
            return []
        shed: List[_Request] = []
        for lane_key in list(self._queues):
            queue = self._queues[lane_key]
            if not any(r.deadline_at is not None and r.deadline_at <= now for r in queue):
                continue
            kept: deque[_Request] = deque()
            for request in queue:
                if request.deadline_at is not None and request.deadline_at <= now:
                    shed.append(request)
                else:
                    kept.append(request)
            if kept:
                self._queues[lane_key] = kept
            else:
                del self._queues[lane_key]
        if shed:
            self._depth -= len(shed)
            self._deadlined -= len(shed)
        return shed

    def _collect(self) -> Optional[Tuple[List[_Request], List[_Request]]]:
        """Block until work is ready; returns ``(batch, shed)``, ``None`` when
        closed and drained.

        Shedding runs first: deadline-expired requests are returned for the
        worker to fail *before* any of them can occupy a GEMM slot.  Among
        the lanes that are ready (full, wait expired, or the batcher is
        closing) the **lowest-wait lane wins** (ties by earliest flush
        time), so the interactive lane preempts a throughput backlog at
        every batch boundary.
        """
        with self._cond:
            while True:
                if self._depth == 0:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                now = time.monotonic()
                shed = self._extract_expired_locked(now)
                if shed:
                    return [], shed
                best_key = None
                best_rank: Tuple[float, float] = (0.0, 0.0)
                best_batch = 0
                wake: Optional[float] = None
                for lane_key, queue in self._queues.items():
                    head = queue[0]
                    wait_ms, lane_batch, _ = self._effective_wait_ms(lane_key[1])
                    flush_at = head.enqueued_at + wait_ms / 1e3
                    if self._closed or len(queue) >= lane_batch or flush_at <= now:
                        rank = (wait_ms, flush_at)
                        if best_key is None or rank < best_rank:
                            best_key, best_rank, best_batch = lane_key, rank, lane_batch
                    elif wake is None or flush_at < wake:
                        wake = flush_at
                if best_key is not None:
                    queue = self._queues[best_key]
                    take = min(len(queue), best_batch)
                    batch = [queue.popleft() for _ in range(take)]
                    self._depth -= take
                    self._deadlined -= sum(1 for r in batch if r.deadline_at is not None)
                    if not queue:
                        del self._queues[best_key]
                    return batch, []
                if self._deadlined:
                    for queue in self._queues.values():
                        for request in queue:
                            if request.deadline_at is not None and (
                                wake is None or request.deadline_at < wake
                            ):
                                wake = request.deadline_at
                # every not-ready lane has a finite flush time, so wake is set
                self._cond.wait(None if wake is None else max(0.0, wake - now))

    def _active_tracer(self):
        tracer = self.tracer
        return tracer if (tracer is not None and tracer.enabled) else get_tracer()

    def _worker(self) -> None:
        while True:
            collected = self._collect()
            if collected is None:
                return
            batch, shed = collected
            if shed:
                now = time.monotonic()
                tracer = self._active_tracer()
                for request in shed:
                    if not request.future.set_running_or_notify_cancel():
                        continue  # already cancelled by the caller
                    waited_ms = (now - request.enqueued_at) * 1e3
                    request.future.set_exception(
                        DeadlineExceededError(
                            f"request on lane {request.lane_name!r} of operator {self.name!r} "
                            f"shed: deadline expired after {waited_ms:.1f} ms in queue "
                            f"(never evaluated; safe to retry)",
                            lane=request.lane_name,
                            waited_ms=waited_ms,
                        )
                    )
                    self.metrics.record_shed(request.lane_name)
                    _obs_counters.add("requests_shed")
                    if tracer.enabled:
                        tracer.instant(
                            "serve.shed", lane=request.lane_name, waited_ms=waited_ms
                        )
                _LOG.warning(
                    "operator %r shed %d deadline-expired request(s) before evaluation",
                    self.name,
                    len(shed),
                )
            if not batch:
                continue
            # Claim every future before evaluating: a pending future can be
            # cancelled at any time (e.g. an asyncio caller timing out), and
            # set_result on a cancelled future raises — which would kill this
            # worker and wedge the operator.  set_running_or_notify_cancel
            # atomically drops already-cancelled requests and makes the rest
            # uncancellable for the duration of the batch.
            batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
            if not batch:
                continue
            started = time.monotonic()
            try:
                tracer = self._active_tracer()
                if tracer.enabled:
                    with tracer.span(
                        "serve.batch.assemble",
                        operator=self.name,
                        requests=len(batch),
                        lane=batch[0].lane_name,
                    ):
                        block = np.stack([request.vector for request in batch], axis=1)
                else:
                    block = np.stack([request.vector for request in batch], axis=1)
                results = self._runner(batch[0].kind, block, batch[0].params)
                if len(results) != len(batch):
                    raise ServingError(
                        f"runner returned {len(results)} responses for a batch of {len(batch)}"
                    )
            except BaseException as exc:  # fail the whole batch, keep serving
                now = time.monotonic()
                for request in batch:
                    request.future.set_exception(exc)
                    self.metrics.record_response(now - request.enqueued_at, ok=False)
                continue
            now = time.monotonic()
            self.metrics.record_batch(len(batch), now - started)
            _obs_counters.add("batches_assembled")
            _obs_counters.add("batch_requests", len(batch))
            _obs_counters.add("batch_occupancy_sum", len(batch) / self.policy.max_batch)
            _, _, inherits = self._effective_wait_ms(batch[0].lane_name)
            if inherits:
                self._adapt_wait(batch, now)
            for request, result in zip(batch, results):
                request.future.set_result(result)
                self.metrics.record_response(now - request.enqueued_at, lane=request.lane_name)
