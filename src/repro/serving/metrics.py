"""Request / latency / batch-occupancy metrics for the serving runtime.

One :class:`ServingMetrics` instance per served operator (the server
aggregates snapshots in :meth:`repro.serving.server.MatvecServer.stats`).
Counters are monotonic; latency and batch-size distributions are kept in
bounded sliding windows so percentile reporting stays O(window) and the
memory of a long-running server never grows with traffic.

Everything is guarded by one lock per instance — recording is a few
appends and adds, far off the evaluation hot path (one record per request
plus one per batch, against milliseconds of GEMM work).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict

import numpy as np

__all__ = ["ServingMetrics"]


class ServingMetrics:
    """Thread-safe serving statistics: counters + sliding-window distributions.

    ``window`` bounds how many recent request latencies / batch sizes feed
    the percentile and occupancy estimates.
    """

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self._batch_sizes: deque[int] = deque(maxlen=window)
        self._batch_seconds: deque[float] = deque(maxlen=window)
        self.requests = 0            # accepted into the queue
        self.responses = 0           # futures resolved successfully
        self.errors = 0              # futures resolved with an exception
        self.rejected = 0            # backpressure rejections
        self.batches = 0             # evaluations executed
        self.batched_requests = 0    # requests served across those evaluations
        self.reloads = 0             # successful operator swaps (hot reload)
        self.reload_failures = 0
        self.max_queue_depth = 0
        #: Adaptive-batching state (None until a latency-target policy records):
        #: the batcher's current effective wait and its latency-EWMA estimate.
        self.adaptive_wait_ms = None
        self.latency_ewma_ms = None

    # -- recording ----------------------------------------------------------
    def record_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.requests += 1
            if queue_depth > self.max_queue_depth:
                self.max_queue_depth = queue_depth

    def record_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_batch(self, size: int, seconds: float) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self._batch_sizes.append(int(size))
            self._batch_seconds.append(float(seconds))

    def record_response(self, latency_seconds: float, ok: bool = True) -> None:
        with self._lock:
            if ok:
                self.responses += 1
                self._latencies.append(float(latency_seconds))
            else:
                self.errors += 1

    def record_reload(self, ok: bool = True) -> None:
        with self._lock:
            if ok:
                self.reloads += 1
            else:
                self.reload_failures += 1

    def record_adaptive_wait(self, wait_ms: float, latency_ewma_ms: float) -> None:
        """Latest adaptive-batching state (see :class:`repro.serving.batcher.BatchPolicy`)."""
        with self._lock:
            self.adaptive_wait_ms = float(wait_ms)
            self.latency_ewma_ms = float(latency_ewma_ms)

    # -- reporting ----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One JSON-friendly dict: counters plus latency/occupancy summaries.

        ``batch_occupancy`` is the mean number of requests coalesced per
        evaluation — the number that explains the serving speedup (a full
        batch amortizes one wide evaluation over ``max_batch`` requests).
        """
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            sizes = np.asarray(self._batch_sizes, dtype=np.float64)
            batch_seconds = np.asarray(self._batch_seconds, dtype=np.float64)
            out: Dict[str, object] = {
                "requests": self.requests,
                "responses": self.responses,
                "errors": self.errors,
                "rejected": self.rejected,
                "batches": self.batches,
                "batch_occupancy": (
                    self.batched_requests / self.batches if self.batches else 0.0
                ),
                "reloads": self.reloads,
                "reload_failures": self.reload_failures,
                "max_queue_depth": self.max_queue_depth,
            }
            if self.adaptive_wait_ms is not None:
                out["adaptive_wait_ms"] = self.adaptive_wait_ms
                out["latency_ewma_ms"] = self.latency_ewma_ms
        if latencies.size:
            out["latency_ms"] = {
                "count": int(latencies.size),
                "mean": float(latencies.mean() * 1e3),
                "p50": float(np.percentile(latencies, 50) * 1e3),
                "p90": float(np.percentile(latencies, 90) * 1e3),
                "p99": float(np.percentile(latencies, 99) * 1e3),
                "max": float(latencies.max() * 1e3),
            }
        else:
            out["latency_ms"] = {"count": 0}
        if sizes.size:
            out["recent_batch_sizes"] = {
                "mean": float(sizes.mean()),
                "max": int(sizes.max()),
            }
        if batch_seconds.size:
            out["batch_eval_ms"] = {
                "mean": float(batch_seconds.mean() * 1e3),
                "max": float(batch_seconds.max() * 1e3),
            }
        return out
