"""Request / latency / batch-occupancy metrics for the serving runtime.

One :class:`ServingMetrics` instance per served operator *per shard* (the
server aggregates snapshots in :meth:`repro.serving.server.MatvecServer.stats`;
the cluster router rolls shard instances up with :func:`aggregate_metrics`).
Counters are monotonic; latency and batch-size distributions are kept in
bounded sliding windows so percentile reporting stays O(window) and the
memory of a long-running server never grows with traffic.  Latencies are
additionally windowed **per latency lane**, so the interactive and
throughput lanes report separate percentiles.

Two report shapes:

* :meth:`ServingMetrics.snapshot` — the human-facing dict used by
  ``MatvecServer.stats()``; omits sections with no data,
* :meth:`ServingMetrics.to_dict` — the **stable schema** (every key always
  present, ``schema_version`` pinned) consumed by the cluster aggregation
  and external scrapers (``python -m repro.serving --metrics-json``).

Everything is guarded by one lock per instance — recording is a few
appends and adds, far off the evaluation hot path (one record per request
plus one per batch, against milliseconds of GEMM work).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..obs import counters as _obs_counters

__all__ = ["ServingMetrics", "aggregate_metrics", "METRICS_SCHEMA_VERSION"]

#: Version of the stable ``to_dict`` / ``aggregate_metrics`` schema.
#: v2 added the ``bytes_resident`` / ``bytes_on_disk`` memory split (how
#: much of the served operator lives in RAM vs pages in from an mmap store).
#: v3 adds the ``counters`` section re-exporting the process-wide pipeline
#: counters of :mod:`repro.obs.counters` — every vocabulary key always
#: present (zero until the instrumented path runs).  The registry is
#: process-wide, so in-process instances report the same values and
#: :func:`aggregate_metrics` sums them across instances (one instance per
#: shard process in a real cluster).  All v2 keys are unchanged.
METRICS_SCHEMA_VERSION = 3


def _latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    """``{count, mean, p50, p90, p99, max}`` in milliseconds (zeros when empty)."""
    arr = np.asarray(latencies_s, dtype=np.float64)
    if not arr.size:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean() * 1e3),
        "p50": float(np.percentile(arr, 50) * 1e3),
        "p90": float(np.percentile(arr, 90) * 1e3),
        "p99": float(np.percentile(arr, 99) * 1e3),
        "max": float(arr.max() * 1e3),
    }


class ServingMetrics:
    """Thread-safe serving statistics: counters + sliding-window distributions.

    ``window`` bounds how many recent request latencies / batch sizes feed
    the percentile and occupancy estimates (per lane for latencies).
    """

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._window = int(window)
        self._latencies: deque[float] = deque(maxlen=window)
        self._batch_sizes: deque[int] = deque(maxlen=window)
        self._batch_seconds: deque[float] = deque(maxlen=window)
        #: per-lane sliding latency windows + per-lane counters
        self._lane_latencies: Dict[str, deque] = {}
        self._lane_responses: Dict[str, int] = {}
        self._lane_shed: Dict[str, int] = {}
        self._lane_rejected: Dict[str, int] = {}
        self.requests = 0            # accepted into the queue
        self.responses = 0           # futures resolved successfully
        self.errors = 0              # futures resolved with an exception
        self.rejected = 0            # backpressure rejections
        self.shed = 0                # deadline-expired requests shed before evaluation
        self.batches = 0             # evaluations executed
        self.batched_requests = 0    # requests served across those evaluations
        self.reloads = 0             # successful operator swaps (hot reload)
        self.reload_failures = 0
        self.max_queue_depth = 0
        #: Adaptive-batching state (None until a latency-target policy records):
        #: the batcher's current effective wait and its latency-EWMA estimate.
        self.adaptive_wait_ms = None
        self.latency_ewma_ms = None
        #: Memory split of the served operator (see
        #: ``CompressedMatrix.memory_report``); gauges, refreshed at
        #: registration and on every hot reload, zero until recorded.
        self.bytes_resident = 0
        self.bytes_on_disk = 0

    # -- recording ----------------------------------------------------------
    def record_submit(self, queue_depth: int, lane: Optional[str] = None) -> None:
        with self._lock:
            self.requests += 1
            if queue_depth > self.max_queue_depth:
                self.max_queue_depth = queue_depth

    def record_reject(self, lane: Optional[str] = None) -> None:
        with self._lock:
            self.rejected += 1
            if lane is not None:
                self._lane_rejected[lane] = self._lane_rejected.get(lane, 0) + 1

    def record_shed(self, lane: Optional[str] = None) -> None:
        """A queued request's deadline expired; it was shed unevaluated."""
        with self._lock:
            self.shed += 1
            if lane is not None:
                self._lane_shed[lane] = self._lane_shed.get(lane, 0) + 1

    def record_batch(self, size: int, seconds: float) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self._batch_sizes.append(int(size))
            self._batch_seconds.append(float(seconds))

    def record_response(self, latency_seconds: float, ok: bool = True,
                        lane: Optional[str] = None) -> None:
        with self._lock:
            if ok:
                self.responses += 1
                self._latencies.append(float(latency_seconds))
                if lane is not None:
                    window = self._lane_latencies.get(lane)
                    if window is None:
                        window = self._lane_latencies[lane] = deque(maxlen=self._window)
                    window.append(float(latency_seconds))
                    self._lane_responses[lane] = self._lane_responses.get(lane, 0) + 1
            else:
                self.errors += 1

    def record_reload(self, ok: bool = True) -> None:
        with self._lock:
            if ok:
                self.reloads += 1
            else:
                self.reload_failures += 1

    def record_adaptive_wait(self, wait_ms: float, latency_ewma_ms: float) -> None:
        """Latest adaptive-batching state (see :class:`repro.serving.batcher.BatchPolicy`)."""
        with self._lock:
            self.adaptive_wait_ms = float(wait_ms)
            self.latency_ewma_ms = float(latency_ewma_ms)

    def record_memory(self, bytes_resident: int, bytes_on_disk: int) -> None:
        """Gauge update: the served operator's resident/on-disk byte split."""
        with self._lock:
            self.bytes_resident = int(bytes_resident)
            self.bytes_on_disk = int(bytes_on_disk)

    # -- raw state (aggregation substrate) -----------------------------------
    def _raw(self) -> Dict[str, object]:
        """A consistent copy of counters + windows, taken under the lock."""
        with self._lock:
            lanes = sorted(
                set(self._lane_latencies) | set(self._lane_shed) | set(self._lane_rejected)
            )
            return {
                "requests": self.requests,
                "responses": self.responses,
                "errors": self.errors,
                "rejected": self.rejected,
                "shed": self.shed,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "reloads": self.reloads,
                "reload_failures": self.reload_failures,
                "max_queue_depth": self.max_queue_depth,
                "adaptive_wait_ms": self.adaptive_wait_ms,
                "latency_ewma_ms": self.latency_ewma_ms,
                "bytes_resident": self.bytes_resident,
                "bytes_on_disk": self.bytes_on_disk,
                "latencies": list(self._latencies),
                "batch_sizes": list(self._batch_sizes),
                "batch_seconds": list(self._batch_seconds),
                "counters": _obs_counters.snapshot(names=_obs_counters.VOCABULARY),
                "lanes": {
                    lane: {
                        "latencies": list(self._lane_latencies.get(lane, ())),
                        "responses": self._lane_responses.get(lane, 0),
                        "shed": self._lane_shed.get(lane, 0),
                        "rejected": self._lane_rejected.get(lane, 0),
                    }
                    for lane in lanes
                },
            }

    # -- reporting ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The stable metrics schema: every key always present.

        This is the shape the cluster aggregation and external scrapers
        consume (``python -m repro.serving --metrics-json``); its keys are
        pinned by the unit tests and versioned by ``schema_version``.
        """
        return _render(self._raw(), instances=1)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-friendly dict: counters plus latency/occupancy summaries.

        ``batch_occupancy`` is the mean number of requests coalesced per
        evaluation — the number that explains the serving speedup (a full
        batch amortizes one wide evaluation over ``max_batch`` requests).
        Sections with no data are omitted (use :meth:`to_dict` for the
        stable every-key-present schema).
        """
        raw = self._raw()
        out: Dict[str, object] = {
            "requests": raw["requests"],
            "responses": raw["responses"],
            "errors": raw["errors"],
            "rejected": raw["rejected"],
            "shed": raw["shed"],
            "batches": raw["batches"],
            "batch_occupancy": (
                raw["batched_requests"] / raw["batches"] if raw["batches"] else 0.0
            ),
            "reloads": raw["reloads"],
            "reload_failures": raw["reload_failures"],
            "max_queue_depth": raw["max_queue_depth"],
            "bytes_resident": raw["bytes_resident"],
            "bytes_on_disk": raw["bytes_on_disk"],
        }
        if raw["adaptive_wait_ms"] is not None:
            out["adaptive_wait_ms"] = raw["adaptive_wait_ms"]
            out["latency_ewma_ms"] = raw["latency_ewma_ms"]
        latencies = raw["latencies"]
        if latencies:
            out["latency_ms"] = _latency_summary(latencies)
        else:
            out["latency_ms"] = {"count": 0}
        sizes = np.asarray(raw["batch_sizes"], dtype=np.float64)
        if sizes.size:
            out["recent_batch_sizes"] = {"mean": float(sizes.mean()), "max": int(sizes.max())}
        batch_seconds = np.asarray(raw["batch_seconds"], dtype=np.float64)
        if batch_seconds.size:
            out["batch_eval_ms"] = {
                "mean": float(batch_seconds.mean() * 1e3),
                "max": float(batch_seconds.max() * 1e3),
            }
        if raw["lanes"]:
            out["lanes"] = {
                lane: {
                    "responses": stats["responses"],
                    "shed": stats["shed"],
                    "rejected": stats["rejected"],
                    "latency_ms": _latency_summary(stats["latencies"]),
                }
                for lane, stats in raw["lanes"].items()
            }
        return out


def _render(raw: Dict[str, object], instances: int) -> Dict[str, object]:
    """Render one raw state (or a merged one) into the stable schema."""
    sizes = np.asarray(raw["batch_sizes"], dtype=np.float64)
    batch_seconds = np.asarray(raw["batch_seconds"], dtype=np.float64)
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "instances": instances,
        "requests": raw["requests"],
        "responses": raw["responses"],
        "errors": raw["errors"],
        "rejected": raw["rejected"],
        "shed": raw["shed"],
        "batches": raw["batches"],
        "batched_requests": raw["batched_requests"],
        "batch_occupancy": (
            raw["batched_requests"] / raw["batches"] if raw["batches"] else 0.0
        ),
        "reloads": raw["reloads"],
        "reload_failures": raw["reload_failures"],
        "max_queue_depth": raw["max_queue_depth"],
        "adaptive_wait_ms": raw["adaptive_wait_ms"],
        "latency_ewma_ms": raw["latency_ewma_ms"],
        "bytes_resident": raw["bytes_resident"],
        "bytes_on_disk": raw["bytes_on_disk"],
        "counters": {
            name: raw["counters"].get(name, 0) for name in _obs_counters.VOCABULARY
        },
        "latency_ms": _latency_summary(raw["latencies"]),
        "batch_eval_ms": {
            "count": int(batch_seconds.size),
            "mean": float(batch_seconds.mean() * 1e3) if batch_seconds.size else 0.0,
            "max": float(batch_seconds.max() * 1e3) if batch_seconds.size else 0.0,
        },
        "batch_sizes": {
            "count": int(sizes.size),
            "mean": float(sizes.mean()) if sizes.size else 0.0,
            "max": int(sizes.max()) if sizes.size else 0,
        },
        "lanes": {
            lane: {
                "responses": stats["responses"],
                "shed": stats["shed"],
                "rejected": stats["rejected"],
                "latency_ms": _latency_summary(stats["latencies"]),
            }
            for lane, stats in raw["lanes"].items()
        },
    }


def aggregate_metrics(metrics: Iterable[ServingMetrics]) -> Dict[str, object]:
    """Roll several :class:`ServingMetrics` up into one stable-schema dict.

    Counters are summed, sliding windows concatenated (so the percentiles
    are over the union of the recent samples), per-lane sections merged by
    lane name, and the adaptive-wait state averaged over the instances
    that report one.  This is how the cluster router produces per-operator
    and cluster-wide rollups from per-shard metrics.
    """
    raws = [m._raw() for m in metrics]
    merged: Dict[str, object] = {
        "requests": 0, "responses": 0, "errors": 0, "rejected": 0, "shed": 0,
        "batches": 0, "batched_requests": 0, "reloads": 0, "reload_failures": 0,
        "max_queue_depth": 0, "bytes_resident": 0, "bytes_on_disk": 0,
        "adaptive_wait_ms": None, "latency_ewma_ms": None,
        "latencies": [], "batch_sizes": [], "batch_seconds": [], "lanes": {},
        "counters": {name: 0 for name in _obs_counters.VOCABULARY},
    }
    adaptive: List[float] = []
    ewma: List[float] = []
    for raw in raws:
        for key in ("requests", "responses", "errors", "rejected", "shed",
                    "batches", "batched_requests", "reloads", "reload_failures",
                    "bytes_resident", "bytes_on_disk"):
            merged[key] += raw[key]
        merged["max_queue_depth"] = max(merged["max_queue_depth"], raw["max_queue_depth"])
        if raw["adaptive_wait_ms"] is not None:
            adaptive.append(raw["adaptive_wait_ms"])
        if raw["latency_ewma_ms"] is not None:
            ewma.append(raw["latency_ewma_ms"])
        merged["latencies"].extend(raw["latencies"])
        merged["batch_sizes"].extend(raw["batch_sizes"])
        merged["batch_seconds"].extend(raw["batch_seconds"])
        for name in _obs_counters.VOCABULARY:
            merged["counters"][name] += raw["counters"].get(name, 0)
        for lane, stats in raw["lanes"].items():
            into = merged["lanes"].setdefault(
                lane, {"latencies": [], "responses": 0, "shed": 0, "rejected": 0}
            )
            into["latencies"].extend(stats["latencies"])
            into["responses"] += stats["responses"]
            into["shed"] += stats["shed"]
            into["rejected"] += stats["rejected"]
    if adaptive:
        merged["adaptive_wait_ms"] = float(np.mean(adaptive))
    if ewma:
        merged["latency_ewma_ms"] = float(np.mean(ewma))
    return _render(merged, instances=len(raws))
