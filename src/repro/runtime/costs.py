"""The Table 2 cost model.

Each GOFMM task has a FLOP estimate parameterized by the leaf size ``m``,
skeleton rank ``s``, number of right-hand sides ``r``, point dimension ``d``
(only when kernel entries are evaluated on the fly), and the sizes of the
Near/Far lists:

=========  =============================================  ================
task       operation                                      FLOPS (Table 2)
=========  =============================================  ================
SPLI(α)    split α into l, r                              |α|
ANN(α)     exhaustive κ-NN inside a leaf                  m²
SKEL(α)    pivoted QR of the sampled block                2s³ + 2m³
COEF(α)    triangular solve for P                         s³
N2S(α)     skeleton weights                               2msr (leaf) / 2s²r
SKba(β)    cache far blocks                               d s² |Far(β)|
S2S(β)     skeleton-to-skeleton products                  2s²r |Far(β)|
S2N(β)     push potentials down                           2msr (leaf) / 2s²r
Kba(β)     cache near blocks                              m² |Near(β)|
L2L(β)     direct leaf products                           2m²r |Near(β)|
=========  =============================================  ================

The scheduler simulation divides these counts by each worker's effective
throughput (peak GFLOPS × discount), or by memory bandwidth for
memory-bound tasks, mirroring footnote 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


# Task kinds that are dominated by memory traffic / irregular access rather
# than dense FLOPS; the machine model charges them against bandwidth.
MEMORY_BOUND_KINDS = {"SPLI", "ANN", "Kba", "SKba"}

# Task kinds the paper offloads to the GPU (large, regular GEMMs).
GPU_ELIGIBLE_KINDS = {"L2L", "S2S"}


@dataclass(frozen=True)
class CostModel:
    """FLOP/byte estimates for every task kind of Table 2.

    Parameters
    ----------
    leaf_size, rank, num_rhs:
        the ``m``, ``s`` and ``r`` of the paper.
    point_dim:
        ``d``; nonzero only when kernel entries are evaluated on the fly
        (affects the caching tasks' cost).
    dtype_bytes:
        bytes per matrix entry (4 for single, 8 for double precision).
    """

    leaf_size: int
    rank: int
    num_rhs: int = 1
    point_dim: int = 0
    dtype_bytes: int = 8

    # -- per-kind FLOP estimates -------------------------------------------
    def spli(self, node_size: int) -> float:
        return float(node_size)

    def ann(self) -> float:
        return float(self.leaf_size) ** 2

    def skel(self) -> float:
        return 2.0 * self.rank**3 + 2.0 * self.leaf_size**3

    def coef(self) -> float:
        return float(self.rank) ** 3

    def n2s(self, is_leaf: bool) -> float:
        if is_leaf:
            return 2.0 * self.leaf_size * self.rank * self.num_rhs
        return 2.0 * self.rank**2 * self.num_rhs

    def s2n(self, is_leaf: bool) -> float:
        return self.n2s(is_leaf)

    def s2s(self, far_size: int) -> float:
        return 2.0 * self.rank**2 * self.num_rhs * max(far_size, 0)

    def l2l(self, near_size: int) -> float:
        return 2.0 * self.leaf_size**2 * self.num_rhs * max(near_size, 0)

    def kba(self, near_size: int) -> float:
        return float(self.leaf_size) ** 2 * max(near_size, 0) * max(self.point_dim, 1)

    def skba(self, far_size: int) -> float:
        return float(max(self.point_dim, 1)) * self.rank**2 * max(far_size, 0)

    # -- generic interface ----------------------------------------------------
    def flops(self, kind: str, *, node_size: int = 0, is_leaf: bool = True, near_size: int = 0, far_size: int = 0) -> float:
        kind = kind.upper()
        if kind == "SPLI":
            return self.spli(node_size)
        if kind == "ANN":
            return self.ann()
        if kind == "SKEL":
            return self.skel()
        if kind == "COEF":
            return self.coef()
        if kind == "N2S":
            return self.n2s(is_leaf)
        if kind == "S2N":
            return self.s2n(is_leaf)
        if kind == "S2S":
            return self.s2s(far_size)
        if kind == "L2L":
            return self.l2l(near_size)
        if kind == "KBA":
            return self.kba(near_size)
        if kind == "SKBA":
            return self.skba(far_size)
        raise KeyError(f"unknown task kind {kind!r}")

    def bytes_moved(self, kind: str, *, node_size: int = 0, near_size: int = 0, far_size: int = 0) -> float:
        """Rough memory traffic estimate used for the memory-bound task kinds."""
        kind = kind.upper()
        if kind == "SPLI":
            return float(node_size) * self.dtype_bytes * 4
        if kind == "ANN":
            return float(self.leaf_size) ** 2 * self.dtype_bytes
        if kind == "KBA":
            return float(self.leaf_size) ** 2 * max(near_size, 0) * self.dtype_bytes
        if kind == "SKBA":
            return float(self.rank) ** 2 * max(far_size, 0) * self.dtype_bytes
        # Compute-bound tasks: traffic roughly proportional to operands.
        return float(self.rank) * self.leaf_size * self.dtype_bytes

    @staticmethod
    def is_memory_bound(kind: str) -> bool:
        return kind.upper() in MEMORY_BOUND_KINDS

    @staticmethod
    def is_gpu_eligible(kind: str) -> bool:
        return kind.upper() in GPU_ELIGIBLE_KINDS
