"""Scheduler simulations: level-by-level, omp-task, and dynamic HEFT.

The paper's §2.3 compares three shared-memory parallelization schemes for
the tree traversals:

* **level-by-level** — the traditional approach: all tasks of one tree level
  (of one task family) run, then a barrier, then the next level.  High
  synchronization cost and poor load balance when per-node work varies.
* **omp task (depend)** — out-of-order execution driven by the dependency
  DAG, but with OpenMP's default scheduler: no per-task cost estimates, so
  long tasks can be started last, and no job stealing.
* **dynamic HEFT (the GOFMM runtime)** — out-of-order execution where each
  ready task is placed on the worker queue with the minimum *estimated
  finish time* (using the Table 2 cost model), plus job stealing when
  estimates prove wrong, plus heterogeneous workers (a GPU slave only takes
  FLOP-heavy tasks).

Each scheduler here is an event-driven simulation over a
:class:`repro.runtime.task.TaskGraph` and a
:class:`repro.runtime.machine.MachineModel`; it returns the makespan, the
per-worker utilization, and a task timeline.  The simulations obey two
provable invariants the tests check: the makespan is never below the DAG's
critical path, and never below ``total work / aggregate throughput``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchedulingError
from .machine import MachineModel, Worker
from .task import Task, TaskGraph

__all__ = [
    "ScheduledTask",
    "ScheduleResult",
    "LevelByLevelScheduler",
    "OmpTaskScheduler",
    "HEFTScheduler",
    "simulate_all_schedulers",
]


@dataclass(frozen=True)
class ScheduledTask:
    """One entry of the simulated timeline."""

    task_id: str
    worker: str
    start: float
    finish: float


@dataclass
class ScheduleResult:
    """Outcome of one scheduler simulation."""

    scheduler: str
    machine: str
    makespan: float
    timeline: list[ScheduledTask]
    worker_busy: dict[str, float]
    total_flops: float

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each worker spent busy."""
        if not self.worker_busy or self.makespan <= 0:
            return 0.0
        return sum(self.worker_busy.values()) / (len(self.worker_busy) * self.makespan)

    @property
    def gflops(self) -> float:
        """Achieved GFLOPS over the whole simulated execution."""
        if self.makespan <= 0:
            return 0.0
        return self.total_flops / self.makespan / 1e9

    def efficiency_vs_peak(self, machine: MachineModel) -> float:
        peak = machine.peak_gflops
        return self.gflops / peak if peak > 0 else 0.0


class _BaseScheduler:
    name = "base"

    def schedule(self, graph: TaskGraph, machine: MachineModel) -> ScheduleResult:  # pragma: no cover - interface
        raise NotImplementedError

    @staticmethod
    def _result(name: str, machine: MachineModel, timeline: list[ScheduledTask], graph: TaskGraph) -> ScheduleResult:
        busy: dict[str, float] = {w.name: 0.0 for w in machine.workers}
        for entry in timeline:
            busy[entry.worker] += entry.finish - entry.start
        makespan = max((entry.finish for entry in timeline), default=0.0)
        return ScheduleResult(
            scheduler=name,
            machine=machine.name,
            makespan=makespan,
            timeline=timeline,
            worker_busy=busy,
            total_flops=graph.total_flops(),
        )


def _greedy_pack(
    tasks: list[Task],
    machine: MachineModel,
    worker_ready: dict[str, float],
    earliest_start: dict[str, float],
    use_cost_model: bool,
) -> list[ScheduledTask]:
    """List-schedule a set of independent tasks onto the workers.

    ``use_cost_model=True`` sorts tasks longest-first and picks the worker
    with the minimal estimated finish time (HEFT-style); ``False`` keeps the
    given order and assigns round-robin to the earliest-free worker
    (omp-task-style).
    """
    timeline: list[ScheduledTask] = []
    workers = machine.workers
    if use_cost_model:
        tasks = sorted(tasks, key=lambda t: -machine.best_case_seconds(t))
    for task in tasks:
        best: Optional[tuple[float, float, Worker]] = None
        for worker in workers:
            duration = machine.task_seconds(task, worker)
            if duration == float("inf"):
                continue
            start = max(worker_ready[worker.name], earliest_start.get(task.task_id, 0.0))
            finish = start + duration
            if best is None or finish < best[0]:
                best = (finish, start, worker)
        if best is None:
            raise SchedulingError(f"no worker can execute task {task.task_id!r}")
        finish, start, worker = best
        worker_ready[worker.name] = finish
        timeline.append(ScheduledTask(task.task_id, worker.name, start, finish))
    return timeline


class LevelByLevelScheduler(_BaseScheduler):
    """Barrier-synchronized traversal: one (task kind, tree level) group at a time.

    Groups are ordered so every dependency crosses a barrier (postorder
    kinds walk levels bottom-up, preorder kinds top-down); inside a group
    tasks are load balanced greedily, but *no* task of the next group may
    start before the whole previous group has finished — the extra
    synchronization the paper's runtime removes.
    """

    name = "level-by-level"

    # Which direction each task family walks the tree.
    _BOTTOM_UP = {"SKEL", "N2S"}
    _TOP_DOWN = {"SPLI", "S2N"}

    def schedule(self, graph: TaskGraph, machine: MachineModel) -> ScheduleResult:
        graph.validate()
        max_level = max((t.level for t in graph.tasks.values()), default=0)

        # Build the barrier-ordered group sequence.
        kind_order = ["SPLI", "ANN", "SKEL", "COEF", "Kba", "SKba", "N2S", "S2S", "S2N", "L2L"]
        groups: list[list[Task]] = []
        for kind in kind_order:
            tasks = graph.tasks_of_kind(kind)
            if not tasks:
                continue
            if kind in self._BOTTOM_UP:
                level_range = range(max_level, -1, -1)
            elif kind in self._TOP_DOWN:
                level_range = range(0, max_level + 1)
            else:
                level_range = None  # any-order kinds form a single group
            if level_range is None:
                groups.append(tasks)
            else:
                for level in level_range:
                    level_tasks = [t for t in tasks if t.level == level]
                    if level_tasks:
                        groups.append(level_tasks)

        timeline: list[ScheduledTask] = []
        barrier = 0.0
        for group in groups:
            worker_ready = {w.name: barrier for w in machine.workers}
            earliest = {t.task_id: barrier for t in group}
            entries = _greedy_pack(group, machine, worker_ready, earliest, use_cost_model=True)
            timeline.extend(entries)
            barrier = max((e.finish for e in entries), default=barrier)
        return self._result(self.name, machine, timeline, graph)


class _EventDrivenScheduler(_BaseScheduler):
    """Shared event-driven engine for the two out-of-order schedulers."""

    use_cost_model = True
    job_stealing = True

    def schedule(self, graph: TaskGraph, machine: MachineModel) -> ScheduleResult:
        graph.validate()
        pending = {tid: len(graph.predecessors(tid)) for tid in graph.tasks}
        ready: list[tuple[float, int, str]] = []
        counter = 0

        def push_ready(tid: str, time_now: float) -> None:
            nonlocal counter
            task = graph.tasks[tid]
            if self.use_cost_model:
                # HEFT-like priority: longest estimated task first.
                priority = -machine.best_case_seconds(task)
            else:
                # omp task: FIFO creation order, no cost knowledge.
                priority = counter
            heapq.heappush(ready, (priority, counter, tid))
            counter += 1

        ready_time: dict[str, float] = {}
        for tid in graph.roots():
            ready_time[tid] = 0.0
            push_ready(tid, 0.0)

        worker_free = {w.name: 0.0 for w in machine.workers}
        workers_by_name = {w.name: w for w in machine.workers}
        timeline: list[ScheduledTask] = []
        finish_time: dict[str, float] = {}
        # Event queue of task completions.
        completions: list[tuple[float, str, str]] = []  # (finish, task_id, worker)
        running = 0

        def dispatch(now: float) -> None:
            """Assign as many ready tasks as possible to idle workers at time ``now``."""
            nonlocal running
            skipped: list[str] = []
            while ready:
                idle = [w for w in machine.workers if worker_free[w.name] <= now]
                if not idle:
                    break
                # Take the highest-priority ready task.
                _, _, tid = heapq.heappop(ready)
                task = graph.tasks[tid]
                eligible = [w for w in idle if machine.task_seconds(task, w) != float("inf")]
                if not eligible:
                    # Only non-eligible (e.g. GPU-only-idle) workers are free right
                    # now; set the task aside and keep trying the rest of the queue.
                    skipped.append(tid)
                    continue
                if self.job_stealing:
                    candidates = eligible
                else:
                    candidates = [min(eligible, key=lambda w: worker_free[w.name])]
                best = None
                for worker in candidates:
                    duration = machine.task_seconds(task, worker)
                    start = max(now, ready_time.get(tid, 0.0), worker_free[worker.name])
                    finish = start + duration
                    if self.use_cost_model:
                        key = finish
                    else:
                        key = worker_free[worker.name]  # first idle worker, ignore cost
                    if best is None or key < best[0]:
                        best = (key, start, finish, worker)
                assert best is not None
                _, start, finish, worker = best
                worker_free[worker.name] = finish
                timeline.append(ScheduledTask(tid, worker.name, start, finish))
                heapq.heappush(completions, (finish, tid, worker.name))
                running += 1
            for tid in skipped:
                push_ready(tid, now)

        now = 0.0
        dispatch(now)
        scheduled = len(timeline)
        while completions:
            now, tid, _worker = heapq.heappop(completions)
            finish_time[tid] = now
            for succ in graph.successors(tid):
                pending[succ] -= 1
                if pending[succ] == 0:
                    ready_time[succ] = now
                    push_ready(succ, now)
            dispatch(now)
            scheduled = len(timeline)

        if scheduled != len(graph.tasks):
            raise SchedulingError(
                f"{self.name}: scheduled {scheduled} of {len(graph.tasks)} tasks (machine cannot run some task kind)"
            )
        return self._result(self.name, machine, timeline, graph)


class OmpTaskScheduler(_EventDrivenScheduler):
    """Out-of-order execution without cost estimates or stealing (omp task depend)."""

    name = "omp-task"
    use_cost_model = False
    job_stealing = False


class HEFTScheduler(_EventDrivenScheduler):
    """GOFMM's runtime: dynamic HEFT with cost estimates and job stealing."""

    name = "heft"
    use_cost_model = True
    job_stealing = True


def simulate_all_schedulers(graph: TaskGraph, machine: MachineModel) -> dict[str, ScheduleResult]:
    """Run the three schedulers of Figure 4 on one DAG/machine pair."""
    results = {}
    for scheduler in (LevelByLevelScheduler(), OmpTaskScheduler(), HEFTScheduler()):
        results[scheduler.name] = scheduler.schedule(graph, machine)
    return results
