"""Task-based runtime substrate (§2.3).

The paper replaces level-by-level tree traversals with out-of-order task
scheduling: every per-node computation (Table 2) becomes a task, a
dependency DAG is built by symbolic traversal, and a lightweight dynamic
HEFT scheduler with job stealing dispatches tasks to workers — including
heterogeneous ones (a GPU worker that is far faster on FLOP-heavy tasks).

This subpackage reproduces that machinery in two complementary forms:

* a **real executor** (:mod:`repro.runtime.executor`) that runs the actual
  evaluation tasks of Algorithm 2.7 on a thread pool honoring the DAG, so
  the out-of-order traversal can be verified to produce bit-identical
  results to the sequential code, and
* a **scheduler simulator** (:mod:`repro.runtime.schedulers` +
  :mod:`repro.runtime.machine`) that replays the same DAG against analytic
  machine models (Haswell, KNL, ARM, Haswell+P100) with the Table 2 cost
  model — this regenerates the strong-scaling study (Figure 4) and the
  architecture study (Table 5) without the original hardware.
"""

from .task import Task, TaskGraph
from .costs import CostModel
from .machine import MachineModel, Worker, arm_4, haswell_24, haswell_p100, knl_68, scaled_machine
from .dag import build_compression_dag, build_evaluation_dag, build_plan_dag
from .schedulers import (
    HEFTScheduler,
    LevelByLevelScheduler,
    OmpTaskScheduler,
    ScheduleResult,
    simulate_all_schedulers,
)
from .executor import WorkerPool, parallel_evaluate, run_task_graph

__all__ = [
    "Task",
    "TaskGraph",
    "CostModel",
    "MachineModel",
    "Worker",
    "haswell_24",
    "knl_68",
    "arm_4",
    "haswell_p100",
    "scaled_machine",
    "build_compression_dag",
    "build_evaluation_dag",
    "build_plan_dag",
    "LevelByLevelScheduler",
    "OmpTaskScheduler",
    "HEFTScheduler",
    "ScheduleResult",
    "simulate_all_schedulers",
    "parallel_evaluate",
    "run_task_graph",
    "WorkerPool",
]
