"""Real out-of-order execution of the evaluation work on a thread pool.

The scheduler simulations in :mod:`repro.runtime.schedulers` answer "how
long would this DAG take on machine X under policy Y"; this module answers
the complementary correctness question: the evaluation of Algorithm 2.7
really can be executed out of order, constrained only by the RAW edges of
the symbolic DAG, and produce the same result as the sequential driver.

Two engines share one worker pool:

* ``engine="planned"`` (default) runs over the *segments* of the packed
  :class:`repro.core.plan.EvaluationPlan` — a few dozen batched GEMMs with
  level/stage dependencies (:func:`repro.runtime.dag.build_plan_dag`) —
  instead of re-binding one closure per tree node,
* ``engine="reference"`` executes the per-node task functions of
  :mod:`repro.core.evaluate` over the per-node DAG, as the original
  correctness oracle for out-of-order traversal.

The pool itself is a condition-variable work queue: workers sleep until a
task becomes ready, an error is recorded, or the graph is drained.  There
is no timeout polling, and a worker can never exit while sibling tasks are
still in flight — completion is decided solely by the remaining-task count
under the queue lock.  NumPy releases the GIL inside BLAS calls, so the
parallel speed-up is real, especially for the large batched GEMMs of the
planned engine.

Output writes (S2N-at-leaves and L2L, which overlap on ``ctx.output``) are
serialized per *leaf range*, not through one shared lock: the leaves are
split into contiguous stripes with one lock each, and a task (or plan
segment) holds exactly the stripes its leaves fall in — tasks writing
disjoint leaf ranges proceed concurrently.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core.evaluate import EvaluationState, _as_matrix, task_l2l, task_n2s, task_s2n, task_s2s
from ..core.hmatrix import CompressedMatrix
from ..errors import SchedulingError
from .costs import CostModel
from .dag import build_evaluation_dag, build_plan_dag
from .task import TaskGraph

__all__ = ["ParallelEvaluation", "parallel_evaluate", "run_task_graph"]


@dataclass
class ParallelEvaluation:
    """Result of a threaded evaluation: the product plus execution statistics."""

    output: np.ndarray
    tasks_executed: int
    num_workers: int


# ---------------------------------------------------------------------------
# generic worker pool over a TaskGraph
# ---------------------------------------------------------------------------

def run_task_graph(
    graph: TaskGraph,
    num_workers: int,
    payloads: Optional[Dict[str, Callable[[], None]]] = None,
) -> int:
    """Execute every task of ``graph`` on ``num_workers`` threads, honoring RAW edges.

    ``payloads`` maps task ids to callables; tasks without a payload (or with
    ``task.payload`` unset) are treated as no-ops.  Ready tasks are executed
    largest-estimated-flops first, like the HEFT runtime.  Returns the number
    of tasks executed.  The first payload exception is re-raised in the
    caller after all workers have stopped; a dependency deadlock (no ready
    task, none in flight, tasks remaining) raises :class:`SchedulingError`
    instead of hanging.
    """
    if num_workers < 1:
        raise SchedulingError("need at least one worker")

    pending = {tid: len(graph.predecessors(tid)) for tid in graph.tasks}
    ready: list[tuple[float, int, str]] = []
    cv = threading.Condition()
    state = {"remaining": len(graph.tasks), "in_flight": 0, "executed": 0, "seq": 0}
    errors: list[BaseException] = []

    def push(tid: str) -> None:
        heapq.heappush(ready, (-graph.tasks[tid].flops, state["seq"], tid))
        state["seq"] += 1

    for tid, count in pending.items():
        if count == 0:
            push(tid)

    def worker() -> None:
        while True:
            with cv:
                while not ready and not errors and state["remaining"] > 0:
                    if state["in_flight"] == 0:
                        # Nothing ready, nothing running, tasks left: the
                        # graph cannot make progress.  Wake everyone and fail.
                        errors.append(
                            SchedulingError(
                                f"task graph stalled with {state['remaining']} tasks pending"
                            )
                        )
                        cv.notify_all()
                        break
                    cv.wait()
                if errors or state["remaining"] == 0:
                    return
                _, _, tid = heapq.heappop(ready)
                state["in_flight"] += 1
            task = graph.tasks[tid]
            payload = payloads.get(tid) if payloads is not None else task.payload
            try:
                if payload is not None:
                    payload()
            except BaseException as exc:  # propagate to the caller
                with cv:
                    errors.append(exc)
                    state["in_flight"] -= 1
                    cv.notify_all()
                return
            with cv:
                state["in_flight"] -= 1
                state["remaining"] -= 1
                state["executed"] += 1
                for succ in graph.successors(tid):
                    pending[succ] -= 1
                    if pending[succ] == 0:
                        push(succ)
                # Successors may now be ready, or the graph may be drained:
                # either way sleeping siblings must re-check their predicate.
                cv.notify_all()

    threads = [
        threading.Thread(target=worker, name=f"gofmm-worker-{i}", daemon=True)
        for i in range(min(num_workers, max(len(graph.tasks), 1)))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if errors:
        raise errors[0]
    if state["remaining"] != 0:  # pragma: no cover - defended by the stall check
        raise SchedulingError(f"parallel evaluation finished with {state['remaining']} tasks pending")
    return state["executed"]


def _leaf_stripes(tree, num_workers: int) -> tuple[list, np.ndarray]:
    """The output striping policy shared by both engines.

    Returns one lock per stripe and the stripe index of every leaf slot
    (left-to-right leaf order, balanced contiguous ranges).
    """
    num_leaves = len(tree.leaves)
    num_stripes = max(1, min(4 * num_workers, num_leaves))
    stripe_of_leaf = np.arange(num_leaves, dtype=np.intp) * num_stripes // num_leaves
    return [threading.Lock() for _ in range(num_stripes)], stripe_of_leaf


# ---------------------------------------------------------------------------
# reference engine: per-node task DAG
# ---------------------------------------------------------------------------

def _attach_payloads(
    graph: TaskGraph, compressed: CompressedMatrix, state: EvaluationState, num_workers: int = 4
) -> None:
    """Bind each DAG task to the numerical function it performs."""
    tree = compressed.tree
    locks: dict[int, threading.Lock] = {}

    def lock_for(node_id: int) -> threading.Lock:
        # One lock per tree node protects its ũ accumulator: S2S and S2N(parent)
        # may both add into the same node's potentials concurrently.
        if node_id not in locks:
            locks[node_id] = threading.Lock()
        return locks[node_id]

    # The output is striped by leaf range: each S2N-at-leaf / L2L task writes
    # exactly one leaf's output rows, so it takes only its leaf's stripe lock
    # instead of one lock shared across the whole output.
    stripe_locks, stripe_of_leaf = _leaf_stripes(tree, num_workers)
    leaf_stripe = {
        leaf.node_id: stripe_locks[stripe_of_leaf[slot]] for slot, leaf in enumerate(tree.leaves)
    }

    def output_lock_for(node_id: int) -> threading.Lock:
        return leaf_stripe[node_id]

    for task in graph.tasks.values():
        node = tree.node(task.node_id)
        if task.kind == "N2S":
            task.payload = (lambda n=node: task_n2s(n, state))
        elif task.kind == "S2S":
            def s2s_payload(n=node):
                with lock_for(n.node_id):
                    task_s2s(n, state, compressed.far_blocks)
            task.payload = s2s_payload
        elif task.kind == "S2N":
            def s2n_payload(n=node):
                # Writes this node's children potentials (internal) or the output (leaf).
                if n.is_leaf:
                    with output_lock_for(n.node_id):
                        task_s2n(n, state)
                else:
                    left, right = n.children()
                    first, second = sorted((left.node_id, right.node_id))
                    with lock_for(first), lock_for(second):
                        task_s2n(n, state)
            task.payload = s2n_payload
        elif task.kind == "L2L":
            def l2l_payload(n=node):
                with output_lock_for(n.node_id):
                    task_l2l(n, state, tree, compressed.near_blocks)
            task.payload = l2l_payload
        else:  # pragma: no cover - evaluation DAG only contains the four kinds above
            raise SchedulingError(f"unexpected task kind {task.kind!r} in evaluation DAG")


def _parallel_evaluate_reference(compressed: CompressedMatrix, weights: np.ndarray, num_workers: int) -> np.ndarray:
    tree = compressed.tree
    state = EvaluationState(weights=weights, output=np.zeros_like(weights))
    cost = CostModel(
        leaf_size=compressed.config.leaf_size,
        rank=max(1, int(round(compressed.rank_summary()["mean"]))),
        num_rhs=weights.shape[1],
    )
    graph = build_evaluation_dag(tree, cost)
    _attach_payloads(graph, compressed, state, num_workers=num_workers)
    run_task_graph(graph, num_workers)
    return state.output


# ---------------------------------------------------------------------------
# planned engine: plan-segment DAG
# ---------------------------------------------------------------------------

class _StripeLockSet:
    """Ordered set of stripe locks one output-writing segment must hold.

    Acquisition is always in ascending stripe order (the constructor
    receives the locks pre-sorted), so two segments whose leaf ranges
    overlap can never deadlock.
    """

    __slots__ = ("locks",)

    def __init__(self, locks: list) -> None:
        self.locks = locks

    def __enter__(self) -> "_StripeLockSet":
        for lock in self.locks:
            lock.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        for lock in reversed(self.locks):
            lock.release()
        return False


def _output_stripe_locks(compressed: CompressedMatrix, segments: dict, num_workers: int) -> dict:
    """Per-leaf-range stripe locks for the segments that add into the output.

    S2N-at-leaves and L2L both scatter into ``ctx.output``; a single shared
    lock would serialize them entirely (the last contention point of the
    threaded executor).  Leaves are split into contiguous ranges ("stripes"),
    one lock each, and every output-writing segment takes exactly the locks
    of the stripes its leaves fall in — segments touching disjoint leaf
    ranges now add into the output concurrently.
    """
    tree = compressed.tree
    stripe_locks, stripe_of_leaf = _leaf_stripes(tree, num_workers)
    stripe_of_row = np.empty(tree.n, dtype=np.intp)
    for slot, leaf in enumerate(tree.leaves):
        stripe_of_row[leaf.indices] = stripe_of_leaf[slot]

    locks: dict = {}
    for tid, seg in segments.items():
        dst = getattr(seg, "dst", None)
        if dst is None or seg.kind not in ("S2N", "L2L"):
            locks[tid] = None  # workspace scatters are disjoint by construction
            continue
        # Each dst row-block is one whole leaf, so its first row names the leaf.
        stripes = np.unique(stripe_of_row[np.asarray(dst)[:, 0]])
        locks[tid] = _StripeLockSet([stripe_locks[int(s)] for s in stripes])
    return locks


def _parallel_evaluate_planned(compressed: CompressedMatrix, weights: np.ndarray, num_workers: int) -> np.ndarray:
    plan = compressed.plan()
    ctx = plan.new_context(weights)
    graph, segments = build_plan_dag(plan, num_rhs=weights.shape[1])
    # S2N-at-leaves overlaps L2L on the output; instead of one shared lock,
    # the output is striped by leaf range and each segment holds only the
    # stripes it writes.  Workspace scatters are disjoint per stage by
    # construction (see plan.PlanSegment) and need no lock.
    out_locks = _output_stripe_locks(compressed, segments, num_workers)
    payloads = {
        tid: (lambda s=seg, l=out_locks[tid]: s.run(ctx, out_lock=l))
        for tid, seg in segments.items()
    }
    run_task_graph(graph, num_workers, payloads=payloads)
    return ctx.output


def parallel_evaluate(
    compressed: CompressedMatrix,
    w: np.ndarray,
    num_workers: int = 4,
    engine: Optional[str] = None,
) -> np.ndarray:
    """Evaluate ``K̃ w`` by executing the evaluation DAG with ``num_workers`` threads.

    ``engine="planned"`` (default) schedules the batched segments of the
    cached evaluation plan; ``engine="reference"`` schedules one task per
    tree node, re-using the exact task functions of the sequential driver.
    Both agree with the sequential engines to floating-point summation
    order.
    """
    if num_workers < 1:
        raise SchedulingError("need at least one worker")
    engine = engine or compressed.default_engine()
    weights, was_vector = _as_matrix(w, compressed.tree.n)
    if engine == "planned":
        output = _parallel_evaluate_planned(compressed, weights, num_workers)
    elif engine == "reference":
        output = _parallel_evaluate_reference(compressed, weights, num_workers)
    else:
        raise SchedulingError(f"unknown evaluation engine {engine!r}; use 'planned' or 'reference'")
    return output[:, 0] if was_vector else output
