"""Real out-of-order execution of the evaluation work on a thread pool.

The scheduler simulations in :mod:`repro.runtime.schedulers` answer "how
long would this DAG take on machine X under policy Y"; this module answers
the complementary correctness question: the evaluation of Algorithm 2.7
really can be executed out of order, constrained only by the RAW edges of
the symbolic DAG, and produce the same result as the sequential driver.

Two engines share one worker pool:

* ``engine="planned"`` (default) runs over the *segments* of the packed
  :class:`repro.core.plan.EvaluationPlan` — a few dozen batched GEMMs with
  level/stage dependencies (:func:`repro.runtime.dag.build_plan_dag`) —
  instead of re-binding one closure per tree node,
* ``engine="reference"`` executes the per-node task functions of
  :mod:`repro.core.evaluate` over the per-node DAG, as the original
  correctness oracle for out-of-order traversal.

The pool itself is a :class:`WorkerPool`: a condition-variable work queue
whose workers sleep until a task becomes ready, an error is recorded, or a
graph is drained.  A pool is *shared across concurrent evaluations* — any
number of threads may call :meth:`WorkerPool.run` at once (the serving
runtime does exactly this), each run keeping its own bookkeeping while all
runs draw from one set of worker threads, largest-estimated-flops first.
:func:`run_task_graph` keeps the original one-shot API by wrapping a
transient pool.  There is no timeout polling for normal progress, and a
worker never abandons a run while sibling tasks of that run are still in
flight — completion is decided solely by the remaining-task count under
the queue lock.  NumPy releases the GIL inside BLAS calls, so the parallel
speed-up is real, especially for the large batched GEMMs of the planned
engine.

Stall handling is two-layered: a *dependency* stall (nothing ready, nothing
in flight, tasks remaining — a malformed DAG) fails immediately, while a
*watchdog* timeout (``stall_timeout``, defaulting to
``GOFMMConfig.executor_stall_timeout``) bounds the gap between task
completions so a wedged payload cannot hang a server evaluation forever.

Output writes (S2N-at-leaves and L2L, which overlap on ``ctx.output``) are
serialized per *leaf range*, not through one shared lock: the leaves are
split into contiguous stripes with one lock each, and a task (or plan
segment) holds exactly the stripes its leaves fall in — tasks writing
disjoint leaf ranges proceed concurrently.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core.evaluate import EvaluationState, _as_matrix, task_l2l, task_n2s, task_s2n, task_s2s
from ..core.hmatrix import CompressedMatrix
from ..errors import ExecutorStallError, SchedulingError
from ..obs import counters as _obs_counters
from ..obs import get_logger
from ..obs.trace import get_tracer
from .costs import CostModel
from .dag import build_evaluation_dag, build_plan_dag
from .task import TaskGraph

__all__ = ["ParallelEvaluation", "WorkerPool", "parallel_evaluate", "run_task_graph"]

_LOG = get_logger("runtime.executor")


@dataclass
class ParallelEvaluation:
    """Result of a threaded evaluation: the product plus execution statistics."""

    output: np.ndarray
    tasks_executed: int
    num_workers: int


# ---------------------------------------------------------------------------
# shared worker pool
# ---------------------------------------------------------------------------

class _GraphRun:
    """Bookkeeping of one task graph being executed on a (shared) pool."""

    __slots__ = (
        "graph", "payloads", "pending", "remaining", "in_flight", "in_flight_tids",
        "ready_count", "executed", "errors", "finished",
    )

    def __init__(self, graph: TaskGraph, payloads: Optional[Dict[str, Callable[[], None]]]) -> None:
        self.graph = graph
        self.payloads = payloads
        self.pending = {tid: len(graph.predecessors(tid)) for tid in graph.tasks}
        self.remaining = len(graph.tasks)
        self.in_flight = 0
        self.in_flight_tids: set[str] = set()
        self.ready_count = 0
        self.executed = 0
        self.errors: list[BaseException] = []
        self.finished = False

    def payload_for(self, tid: str):
        if self.payloads is not None:
            return self.payloads.get(tid)
        return self.graph.tasks[tid].payload


class WorkerPool:
    """Persistent worker threads shared across concurrent task-graph runs.

    Create one pool per process (or per server) and call :meth:`run` from as
    many threads as you like: every run's ready tasks feed one global
    largest-flops-first heap, so concurrent evaluations interleave on the
    same workers instead of oversubscribing the machine with one thread
    pool per call.  ``run`` blocks until its own graph is drained (or
    failed) and is independent of every other run: an error or stall in one
    graph never affects its siblings.

    The pool is a context manager; :meth:`shutdown` (idempotent) stops the
    workers after the ready queue is empty.
    """

    def __init__(self, num_workers: int, name: str = "gofmm-worker") -> None:
        if num_workers < 1:
            raise SchedulingError("need at least one worker")
        self.num_workers = num_workers
        self._cv = threading.Condition()
        self._ready: list[tuple[float, int, _GraphRun, str]] = []
        self._seq = 0
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False

    def shutdown(self, join_timeout: Optional[float] = None) -> None:
        """Stop the workers once the ready queue drains (idempotent).

        ``join_timeout`` bounds how long each worker join may take; a
        worker still wedged inside a payload after the timeout is
        abandoned (the threads are daemons).  Use a bounded timeout when
        shutting down after a watchdog-abandoned run — a full join would
        reintroduce exactly the hang the watchdog exists to prevent.
        """
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if join_timeout is None:
            for thread in self._threads:
                thread.join()
        else:
            # One deadline for the whole pool: several wedged workers must
            # not stack their timeouts.
            deadline = time.monotonic() + join_timeout
            for thread in self._threads:
                thread.join(max(0.0, deadline - time.monotonic()))

    # -- submission ---------------------------------------------------------
    def _push(self, run: _GraphRun, tid: str) -> None:
        # cv held.  seq breaks flops ties so heap tuples never compare runs.
        heapq.heappush(self._ready, (-run.graph.tasks[tid].flops, self._seq, run, tid))
        self._seq += 1
        run.ready_count += 1

    def run(
        self,
        graph: TaskGraph,
        payloads: Optional[Dict[str, Callable[[], None]]] = None,
        stall_timeout: Optional[float] = None,
    ) -> int:
        """Execute every task of ``graph``, honoring RAW edges; returns the count.

        ``payloads`` maps task ids to callables; tasks without a payload (or
        with ``task.payload`` unset) are treated as no-ops.  The first
        payload exception is re-raised here once no more of this graph's
        tasks are in flight.  A dependency deadlock (no ready task, none in
        flight, tasks remaining) raises :class:`SchedulingError` instead of
        hanging; ``stall_timeout`` additionally bounds the gap between task
        completions (see :attr:`repro.config.GOFMMConfig.executor_stall_timeout`).
        Safe to call from multiple threads concurrently.
        """
        run = _GraphRun(graph, payloads)
        with self._cv:
            if self._closed:
                raise SchedulingError("worker pool is shut down")
            for tid, count in run.pending.items():
                if count == 0:
                    self._push(run, tid)
            if run.remaining == 0:
                run.finished = True
            elif run.ready_count == 0:
                run.errors.append(
                    SchedulingError(f"task graph stalled with {run.remaining} tasks pending")
                )
                run.finished = True
            else:
                self._cv.notify_all()

            last_executed = run.executed
            deadline = None if stall_timeout is None else time.monotonic() + stall_timeout
            while not run.finished:
                timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
                self._cv.wait(timeout)
                if run.finished or deadline is None:
                    continue
                if run.executed != last_executed:
                    # progress since the last check: restart the window
                    last_executed = run.executed
                    deadline = time.monotonic() + stall_timeout
                elif time.monotonic() >= deadline:
                    stalled = sorted(run.in_flight_tids)
                    _obs_counters.add("chunk_stalls")
                    _LOG.warning(
                        "executor stall watchdog fired after %gs (%d in flight: %s; %d pending); "
                        "abandoning the run",
                        stall_timeout,
                        run.in_flight,
                        ", ".join(stalled) or "<none>",
                        run.remaining,
                    )
                    run.errors.append(
                        ExecutorStallError(
                            f"no task completed within the stall timeout ({stall_timeout:g}s) "
                            f"with {run.in_flight} in flight"
                            + (f" ({', '.join(stalled)})" if stalled else "")
                            + f" and {run.remaining} pending; "
                            "raise GOFMMConfig.executor_stall_timeout for long-running evaluations",
                            stalled_tasks=stalled,
                        )
                    )
                    # Abandon the run: queued tasks are dropped lazily by the
                    # workers, in-flight results are ignored.
                    run.finished = True
                    self._cv.notify_all()
        if run.errors:
            raise run.errors[0]
        return run.executed

    # -- workers ------------------------------------------------------------
    def _worker(self) -> None:
        cv = self._cv
        while True:
            with cv:
                while not self._ready and not self._closed:
                    cv.wait()
                if not self._ready:
                    return  # closed and drained
                _, _, run, tid = heapq.heappop(self._ready)
                run.ready_count -= 1
                if run.finished or run.errors:
                    continue  # failed/abandoned run: drop its queued tasks
                run.in_flight += 1
                run.in_flight_tids.add(tid)
            payload = run.payload_for(tid)
            exc: Optional[BaseException] = None
            try:
                if payload is not None:
                    tracer = get_tracer()
                    if tracer.enabled:
                        with tracer.span(
                            "executor.task", task=tid, kind=run.graph.tasks[tid].kind
                        ):
                            payload()
                    else:
                        payload()
            except BaseException as caught:  # propagate to the run's caller
                exc = caught
            with cv:
                run.in_flight -= 1
                run.in_flight_tids.discard(tid)
                if exc is not None:
                    run.errors.append(exc)
                if run.errors or run.finished:
                    # Failed (or abandoned by the watchdog): finish once the
                    # last in-flight task of this run has landed.
                    if run.errors and run.in_flight == 0:
                        run.finished = True
                    cv.notify_all()
                    continue
                run.remaining -= 1
                run.executed += 1
                for succ in run.graph.successors(tid):
                    run.pending[succ] -= 1
                    if run.pending[succ] == 0:
                        self._push(run, succ)
                if run.remaining == 0:
                    run.finished = True
                elif run.in_flight == 0 and run.ready_count == 0:
                    # Nothing of this run is ready or running, tasks left:
                    # the graph cannot make progress.
                    run.errors.append(
                        SchedulingError(f"task graph stalled with {run.remaining} tasks pending")
                    )
                    run.finished = True
                cv.notify_all()


def run_task_graph(
    graph: TaskGraph,
    num_workers: int,
    payloads: Optional[Dict[str, Callable[[], None]]] = None,
    stall_timeout: Optional[float] = None,
) -> int:
    """Execute ``graph`` on a transient :class:`WorkerPool` of ``num_workers`` threads.

    One-shot convenience around :meth:`WorkerPool.run`; long-lived callers
    (servers) should hold a pool and share it across evaluations instead of
    paying thread startup per call.
    """
    if num_workers < 1:
        raise SchedulingError("need at least one worker")
    pool = WorkerPool(min(num_workers, max(len(graph.tasks), 1)))
    try:
        result = pool.run(graph, payloads=payloads, stall_timeout=stall_timeout)
    except BaseException:
        # A failed run may have a worker wedged in its payload (that is what
        # the stall watchdog fires on): bound the join so the error — not a
        # fresh hang — reaches the caller.  Wedged daemons are abandoned.
        pool.shutdown(join_timeout=0.1)
        raise
    pool.shutdown()
    return result


def _leaf_stripes(tree, num_workers: int) -> tuple[list, np.ndarray]:
    """The output striping policy shared by both engines.

    Returns one lock per stripe and the stripe index of every leaf slot
    (left-to-right leaf order, balanced contiguous ranges).
    """
    num_leaves = len(tree.leaves)
    num_stripes = max(1, min(4 * num_workers, num_leaves))
    stripe_of_leaf = np.arange(num_leaves, dtype=np.intp) * num_stripes // num_leaves
    return [threading.Lock() for _ in range(num_stripes)], stripe_of_leaf


# ---------------------------------------------------------------------------
# reference engine: per-node task DAG
# ---------------------------------------------------------------------------

def _attach_payloads(
    graph: TaskGraph, compressed: CompressedMatrix, state: EvaluationState, num_workers: int = 4
) -> None:
    """Bind each DAG task to the numerical function it performs."""
    tree = compressed.tree
    locks: dict[int, threading.Lock] = {}

    def lock_for(node_id: int) -> threading.Lock:
        # One lock per tree node protects its ũ accumulator: S2S and S2N(parent)
        # may both add into the same node's potentials concurrently.
        if node_id not in locks:
            locks[node_id] = threading.Lock()
        return locks[node_id]

    # The output is striped by leaf range: each S2N-at-leaf / L2L task writes
    # exactly one leaf's output rows, so it takes only its leaf's stripe lock
    # instead of one lock shared across the whole output.
    stripe_locks, stripe_of_leaf = _leaf_stripes(tree, num_workers)
    leaf_stripe = {
        leaf.node_id: stripe_locks[stripe_of_leaf[slot]] for slot, leaf in enumerate(tree.leaves)
    }

    def output_lock_for(node_id: int) -> threading.Lock:
        return leaf_stripe[node_id]

    for task in graph.tasks.values():
        node = tree.node(task.node_id)
        if task.kind == "N2S":
            task.payload = (lambda n=node: task_n2s(n, state))
        elif task.kind == "S2S":
            def s2s_payload(n=node):
                with lock_for(n.node_id):
                    task_s2s(n, state, compressed.far_blocks)
            task.payload = s2s_payload
        elif task.kind == "S2N":
            def s2n_payload(n=node):
                # Writes this node's children potentials (internal) or the output (leaf).
                if n.is_leaf:
                    with output_lock_for(n.node_id):
                        task_s2n(n, state)
                else:
                    left, right = n.children()
                    first, second = sorted((left.node_id, right.node_id))
                    with lock_for(first), lock_for(second):
                        task_s2n(n, state)
            task.payload = s2n_payload
        elif task.kind == "L2L":
            def l2l_payload(n=node):
                with output_lock_for(n.node_id):
                    task_l2l(n, state, tree, compressed.near_blocks)
            task.payload = l2l_payload
        else:  # pragma: no cover - evaluation DAG only contains the four kinds above
            raise SchedulingError(f"unexpected task kind {task.kind!r} in evaluation DAG")


def _run_graph(
    graph: TaskGraph,
    num_workers: int,
    payloads,
    pool: Optional[WorkerPool],
    stall_timeout: Optional[float],
) -> int:
    if pool is not None:
        return pool.run(graph, payloads=payloads, stall_timeout=stall_timeout)
    return run_task_graph(graph, num_workers, payloads=payloads, stall_timeout=stall_timeout)


def _parallel_evaluate_reference(
    compressed: CompressedMatrix,
    weights: np.ndarray,
    num_workers: int,
    pool: Optional[WorkerPool] = None,
    stall_timeout: Optional[float] = None,
) -> np.ndarray:
    tree = compressed.tree
    state = EvaluationState(weights=weights, output=np.zeros_like(weights))
    cost = CostModel(
        leaf_size=compressed.config.leaf_size,
        rank=max(1, int(round(compressed.rank_summary()["mean"]))),
        num_rhs=weights.shape[1],
    )
    graph = build_evaluation_dag(tree, cost)
    _attach_payloads(graph, compressed, state, num_workers=num_workers)
    _run_graph(graph, num_workers, None, pool, stall_timeout)
    return state.output


# ---------------------------------------------------------------------------
# planned engine: plan-segment DAG
# ---------------------------------------------------------------------------

class _StripeLockSet:
    """Ordered set of stripe locks one output-writing segment must hold.

    Acquisition is always in ascending stripe order (the constructor
    receives the locks pre-sorted), so two segments whose leaf ranges
    overlap can never deadlock.
    """

    __slots__ = ("locks",)

    def __init__(self, locks: list) -> None:
        self.locks = locks

    def __enter__(self) -> "_StripeLockSet":
        for lock in self.locks:
            lock.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        for lock in reversed(self.locks):
            lock.release()
        return False


def _output_stripe_locks(compressed: CompressedMatrix, segments: dict, num_workers: int) -> dict:
    """Per-leaf-range stripe locks for the segments that add into the output.

    S2N-at-leaves and L2L both scatter into ``ctx.output``; a single shared
    lock would serialize them entirely (the last contention point of the
    threaded executor).  Leaves are split into contiguous ranges ("stripes"),
    one lock each, and every output-writing segment takes exactly the locks
    of the stripes its leaves fall in — segments touching disjoint leaf
    ranges now add into the output concurrently.
    """
    tree = compressed.tree
    stripe_locks, stripe_of_leaf = _leaf_stripes(tree, num_workers)
    stripe_of_row = np.empty(tree.n, dtype=np.intp)
    for slot, leaf in enumerate(tree.leaves):
        stripe_of_row[leaf.indices] = stripe_of_leaf[slot]

    locks: dict = {}
    for tid, seg in segments.items():
        dst = getattr(seg, "dst", None)
        if dst is None or seg.kind not in ("S2N", "L2L"):
            locks[tid] = None  # workspace scatters are disjoint by construction
            continue
        # Each dst row-block is one whole leaf, so its first row names the leaf.
        stripes = np.unique(stripe_of_row[np.asarray(dst)[:, 0]])
        locks[tid] = _StripeLockSet([stripe_locks[int(s)] for s in stripes])
    return locks


def _parallel_evaluate_planned(
    compressed: CompressedMatrix,
    weights: np.ndarray,
    num_workers: int,
    pool: Optional[WorkerPool] = None,
    stall_timeout: Optional[float] = None,
) -> np.ndarray:
    plan = compressed.plan()
    ctx = plan.new_context(weights)
    graph, segments = build_plan_dag(plan, num_rhs=weights.shape[1])
    # S2N-at-leaves overlaps L2L on the output; instead of one shared lock,
    # the output is striped by leaf range and each segment holds only the
    # stripes it writes.  Workspace scatters are disjoint per stage by
    # construction (see plan.PlanSegment) and need no lock.
    out_locks = _output_stripe_locks(compressed, segments, num_workers)
    payloads = {
        tid: (lambda s=seg, l=out_locks[tid]: s.run(ctx, out_lock=l))
        for tid, seg in segments.items()
    }
    _run_graph(graph, num_workers, payloads, pool, stall_timeout)
    # Release only on success: after a failed or watchdog-abandoned run an
    # in-flight payload may still be writing through the context, so pooling
    # its buffers could corrupt a later evaluation — let the GC take them.
    output = ctx.output
    plan.release_context(ctx)
    return output


#: Sentinel: "take the stall timeout from the compression's config" — distinct
#: from None, which explicitly disables the watchdog (WorkerPool.run semantics).
_CONFIG_TIMEOUT = object()


def parallel_evaluate(
    compressed: CompressedMatrix,
    w: np.ndarray,
    num_workers: int = 4,
    engine: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    stall_timeout=_CONFIG_TIMEOUT,
) -> np.ndarray:
    """Evaluate ``K̃ w`` by executing the evaluation DAG with ``num_workers`` threads.

    ``engine="planned"`` (default) schedules the batched segments of the
    cached evaluation plan; ``engine="reference"`` schedules one task per
    tree node, re-using the exact task functions of the sequential driver.
    Both agree with the sequential engines to floating-point summation
    order.  ``engine="streamed"`` runs the streaming plan's chunk pipeline
    (bit-identical to the sequential streamed engine — its execution chain
    is sequential by design); its concurrency is bounded by the pipeline's
    buffer count, so ``num_workers`` does not apply to it.  Passing a
    :class:`WorkerPool` as ``pool`` reuses its persistent workers (and
    ignores ``num_workers`` for thread creation — the pool's size governs
    concurrency).  ``stall_timeout`` defaults to the compression's
    ``GOFMMConfig.executor_stall_timeout``; pass ``None`` explicitly to
    disable the watchdog for this call.
    """
    if num_workers < 1:
        raise SchedulingError("need at least one worker")
    engine = engine or compressed.default_engine()
    if stall_timeout is _CONFIG_TIMEOUT:
        stall_timeout = getattr(compressed.config, "executor_stall_timeout", None)
    weights, was_vector = _as_matrix(w, compressed.tree.n)
    if engine == "planned":
        output = _parallel_evaluate_planned(compressed, weights, num_workers, pool, stall_timeout)
    elif engine == "reference":
        output = _parallel_evaluate_reference(compressed, weights, num_workers, pool, stall_timeout)
    elif engine == "streamed":
        # The streaming plan is already a task graph (chunk pipeline); run
        # it on the caller's pool so serving shares one set of workers.
        # Without a pool it uses the engine's shared pipeline pool —
        # ``num_workers`` does not apply: the chunk pipeline's concurrency
        # is bounded by its buffer count, not by a worker-count argument.
        output = compressed.streaming_plan().execute(
            weights, counters=None, pool=pool, stall_timeout=stall_timeout
        )
    else:
        raise SchedulingError(
            f"unknown evaluation engine {engine!r}; use 'planned', 'streamed' or 'reference'"
        )
    return output[:, 0] if was_vector else output
