"""Real out-of-order execution of the evaluation DAG on a thread pool.

The scheduler simulations in :mod:`repro.runtime.schedulers` answer "how
long would this DAG take on machine X under policy Y"; this module answers
the complementary correctness question: the evaluation tasks of Algorithm
2.7 really can be executed out of order, constrained only by the RAW edges
of the symbolic DAG, and produce the same result as the sequential
traversal.

The executor is a small work-pool: worker threads repeatedly pop ready
tasks from a priority queue (longest estimated task first, like the HEFT
runtime) and execute the *actual numerical payload* (the same task
functions the sequential driver uses).  NumPy releases the GIL inside BLAS
calls, so moderate parallel speed-up is real, but the primary purpose is
correctness of the out-of-order execution — the performance studies use the
analytic simulation.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

import numpy as np

from ..core.evaluate import EvaluationState, _as_matrix, task_l2l, task_n2s, task_s2n, task_s2s
from ..core.hmatrix import CompressedMatrix
from ..errors import SchedulingError
from .costs import CostModel
from .dag import build_evaluation_dag
from .task import TaskGraph

__all__ = ["ParallelEvaluation", "parallel_evaluate"]


@dataclass
class ParallelEvaluation:
    """Result of a threaded evaluation: the product plus execution statistics."""

    output: np.ndarray
    tasks_executed: int
    num_workers: int


def _attach_payloads(graph: TaskGraph, compressed: CompressedMatrix, state: EvaluationState) -> None:
    """Bind each DAG task to the numerical function it performs."""
    tree = compressed.tree
    locks: dict[int, threading.Lock] = {}

    def lock_for(node_id: int) -> threading.Lock:
        # One lock per tree node protects its ũ accumulator: S2S and S2N(parent)
        # may both add into the same node's potentials concurrently.
        if node_id not in locks:
            locks[node_id] = threading.Lock()
        return locks[node_id]

    output_lock = threading.Lock()

    for task in graph.tasks.values():
        node = tree.node(task.node_id)
        if task.kind == "N2S":
            task.payload = (lambda n=node: task_n2s(n, state))
        elif task.kind == "S2S":
            def s2s_payload(n=node):
                with lock_for(n.node_id):
                    task_s2s(n, state, compressed.far_blocks)
            task.payload = s2s_payload
        elif task.kind == "S2N":
            def s2n_payload(n=node):
                # Writes this node's children potentials (internal) or the output (leaf).
                if n.is_leaf:
                    with output_lock:
                        task_s2n(n, state)
                else:
                    left, right = n.children()
                    first, second = sorted((left.node_id, right.node_id))
                    with lock_for(first), lock_for(second):
                        task_s2n(n, state)
            task.payload = s2n_payload
        elif task.kind == "L2L":
            def l2l_payload(n=node):
                with output_lock:
                    task_l2l(n, state, tree, compressed.near_blocks)
            task.payload = l2l_payload
        else:  # pragma: no cover - evaluation DAG only contains the four kinds above
            raise SchedulingError(f"unexpected task kind {task.kind!r} in evaluation DAG")


def parallel_evaluate(
    compressed: CompressedMatrix,
    w: np.ndarray,
    num_workers: int = 4,
) -> np.ndarray:
    """Evaluate ``K̃ w`` by executing the task DAG with ``num_workers`` threads."""
    if num_workers < 1:
        raise SchedulingError("need at least one worker")
    tree = compressed.tree
    weights, was_vector = _as_matrix(w, tree.n)
    state = EvaluationState(weights=weights, output=np.zeros_like(weights))

    cost = CostModel(
        leaf_size=compressed.config.leaf_size,
        rank=max(1, int(round(compressed.rank_summary()["mean"]))),
        num_rhs=weights.shape[1],
    )
    graph = build_evaluation_dag(tree, cost)
    _attach_payloads(graph, compressed, state)

    pending = {tid: len(graph.predecessors(tid)) for tid in graph.tasks}
    pending_lock = threading.Lock()
    ready: "queue.PriorityQueue[tuple[float, int, str]]" = queue.PriorityQueue()
    counter = [0]

    def push(tid: str) -> None:
        ready.put((-graph.tasks[tid].flops, counter[0], tid))
        counter[0] += 1

    for tid in graph.roots():
        push(tid)

    remaining = [len(graph.tasks)]
    errors: list[BaseException] = []
    done = threading.Event()

    def worker() -> None:
        while not done.is_set():
            try:
                _, _, tid = ready.get(timeout=0.05)
            except queue.Empty:
                with pending_lock:
                    if remaining[0] == 0:
                        return
                continue
            task = graph.tasks[tid]
            try:
                if task.payload is not None:
                    task.payload()
            except BaseException as exc:  # propagate to the caller
                errors.append(exc)
                done.set()
                return
            with pending_lock:
                remaining[0] -= 1
                finished = remaining[0] == 0
                for succ in graph.successors(tid):
                    pending[succ] -= 1
                    if pending[succ] == 0:
                        push(succ)
            if finished:
                done.set()
                return

    threads = [threading.Thread(target=worker, name=f"gofmm-worker-{i}") for i in range(num_workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if errors:
        raise errors[0]
    if remaining[0] != 0:
        raise SchedulingError(f"parallel evaluation finished with {remaining[0]} tasks pending")

    output = state.output[:, 0] if was_vector else state.output
    return output
