"""Tasks and task graphs.

A :class:`Task` is one per-node unit of work from Table 2 (``SPLI``, ``ANN``,
``SKEL``, ``COEF``, ``Kba``, ``SKba``, ``N2S``, ``S2S``, ``S2N``, ``L2L``).
A :class:`TaskGraph` is the dependency DAG over those tasks, built by the
symbolic traversals in :mod:`repro.runtime.dag`.  The graph supports the
queries every scheduler needs — ready sets, critical path, total work — and
validates acyclicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..errors import SchedulingError

__all__ = ["Task", "TaskGraph"]


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    task_id:
        unique string identifier, conventionally ``"<KIND>:<node_id>"``.
    kind:
        task family name from Table 2 (``"N2S"``, ``"SKEL"``, …).
    node_id:
        tree node the task operates on.
    level:
        tree level of that node (used by the level-by-level scheduler's
        barriers).
    flops:
        estimated floating point operations (Table 2 cost model).
    memory_bound:
        whether the task's runtime is governed by memory traffic rather than
        FLOPS (e.g. ``SPLI``, ``ANN``, permutation-heavy work).
    gpu_eligible:
        whether a GPU worker may execute the task (the paper offloads only
        the large GEMM-like evaluation tasks, chiefly ``L2L``).
    payload:
        optional callable executed by the real (threaded) executor.
    """

    task_id: str
    kind: str
    node_id: int
    level: int = 0
    flops: float = 0.0
    bytes_moved: float = 0.0
    memory_bound: bool = False
    gpu_eligible: bool = False
    payload: Optional[Callable[[], None]] = None

    def __hash__(self) -> int:
        return hash(self.task_id)


class TaskGraph:
    """Directed acyclic graph of tasks with read-after-write dependencies."""

    def __init__(self) -> None:
        self.tasks: dict[str, Task] = {}
        self._successors: dict[str, set[str]] = {}
        self._predecessors: dict[str, set[str]] = {}

    # -- construction ------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if task.task_id in self.tasks:
            raise SchedulingError(f"duplicate task id {task.task_id!r}")
        self.tasks[task.task_id] = task
        self._successors[task.task_id] = set()
        self._predecessors[task.task_id] = set()
        return task

    def add_dependency(self, before: str, after: str) -> None:
        """Declare that ``after`` reads data written by ``before`` (RAW edge)."""
        if before not in self.tasks or after not in self.tasks:
            raise SchedulingError(f"unknown task in dependency {before!r} -> {after!r}")
        if before == after:
            raise SchedulingError(f"task {before!r} cannot depend on itself")
        self._successors[before].add(after)
        self._predecessors[after].add(before)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.tasks

    def successors(self, task_id: str) -> set[str]:
        return self._successors[task_id]

    def predecessors(self, task_id: str) -> set[str]:
        return self._predecessors[task_id]

    def roots(self) -> list[str]:
        """Tasks with no predecessors (initially ready)."""
        return [tid for tid, preds in self._predecessors.items() if not preds]

    def total_flops(self) -> float:
        return sum(task.flops for task in self.tasks.values())

    def kinds(self) -> set[str]:
        return {task.kind for task in self.tasks.values()}

    def tasks_of_kind(self, kind: str) -> list[Task]:
        return [task for task in self.tasks.values() if task.kind == kind]

    # -- structural algorithms ---------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises :class:`SchedulingError` if a cycle exists."""
        in_degree = {tid: len(preds) for tid, preds in self._predecessors.items()}
        frontier = [tid for tid, deg in in_degree.items() if deg == 0]
        order: list[str] = []
        while frontier:
            tid = frontier.pop()
            order.append(tid)
            for succ in self._successors[tid]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self.tasks):
            raise SchedulingError("task graph contains a cycle")
        return order

    def validate(self) -> None:
        """Raise if the graph is not a DAG."""
        self.topological_order()

    def critical_path_time(self, time_fn: Callable[[Task], float]) -> float:
        """Length of the longest path under the given per-task time function.

        No schedule on any number of workers can finish faster than this;
        the schedulers' tests assert that invariant.
        """
        order = self.topological_order()
        finish: dict[str, float] = {}
        for tid in order:
            task = self.tasks[tid]
            earliest = max((finish[p] for p in self._predecessors[tid]), default=0.0)
            finish[tid] = earliest + max(time_fn(task), 0.0)
        return max(finish.values(), default=0.0)

    def subset(self, kinds: Iterable[str]) -> "TaskGraph":
        """New graph containing only tasks of the given kinds, with transitive edges dropped.

        Used to schedule the compression and evaluation phases separately.
        """
        kinds = set(kinds)
        out = TaskGraph()
        for task in self.tasks.values():
            if task.kind in kinds:
                out.add_task(task)
        for tid, succs in self._successors.items():
            if tid not in out.tasks:
                continue
            for succ in succs:
                if succ in out.tasks:
                    out.add_dependency(tid, succ)
        return out
