"""Analytic machine models for the scheduling simulation.

The paper runs on four platforms (§3, §5.2) with these theoretical peaks
(double precision):

* Haswell node (2 × 12 cores, 2.6 GHz):        998 GFLOPS, ~68 GB/s/socket
* KNL node (68 cores, 1.4 GHz):              3 046 GFLOPS, ~90 GB/s (DDR)
* ARM Open-Q 820 (4 cores, 2.2 GHz):          35.2 GFLOPS, ~15 GB/s
* NVIDIA P100 (attached to a 12-core host):  4 700 GFLOPS + PCIe ~12 GB/s

A :class:`Worker` is one scheduling slot (one core, or the whole GPU); a
:class:`MachineModel` is a collection of workers plus the conversion from a
task's FLOP / byte estimate to seconds, including the efficiency discount
the paper applies (small GEMMs do not reach peak — footnote 2 and the
Table 5 discussion) and PCIe transfer cost for GPU workers.

These models are deliberately simple: the studies they feed (Figure 4,
Table 5) compare *relative* behaviour across schedulers and architectures,
which depends on the DAG shape, the per-task costs and the worker
throughput ratios — all of which are captured here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import SchedulingError
from .costs import CostModel
from .task import Task

__all__ = ["Worker", "MachineModel", "haswell_24", "knl_68", "arm_4", "haswell_p100", "scaled_machine"]


@dataclass(frozen=True)
class Worker:
    """One scheduling slot of a machine.

    ``peak_gflops`` is the slot's theoretical peak; ``efficiency`` the
    discount applied to dense compute (what fraction of peak a typical
    GOFMM-sized GEMM reaches); ``bandwidth_gbs`` the memory bandwidth seen by
    a single worker; ``transfer_gbs`` the PCIe bandwidth (GPU only,
    ``None`` otherwise); ``task_overhead`` a fixed per-task dispatch cost in
    seconds (larger for GPU launches).
    """

    name: str
    kind: str  # "cpu" | "gpu"
    peak_gflops: float
    efficiency: float = 0.7
    bandwidth_gbs: float = 10.0
    transfer_gbs: float | None = None
    task_overhead: float = 2e-6

    def compute_seconds(self, flops: float) -> float:
        rate = self.peak_gflops * 1e9 * self.efficiency
        return flops / rate if rate > 0 else float("inf")

    def memory_seconds(self, bytes_moved: float) -> float:
        rate = self.bandwidth_gbs * 1e9
        return bytes_moved / rate if rate > 0 else float("inf")

    def transfer_seconds(self, bytes_moved: float) -> float:
        if self.transfer_gbs is None:
            return 0.0
        return bytes_moved / (self.transfer_gbs * 1e9)


@dataclass
class MachineModel:
    """A named collection of workers plus task-time estimation."""

    name: str
    workers: list[Worker]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.workers:
            raise SchedulingError(f"machine {self.name!r} has no workers")

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def peak_gflops(self) -> float:
        return sum(w.peak_gflops for w in self.workers)

    def task_seconds(self, task: Task, worker: Worker) -> float:
        """Estimated wall-clock seconds for one task on one worker.

        Memory-bound tasks are charged against bandwidth; compute-bound
        tasks against (discounted) peak FLOPS; GPU workers additionally pay
        the PCIe transfer of the task's operands, and cannot run tasks that
        are not GPU-eligible (the simulation treats that as "infinitely
        slow" so schedulers simply never pick them).
        """
        if worker.kind == "gpu" and not task.gpu_eligible:
            return float("inf")
        if task.memory_bound:
            base = worker.memory_seconds(task.bytes_moved if task.bytes_moved > 0 else task.flops * 8.0)
        else:
            base = worker.compute_seconds(task.flops)
        transfer = worker.transfer_seconds(task.bytes_moved) if worker.kind == "gpu" else 0.0
        return base + transfer + worker.task_overhead

    def best_case_seconds(self, task: Task) -> float:
        return min(self.task_seconds(task, w) for w in self.workers)

    def with_workers(self, count: int) -> "MachineModel":
        """Same machine restricted to the first ``count`` workers (strong-scaling sweeps)."""
        if count < 1 or count > len(self.workers):
            raise SchedulingError(f"cannot restrict {self.name} to {count} workers (has {len(self.workers)})")
        return MachineModel(name=f"{self.name}-{count}w", workers=self.workers[:count], description=self.description)


def _cpu_workers(count: int, per_core_gflops: float, efficiency: float, bandwidth: float, prefix: str) -> list[Worker]:
    # Bandwidth is shared: each worker sees total/count when all are busy.
    per_worker_bw = bandwidth / count
    return [
        Worker(
            name=f"{prefix}-core{i}",
            kind="cpu",
            peak_gflops=per_core_gflops,
            efficiency=efficiency,
            bandwidth_gbs=per_worker_bw,
        )
        for i in range(count)
    ]


def haswell_24() -> MachineModel:
    """Two-socket Xeon E5-2690 v3 (24 cores, 998 DP GFLOPS, ~136 GB/s)."""
    return MachineModel(
        name="haswell",
        workers=_cpu_workers(24, per_core_gflops=998.0 / 24, efficiency=0.75, bandwidth=136.0, prefix="hsw"),
        description="2x12-core Xeon E5-2690 v3 (Lonestar 5 node)",
    )


def knl_68() -> MachineModel:
    """Xeon Phi 7250 (68 cores, 3 046 DP GFLOPS, ~90 GB/s DDR + MCDRAM boost).

    Per-core efficiency on small GEMMs is much lower than Haswell's — the
    behaviour behind the paper's observation that KNL reaches a smaller
    fraction of peak for small-rank problems.
    """
    return MachineModel(
        name="knl",
        workers=_cpu_workers(68, per_core_gflops=3046.0 / 68, efficiency=0.4, bandwidth=380.0, prefix="knl"),
        description="68-core Xeon Phi 7250 (Stampede 2 node)",
    )


def arm_4() -> MachineModel:
    """Quad-core Qualcomm Kyro (35.2 DP GFLOPS, ~15 GB/s, passively cooled)."""
    return MachineModel(
        name="arm",
        workers=_cpu_workers(4, per_core_gflops=35.2 / 4, efficiency=0.5, bandwidth=15.0, prefix="arm"),
        description="Intrinsyc Open-Q 820 (quad-core Kyro)",
    )


def haswell_p100() -> MachineModel:
    """12-core Haswell host plus one NVIDIA Tesla P100 worker (Piz Daint node)."""
    cpu = _cpu_workers(12, per_core_gflops=416.0 / 12, efficiency=0.7, bandwidth=68.0, prefix="host")
    gpu = Worker(
        name="p100",
        kind="gpu",
        peak_gflops=4700.0,
        efficiency=0.6,
        bandwidth_gbs=720.0,
        transfer_gbs=12.0,
        task_overhead=2e-5,
    )
    return MachineModel(
        name="haswell+p100",
        workers=cpu + [gpu],
        description="12-core Xeon E5-2650 v3 + Tesla P100 (Piz Daint node)",
    )


def scaled_machine(base: MachineModel, num_workers: int) -> MachineModel:
    """Convenience wrapper used by the strong-scaling benchmark."""
    return base.with_workers(num_workers)
