"""Symbolic traversals building the compression and evaluation task DAGs.

The paper (Figure 3) builds dependencies at runtime by *symbolically
executing* Algorithms 2.2 and 2.7: walking the traversals without doing the
numerical work and recording which task writes each intermediate quantity
(``w̃_α``, ``ũ_β``, skeletons) and which tasks read it.  The read-after-write
pairs become edges of the DAG.

Evaluation DAG (Algorithm 2.7):

* ``N2S(α)`` reads the children's ``w̃`` — edges child→parent (postorder),
* ``S2S(β)`` reads ``w̃_α`` for every ``α ∈ Far(β)`` — edges ``N2S(α) →
  S2S(β)`` (these are the dependencies OpenMP's ``task depend`` cannot
  express because they are only known after the Near/Far lists exist),
* ``S2N(β)`` reads ``ũ_β`` (written by ``S2S(β)`` and by ``S2N(parent)``) —
  edges ``S2S(β) → S2N(β)`` and ``S2N(parent) → S2N(β)``,
* ``L2L(β)`` is independent of the other three families (it only touches
  ``w`` and ``u``), exactly as stated in the paper.

Compression DAG (Algorithm 2.2):

* ``SPLI`` parent→child (preorder),
* ``ANN(leaf)`` after the leaf's ``SPLI``,
* ``SKEL`` child→parent (postorder), after the node's ``SPLI``,
* ``COEF(α)`` after ``SKEL(α)`` (any order otherwise),
* ``SKba(β)`` after ``SKEL`` of β and of every far node,
* ``Kba(β)`` after the leaf's ``SPLI`` (any order otherwise).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.tree import BallTree
from .costs import CostModel
from .task import Task, TaskGraph

__all__ = ["build_compression_dag", "build_evaluation_dag", "build_plan_dag"]


def _mk(graph: TaskGraph, kind: str, node, cost: CostModel, flops: float, bytes_moved: float = 0.0) -> Task:
    task = Task(
        task_id=f"{kind}:{node.node_id}",
        kind=kind,
        node_id=node.node_id,
        level=node.level,
        flops=flops,
        bytes_moved=bytes_moved,
        memory_bound=CostModel.is_memory_bound(kind),
        gpu_eligible=CostModel.is_gpu_eligible(kind),
    )
    return graph.add_task(task)


def build_evaluation_dag(tree: BallTree, cost: CostModel, include_l2l: bool = True) -> TaskGraph:
    """Task DAG of Algorithm 2.7 (N2S, S2S, S2N, L2L) for the given tree.

    The tree must already carry its interaction lists (``node.near`` /
    ``node.far``), i.e. come from a finished compression.
    """
    graph = TaskGraph()

    # Create tasks.
    for node in tree.nodes:
        if not node.is_root:
            _mk(graph, "N2S", node, cost, cost.n2s(node.is_leaf))
            _mk(graph, "S2N", node, cost, cost.s2n(node.is_leaf))
            if node.far:
                _mk(graph, "S2S", node, cost, cost.s2s(len(node.far)))
        if node.is_leaf and include_l2l and node.near:
            _mk(
                graph,
                "L2L",
                node,
                cost,
                cost.l2l(len(node.near)),
                bytes_moved=cost.bytes_moved("KBA", near_size=len(node.near)),
            )

    # N2S: children before parents (RAW on w̃ of the children).
    for node in tree.nodes:
        if node.is_root or node.is_leaf:
            continue
        for child in node.children():
            if f"N2S:{child.node_id}" in graph and f"N2S:{node.node_id}" in graph:
                graph.add_dependency(f"N2S:{child.node_id}", f"N2S:{node.node_id}")

    # S2S(β) reads w̃_α for α ∈ Far(β).
    for node in tree.nodes:
        s2s_id = f"S2S:{node.node_id}"
        if s2s_id not in graph:
            continue
        for alpha_id in node.far:
            n2s_id = f"N2S:{alpha_id}"
            if n2s_id in graph:
                graph.add_dependency(n2s_id, s2s_id)

    # S2N(β) reads ũ_β written by S2S(β) and by S2N(parent).
    for node in tree.nodes:
        s2n_id = f"S2N:{node.node_id}"
        if s2n_id not in graph:
            continue
        s2s_id = f"S2S:{node.node_id}"
        if s2s_id in graph:
            graph.add_dependency(s2s_id, s2n_id)
        if node.parent is not None and not node.parent.is_root:
            parent_id = f"S2N:{node.parent.node_id}"
            if parent_id in graph:
                graph.add_dependency(parent_id, s2n_id)

    graph.validate()
    return graph


def build_plan_dag(plan, num_rhs: int = 1) -> tuple[TaskGraph, Dict[str, object]]:
    """Task DAG over the *segments* of a packed :class:`repro.core.plan.EvaluationPlan`.

    Where :func:`build_evaluation_dag` has one task per tree node, this has
    one task per batched-GEMM segment — typically orders of magnitude fewer
    tasks for the same matvec.  Dependencies mirror the plan's stage
    structure:

    * N2S levels chain bottom-up (a level's GEMMs read the level below),
    * every S2S segment reads skeleton weights finalized by the N2S pass,
    * S2N levels chain top-down and start after the whole S2S stage,
    * L2L segments are independent of everything (they read ``w``, write
      ``u``), exactly as in the per-node DAG.

    Returns the graph plus a ``task_id -> segment`` mapping; flops are the
    segment's batched-GEMM count so the executor's largest-first priority
    keeps working.
    """
    graph = TaskGraph()
    segments: Dict[str, object] = {}
    stage_ids: list[list[str]] = []
    stages = plan.stages()

    for stage_index, (stage_name, stage_segments) in enumerate(stages):
        ids: list[str] = []
        for i, segment in enumerate(stage_segments):
            task_id = f"{stage_name}/{i}"
            graph.add_task(
                Task(
                    task_id=task_id,
                    kind=segment.kind,
                    node_id=i,
                    level=segment.level,
                    flops=segment.flops_per_rhs * num_rhs,
                    gpu_eligible=CostModel.is_gpu_eligible(segment.kind),
                )
            )
            segments[task_id] = segment
            ids.append(task_id)
        stage_ids.append(ids)

    # Barrier edges between consecutive non-L2L stages (N2S levels → S2S →
    # S2N levels); L2L stages depend on nothing.
    previous: list[str] = []
    for (stage_name, stage_segments), ids in zip(stages, stage_ids):
        if stage_segments and stage_segments[0].kind == "L2L":
            continue
        for before in previous:
            for after in ids:
                graph.add_dependency(before, after)
        previous = ids

    graph.validate()
    return graph, segments


def build_compression_dag(tree: BallTree, cost: CostModel, num_neighbor_trees: int = 1) -> TaskGraph:
    """Task DAG of Algorithm 2.2 (SPLI, ANN, SKEL, COEF, Kba, SKba)."""
    graph = TaskGraph()

    for node in tree.nodes:
        _mk(
            graph,
            "SPLI",
            node,
            cost,
            cost.spli(node.size),
            bytes_moved=cost.bytes_moved("SPLI", node_size=node.size),
        )
        if node.is_leaf:
            # The ANN task is repeated once per projection-tree iteration; we
            # fold the iterations into a single task with scaled cost.
            _mk(
                graph,
                "ANN",
                node,
                cost,
                cost.ann() * max(num_neighbor_trees, 1),
                bytes_moved=cost.bytes_moved("ANN"),
            )
        if not node.is_root:
            _mk(graph, "SKEL", node, cost, cost.skel())
            _mk(graph, "COEF", node, cost, cost.coef())
            if node.far:
                _mk(graph, "SKba", node, cost, cost.skba(len(node.far)), bytes_moved=cost.bytes_moved("SKBA", far_size=len(node.far)))
        if node.is_leaf and node.near:
            _mk(graph, "Kba", node, cost, cost.kba(len(node.near)), bytes_moved=cost.bytes_moved("KBA", near_size=len(node.near)))

    for node in tree.nodes:
        spli_id = f"SPLI:{node.node_id}"
        # SPLI: parent before children (preorder).
        if node.parent is not None:
            graph.add_dependency(f"SPLI:{node.parent.node_id}", spli_id)
        # ANN after the leaf's SPLI.
        if node.is_leaf:
            graph.add_dependency(spli_id, f"ANN:{node.node_id}")
        # SKEL after the node's SPLI and after the children's SKEL.
        skel_id = f"SKEL:{node.node_id}"
        if skel_id in graph:
            graph.add_dependency(spli_id, skel_id)
            if not node.is_leaf:
                for child in node.children():
                    child_skel = f"SKEL:{child.node_id}"
                    if child_skel in graph:
                        graph.add_dependency(child_skel, skel_id)
            # COEF after SKEL.
            graph.add_dependency(skel_id, f"COEF:{node.node_id}")
            # SKba needs the node's and its far nodes' skeletons.
            skba_id = f"SKba:{node.node_id}"
            if skba_id in graph:
                graph.add_dependency(skel_id, skba_id)
                for alpha_id in node.far:
                    alpha_skel = f"SKEL:{alpha_id}"
                    if alpha_skel in graph:
                        graph.add_dependency(alpha_skel, skba_id)
        # Kba after the leaf's SPLI (needs the final index sets of both leaves).
        kba_id = f"Kba:{node.node_id}"
        if kba_id in graph:
            graph.add_dependency(spli_id, kba_id)
            for alpha_id in node.near:
                graph.add_dependency(f"SPLI:{alpha_id}", kba_id)

    graph.validate()
    return graph
